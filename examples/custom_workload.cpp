/**
 * @file
 * Defining your own transactional workload.
 *
 * The Workload interface is the extension point: anything that can
 * produce per-thread streams of TxDescriptors (static transaction
 * site + exact accesses + compute cost) can run on the simulated
 * machine under any contention manager. This example builds a
 * two-site "order book" workload from scratch:
 *
 *  - site 0 ("match"): small transactions that read-modify-write a
 *    tiny shared book head -- persistent conflicts, high similarity;
 *  - site 1 ("insert"): medium transactions touching random private
 *    price levels -- almost conflict-free, low similarity.
 *
 * A proactive scheduler should learn to serialize site 0 against
 * itself while leaving site 1 fully parallel.
 */

#include <cstdio>
#include <memory>

#include "runner/experiment.h"
#include "runner/simulation.h"
#include "workloads/generator.h"

namespace {

std::unique_ptr<workloads::Workload>
makeOrderBook(int num_threads)
{
    workloads::SyntheticParams params;
    params.name = "OrderBook";
    params.txPerThread = 80;
    params.hotGroupLines = {512}; // the shared book

    workloads::SiteParams match;
    match.weight = 1.0;
    match.meanAccesses = 6;
    match.accessJitter = 1;
    match.similarity = 0.85;
    match.workPerAccess = 25;
    match.nonTxWork = 900;
    match.hotGroups = {{.group = 0,
                        .frac = 0.6,
                        .writeFraction = 0.8,
                        .stickyFrac = 0.8,
                        .stickyPoolLines = 6}};

    workloads::SiteParams insert;
    insert.weight = 2.0;
    insert.meanAccesses = 18;
    insert.accessJitter = 4;
    insert.similarity = 0.2;
    insert.workPerAccess = 40;
    insert.nonTxWork = 1500;
    insert.hotGroups = {{.group = 0,
                         .frac = 0.05,
                         .writeFraction = 0.2}};

    params.sites = {match, insert};
    return std::make_unique<workloads::SyntheticWorkload>(
        params, num_threads);
}

} // namespace

int
main()
{
    std::printf("custom 'OrderBook' workload: 2 sites, 64 threads\n\n");
    for (cm::CmKind kind :
         {cm::CmKind::Backoff, cm::CmKind::Ats,
          cm::CmKind::BfgtsHw}) {
        runner::SimConfig config;
        config.workloadFactory = makeOrderBook;
        config.cm = kind;
        runner::Simulation simulation(config);
        const runner::SimResults r = simulation.run();
        std::printf("  %-18s runtime %9llu  contention %5.1f%%  "
                    "serializations %llu\n",
                    r.cm.c_str(),
                    static_cast<unsigned long long>(r.runtime),
                    100.0 * r.contentionRate,
                    static_cast<unsigned long long>(
                        r.serializations));
        // The measured conflict graph: expect only the (0,0) edge.
        std::printf("    conflict edges:");
        for (const auto &[a, b] : r.conflictGraph)
            std::printf(" (%d,%d)", a, b);
        std::printf("   site similarity:");
        for (double s : r.similarityPerSite)
            std::printf(" %.2f", s);
        std::printf("\n");
    }
    return 0;
}
