/**
 * @file
 * Side-by-side comparison of all seven contention managers on one
 * benchmark, with the Fig. 5-style time breakdown: where do the
 * machine's cycles go under each policy?
 *
 *   ./build/examples/scheduler_comparison [benchmark]
 */

#include <cstdio>
#include <string>

#include "runner/experiment.h"

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "Delaunay";
    runner::RunOptions options;
    options.txPerThread = 60;

    std::printf("%s on 16 CPUs / 64 threads -- cycle breakdown per "
                "manager\n\n",
                benchmark.c_str());
    std::printf("%-18s %9s %6s | %6s %6s %6s %6s %6s %6s\n",
                "manager", "runtime", "cont", "nonTx", "kernel",
                "tx", "abort", "sched", "idle");

    for (cm::CmKind kind : cm::allCmKinds()) {
        const runner::SimResults r =
            runner::runStamp(benchmark, kind, options);
        const runner::Breakdown &b = r.breakdown;
        std::printf(
            "%-18s %9llu %5.1f%% | %5.1f%% %5.1f%% %5.1f%% %5.1f%% "
            "%5.1f%% %5.1f%%\n",
            r.cm.c_str(), static_cast<unsigned long long>(r.runtime),
            100.0 * r.contentionRate, 100.0 * b.frac(b.nonTx),
            100.0 * b.frac(b.kernel), 100.0 * b.frac(b.tx),
            100.0 * b.frac(b.aborted), 100.0 * b.frac(b.sched),
            100.0 * b.frac(b.idle));
    }

    std::printf("\nReading the table: reactive Backoff burns cycles "
                "in 'abort'; ATS trades them\nfor 'kernel' + 'idle' "
                "(central-queue blocking); BFGTS converts most of "
                "both into\nuseful 'tx' time at the price of some "
                "'sched' prediction work.\n");
    return 0;
}
