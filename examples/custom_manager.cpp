/**
 * @file
 * Writing your own contention manager.
 *
 * The ContentionManager interface is the other main extension point
 * (next to Workload): implement the begin / conflict / abort /
 * commit hooks, report your bookkeeping's cycle cost, and the
 * simulator schedules around your decisions. This example builds a
 * deliberately simple manager -- "GreedyLimit" -- that caps the
 * number of concurrently running transactions per static site at a
 * fixed limit, with no learning at all, and compares it against
 * Backoff and BFGTS-HW.
 *
 * GreedyLimit is a reasonable straw-man: on benchmarks whose
 * contention is concentrated in one hot site it behaves like a
 * semaphore and does surprisingly fine; where conflicts are spread
 * across sites it over- or under-throttles because it never learns
 * which pairs actually collide.
 */

#include <cstdio>
#include <vector>

#include "cm/base.h"
#include "runner/experiment.h"
#include "runner/simulation.h"

namespace {

/** At most `limit` transactions of the same site run concurrently. */
class GreedyLimitManager : public cm::ContentionManagerBase
{
  public:
    GreedyLimitManager(int num_cpus, int num_sites,
                       const cm::Services &services, int limit)
        : ContentionManagerBase(num_cpus, services),
          running_(static_cast<std::size_t>(num_sites), 0),
          limit_(limit)
    {
    }

    std::string name() const override { return "GreedyLimit"; }

    cm::BeginDecision
    onTxBegin(const cm::TxInfo &tx) override
    {
        cm::BeginDecision decision;
        decision.cost.sched = 4; // one counter read
        if (running_[static_cast<std::size_t>(tx.sTx)] >= limit_) {
            trackSerialization(kUnknownSite, tx.sTx);
            // No specific enemy: just get off the CPU and retry.
            decision.action = cm::BeginAction::YieldOn;
        }
        return decision;
    }

    void
    onTxStart(const cm::TxInfo &tx) override
    {
        trackStart(tx);
        ++running_[static_cast<std::size_t>(tx.sTx)];
    }

    cm::AbortResponse
    onTxAbort(const cm::TxInfo &tx, const cm::TxInfo &) override
    {
        trackEnd(tx, false);
        --running_[static_cast<std::size_t>(tx.sTx)];
        cm::AbortResponse resp;
        resp.backoff = services_.rng->below(600);
        return resp;
    }

    cm::CmCost
    onTxCommit(const cm::TxInfo &tx,
               const std::vector<mem::Addr> &) override
    {
        trackEnd(tx, true);
        --running_[static_cast<std::size_t>(tx.sTx)];
        return cm::CmCost{.sched = 4, .kernel = 0};
    }

  private:
    std::vector<int> running_;
    int limit_;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "Intruder";
    runner::RunOptions options;
    options.txPerThread = 60;

    const runner::SimResults baseline =
        runner::runSingleCoreBaseline(benchmark, options);
    const double base = static_cast<double>(baseline.runtime);

    std::printf("%s: plugging a custom manager into the runner\n\n",
                benchmark.c_str());

    for (cm::CmKind kind :
         {cm::CmKind::Backoff, cm::CmKind::BfgtsHw}) {
        const runner::SimResults r =
            runner::runStamp(benchmark, kind, options);
        std::printf("  %-12s speedup %5.2fx  contention %5.1f%%\n",
                    r.cm.c_str(),
                    base / static_cast<double>(r.runtime),
                    100.0 * r.contentionRate);
    }

    // The custom manager slots in through SimConfig::managerFactory.
    for (int limit : {1, 2, 4}) {
        runner::SimConfig config =
            runner::makeConfig(benchmark, cm::CmKind::Backoff,
                               options);
        config.managerFactory =
            [limit](int num_cpus, const htm::TxIdSpace &ids,
                    const cm::Services &services) {
                return std::make_unique<GreedyLimitManager>(
                    num_cpus, ids.numStaticTx(), services, limit);
            };
        runner::Simulation simulation(config);
        const runner::SimResults r = simulation.run();
        std::printf("  %-12s speedup %5.2fx  contention %5.1f%%  "
                    "(limit %d/site)\n",
                    r.cm.c_str(),
                    base / static_cast<double>(r.runtime),
                    100.0 * r.contentionRate, limit);
    }
    return 0;
}
