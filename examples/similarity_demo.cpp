/**
 * @file
 * The Bloom filter similarity estimators, standalone (paper
 * Section 3.2, Eqs. 2-4).
 *
 * Demonstrates, without the simulator:
 *  1. set-size estimation from a filter's popcount (Eq. 2);
 *  2. intersection estimation via union inclusion-exclusion (Eq. 3);
 *  3. the "similarity" of consecutive transaction read/write sets
 *     (Eq. 4), compared against the exact value, across the paper's
 *     filter sizes (512..8192 bits).
 */

#include <cstdio>

#include "bloom/estimate.h"
#include "bloom/signature.h"
#include "sim/random.h"

namespace {

/** Build two set pairs with a chosen overlap fraction. */
void
demoOverlap(double overlap_fraction)
{
    constexpr int kSetSize = 64;
    const int shared =
        static_cast<int>(overlap_fraction * kSetSize);

    std::printf("true overlap %3.0f%%:  ", 100.0 * overlap_fraction);
    for (std::uint64_t bits : {512u, 1024u, 2048u, 4096u, 8192u}) {
        bloom::BloomConfig config{.numBits = bits, .numHashes = 4,
                                  .seed = 99};
        bloom::BloomFilter prev(config), cur(config);
        sim::Rng rng(bits * 7919);
        for (int i = 0; i < shared; ++i) {
            std::uint64_t key = rng.next();
            prev.insert(key);
            cur.insert(key);
        }
        for (int i = shared; i < kSetSize; ++i) {
            prev.insert(rng.next());
            cur.insert(rng.next());
        }
        std::printf("%4.0f%% @%llub  ",
                    100.0 * bloom::similarity(cur, prev, kSetSize),
                    static_cast<unsigned long long>(bits));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Eq. 2 -- set size estimation from popcount "
                "(m=2048, k=4):\n");
    bloom::BloomFilter filter(
        bloom::BloomConfig{.numBits = 2048, .numHashes = 4,
                           .seed = 1});
    sim::Rng rng(3);
    for (int n : {8, 32, 128, 512}) {
        filter.clear();
        for (int i = 0; i < n; ++i)
            filter.insert(rng.next());
        std::printf("  inserted %4d keys -> %4llu bits set -> "
                    "estimate %7.1f\n",
                    n,
                    static_cast<unsigned long long>(
                        filter.popCount()),
                    bloom::estimateSetSize(filter));
    }

    std::printf("\nEq. 4 -- similarity of consecutive read/write "
                "sets, estimated per filter size:\n");
    for (double overlap : {0.0, 0.25, 0.5, 0.75, 1.0})
        demoOverlap(overlap);

    std::printf("\nSmall filters overestimate when crowded "
                "(collisions); the paper's sweep (Fig. 6)\npicks the "
                "size where estimation accuracy pays for its "
                "popcount/log cost.\n");
    return 0;
}
