/**
 * @file
 * Looking inside a BFGTS run: the learned confidence table, the
 * per-site similarity estimates versus ground truth, and where the
 * aborts that slipped through came from.
 *
 *   ./build/examples/bfgts_introspection [benchmark]
 */

#include <cstdio>
#include <string>

#include "cm/bfgts.h"
#include "runner/experiment.h"
#include "runner/simulation.h"

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "Delaunay";
    runner::RunOptions options;
    options.txPerThread = 60;

    runner::SimConfig config =
        runner::makeConfig(benchmark, cm::CmKind::BfgtsHw, options);
    runner::Simulation simulation(config);
    const runner::SimResults results = simulation.run();
    auto &manager =
        dynamic_cast<cm::BfgtsManager &>(simulation.manager());
    const int sites = simulation.workload().numStaticTx();

    std::printf("%s under BFGTS-HW: %llu commits, %llu aborts, "
                "%llu begin-time serializations\n\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(results.commits),
                static_cast<unsigned long long>(results.aborts),
                static_cast<unsigned long long>(
                    results.serializations));

    std::printf("learned confidence table (rows = beginning site, "
                "columns = running site):\n      ");
    for (int col = 0; col < sites; ++col)
        std::printf("  s%-3d", col);
    std::printf("\n");
    for (int row = 0; row < sites; ++row) {
        std::printf("  s%-3d", row);
        for (int col = 0; col < sites; ++col)
            std::printf("  %4u", manager.confidence(row, col));
        std::printf("\n");
    }

    std::printf("\nsimilarity: BFGTS estimate (thread 0) vs "
                "measured exact:\n");
    htm::TxIdSpace ids(sites, config.numThreads());
    for (int site = 0; site < sites; ++site) {
        std::printf("  site %d: estimated %.2f   measured %.2f\n",
                    site, manager.similarityOf(ids.make(0, site)),
                    results.similarityPerSite[static_cast<
                        std::size_t>(site)]);
    }

    std::printf("\nresidual aborts by site pair:\n");
    for (const auto &[pair, count] : results.abortPairs) {
        std::printf("  (s%d, s%d): %llu\n", pair.first, pair.second,
                    static_cast<unsigned long long>(count));
    }
    return 0;
}
