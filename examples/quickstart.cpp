/**
 * @file
 * Quickstart: run one STAMP benchmark under two contention managers
 * and compare them.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark]
 *
 * The simulator models the paper's machine (16 one-IPC cores, 64
 * threads, LogTM-style HTM); runStamp() executes one (benchmark,
 * manager) cell and returns runtime, contention and a time
 * breakdown.
 */

#include <cstdio>
#include <string>

#include "runner/experiment.h"

namespace {

void
report(const runner::SimResults &results, double baseline)
{
    std::printf("  %-18s speedup %5.2fx   contention %5.1f%%   "
                "commits %llu  aborts %llu\n",
                results.cm.c_str(),
                baseline / static_cast<double>(results.runtime),
                100.0 * results.contentionRate,
                static_cast<unsigned long long>(results.commits),
                static_cast<unsigned long long>(results.aborts));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "Intruder";

    runner::RunOptions options;
    options.txPerThread = 60; // keep the demo quick

    std::printf("benchmark: %s (16 CPUs, 64 threads)\n\n",
                benchmark.c_str());

    // The speedup denominator: all the work on one core, one thread.
    const runner::SimResults baseline =
        runner::runSingleCoreBaseline(benchmark, options);
    std::printf("single-core baseline: %llu cycles\n\n",
                static_cast<unsigned long long>(baseline.runtime));

    const double base = static_cast<double>(baseline.runtime);
    report(runner::runStamp(benchmark, cm::CmKind::Backoff, options),
           base);
    report(runner::runStamp(benchmark, cm::CmKind::BfgtsHw, options),
           base);

    std::printf("\nBFGTS predicts conflicts at TX_BEGIN from its "
                "Bloom-filter-derived similarity\nstatistics and "
                "serializes only the transactions that would "
                "actually collide.\n");
    return 0;
}
