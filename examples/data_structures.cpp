/**
 * @file
 * The paper's Section 3.1 examples, made concrete: a shared FIFO
 * queue (persistent, self-similar conflicts) versus a hash table
 * (transient bucket collisions), run as semantic workloads whose
 * addresses come from live shadow structures.
 *
 * Expect the queue to force serialization (BFGTS learns its high
 * similarity and keeps the edge hot) while the hash map stays
 * parallel under every manager.
 */

#include <cstdio>
#include <memory>

#include "runner/simulation.h"
#include "workloads/structures.h"

namespace {

template <typename WorkloadT>
runner::SimResults
run(cm::CmKind kind, int tx_per_thread)
{
    runner::SimConfig config;
    config.cm = kind;
    config.txPerThreadOverride = tx_per_thread;
    config.workloadFactory =
        [](int threads) -> std::unique_ptr<workloads::Workload> {
        return std::make_unique<WorkloadT>(
            typename WorkloadT::Config{}, threads);
    };
    runner::Simulation simulation(config);
    return simulation.run();
}

template <typename WorkloadT>
void
compare(const char *title)
{
    std::printf("%s\n", title);
    for (cm::CmKind kind :
         {cm::CmKind::Backoff, cm::CmKind::Ats,
          cm::CmKind::BfgtsHw}) {
        const runner::SimResults r = run<WorkloadT>(kind, 40);
        std::printf("  %-10s runtime %8llu  contention %5.1f%%  "
                    "serializations %llu  similarity",
                    r.cm.c_str(),
                    static_cast<unsigned long long>(r.runtime),
                    100.0 * r.contentionRate,
                    static_cast<unsigned long long>(
                        r.serializations));
        for (double sim : r.similarityPerSite)
            std::printf(" %.2f", sim);
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Section 3.1, live: persistent vs transient "
                "conflicts\n\n");
    compare<workloads::FifoQueueWorkload>(
        "FIFO queue (every op touches the same head/tail lines):");
    compare<workloads::HashMapWorkload>(
        "Hash map (random bucket collisions):");
    compare<workloads::CounterArrayWorkload>(
        "Zipf counter array (hot head, parallel tail):");
    return 0;
}
