/**
 * @file
 * Shared helpers for the table/figure regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it runs the relevant slice of the evaluation matrix and prints the
 * same rows/series the paper reports. Set BFGTS_QUICK=1 to shrink
 * the runs (fewer transactions per thread) for fast smoke runs.
 */

#ifndef BFGTS_BENCH_BENCH_UTIL_H
#define BFGTS_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "sim/stats.h"
#include "workloads/stamp.h"

namespace bench {

/** True when BFGTS_QUICK=1: shrink runs for smoke testing. */
inline bool
quickMode()
{
    const char *env = std::getenv("BFGTS_QUICK");
    return env != nullptr && env[0] == '1';
}

/** Default run options, shrunk in quick mode. */
inline runner::RunOptions
defaultOptions()
{
    runner::RunOptions options;
    if (quickMode())
        options.txPerThread = 20;
    return options;
}

/** Geometric mean of a non-empty vector of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Print a banner naming the table/figure being regenerated. */
inline void
banner(const std::string &title)
{
    std::cout << "\n==== " << title << " ====\n\n";
}

} // namespace bench

#endif // BFGTS_BENCH_BENCH_UTIL_H
