/**
 * @file
 * Shared helpers for the table/figure regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it runs the relevant slice of the evaluation matrix and prints the
 * same rows/series the paper reports. Set BFGTS_QUICK=1 to shrink
 * the runs (fewer transactions per thread) for fast smoke runs.
 */

#ifndef BFGTS_BENCH_BENCH_UTIL_H
#define BFGTS_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "runner/experiment.h"
#include "runner/sweep.h"
#include "sim/json.h"
#include "sim/profiler.h"
#include "sim/stats.h"
#include "workloads/stamp.h"

namespace bench {

/** True when BFGTS_QUICK=1: shrink runs for smoke testing. */
inline bool
quickMode()
{
    const char *env = std::getenv("BFGTS_QUICK");
    return env != nullptr && env[0] == '1';
}

/** Default run options, shrunk in quick mode. */
inline runner::RunOptions
defaultOptions()
{
    runner::RunOptions options;
    if (quickMode())
        options.txPerThread = 20;
    return options;
}

/** Geometric mean of positive values; 0.0 on empty input (a bare
 *  division would put a silent NaN into reports). */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean; 0.0 on empty input. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Print a banner naming the table/figure being regenerated. */
inline void
banner(const std::string &title)
{
    std::cout << "\n==== " << title << " ====\n\n";
}

/**
 * Sweep-engine options from argv and the environment:
 *   --jobs N              worker threads (default 1)
 *   --progress            per-cell progress lines on stderr
 *   BFGTS_SWEEP_CACHE=DIR on-disk result cache (default off)
 * Unknown arguments are ignored, so these compose with --json.
 */
inline runner::SweepOptions
sweepOptionsFromArgs(int argc, char **argv)
{
    runner::SweepOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            options.jobs = std::atoi(argv[++i]);
        else if (arg == "--progress")
            options.progress = &std::cerr;
    }
    if (options.jobs < 1)
        options.jobs = 1;
    const char *cache = std::getenv("BFGTS_SWEEP_CACHE");
    if (cache != nullptr && cache[0] != '\0')
        options.cacheDir = cache;
    return options;
}

/**
 * Unwrap one sweep result: return the SimResults of cell @p index,
 * aborting the bench with the cell's error when it failed (benches
 * have no sensible partial output).
 */
inline const runner::SimResults &
sweepCellOrDie(const std::vector<runner::SweepCellResult> &results,
               std::size_t index)
{
    const runner::SweepCellResult &result = results.at(index);
    if (!result.ok) {
        std::cerr << "sweep cell " << index
                  << " failed: " << result.error << "\n";
        std::exit(1);
    }
    return result.results;
}

/**
 * Machine-readable bench output (docs/observability.md).
 *
 * Benches that support it construct a JsonReporter from argv; when
 * the binary was invoked with `--json [FILE]` the reporter collects
 * one row of named cells per result and write() emits a
 * schema-versioned bfgts-obs-v1 "bench" document (default file
 * BENCH_<name>.json). Without --json everything is a no-op, so the
 * human-readable tables stay the default interface.
 */
class JsonReporter
{
  public:
    JsonReporter(std::string bench_name, int argc, char **argv)
        : name_(std::move(bench_name))
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg != "--json")
                continue;
            enabled_ = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                path_ = argv[++i];
        }
        if (enabled_ && path_.empty())
            path_ = "BENCH_" + name_ + ".json";
    }

    bool enabled() const { return enabled_; }
    const std::string &path() const { return path_; }

    /** One result row under construction; cells keep call order. */
    class Row
    {
      public:
        Row &
        set(const std::string &key, const std::string &v)
        {
            cells_.push_back({key, false, 0.0, v});
            return *this;
        }

        Row &
        set(const std::string &key, const char *v)
        {
            return set(key, std::string(v));
        }

        Row &
        set(const std::string &key, double v)
        {
            cells_.push_back({key, true, v, {}});
            return *this;
        }

        Row &
        set(const std::string &key, std::uint64_t v)
        {
            return set(key, static_cast<double>(v));
        }

      private:
        friend class JsonReporter;
        struct Cell {
            std::string key;
            bool isNumber;
            double num;
            std::string str;
        };
        std::vector<Cell> cells_;
    };

    /** Append and return a fresh row (no-op storage when disabled). */
    Row &
    addRow()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /**
     * Write the document (if --json was given). Returns false and
     * prints to stderr when the file cannot be opened.
     */
    bool
    write() const
    {
        if (!enabled_)
            return true;
        std::ofstream os(path_);
        if (!os) {
            std::cerr << "cannot open " << path_ << "\n";
            return false;
        }
        sim::JsonWriter jw(os);
        jw.beginObject();
        jw.kv("schema", "bfgts-obs-v1");
        jw.kv("kind", "bench");
        jw.kv("name", name_);
        jw.kv("git", sim::buildGitDescribe());
        jw.beginObject("options");
        jw.kv("quick", quickMode());
        jw.endObject();
        // Host-throughput summary of every simulation this process
        // ran (sim::hostRunTotals). Wall-clock data: these two keys
        // are nondeterministic by design and ignored by both
        // tools/bench_compare.py (determinism gate) and the baseline
        // diff; tools/perf_compare.py reads *only* them.
        const sim::HostRunTotals host = sim::hostRunTotals();
        jw.beginArray("rows");
        for (const Row &row : rows_) {
            jw.beginObject();
            for (const Row::Cell &cell : row.cells_) {
                if (cell.isNumber)
                    jw.kv(cell.key, cell.num);
                else
                    jw.kv(cell.key, cell.str);
            }
            jw.kv("wall_ns_per_cycle", host.wallNsPerCycle());
            jw.kv("events_per_sec", host.eventsPerSec());
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
        std::cout << "wrote " << path_ << "\n";
        return true;
    }

  private:
    std::string name_;
    std::string path_;
    bool enabled_ = false;
    std::vector<Row> rows_;
};

} // namespace bench

#endif // BFGTS_BENCH_BENCH_UTIL_H
