/**
 * @file
 * Regenerates Section 5.3.2: the small-transaction similarity
 * accounting interval swept over {1, 10, 20} commits for BFGTS-HW.
 * The paper reports average improvement over PTS of 20% / 23% / 25%
 * respectively -- longer intervals save overhead on small
 * transactions with little accuracy loss.
 */

#include "bench_util.h"

int
main()
{
    const auto options = bench::defaultOptions();
    const std::vector<int> intervals{1, 10, 20};

    bench::banner("Section 5.3.2: small-transaction similarity "
                  "update interval (BFGTS-HW)");

    std::vector<std::string> headers{"Benchmark"};
    for (int interval : intervals)
        headers.push_back("every " + std::to_string(interval));
    headers.emplace_back("PTS");
    sim::TextTable table(headers);

    runner::BaselineCache baselines;
    // speedups[interval index][benchmark index]
    std::vector<std::vector<double>> speedups(intervals.size());
    std::vector<double> pts_speedups;

    const auto benchmarks = workloads::stampBenchmarkNames();
    for (const std::string &name : benchmarks) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            runner::RunOptions swept = options;
            swept.smallTxInterval = intervals[i];
            const runner::SimResults r =
                runner::runStamp(name, cm::CmKind::BfgtsHw, swept);
            const double speedup =
                base / static_cast<double>(r.runtime);
            speedups[i].push_back(speedup);
            row.push_back(sim::fmtDouble(speedup, 2));
        }
        const runner::SimResults pts =
            runner::runStamp(name, cm::CmKind::Pts, options);
        pts_speedups.push_back(base
                               / static_cast<double>(pts.runtime));
        row.push_back(sim::fmtDouble(pts_speedups.back(), 2));
        table.addRow(row);
    }

    std::vector<std::string> avg_row{"AVG vs PTS"};
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        std::vector<double> pcts;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            pcts.push_back(
                (speedups[i][b] / pts_speedups[b] - 1.0) * 100.0);
        }
        avg_row.push_back(sim::fmtDouble(bench::mean(pcts), 1) + "%");
    }
    avg_row.emplace_back("0.0%");
    table.addRow(avg_row);
    table.print(std::cout);
    return 0;
}
