/**
 * @file
 * Regenerates Section 5.3.2: the small-transaction similarity
 * accounting interval swept over {1, 10, 20} commits for BFGTS-HW.
 * The paper reports average improvement over PTS of 20% / 23% / 25%
 * respectively -- longer intervals save overhead on small
 * transactions with little accuracy loss.
 *
 * All cells (baselines, the interval grid, the PTS reference) run
 * through runner::SweepRunner (--jobs/--progress/--json,
 * BFGTS_SWEEP_CACHE; see bench_util.h).
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const std::vector<int> intervals{1, 10, 20};
    const auto benchmarks = workloads::stampBenchmarkNames();
    bench::JsonReporter reporter("interval_sweep", argc, argv);

    // Job matrix: baselines, then per benchmark the interval cells
    // followed by the PTS reference cell.
    std::vector<runner::SweepCell> cells;
    for (const std::string &name : benchmarks) {
        runner::SweepCell cell;
        cell.workload = name;
        cell.options = options;
        cell.baseline = true;
        cells.push_back(cell);
    }
    const std::size_t grid_offset = cells.size();
    const std::size_t per_benchmark = intervals.size() + 1;
    for (const std::string &name : benchmarks) {
        for (int interval : intervals) {
            runner::SweepCell cell;
            cell.workload = name;
            cell.cm = cm::CmKind::BfgtsHw;
            cell.options = options;
            cell.options.smallTxInterval = interval;
            cells.push_back(cell);
        }
        runner::SweepCell pts;
        pts.workload = name;
        pts.cm = cm::CmKind::Pts;
        pts.options = options;
        cells.push_back(pts);
    }

    runner::SweepRunner sweep(bench::sweepOptionsFromArgs(argc, argv));
    const auto results = sweep.run(cells);

    bench::banner("Section 5.3.2: small-transaction similarity "
                  "update interval (BFGTS-HW)");

    std::vector<std::string> headers{"Benchmark"};
    for (int interval : intervals)
        headers.push_back("every " + std::to_string(interval));
    headers.emplace_back("PTS");
    sim::TextTable table(headers);

    // speedups[interval index][benchmark index]
    std::vector<std::vector<double>> speedups(intervals.size());
    std::vector<double> pts_speedups;

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const double base = static_cast<double>(
            bench::sweepCellOrDie(results, b).runtime);
        const std::size_t row_offset =
            grid_offset + b * per_benchmark;
        std::vector<std::string> row{benchmarks[b]};
        auto &json_row =
            reporter.addRow().set("benchmark", benchmarks[b]);
        for (std::size_t i = 0; i < intervals.size(); ++i) {
            const runner::SimResults &r =
                bench::sweepCellOrDie(results, row_offset + i);
            const double speedup =
                base / static_cast<double>(r.runtime);
            speedups[i].push_back(speedup);
            row.push_back(sim::fmtDouble(speedup, 2));
            json_row.set("every" + std::to_string(intervals[i]),
                         speedup);
        }
        const runner::SimResults &pts = bench::sweepCellOrDie(
            results, row_offset + intervals.size());
        pts_speedups.push_back(base
                               / static_cast<double>(pts.runtime));
        row.push_back(sim::fmtDouble(pts_speedups.back(), 2));
        json_row.set("PTS", pts_speedups.back());
        table.addRow(row);
    }

    std::vector<std::string> avg_row{"AVG vs PTS"};
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        std::vector<double> pcts;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            pcts.push_back(
                (speedups[i][b] / pts_speedups[b] - 1.0) * 100.0);
        }
        avg_row.push_back(sim::fmtDouble(bench::mean(pcts), 1) + "%");
    }
    avg_row.emplace_back("0.0%");
    table.addRow(avg_row);
    table.print(std::cout);
    return reporter.write() ? 0 : 1;
}
