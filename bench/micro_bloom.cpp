/**
 * @file
 * google-benchmark microbenchmarks of the primitives on BFGTS's
 * critical paths: Bloom insert/query, popcount, the Eq. 2-4
 * estimators, signature comparison, and a full hardware-predictor
 * lookup. These measure *host* performance of the library (ns/op),
 * complementing the cycle-level cost model the simulator charges.
 */

#include <benchmark/benchmark.h>

#include "bloom/estimate.h"
#include "bloom/signature.h"
#include "cpu/predictor.h"
#include "sim/random.h"

namespace {

bloom::BloomConfig
configFor(std::uint64_t bits)
{
    return bloom::BloomConfig{.numBits = bits, .numHashes = 4,
                              .seed = 42};
}

void
BM_BloomInsert(benchmark::State &state)
{
    bloom::BloomFilter filter(
        configFor(static_cast<std::uint64_t>(state.range(0))));
    sim::Rng rng(1);
    std::uint64_t key = 0;
    for (auto _ : state) {
        filter.insert(key += 0x9e3779b97f4a7c15ULL);
        benchmark::DoNotOptimize(filter);
    }
}
BENCHMARK(BM_BloomInsert)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_BloomQuery(benchmark::State &state)
{
    bloom::BloomFilter filter(
        configFor(static_cast<std::uint64_t>(state.range(0))));
    sim::Rng rng(2);
    for (int i = 0; i < 64; ++i)
        filter.insert(rng.next());
    std::uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            filter.mayContain(key += 0x9e3779b97f4a7c15ULL));
    }
}
BENCHMARK(BM_BloomQuery)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_PopCount(benchmark::State &state)
{
    bloom::BloomFilter filter(
        configFor(static_cast<std::uint64_t>(state.range(0))));
    sim::Rng rng(3);
    for (int i = 0; i < 128; ++i)
        filter.insert(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(filter.popCount());
}
BENCHMARK(BM_PopCount)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_SetSizeEstimate(benchmark::State &state)
{
    bloom::BloomFilter filter(
        configFor(static_cast<std::uint64_t>(state.range(0))));
    sim::Rng rng(4);
    for (int i = 0; i < 64; ++i)
        filter.insert(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(bloom::estimateSetSize(filter));
}
BENCHMARK(BM_SetSizeEstimate)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_SimilarityEstimate(benchmark::State &state)
{
    const auto config =
        configFor(static_cast<std::uint64_t>(state.range(0)));
    bloom::BloomFilter a(config), b(config);
    sim::Rng rng(5);
    for (int i = 0; i < 32; ++i) {
        std::uint64_t key = rng.next();
        a.insert(key);
        b.insert(key);
    }
    for (int i = 0; i < 32; ++i) {
        a.insert(rng.next());
        b.insert(rng.next());
    }
    // The full commit-time pipeline: union + 3 popcounts + 3 logs.
    for (auto _ : state)
        benchmark::DoNotOptimize(bloom::similarity(a, b, 64.0));
}
BENCHMARK(BM_SimilarityEstimate)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_PerfectSignatureIntersection(benchmark::State &state)
{
    bloom::PerfectSignature a, b;
    sim::Rng rng(6);
    for (int i = 0; i < state.range(0); ++i) {
        a.insert(rng.next());
        b.insert(rng.next());
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.estimateIntersectionSize(b));
}
BENCHMARK(BM_PerfectSignatureIntersection)->Arg(16)->Arg(256);

void
BM_PartitionedBloomInsert(benchmark::State &state)
{
    bloom::BloomFilter filter(bloom::BloomConfig{
        .numBits = static_cast<std::uint64_t>(state.range(0)),
        .numHashes = 4,
        .seed = 42,
        .partitioned = true});
    std::uint64_t key = 0;
    for (auto _ : state) {
        filter.insert(key += 0x9e3779b97f4a7c15ULL);
        benchmark::DoNotOptimize(filter);
    }
}
BENCHMARK(BM_PartitionedBloomInsert)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_PredictorLookup(benchmark::State &state)
{
    htm::TxIdSpace ids(8, 64);
    cpu::PredictorSystem predictors(16, ids);
    for (int cpu = 1; cpu < 16; ++cpu)
        predictors.broadcastBegin(cpu, ids.make(cpu, cpu % 8));
    auto read_conf = [](htm::STxId, htm::STxId) -> std::uint32_t {
        return 10; // below threshold: full CPU-table walk
    };
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            predictors.predict(0, 3, read_conf, 50));
    }
}
BENCHMARK(BM_PredictorLookup);

void
BM_H3Hash(benchmark::State &state)
{
    bloom::H3HashFamily family(4, 2048, 7);
    std::uint64_t key = 0;
    for (auto _ : state) {
        key += 0x9e3779b97f4a7c15ULL;
        benchmark::DoNotOptimize(family.hash(0, key));
    }
}
BENCHMARK(BM_H3Hash);

} // namespace

BENCHMARK_MAIN();
