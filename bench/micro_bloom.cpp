/**
 * @file
 * Scalar-vs-SIMD microbenchmark of the Bloom signature kernels.
 *
 * Measures host ns/op for the operations on BFGTS's commit-time
 * critical path -- insert (set), union (orWords), intersection
 * popcount (andPopcount) and the full Eq. 3 intersection estimate --
 * once per SignatureOps implementation, across the paper's filter
 * sizes. The final row reports `sig_speedup`: the geometric mean of
 * scalar/simd time ratios over the word-level kernels (union,
 * intersect-popcount, estimate; insert is hash-bound and excluded).
 * CI gates `sig_speedup >= 3` via tools/perf_compare.py.
 *
 * With --json the rows land in a bfgts-obs-v1 "bench" document.
 * Timings are wall-clock and therefore nondeterministic by design;
 * this bench is deliberately NOT registered with the
 * tools/bench_compare.py determinism gate.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "bloom/estimate.h"
#include "bloom/signature_ops.h"
#include "sim/random.h"

namespace {

/** ns/op of @p body(): best of @p repeats timed loops of @p iters. */
template <typename Fn>
double
nsPerOp(int repeats, int iters, Fn &&body)
{
    double best = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            body();
        const auto stop = std::chrono::steady_clock::now();
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    stop - start)
                    .count())
            / iters;
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

/** Keep the optimizer from deleting a computed value. */
volatile std::uint64_t g_sink_u64;
volatile double g_sink_double;

struct OpTimes {
    double setNs = 0.0;
    double unionNs = 0.0;
    double intersectPopcountNs = 0.0;
    double estimateNs = 0.0;
};

/** Time every kernel for one (implementation, filter size) pair. */
OpTimes
measure(const bloom::SignatureOps &ops, bloom::SigImpl impl,
        std::uint64_t bits, int repeats, int iters)
{
    const bloom::BloomConfig config{.numBits = bits, .numHashes = 4,
                                    .seed = 42};
    bloom::BloomFilter a(config), b(config);
    sim::Rng rng(1);
    for (int i = 0; i < 64; ++i) {
        a.insert(rng.next());
        b.insert(rng.next());
    }
    const std::size_t n = a.words().size();
    std::vector<std::uint64_t> dst = a.words();

    OpTimes times;
    // Insert goes through the H3 family, not the word kernels; it is
    // reported for context but excluded from the speedup gate.
    bloom::setSignatureImpl(impl);
    bloom::BloomFilter target(config);
    std::uint64_t key = 0;
    times.setNs = nsPerOp(repeats, iters, [&] {
        target.insert(key += 0x9e3779b97f4a7c15ULL);
    });

    times.unionNs = nsPerOp(repeats, iters, [&] {
        ops.orWords(dst.data(), b.words().data(), n);
        g_sink_u64 = dst[0];
    });

    times.intersectPopcountNs = nsPerOp(repeats, iters, [&] {
        g_sink_u64 =
            ops.andPopcount(a.words().data(), b.words().data(), n);
    });

    // The full Eq. 3 pipeline as the simulator runs it: union
    // popcounts through the active seam, then three Eq. 2 logs.
    times.estimateNs = nsPerOp(repeats, iters, [&] {
        g_sink_double = bloom::estimateIntersectionSize(a, b);
    });
    return times;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json("micro_bloom", argc, argv);
    bench::banner("Bloom signature kernels: scalar vs "
                  + std::string(bloom::simdSignatureOps().name));

    const bloom::SigImpl saved = bloom::activeSignatureImpl();
    const int repeats = bench::quickMode() ? 3 : 7;
    const int iters = bench::quickMode() ? 20000 : 200000;
    const std::uint64_t kBitSizes[] = {512, 2048, 8192};

    std::printf("%-10s %6s %10s %10s %14s %12s\n", "impl", "bits",
                "set_ns", "union_ns", "intersect_ns", "estimate_ns");
    std::vector<double> ratios;
    for (const std::uint64_t bits : kBitSizes) {
        const OpTimes scalar =
            measure(bloom::scalarSignatureOps(),
                    bloom::SigImpl::Scalar, bits, repeats, iters);
        const OpTimes simd =
            measure(bloom::simdSignatureOps(), bloom::SigImpl::Simd,
                    bits, repeats, iters);
        for (const auto &[impl, times] :
             {std::pair<const char *, const OpTimes &>{"scalar",
                                                       scalar},
              {bloom::simdSignatureOps().name, simd}}) {
            std::printf("%-10s %6llu %10.2f %10.2f %14.2f %12.2f\n",
                        impl,
                        static_cast<unsigned long long>(bits),
                        times.setNs, times.unionNs,
                        times.intersectPopcountNs, times.estimateNs);
            json.addRow()
                .set("impl", impl)
                .set("bits", bits)
                .set("set_ns", times.setNs)
                .set("union_ns", times.unionNs)
                .set("intersect_popcount_ns",
                     times.intersectPopcountNs)
                .set("estimate_ns", times.estimateNs);
        }
        ratios.push_back(scalar.unionNs / simd.unionNs);
        ratios.push_back(scalar.intersectPopcountNs
                         / simd.intersectPopcountNs);
        ratios.push_back(scalar.estimateNs / simd.estimateNs);
    }
    bloom::setSignatureImpl(saved);

    const double speedup = bench::geomean(ratios);
    std::printf("\nsig_speedup (geomean over union/intersect/"
                "estimate): %.2fx\n",
                speedup);
    json.addRow().set("impl", "speedup").set("sig_speedup", speedup);
    if (!json.write())
        return 1;
    return 0;
}
