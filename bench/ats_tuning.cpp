/**
 * @file
 * Fixed vs dynamically-tuned ATS (the paper evaluates Yoo & Lee's
 * self-tuning software version). The hill-climbing threshold should
 * help where the fixed 0.5 is badly placed and be harmless elsewhere.
 */

#include "bench_util.h"

#include "runner/simulation.h"

int
main()
{
    const auto options = bench::defaultOptions();
    bench::banner("ATS: fixed vs dynamically tuned threshold");

    sim::TextTable table({"Benchmark", "fixed 0.5", "dynamic",
                          "final threshold"});
    runner::BaselineCache baselines;
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        const runner::SimResults fixed =
            runner::runStamp(name, cm::CmKind::Ats, options);

        runner::RunOptions tuned = options;
        tuned.tuning.ats.dynamicThreshold = true;
        tuned.tuning.ats.tuningWindow = 128;
        runner::SimConfig config =
            runner::makeConfig(name, cm::CmKind::Ats, tuned);
        runner::Simulation simulation(config);
        const runner::SimResults dynamic = simulation.run();
        const auto &manager =
            dynamic_cast<const cm::AtsManager &>(simulation.manager());

        table.addRow(
            {name,
             sim::fmtDouble(base / static_cast<double>(fixed.runtime),
                            2),
             sim::fmtDouble(
                 base / static_cast<double>(dynamic.runtime), 2),
             sim::fmtDouble(manager.threshold(), 2)});
    }
    table.print(std::cout);
    return 0;
}
