/**
 * @file
 * Regenerates Figure 6: speedup of BFGTS-HW (a) and
 * BFGTS-HW/Backoff (b) with Bloom filter sizes swept from 512 to
 * 8192 bits, on every STAMP benchmark.
 */

#include "bench_util.h"

namespace {

void
sweep(cm::CmKind kind, const char *title,
      runner::BaselineCache &baselines)
{
    const auto options = bench::defaultOptions();
    const std::vector<std::uint64_t> sizes{512, 1024, 2048, 4096,
                                           8192};

    std::vector<std::string> headers{"Benchmark"};
    for (std::uint64_t bits : sizes)
        headers.push_back(std::to_string(bits) + "bit");
    sim::TextTable table(headers);

    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        std::vector<std::string> row{name};
        for (std::uint64_t bits : sizes) {
            runner::RunOptions swept = options;
            swept.bloomBits = bits;
            const runner::SimResults r =
                runner::runStamp(name, kind, swept);
            row.push_back(sim::fmtDouble(
                base / static_cast<double>(r.runtime), 2));
        }
        table.addRow(row);
    }
    bench::banner(title);
    table.print(std::cout);
}

} // namespace

int
main()
{
    runner::BaselineCache baselines;
    sweep(cm::CmKind::BfgtsHw,
          "Figure 6(a): BFGTS-HW speedup vs Bloom filter size",
          baselines);
    sweep(cm::CmKind::BfgtsHwBackoff,
          "Figure 6(b): BFGTS-HW/Backoff speedup vs Bloom filter "
          "size",
          baselines);
    return 0;
}
