/**
 * @file
 * Regenerates Figure 6: speedup of BFGTS-HW (a) and
 * BFGTS-HW/Backoff (b) with Bloom filter sizes swept from 512 to
 * 8192 bits, on every STAMP benchmark.
 *
 * The whole (variant, benchmark, bits) matrix plus the baselines
 * runs through runner::SweepRunner (--jobs/--progress/--json,
 * BFGTS_SWEEP_CACHE; see bench_util.h).
 */

#include "bench_util.h"

namespace {

const std::vector<std::uint64_t> kSizes{512, 1024, 2048, 4096, 8192};

runner::SweepCell
sweptCell(const std::string &name, cm::CmKind kind,
          const runner::RunOptions &options, std::uint64_t bits)
{
    runner::SweepCell cell;
    cell.workload = name;
    cell.cm = kind;
    cell.options = options;
    cell.options.bloomBits = bits;
    return cell;
}

void
printSweep(const char *title, const char *variant,
           const std::vector<std::string> &benchmarks,
           const std::vector<runner::SweepCellResult> &results,
           std::size_t base_offset, std::size_t cell_offset,
           bench::JsonReporter &reporter)
{
    std::vector<std::string> headers{"Benchmark"};
    for (std::uint64_t bits : kSizes)
        headers.push_back(std::to_string(bits) + "bit");
    sim::TextTable table(headers);

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const double base = static_cast<double>(
            bench::sweepCellOrDie(results, base_offset + b).runtime);
        std::vector<std::string> row{benchmarks[b]};
        auto &json_row = reporter.addRow()
                             .set("variant", variant)
                             .set("benchmark", benchmarks[b]);
        for (std::size_t s = 0; s < kSizes.size(); ++s) {
            const runner::SimResults &r = bench::sweepCellOrDie(
                results, cell_offset + b * kSizes.size() + s);
            const double speedup =
                base / static_cast<double>(r.runtime);
            row.push_back(sim::fmtDouble(speedup, 2));
            json_row.set(std::to_string(kSizes[s]) + "bit", speedup);
        }
        table.addRow(row);
    }
    bench::banner(title);
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const auto benchmarks = workloads::stampBenchmarkNames();
    bench::JsonReporter reporter("fig6_bloom_sweep", argc, argv);

    // Job matrix: baselines, then the HW grid, then HW/Backoff.
    std::vector<runner::SweepCell> cells;
    for (const std::string &name : benchmarks) {
        runner::SweepCell cell;
        cell.workload = name;
        cell.options = options;
        cell.baseline = true;
        cells.push_back(cell);
    }
    const std::size_t hw_offset = cells.size();
    for (const std::string &name : benchmarks) {
        for (std::uint64_t bits : kSizes)
            cells.push_back(
                sweptCell(name, cm::CmKind::BfgtsHw, options, bits));
    }
    const std::size_t hwb_offset = cells.size();
    for (const std::string &name : benchmarks) {
        for (std::uint64_t bits : kSizes) {
            cells.push_back(sweptCell(
                name, cm::CmKind::BfgtsHwBackoff, options, bits));
        }
    }

    runner::SweepRunner sweep(bench::sweepOptionsFromArgs(argc, argv));
    const auto results = sweep.run(cells);

    printSweep("Figure 6(a): BFGTS-HW speedup vs Bloom filter size",
               "BFGTS-HW", benchmarks, results, 0, hw_offset,
               reporter);
    printSweep("Figure 6(b): BFGTS-HW/Backoff speedup vs Bloom "
               "filter size",
               "BFGTS-HW/Backoff", benchmarks, results, 0, hwb_offset,
               reporter);
    return reporter.write() ? 0 : 1;
}
