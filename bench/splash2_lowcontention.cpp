/**
 * @file
 * The paper's premise (Section 1): transactional SPLASH2-like codes
 * have small, infrequent transactions and almost no contention, so
 * reactive managers suffice and scheduler overhead is pure loss.
 * This bench runs the three SPLASH2-like workloads under every
 * paper manager: expect near-identical speedups with Backoff on top.
 */

#include "bench_util.h"

#include "runner/simulation.h"
#include "workloads/splash2.h"

namespace {

runner::SimResults
run(const std::string &name, cm::CmKind kind, int cpus, int tpc,
    int tx_override)
{
    runner::SimConfig config;
    config.cm = kind;
    config.numCpus = cpus;
    config.threadsPerCpu = tpc;
    config.txPerThreadOverride = tx_override;
    config.workloadFactory = [name](int threads) {
        return workloads::makeSplash2Workload(name, threads);
    };
    runner::Simulation simulation(config);
    return simulation.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const int tx_override = bench::quickMode() ? 20 : 0;
    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : cm::allCmKinds())
        headers.emplace_back(cm::cmKindName(kind));
    headers.emplace_back("Backoff cont");
    sim::TextTable table(headers);

    bench::banner("SPLASH2-like low-contention suite "
                  "(speedup over one core)");
    bench::JsonReporter reporter("splash2_lowcontention", argc, argv);

    for (const std::string &name :
         workloads::splash2BenchmarkNames()) {
        // Single-core baseline with the same total work.
        const auto base_tx =
            (tx_override
                 ? tx_override
                 : workloads::makeSplash2Workload(name, 1)
                       ->txPerThread())
            * 64;
        const runner::SimResults baseline =
            run(name, cm::CmKind::Backoff, 1, 1, base_tx);
        const double base = static_cast<double>(baseline.runtime);
        std::vector<std::string> row{name};
        double backoff_cont = 0.0;
        for (cm::CmKind kind : cm::allCmKinds()) {
            const runner::SimResults r =
                run(name, kind, 16, 4, tx_override);
            if (kind == cm::CmKind::Backoff)
                backoff_cont = r.contentionRate;
            const double speedup =
                base / static_cast<double>(r.runtime);
            reporter.addRow()
                .set("benchmark", name)
                .set("manager", cm::cmKindName(kind))
                .set("speedup", speedup)
                .set("runtime", r.runtime)
                .set("contentionRate", r.contentionRate);
            row.push_back(sim::fmtDouble(speedup, 2));
        }
        row.push_back(sim::fmtPercent(backoff_cont, 1));
        table.addRow(row);
    }
    table.print(std::cout);
    if (!reporter.write())
        return 1;
    return 0;
}
