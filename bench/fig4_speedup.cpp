/**
 * @file
 * Regenerates Figure 4: (a) speedup over one core for each contention
 * manager on each STAMP benchmark (16 CPUs, 64 threads), and
 * (b) percent improvement over PTS.
 *
 * Runs the whole (benchmark x manager) matrix plus the single-core
 * baselines through runner::SweepRunner: `--jobs N` parallelizes the
 * cells, `--progress` streams per-cell lines, BFGTS_SWEEP_CACHE
 * reuses cells across runs, and `--json` emits the usual bench rows.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const auto benchmarks = workloads::stampBenchmarkNames();
    const auto managers = cm::allCmKinds();
    bench::JsonReporter reporter("fig4_speedup", argc, argv);

    // Job matrix: one baseline cell per benchmark, then the full
    // (benchmark, manager) grid. Aggregation below is by job index,
    // so results are identical for any worker count.
    std::vector<runner::SweepCell> cells;
    for (const std::string &name : benchmarks) {
        runner::SweepCell cell;
        cell.workload = name;
        cell.options = options;
        cell.baseline = true;
        cells.push_back(cell);
    }
    for (const std::string &name : benchmarks) {
        for (cm::CmKind kind : managers) {
            runner::SweepCell cell;
            cell.workload = name;
            cell.cm = kind;
            cell.options = options;
            cells.push_back(cell);
        }
    }

    runner::SweepRunner sweep(bench::sweepOptionsFromArgs(argc, argv));
    const auto results = sweep.run(cells);
    const auto cellAt = [&](std::size_t b, std::size_t m) -> const
        runner::SimResults & {
            return bench::sweepCellOrDie(
                results, benchmarks.size() + b * managers.size() + m);
        };

    // Column headers: benchmark + one column per manager.
    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : managers)
        headers.emplace_back(cm::cmKindName(kind));
    sim::TextTable speedup_table(headers);
    sim::TextTable improvement_table(headers);

    // speedups[manager][benchmark]
    std::vector<std::vector<double>> speedups(
        managers.size(), std::vector<double>(benchmarks.size(), 0.0));

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const double base = static_cast<double>(
            bench::sweepCellOrDie(results, b).runtime);
        std::vector<std::string> row{benchmarks[b]};
        auto &json_row =
            reporter.addRow().set("benchmark", benchmarks[b]);
        for (std::size_t m = 0; m < managers.size(); ++m) {
            speedups[m][b] =
                base / static_cast<double>(cellAt(b, m).runtime);
            row.push_back(sim::fmtDouble(speedups[m][b], 2));
            json_row.set(cm::cmKindName(managers[m]), speedups[m][b]);
        }
        speedup_table.addRow(row);
    }

    // Average row.
    {
        std::vector<std::string> row{"AVG"};
        auto &json_row = reporter.addRow().set("benchmark", "AVG");
        for (std::size_t m = 0; m < managers.size(); ++m) {
            const double avg = bench::mean(speedups[m]);
            row.push_back(sim::fmtDouble(avg, 2));
            json_row.set(cm::cmKindName(managers[m]), avg);
        }
        speedup_table.addRow(row);
    }

    bench::banner("Figure 4(a): speedup over one core "
                  "(16 CPUs, 64 threads)");
    speedup_table.print(std::cout);

    // Figure 4(b): percent improvement over PTS.
    const std::size_t pts_index = 1; // allCmKinds() order
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b]};
        for (std::size_t m = 0; m < managers.size(); ++m) {
            const double pct = (speedups[m][b] / speedups[pts_index][b]
                                - 1.0)
                             * 100.0;
            row.push_back(sim::fmtDouble(pct, 1));
        }
        improvement_table.addRow(row);
    }
    {
        std::vector<std::string> row{"AVG"};
        for (std::size_t m = 0; m < managers.size(); ++m) {
            std::vector<double> pcts;
            for (std::size_t b = 0; b < benchmarks.size(); ++b) {
                pcts.push_back((speedups[m][b]
                                / speedups[pts_index][b]
                                - 1.0)
                               * 100.0);
            }
            row.push_back(sim::fmtDouble(bench::mean(pcts), 1));
        }
        improvement_table.addRow(row);
    }

    bench::banner("Figure 4(b): percent improvement over PTS");
    improvement_table.print(std::cout);
    return reporter.write() ? 0 : 1;
}
