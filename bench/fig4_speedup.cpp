/**
 * @file
 * Regenerates Figure 4: (a) speedup over one core for each contention
 * manager on each STAMP benchmark (16 CPUs, 64 threads), and
 * (b) percent improvement over PTS.
 */

#include "bench_util.h"

int
main()
{
    const auto options = bench::defaultOptions();
    const auto benchmarks = workloads::stampBenchmarkNames();
    const auto managers = cm::allCmKinds();

    // Column headers: benchmark + one column per manager.
    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : managers)
        headers.emplace_back(cm::cmKindName(kind));
    sim::TextTable speedup_table(headers);
    sim::TextTable improvement_table(headers);

    runner::BaselineCache baselines;
    // speedups[manager][benchmark]
    std::vector<std::vector<double>> speedups(
        managers.size(), std::vector<double>(benchmarks.size(), 0.0));

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        const double base = static_cast<double>(
            baselines.runtime(name, options));
        std::vector<std::string> row{name};
        for (std::size_t m = 0; m < managers.size(); ++m) {
            const runner::SimResults results =
                runner::runStamp(name, managers[m], options);
            speedups[m][b] =
                base / static_cast<double>(results.runtime);
            row.push_back(sim::fmtDouble(speedups[m][b], 2));
        }
        speedup_table.addRow(row);
    }

    // Average row.
    {
        std::vector<std::string> row{"AVG"};
        for (std::size_t m = 0; m < managers.size(); ++m)
            row.push_back(sim::fmtDouble(bench::mean(speedups[m]), 2));
        speedup_table.addRow(row);
    }

    bench::banner("Figure 4(a): speedup over one core "
                  "(16 CPUs, 64 threads)");
    speedup_table.print(std::cout);

    // Figure 4(b): percent improvement over PTS.
    const std::size_t pts_index = 1; // allCmKinds() order
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b]};
        for (std::size_t m = 0; m < managers.size(); ++m) {
            const double pct = (speedups[m][b] / speedups[pts_index][b]
                                - 1.0)
                             * 100.0;
            row.push_back(sim::fmtDouble(pct, 1));
        }
        improvement_table.addRow(row);
    }
    {
        std::vector<std::string> row{"AVG"};
        for (std::size_t m = 0; m < managers.size(); ++m) {
            std::vector<double> pcts;
            for (std::size_t b = 0; b < benchmarks.size(); ++b) {
                pcts.push_back((speedups[m][b]
                                / speedups[pts_index][b]
                                - 1.0)
                               * 100.0);
            }
            row.push_back(sim::fmtDouble(bench::mean(pcts), 1));
        }
        improvement_table.addRow(row);
    }

    bench::banner("Figure 4(b): percent improvement over PTS");
    improvement_table.print(std::cout);
    return 0;
}
