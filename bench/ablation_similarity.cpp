/**
 * @file
 * Ablation of the paper's core idea: similarity-weighted confidence
 * updates. BFGTS-HW is run (a) as published, with increments scaled
 * by incVal*sim and decay by decayVal*(1-sim), and (b) with the
 * similarity weighting disabled (fixed increments and decay at the
 * neutral similarity of 0.5), which reduces the learning rule to a
 * PTS-style fixed-step scheme over the compressed table.
 *
 * If the similarity metric carries real signal, variant (a) should
 * win on the benchmarks with mixed similarity profiles (Delaunay,
 * Intruder) where it serializes persistent conflicts harder and
 * forgives transient ones faster.
 */

#include "bench_util.h"

namespace {

/** Disable the similarity feedback (fixed steps at sim = 0.5). */
runner::RunOptions
withoutSimilarity(runner::RunOptions options)
{
    options.tuning.bfgts.similarityWeighting = false;
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();

    bench::banner("Ablation: similarity-weighted confidence updates "
                  "(BFGTS-HW)");
    bench::JsonReporter reporter("ablation_similarity", argc, argv);

    sim::TextTable table({"Benchmark", "with similarity",
                          "without similarity", "delta"});

    runner::BaselineCache baselines;
    std::vector<double> with_sim, without_sim;
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        const runner::SimResults on =
            runner::runStamp(name, cm::CmKind::BfgtsHw, options);
        const runner::SimResults off = runner::runStamp(
            name, cm::CmKind::BfgtsHw, withoutSimilarity(options));
        const double speedup_on =
            base / static_cast<double>(on.runtime);
        const double speedup_off =
            base / static_cast<double>(off.runtime);
        with_sim.push_back(speedup_on);
        without_sim.push_back(speedup_off);
        reporter.addRow()
            .set("benchmark", name)
            .set("speedupWith", speedup_on)
            .set("speedupWithout", speedup_off)
            .set("runtimeWith", on.runtime)
            .set("runtimeWithout", off.runtime)
            .set("abortsWith", on.aborts)
            .set("abortsWithout", off.aborts);
        table.addRow({name, sim::fmtDouble(speedup_on, 2),
                      sim::fmtDouble(speedup_off, 2),
                      sim::fmtDouble(
                          (speedup_on / speedup_off - 1.0) * 100.0,
                          1)
                          + "%"});
    }
    table.addRow({"AVG", sim::fmtDouble(bench::mean(with_sim), 2),
                  sim::fmtDouble(bench::mean(without_sim), 2),
                  sim::fmtDouble((bench::mean(with_sim)
                                      / bench::mean(without_sim)
                                  - 1.0)
                                     * 100.0,
                                 1)
                      + "%"});
    table.print(std::cout);
    if (!reporter.write())
        return 1;
    return 0;
}
