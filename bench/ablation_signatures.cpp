/**
 * @file
 * Ablation of the conflict-detection signatures. Table 2 notes the
 * paper uses a "perfect signature for conflict detection"; real
 * LogTM-SE-style hardware uses Bloom signatures whose false
 * positives manufacture conflicts out of thin air. This bench sweeps
 * the detection signature from 256 bits to exact on three
 * benchmarks, reporting speedup and the false-conflict count, under
 * both Backoff and BFGTS-HW.
 */

#include "bench_util.h"

#include "runner/simulation.h"

namespace {

runner::SimResults
runCell(const std::string &workload, cm::CmKind kind,
        std::uint64_t sig_bits, const runner::RunOptions &options)
{
    runner::SimConfig config =
        runner::makeConfig(workload, kind, options);
    if (sig_bits != 0) {
        config.conflict.detectionMode = htm::DetectionMode::Signature;
        config.conflict.signature.numBits = sig_bits;
    }
    runner::Simulation simulation(config);
    return simulation.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const std::vector<std::uint64_t> sizes{256, 512, 1024, 2048, 0};

    bench::banner("Ablation: conflict-detection signature size "
                  "(0 = perfect/exact, as in the paper)");
    bench::JsonReporter reporter("ablation_signatures", argc, argv);

    std::vector<std::string> headers{"Benchmark", "Manager"};
    for (std::uint64_t bits : sizes) {
        headers.push_back(bits == 0 ? std::string("exact")
                                    : std::to_string(bits) + "b");
    }
    sim::TextTable table(headers);

    runner::BaselineCache baselines;
    for (const std::string &name :
         {std::string("Genome"), std::string("Vacation"),
          std::string("Labyrinth")}) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        for (cm::CmKind kind :
             {cm::CmKind::Backoff, cm::CmKind::BfgtsHw}) {
            std::vector<std::string> row{name, cm::cmKindName(kind)};
            for (std::uint64_t bits : sizes) {
                const runner::SimResults r =
                    runCell(name, kind, bits, options);
                const double speedup =
                    base / static_cast<double>(r.runtime);
                reporter.addRow()
                    .set("benchmark", name)
                    .set("manager", cm::cmKindName(kind))
                    .set("signatureBits", bits)
                    .set("speedup", speedup)
                    .set("runtime", r.runtime)
                    .set("aborts", r.aborts);
                row.push_back(sim::fmtDouble(speedup, 2));
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nSmaller detection signatures alias more lines "
                 "and manufacture false conflicts;\nthe paper "
                 "sidesteps this by assuming perfect detection "
                 "signatures (Table 2).\n";
    if (!reporter.write())
        return 1;
    return 0;
}
