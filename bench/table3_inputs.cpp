/**
 * @file
 * Regenerates Table 3: the benchmark inputs. The paper lists STAMP
 * command lines; the equivalent here is each synthetic generator's
 * calibrated parameters, printed from the live presets.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    bench::banner("Table 3: benchmark parameters (live generator "
                  "presets; paper used STAMP inputs)");
    bench::JsonReporter reporter("table3_inputs", argc, argv);
    sim::TextTable table({"Benchmark", "Site", "Weight", "Accesses",
                          "Sim", "Work/acc", "NonTx", "Hot frac",
                          "Sticky pool", "Tx/thread"});
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        auto workload = workloads::makeStampWorkload(name, 64);
        const workloads::SyntheticParams &params = workload->params();
        for (std::size_t i = 0; i < params.sites.size(); ++i) {
            const workloads::SiteParams &site = params.sites[i];
            std::string hot_frac = "-";
            std::string pool = "-";
            if (!site.hotGroups.empty()) {
                hot_frac = sim::fmtDouble(site.hotGroups[0].frac, 2);
                pool = std::to_string(
                    site.hotGroups[0].stickyPoolLines);
            }
            reporter.addRow()
                .set("benchmark", name)
                .set("site", static_cast<std::uint64_t>(i))
                .set("weight", site.weight)
                .set("meanAccesses",
                     static_cast<std::uint64_t>(site.meanAccesses))
                .set("accessJitter",
                     static_cast<std::uint64_t>(site.accessJitter))
                .set("similarity", site.similarity)
                .set("workPerAccess",
                     static_cast<std::uint64_t>(site.workPerAccess))
                .set("nonTxWork",
                     static_cast<std::uint64_t>(site.nonTxWork))
                .set("txPerThread",
                     static_cast<std::uint64_t>(params.txPerThread));
            table.addRow(
                {i == 0 ? name : "", std::to_string(i),
                 sim::fmtDouble(site.weight, 1),
                 std::to_string(site.meanAccesses) + "+-"
                     + std::to_string(site.accessJitter),
                 sim::fmtDouble(site.similarity, 2),
                 std::to_string(site.workPerAccess),
                 std::to_string(site.nonTxWork), hot_frac, pool,
                 i == 0 ? std::to_string(params.txPerThread) : ""});
        }
    }
    table.print(std::cout);
    if (!reporter.write())
        return 1;
    return 0;
}
