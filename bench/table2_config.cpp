/**
 * @file
 * Regenerates Table 2: the simulated machine parameters, printed
 * from the live default configuration (so the table can never drift
 * from what the code actually models), alongside the paper's values.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    const runner::SimConfig config;
    bench::banner("Table 2: simulation parameters (live defaults)");
    bench::JsonReporter reporter("table2_config", argc, argv);
    sim::TextTable table({"Feature", "This simulator", "Paper"});
    table.addRow({"Processors",
                  std::to_string(config.numCpus)
                      + " one-IPC cores",
                  "16 one IPC Alpha cores @ 2GHz"});
    table.addRow({"Threads",
                  std::to_string(config.numThreads()) + " ("
                      + std::to_string(config.threadsPerCpu)
                      + " per CPU)",
                  "64 (4 per CPU, overcommitted)"});
    table.addRow(
        {"popcnt / fyl2x",
         std::to_string(config.tuning.bfgts.perWordCycle)
             + " cyc/word, "
             + std::to_string(config.tuning.bfgts.fyl2xCost) + " cyc",
         "2-cycle popcnt, 15-cycle fyl2x"});
    table.addRow({"L1 caches",
                  std::to_string(config.mem.l1.sizeBytes / 1024)
                      + "kB, "
                      + std::to_string(config.mem.l1.associativity)
                      + "-way, "
                      + std::to_string(config.mem.l1.hitLatency)
                      + " cycle",
                  "64kB, 2-way, 1 cycle, 64B lines"});
    table.addRow(
        {"Tx confidence cache",
         std::to_string(config.predictor.confCache.sizeBytes / 1024)
             + "kB, "
             + std::to_string(
                 config.predictor.confCache.associativity)
             + "-way, "
             + std::to_string(
                 config.predictor.confCache.hitLatency)
             + " cycle",
         "2kB, 16-way, 1 cycle"});
    table.addRow({"L2 cache",
                  std::to_string(config.mem.l2.sizeBytes
                                 / (1024 * 1024))
                      + "MB, "
                      + std::to_string(config.mem.l2.associativity)
                      + "-way, "
                      + std::to_string(config.mem.l2.hitLatency)
                      + " cycles",
                  "32MB, 16-way, 32 cycles"});
    table.addRow({"Main memory",
                  std::to_string(config.mem.memLatency) + " cycles",
                  "2048MB, 100 cycles"});
    table.addRow({"Interconnect",
                  "shared bus, "
                      + std::to_string(config.mem.busOccupancy)
                      + "-cycle occupancy",
                  "shared bus at 2GHz"});
    table.addRow({"Signature size",
                  std::to_string(config.tuning.bfgts.bloom.numBits)
                      + " bits (512-8192 swept); exact sets for "
                        "conflict detection",
                  "512-8192 bits; perfect for conflict detection"});
    table.addRow({"Contention managers",
                  "Backoff, PTS, ATS, BFGTS-SW/HW/HW-Backoff/"
                  "NoOverhead (+ Timestamp, Polka extras)",
                  "PTS, ATS, BFGTS-SW/HW/HW-Backoff/NoOverhead"});
    // One machine-readable row with the live default parameters, so
    // the baseline gate catches accidental Table 2 drift.
    reporter.addRow()
        .set("cpus", static_cast<std::uint64_t>(config.numCpus))
        .set("threads",
             static_cast<std::uint64_t>(config.numThreads()))
        .set("perWordCycle",
             static_cast<std::uint64_t>(
                 config.tuning.bfgts.perWordCycle))
        .set("fyl2xCost",
             static_cast<std::uint64_t>(config.tuning.bfgts.fyl2xCost))
        .set("l1Bytes",
             static_cast<std::uint64_t>(config.mem.l1.sizeBytes))
        .set("l1Assoc",
             static_cast<std::uint64_t>(config.mem.l1.associativity))
        .set("l1Hit",
             static_cast<std::uint64_t>(config.mem.l1.hitLatency))
        .set("confCacheBytes",
             static_cast<std::uint64_t>(
                 config.predictor.confCache.sizeBytes))
        .set("l2Bytes",
             static_cast<std::uint64_t>(config.mem.l2.sizeBytes))
        .set("l2Hit",
             static_cast<std::uint64_t>(config.mem.l2.hitLatency))
        .set("memLatency",
             static_cast<std::uint64_t>(config.mem.memLatency))
        .set("busOccupancy",
             static_cast<std::uint64_t>(config.mem.busOccupancy))
        .set("bloomBits",
             static_cast<std::uint64_t>(
                 config.tuning.bfgts.bloom.numBits));
    table.print(std::cout);
    if (!reporter.write())
        return 1;
    return 0;
}
