/**
 * @file
 * Tracing-overhead microbench: a fully-filtered sink must be free.
 *
 * Every emission site in the runner is guarded by wants(), so a sink
 * whose category mask is empty should cost one mask test per event
 * and nothing else -- no detail-string construction, no record
 * building. This bench runs the same simulation with tracing
 * disabled (no sink) and with a sink that filters every category,
 * and asserts the filtered run is within a small tolerance of the
 * disabled run (default 2%, override with BFGTS_TRACE_OVERHEAD_TOL,
 * e.g. =0.05 for noisy CI machines).
 *
 * Methodology: the two configurations alternate rep by rep and the
 * minimum wall time of each is compared, which discards scheduler
 * noise instead of averaging it in.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "runner/simulation.h"
#include "sim/trace.h"

namespace {

/** A sink that counts records it renders (should stay at zero). */
class CountingSink : public sim::TraceSink
{
  public:
    std::uint64_t rendered = 0;

  protected:
    void write(const sim::TraceRecord &) override { ++rendered; }
};

double
runOnce(const runner::SimConfig &config)
{
    runner::Simulation simulation(config);
    const auto t0 = std::chrono::steady_clock::now();
    simulation.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("micro: fully-filtered trace sink overhead");
    bench::JsonReporter json("micro_trace_overhead", argc, argv);

    runner::RunOptions options = bench::defaultOptions();
    // No quick-mode shrink here: this gate compares two wall times
    // against a small tolerance, and the fast sim core makes a 20-tx
    // rep too short to time reliably.
    options.txPerThread = 60;

    runner::SimConfig base =
        runner::makeConfig("Intruder", cm::CmKind::BfgtsHw, options);

    CountingSink filtered_sink;
    filtered_sink.enableOnly({});
    runner::SimConfig filtered = base;
    filtered.traceSink = &filtered_sink;

    double tolerance = 0.02;
    if (const char *env = std::getenv("BFGTS_TRACE_OVERHEAD_TOL"))
        tolerance = std::atof(env);

    // Warm-up run (page in code and workload data), then alternate.
    runOnce(base);
    // The fast sim core (SIMD signatures + flat tables) cut the
    // quick-mode rep to ~10ms, so min-of-3 no longer converges under
    // scheduler jitter; more reps keep the min a faithful floor.
    const int reps = bench::quickMode() ? 9 : 5;
    double min_off = 1e30;
    double min_filtered = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        min_off = std::min(min_off, runOnce(base));
        min_filtered = std::min(min_filtered, runOnce(filtered));
    }

    const double overhead = min_filtered / min_off - 1.0;
    std::printf("  tracing off      %8.1f ms\n", min_off * 1e3);
    std::printf("  filtered sink    %8.1f ms\n", min_filtered * 1e3);
    std::printf("  overhead         %+7.2f%%  (tolerance %.0f%%)\n",
                100.0 * overhead, 100.0 * tolerance);
    std::printf("  records rendered %llu (expect 0)\n",
                static_cast<unsigned long long>(
                    filtered_sink.rendered));

    json.addRow()
        .set("offSeconds", min_off)
        .set("filteredSeconds", min_filtered)
        .set("overhead", overhead)
        .set("tolerance", tolerance);
    if (!json.write())
        return 1;

    if (filtered_sink.rendered != 0) {
        std::printf("FAIL: filtered sink rendered records\n");
        return 1;
    }
    if (overhead > tolerance) {
        std::printf("FAIL: filtered-sink overhead above tolerance\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
