/**
 * @file
 * Profiler-overhead microbench: an unprofiled run must be free, and
 * a profiled run must not change results.
 *
 * The host-performance profiler hangs off SimConfig as a borrowed
 * pointer; every hook site (event queue, CM paths, predictor, OS
 * scheduler, workload, memory) null-checks it, so outside --profile
 * runs the whole subsystem reduces to one branch per site. This
 * bench prices that guarantee the same way micro_audit_overhead
 * prices the audit hooks: it runs the same simulation with no
 * profiler attached and with a profiler attached under a constant
 * fake clock -- hook sites dispatch into enter()/exit() and the byte
 * gauges but never touch the host clock, which is exactly the
 * structural cost the hooks can impose -- and asserts the dry run
 * stays within a small tolerance of the plain run (default 2%,
 * override with BFGTS_PROF_OVERHEAD_TOL, e.g. =0.10 for noisy CI).
 *
 * It also asserts the stronger observational-purity property: a run
 * profiled with the *real* clock produces bit-identical SimResults
 * to the unprofiled run (writeSweepResults serialization compared).
 *
 * Methodology: the two configurations alternate rep by rep and the
 * minimum wall time of each is compared, which discards scheduler
 * noise instead of averaging it in.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "runner/simulation.h"
#include "runner/sweep.h"
#include "sim/profiler.h"

namespace {

/** Constant fake clock: hook dispatch without host-clock reads. */
std::uint64_t
fakeClock()
{
    return 42;
}

double
runOnce(const runner::SimConfig &config)
{
    runner::Simulation simulation(config);
    const auto t0 = std::chrono::steady_clock::now();
    simulation.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

std::string
resultsString(const runner::SimConfig &config)
{
    runner::Simulation simulation(config);
    std::ostringstream os;
    runner::writeSweepResults(os, simulation.run());
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("micro: disabled-profiler hook overhead");
    bench::JsonReporter json("micro_prof_overhead", argc, argv);

    runner::RunOptions options = bench::defaultOptions();
    // No quick-mode shrink here: this gate compares two wall times
    // against a small tolerance, and the fast sim core makes a 20-tx
    // rep too short to time reliably.
    options.txPerThread = 60;

    runner::SimConfig off =
        runner::makeConfig("Intruder", cm::CmKind::BfgtsHw, options);

    // Profiler attached but dry: hooks dispatch, no clock syscalls.
    sim::Profiler dry_profiler(&fakeClock);
    runner::SimConfig dry = off;
    dry.profiler = &dry_profiler;

    double tolerance = 0.02;
    if (const char *env = std::getenv("BFGTS_PROF_OVERHEAD_TOL"))
        tolerance = std::atof(env);

    // Observational purity first: real-clock profiling must not
    // change a single results field.
    sim::Profiler real_profiler;
    runner::SimConfig profiled = off;
    profiled.profiler = &real_profiler;
    if (resultsString(off) != resultsString(profiled)) {
        std::printf(
            "FAIL: profiled run changed deterministic results\n");
        return 1;
    }

    // Warm-up run (page in code and workload data), then alternate.
    runOnce(off);
    // The fast sim core (SIMD signatures + flat tables) cut the
    // quick-mode rep to ~10ms, so min-of-3 no longer converges under
    // scheduler jitter; more reps keep the min a faithful floor.
    const int reps = bench::quickMode() ? 9 : 5;
    double min_off = 1e30;
    double min_dry = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        min_off = std::min(min_off, runOnce(off));
        min_dry = std::min(min_dry, runOnce(dry));
    }

    const double overhead = min_dry / min_off - 1.0;
    std::printf("  profiler off     %8.1f ms\n", min_off * 1e3);
    std::printf("  dry-clock hooks  %8.1f ms\n", min_dry * 1e3);
    std::printf("  overhead         %+7.2f%%  (tolerance %.0f%%)\n",
                100.0 * overhead, 100.0 * tolerance);

    json.addRow()
        .set("offSeconds", min_off)
        .set("drySeconds", min_dry)
        .set("overhead", overhead)
        .set("tolerance", tolerance);
    if (!json.write())
        return 1;

    if (overhead > tolerance) {
        std::printf(
            "FAIL: disabled-profiler overhead above tolerance\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
