/**
 * @file
 * Audit-overhead microbench: disabled checking must be free.
 *
 * The audit engine is compiled unconditionally; every hook site in
 * the runner and the subsystems is guarded so that outside --audit
 * runs it reduces to one branch. This bench prices that guarantee: it
 * runs the same simulation with auditing off (no engine attached)
 * and with an engine attached in dry-run mode -- hook sites dispatch
 * into the engine but every checker body is skipped, which is
 * exactly the residual cost the hooks can ever impose on an
 * unaudited run -- and asserts the dry run stays within a small
 * tolerance of the plain run (default 2%, override with
 * BFGTS_AUDIT_OVERHEAD_TOL, e.g. =0.05 for noisy CI machines).
 *
 * Methodology: the two configurations alternate rep by rep and the
 * minimum wall time of each is compared, which discards scheduler
 * noise instead of averaging it in.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "runner/simulation.h"
#include "sim/audit.h"

namespace {

double
runOnce(const runner::SimConfig &config)
{
    runner::Simulation simulation(config);
    const auto t0 = std::chrono::steady_clock::now();
    simulation.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("micro: disabled-audit hook overhead");
    bench::JsonReporter json("micro_audit_overhead", argc, argv);

    runner::RunOptions options = bench::defaultOptions();
    // No quick-mode shrink here: this gate compares two wall times
    // against a small tolerance, and the fast sim core makes a 20-tx
    // rep too short to time reliably.
    options.txPerThread = 60;

    runner::SimConfig off =
        runner::makeConfig("Intruder", cm::CmKind::BfgtsHw, options);
    off.audit = false;

    // Engine attached but dry: hook dispatch only, no checker bodies.
    sim::AuditEngine dry_engine;
    dry_engine.setDryRun(true);
    runner::SimConfig dry = off;
    dry.audit = true;
    dry.auditEngine = &dry_engine;

    double tolerance = 0.02;
    if (const char *env = std::getenv("BFGTS_AUDIT_OVERHEAD_TOL"))
        tolerance = std::atof(env);

    // Warm-up run (page in code and workload data), then alternate.
    runOnce(off);
    // The fast sim core (SIMD signatures + flat tables) cut the
    // quick-mode rep to ~10ms, so min-of-3 no longer converges under
    // scheduler jitter; more reps keep the min a faithful floor.
    const int reps = bench::quickMode() ? 9 : 5;
    double min_off = 1e30;
    double min_dry = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        min_off = std::min(min_off, runOnce(off));
        min_dry = std::min(min_dry, runOnce(dry));
    }

    const double overhead = min_dry / min_off - 1.0;
    std::printf("  audit off        %8.1f ms\n", min_off * 1e3);
    std::printf("  dry-run hooks    %8.1f ms\n", min_dry * 1e3);
    std::printf("  overhead         %+7.2f%%  (tolerance %.0f%%)\n",
                100.0 * overhead, 100.0 * tolerance);

    json.addRow()
        .set("offSeconds", min_off)
        .set("drySeconds", min_dry)
        .set("overhead", overhead)
        .set("tolerance", tolerance);
    if (!json.write())
        return 1;

    if (overhead > tolerance) {
        std::printf("FAIL: disabled-audit overhead above tolerance\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
