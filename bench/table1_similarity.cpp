/**
 * @file
 * Regenerates Table 1: the observed conflict graph and measured
 * per-site similarity of each STAMP benchmark, collected under the
 * Backoff manager exactly as the paper's motivation section does.
 * Paper target values are printed alongside for comparison.
 */

#include <sstream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("table1_similarity", argc, argv);
    const auto options = bench::defaultOptions();
    bench::banner("Table 1: conflict graph and per-site similarity "
                  "(measured | paper)");

    sim::TextTable table({"Benchmark", "Tx", "Conflicts (measured)",
                          "Conflicts (paper)", "Sim (measured)",
                          "Sim (paper)"});

    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const runner::SimResults results =
            runner::runStamp(name, cm::CmKind::Backoff, options);
        const workloads::StampTargets targets =
            workloads::stampTargets(name);

        const int sites =
            static_cast<int>(results.similarityPerSite.size());
        for (int site = 0; site < sites; ++site) {
            std::ostringstream measured;
            std::ostringstream paper;
            for (int other = 0; other < sites; ++other) {
                const auto edge = std::make_pair(
                    std::min(site, other), std::max(site, other));
                if (results.conflictGraph.count(edge))
                    measured << other << ' ';
                if (targets.conflictEdges.count(edge))
                    paper << other << ' ';
            }
            reporter.addRow()
                .set("benchmark", name)
                .set("sTx", static_cast<double>(site))
                .set("conflictsMeasured", measured.str())
                .set("conflictsPaper", paper.str())
                .set("similarityMeasured",
                     results.similarityPerSite
                         [static_cast<std::size_t>(site)])
                .set("similarityPaper",
                     targets.similarity
                         [static_cast<std::size_t>(site)]);
            table.addRow(
                {site == 0 ? name : "", std::to_string(site),
                 measured.str(), paper.str(),
                 sim::fmtDouble(results.similarityPerSite
                                    [static_cast<std::size_t>(site)],
                                2),
                 sim::fmtDouble(targets.similarity
                                    [static_cast<std::size_t>(site)],
                                2)});
        }
    }
    table.print(std::cout);
    if (!reporter.write())
        return 1;
    return 0;
}
