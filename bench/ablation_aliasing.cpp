/**
 * @file
 * The paper's future-work feature: aliasing the prediction
 * structures. BFGTS-HW runs with the confidence table capped at
 * 1..N slots (sTxIDs alias via modulo); the sweep shows how much
 * prediction quality the compression costs per benchmark. With one
 * slot, every site shares one confidence value -- BFGTS degenerates
 * toward ATS-style global throttling.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const std::vector<int> slot_counts{1, 2, 3, 0}; // 0 = exact

    bench::banner("Ablation: confidence-table aliasing (BFGTS-HW "
                  "speedup by slot count)");
    bench::JsonReporter reporter("ablation_aliasing", argc, argv);

    std::vector<std::string> headers{"Benchmark"};
    for (int slots : slot_counts) {
        headers.push_back(slots == 0 ? std::string("exact")
                                     : std::to_string(slots)
                                           + " slot(s)");
    }
    headers.emplace_back("sites");
    sim::TextTable table(headers);

    runner::BaselineCache baselines;
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        std::vector<std::string> row{name};
        for (int slots : slot_counts) {
            runner::RunOptions swept = options;
            swept.tuning.bfgts.confTableSlots = slots;
            const runner::SimResults r =
                runner::runStamp(name, cm::CmKind::BfgtsHw, swept);
            const double speedup =
                base / static_cast<double>(r.runtime);
            reporter.addRow()
                .set("benchmark", name)
                .set("slots", static_cast<std::uint64_t>(slots))
                .set("speedup", speedup)
                .set("runtime", r.runtime)
                .set("aborts", r.aborts);
            row.push_back(sim::fmtDouble(speedup, 2));
        }
        row.push_back(std::to_string(
            workloads::makeStampWorkload(name, 1)->numStaticTx()));
        table.addRow(row);
    }
    table.print(std::cout);
    if (!reporter.write())
        return 1;
    return 0;
}
