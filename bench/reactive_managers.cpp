/**
 * @file
 * Extra baseline comparison (paper Section 2 context): the classic
 * reactive managers -- Backoff, Timestamp, Polka -- against BFGTS-HW
 * across the STAMP suite. Reactive managers pick victims after
 * conflicts happen; the table shows where heuristic victim selection
 * helps over plain backoff, and where only proactive scheduling does.
 *
 * Baselines and the (benchmark, manager) grid run through
 * runner::SweepRunner (--jobs/--progress/--json, BFGTS_SWEEP_CACHE;
 * see bench_util.h).
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const std::vector<cm::CmKind> managers{
        cm::CmKind::Backoff, cm::CmKind::Timestamp, cm::CmKind::Polka,
        cm::CmKind::BfgtsHw};
    const auto benchmarks = workloads::stampBenchmarkNames();
    bench::JsonReporter reporter("reactive_managers", argc, argv);

    std::vector<runner::SweepCell> cells;
    for (const std::string &name : benchmarks) {
        runner::SweepCell cell;
        cell.workload = name;
        cell.options = options;
        cell.baseline = true;
        cells.push_back(cell);
    }
    for (const std::string &name : benchmarks) {
        for (cm::CmKind kind : managers) {
            runner::SweepCell cell;
            cell.workload = name;
            cell.cm = kind;
            cell.options = options;
            cells.push_back(cell);
        }
    }

    runner::SweepRunner sweep(bench::sweepOptionsFromArgs(argc, argv));
    const auto results = sweep.run(cells);

    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : managers) {
        headers.emplace_back(std::string(cm::cmKindName(kind))
                             + " speedup");
        headers.emplace_back(std::string(cm::cmKindName(kind))
                             + " cont");
    }
    sim::TextTable table(headers);

    bench::banner("Reactive contention managers vs BFGTS-HW");
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const double base = static_cast<double>(
            bench::sweepCellOrDie(results, b).runtime);
        std::vector<std::string> row{benchmarks[b]};
        auto &json_row =
            reporter.addRow().set("benchmark", benchmarks[b]);
        for (std::size_t m = 0; m < managers.size(); ++m) {
            const runner::SimResults &r = bench::sweepCellOrDie(
                results,
                benchmarks.size() + b * managers.size() + m);
            const double speedup =
                base / static_cast<double>(r.runtime);
            row.push_back(sim::fmtDouble(speedup, 2));
            row.push_back(sim::fmtPercent(r.contentionRate, 1));
            const std::string name = cm::cmKindName(managers[m]);
            json_row.set(name + " speedup", speedup);
            json_row.set(name + " cont", r.contentionRate);
        }
        table.addRow(row);
    }
    table.print(std::cout);
    return reporter.write() ? 0 : 1;
}
