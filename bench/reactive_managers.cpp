/**
 * @file
 * Extra baseline comparison (paper Section 2 context): the classic
 * reactive managers -- Backoff, Timestamp, Polka -- against BFGTS-HW
 * across the STAMP suite. Reactive managers pick victims after
 * conflicts happen; the table shows where heuristic victim selection
 * helps over plain backoff, and where only proactive scheduling does.
 */

#include "bench_util.h"

int
main()
{
    const auto options = bench::defaultOptions();
    const std::vector<cm::CmKind> managers{
        cm::CmKind::Backoff, cm::CmKind::Timestamp, cm::CmKind::Polka,
        cm::CmKind::BfgtsHw};

    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : managers) {
        headers.emplace_back(std::string(cm::cmKindName(kind))
                             + " speedup");
        headers.emplace_back(std::string(cm::cmKindName(kind))
                             + " cont");
    }
    sim::TextTable table(headers);

    bench::banner("Reactive contention managers vs BFGTS-HW");
    runner::BaselineCache baselines;
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        std::vector<std::string> row{name};
        for (cm::CmKind kind : managers) {
            const runner::SimResults r =
                runner::runStamp(name, kind, options);
            row.push_back(sim::fmtDouble(
                base / static_cast<double>(r.runtime), 2));
            row.push_back(sim::fmtPercent(r.contentionRate, 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
