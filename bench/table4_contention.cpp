/**
 * @file
 * Regenerates Table 4: contention rates (aborted / total transaction
 * attempts) for every benchmark under every contention manager on
 * the 16-processor system. The paper's Backoff column is printed for
 * reference (the calibration target of the synthetic workloads).
 *
 * The (benchmark, manager) matrix runs through runner::SweepRunner
 * (--jobs/--progress/--json, BFGTS_SWEEP_CACHE; see bench_util.h).
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    const auto options = bench::defaultOptions();
    const auto managers = cm::allCmKinds();
    const auto benchmarks = workloads::stampBenchmarkNames();
    bench::JsonReporter reporter("table4_contention", argc, argv);

    std::vector<runner::SweepCell> cells;
    for (const std::string &name : benchmarks) {
        for (cm::CmKind kind : managers) {
            runner::SweepCell cell;
            cell.workload = name;
            cell.cm = kind;
            cell.options = options;
            cells.push_back(cell);
        }
    }

    runner::SweepRunner sweep(bench::sweepOptionsFromArgs(argc, argv));
    const auto results = sweep.run(cells);

    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : managers)
        headers.emplace_back(cm::cmKindName(kind));
    headers.emplace_back("paper Backoff");
    sim::TextTable table(headers);

    bench::banner("Table 4: contention rates (16 CPUs, 64 threads)");

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b]};
        auto &json_row =
            reporter.addRow().set("benchmark", benchmarks[b]);
        for (std::size_t m = 0; m < managers.size(); ++m) {
            const runner::SimResults &r = bench::sweepCellOrDie(
                results, b * managers.size() + m);
            row.push_back(sim::fmtPercent(r.contentionRate, 1));
            json_row.set(cm::cmKindName(managers[m]),
                         r.contentionRate);
        }
        row.push_back(sim::fmtPercent(
            workloads::stampTargets(benchmarks[b]).backoffContention,
            1));
        table.addRow(row);
    }
    table.print(std::cout);
    return reporter.write() ? 0 : 1;
}
