/**
 * @file
 * Regenerates Table 4: contention rates (aborted / total transaction
 * attempts) for every benchmark under every contention manager on
 * the 16-processor system. The paper's Backoff column is printed for
 * reference (the calibration target of the synthetic workloads).
 */

#include "bench_util.h"

int
main()
{
    const auto options = bench::defaultOptions();
    const auto managers = cm::allCmKinds();

    std::vector<std::string> headers{"Benchmark"};
    for (cm::CmKind kind : managers)
        headers.emplace_back(cm::cmKindName(kind));
    headers.emplace_back("paper Backoff");
    sim::TextTable table(headers);

    bench::banner("Table 4: contention rates (16 CPUs, 64 threads)");

    for (const std::string &name : workloads::stampBenchmarkNames()) {
        std::vector<std::string> row{name};
        for (cm::CmKind kind : managers) {
            const runner::SimResults results =
                runner::runStamp(name, kind, options);
            row.push_back(sim::fmtPercent(results.contentionRate, 1));
        }
        row.push_back(sim::fmtPercent(
            workloads::stampTargets(name).backoffContention, 1));
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
