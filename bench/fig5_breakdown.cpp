/**
 * @file
 * Regenerates Figure 5: the execution-time breakdown (non-
 * transactional / kernel / transactional / abort / scheduling) for
 * PTS, ATS, BFGTS-SW, BFGTS-HW and BFGTS-HW/Backoff on every STAMP
 * benchmark. The paper plots runtime normalized to one processor;
 * here each bar is printed as the share of total machine cycles in
 * each category plus the runtime normalized to the single-core
 * baseline.
 */

#include "bench_util.h"

int
main()
{
    const auto options = bench::defaultOptions();
    const std::vector<cm::CmKind> managers{
        cm::CmKind::Pts, cm::CmKind::Ats, cm::CmKind::BfgtsSw,
        cm::CmKind::BfgtsHw, cm::CmKind::BfgtsHwBackoff};

    bench::banner("Figure 5: execution time breakdown "
                  "(16 CPUs, 64 threads)");

    sim::TextTable table({"Benchmark", "Manager", "NonTx", "Kernel",
                          "Transactional", "Abort", "Scheduling",
                          "Idle", "NormRuntime"});

    runner::BaselineCache baselines;
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        bool first = true;
        for (cm::CmKind kind : managers) {
            const runner::SimResults r =
                runner::runStamp(name, kind, options);
            const runner::Breakdown &b = r.breakdown;
            table.addRow(
                {first ? name : "", cm::cmKindName(kind),
                 sim::fmtPercent(b.frac(b.nonTx), 1),
                 sim::fmtPercent(b.frac(b.kernel), 1),
                 sim::fmtPercent(b.frac(b.tx), 1),
                 sim::fmtPercent(b.frac(b.aborted), 1),
                 sim::fmtPercent(b.frac(b.sched), 1),
                 sim::fmtPercent(b.frac(b.idle), 1),
                 sim::fmtDouble(
                     static_cast<double>(r.runtime) / base * 16.0,
                     2)});
            first = false;
        }
    }
    table.print(std::cout);
    std::cout << "\nNormRuntime = parallel runtime / single-core "
                 "runtime x 16 (lower is better; 1.0 = perfect "
                 "16-way scaling).\n";
    return 0;
}
