/**
 * @file
 * Regenerates Figure 5: the execution-time breakdown (non-
 * transactional / kernel / transactional / abort / scheduling) for
 * PTS, ATS, BFGTS-SW, BFGTS-HW and BFGTS-HW/Backoff on every STAMP
 * benchmark. The paper plots runtime normalized to one processor;
 * here each bar is printed as the share of total machine cycles in
 * each category plus the runtime normalized to the single-core
 * baseline.
 */

#include "bench_util.h"

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("fig5_breakdown", argc, argv);
    const auto options = bench::defaultOptions();
    const std::vector<cm::CmKind> managers{
        cm::CmKind::Pts, cm::CmKind::Ats, cm::CmKind::BfgtsSw,
        cm::CmKind::BfgtsHw, cm::CmKind::BfgtsHwBackoff};

    bench::banner("Figure 5: execution time breakdown "
                  "(16 CPUs, 64 threads)");

    sim::TextTable table({"Benchmark", "Manager", "NonTx", "Kernel",
                          "Transactional", "Abort", "Scheduling",
                          "Idle", "NormRuntime"});

    runner::BaselineCache baselines;
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        const double base =
            static_cast<double>(baselines.runtime(name, options));
        bool first = true;
        for (cm::CmKind kind : managers) {
            const runner::SimResults r =
                runner::runStamp(name, kind, options);
            const runner::Breakdown &b = r.breakdown;
            const double norm =
                static_cast<double>(r.runtime) / base * 16.0;
            reporter.addRow()
                .set("benchmark", name)
                .set("manager", cm::cmKindName(kind))
                .set("nonTxFrac", b.frac(b.nonTx))
                .set("kernelFrac", b.frac(b.kernel))
                .set("txFrac", b.frac(b.tx))
                .set("abortedFrac", b.frac(b.aborted))
                .set("schedFrac", b.frac(b.sched))
                .set("idleFrac", b.frac(b.idle))
                .set("normRuntime", norm);
            table.addRow(
                {first ? name : "", cm::cmKindName(kind),
                 sim::fmtPercent(b.frac(b.nonTx), 1),
                 sim::fmtPercent(b.frac(b.kernel), 1),
                 sim::fmtPercent(b.frac(b.tx), 1),
                 sim::fmtPercent(b.frac(b.aborted), 1),
                 sim::fmtPercent(b.frac(b.sched), 1),
                 sim::fmtPercent(b.frac(b.idle), 1),
                 sim::fmtDouble(norm, 2)});
            first = false;
        }
    }
    table.print(std::cout);
    std::cout << "\nNormRuntime = parallel runtime / single-core "
                 "runtime x 16 (lower is better; 1.0 = perfect "
                 "16-way scaling).\n";
    if (!reporter.write())
        return 1;
    return 0;
}
