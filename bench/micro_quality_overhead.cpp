/**
 * @file
 * Quality-recorder overhead microbench: a run without --quality must
 * be free, and a recorded run must not change results.
 *
 * The decision-quality recorder hangs off SimConfig as a borrowed
 * pointer; every hook site (BFGTS commit-time estimation, begin
 * classification in the runner, abort attribution) null-checks it,
 * so outside --quality runs the whole subsystem reduces to one
 * branch per site. This bench prices that guarantee the same way
 * micro_prof_overhead prices the profiler hooks: it runs the same
 * simulation with no recorder and with a recorder attached -- the
 * attached run does the real work (exact-set copies, two-pointer
 * intersections, ledger updates), but those fire per transaction
 * event, not per cycle, so even the enabled cost must stay within a
 * small tolerance of the plain run (default 5%, override with
 * BFGTS_QUALITY_OVERHEAD_TOL, e.g. =0.15 for noisy CI).
 *
 * It also asserts the observational-purity property: a recorded run
 * produces bit-identical SimResults to the unrecorded run
 * (writeSweepResults serialization compared), and byte-identical
 * quality reports across two runs (the report itself is
 * deterministic, unlike the profiler's).
 *
 * Methodology: the two configurations alternate rep by rep and the
 * minimum wall time of each is compared, which discards scheduler
 * noise instead of averaging it in.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "runner/simulation.h"
#include "runner/sweep.h"
#include "sim/quality.h"

namespace {

double
runOnce(const runner::SimConfig &config)
{
    // A fresh recorder per rep when one is configured, so reps don't
    // accumulate into each other's ledgers.
    sim::QualityRecorder recorder;
    runner::SimConfig run_config = config;
    if (run_config.quality != nullptr)
        run_config.quality = &recorder;
    runner::Simulation simulation(run_config);
    const auto t0 = std::chrono::steady_clock::now();
    simulation.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

std::string
resultsString(const runner::SimConfig &config)
{
    runner::Simulation simulation(config);
    std::ostringstream os;
    runner::writeSweepResults(os, simulation.run());
    return os.str();
}

std::string
qualityReport(const runner::SimConfig &config)
{
    sim::QualityRecorder recorder;
    runner::SimConfig recorded = config;
    recorded.quality = &recorder;
    runner::Simulation simulation(recorded);
    simulation.run();
    std::ostringstream os;
    sim::writeQualReport(os, "micro_quality_overhead",
                         recorder.data());
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("micro: quality-recorder hook overhead");
    bench::JsonReporter json("micro_quality_overhead", argc, argv);

    runner::RunOptions options = bench::defaultOptions();
    // No quick-mode shrink here: this gate compares two wall times
    // against a small tolerance, and the fast sim core makes a 20-tx
    // rep too short to time reliably.
    options.txPerThread = 60;

    runner::SimConfig off =
        runner::makeConfig("Intruder", cm::CmKind::BfgtsHw, options);

    // Marker config: runOnce swaps in a fresh recorder per rep.
    sim::QualityRecorder marker;
    runner::SimConfig recorded = off;
    recorded.quality = &marker;

    double tolerance = 0.05;
    if (const char *env = std::getenv("BFGTS_QUALITY_OVERHEAD_TOL"))
        tolerance = std::atof(env);

    // Observational purity first: recording must not change a single
    // results field, and the quality report must be deterministic.
    {
        sim::QualityRecorder purity_recorder;
        runner::SimConfig purity = off;
        purity.quality = &purity_recorder;
        if (resultsString(off) != resultsString(purity)) {
            std::printf(
                "FAIL: recorded run changed deterministic results\n");
            return 1;
        }
    }
    if (qualityReport(off) != qualityReport(off)) {
        std::printf(
            "FAIL: quality report differs across equal runs\n");
        return 1;
    }

    // Warm-up run (page in code and workload data), then alternate.
    runOnce(off);
    // The fast sim core (SIMD signatures + flat tables) cut the
    // quick-mode rep to ~10ms, so min-of-3 no longer converges under
    // scheduler jitter; more reps keep the min a faithful floor.
    const int reps = bench::quickMode() ? 9 : 5;
    double min_off = 1e30;
    double min_on = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        min_off = std::min(min_off, runOnce(off));
        min_on = std::min(min_on, runOnce(recorded));
    }

    const double overhead = min_on / min_off - 1.0;
    std::printf("  quality off      %8.1f ms\n", min_off * 1e3);
    std::printf("  recorder on      %8.1f ms\n", min_on * 1e3);
    std::printf("  overhead         %+7.2f%%  (tolerance %.0f%%)\n",
                100.0 * overhead, 100.0 * tolerance);

    json.addRow()
        .set("offSeconds", min_off)
        .set("onSeconds", min_on)
        .set("overhead", overhead)
        .set("tolerance", tolerance);
    if (!json.write())
        return 1;

    if (overhead > tolerance) {
        std::printf(
            "FAIL: quality-recorder overhead above tolerance\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
