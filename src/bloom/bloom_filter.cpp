#include "bloom_filter.h"

#include <bit>

#include "sim/logging.h"

namespace bloom {

BloomFilter::BloomFilter(const BloomConfig &config)
    : config_(config),
      hashes_(config.numHashes,
              config.partitioned ? config.numBits
                                       / static_cast<std::uint64_t>(
                                           config.numHashes)
                                 : config.numBits,
              config.seed),
      words_((config.numBits + 63) / 64, 0)
{
    sim_assert(config.numBits >= 64);
    sim_assert(config.numHashes >= 1);
    if (config.partitioned) {
        sim_assert(config.numBits
                       % static_cast<std::uint64_t>(config.numHashes)
                   == 0);
    }
}

std::uint64_t
BloomFilter::bitIndex(int fn, std::uint64_t key) const
{
    if (!config_.partitioned)
        return hashes_.hash(fn, key);
    // Bank fn owns bits [fn * m/k, (fn+1) * m/k).
    const std::uint64_t bank_bits =
        config_.numBits / static_cast<std::uint64_t>(
            config_.numHashes);
    return static_cast<std::uint64_t>(fn) * bank_bits
         + hashes_.hash(fn, key);
}

void
BloomFilter::insert(std::uint64_t key)
{
    for (int fn = 0; fn < config_.numHashes; ++fn) {
        std::uint64_t bit = bitIndex(fn, key);
        words_[bit >> 6] |= 1ULL << (bit & 63);
    }
    ++numInserted_;
}

bool
BloomFilter::mayContain(std::uint64_t key) const
{
    for (int fn = 0; fn < config_.numHashes; ++fn) {
        std::uint64_t bit = bitIndex(fn, key);
        if (!(words_[bit >> 6] & (1ULL << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    numInserted_ = 0;
}

std::uint64_t
BloomFilter::popCount() const
{
    std::uint64_t count = 0;
    for (std::uint64_t w : words_)
        count += static_cast<std::uint64_t>(std::popcount(w));
    return count;
}

bool
BloomFilter::compatibleWith(const BloomFilter &other) const
{
    return config_ == other.config_;
}

void
BloomFilter::unionInPlace(const BloomFilter &other)
{
    sim_assert(compatibleWith(other));
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    numInserted_ += other.numInserted_;
}

BloomFilter
BloomFilter::unionWith(const BloomFilter &other) const
{
    BloomFilter result = *this;
    result.unionInPlace(other);
    return result;
}

BloomFilter
BloomFilter::intersectWith(const BloomFilter &other) const
{
    sim_assert(compatibleWith(other));
    BloomFilter result = *this;
    for (std::size_t i = 0; i < words_.size(); ++i)
        result.words_[i] &= other.words_[i];
    // The exact insert count of an intersection is unknowable; keep 0.
    result.numInserted_ = 0;
    return result;
}

bool
BloomFilter::intersectionNonEmpty(const BloomFilter &other) const
{
    sim_assert(compatibleWith(other));
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if (words_[i] & other.words_[i])
            return true;
    }
    return false;
}

} // namespace bloom
