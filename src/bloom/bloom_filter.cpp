#include "bloom_filter.h"

#include "bloom/signature_ops.h"
#include "sim/logging.h"

namespace bloom {

BloomFilter::BloomFilter(const BloomConfig &config)
    : config_(config),
      hashes_(config.numHashes,
              config.partitioned ? config.numBits
                                       / static_cast<std::uint64_t>(
                                           config.numHashes)
                                 : config.numBits,
              config.seed),
      words_((config.numBits + 63) / 64, 0)
{
    sim_assert(config.numBits >= 64);
    sim_assert(config.numHashes >= 1);
    if (config.partitioned) {
        sim_assert(config.numBits
                       % static_cast<std::uint64_t>(config.numHashes)
                   == 0);
    }
}

std::uint64_t
BloomFilter::bitIndexFor(int fn, std::uint64_t key) const
{
    if (!config_.partitioned)
        return hashes_.hash(fn, key);
    // Bank fn owns bits [fn * m/k, (fn+1) * m/k).
    const std::uint64_t bank_bits =
        config_.numBits / static_cast<std::uint64_t>(
            config_.numHashes);
    return static_cast<std::uint64_t>(fn) * bank_bits
         + hashes_.hash(fn, key);
}

void
BloomFilter::insert(std::uint64_t key)
{
    for (int fn = 0; fn < config_.numHashes; ++fn) {
        std::uint64_t bit = bitIndexFor(fn, key);
        words_[bit >> 6] |= 1ULL << (bit & 63);
    }
    ++numInserted_;
}

bool
BloomFilter::mayContain(std::uint64_t key) const
{
    for (int fn = 0; fn < config_.numHashes; ++fn) {
        std::uint64_t bit = bitIndexFor(fn, key);
        if (!(words_[bit >> 6] & (1ULL << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    numInserted_ = 0;
}

std::uint64_t
BloomFilter::popCount() const
{
    return activeSignatureOps().popcountWords(words_.data(),
                                              words_.size());
}

void
BloomFilter::testClearBit(std::uint64_t bit)
{
    sim_assert(bit < config_.numBits);
    words_[bit >> 6] &= ~(1ULL << (bit & 63));
}

bool
BloomFilter::compatibleWith(const BloomFilter &other) const
{
    return config_ == other.config_;
}

void
BloomFilter::unionInPlace(const BloomFilter &other)
{
    sim_assert(compatibleWith(other));
    activeSignatureOps().orWords(words_.data(), other.words_.data(),
                                 words_.size());
    numInserted_ += other.numInserted_;
}

BloomFilter
BloomFilter::unionWith(const BloomFilter &other) const
{
    BloomFilter result = *this;
    result.unionInPlace(other);
    return result;
}

BloomFilter
BloomFilter::intersectWith(const BloomFilter &other) const
{
    sim_assert(compatibleWith(other));
    BloomFilter result = *this;
    activeSignatureOps().andWords(result.words_.data(),
                                  other.words_.data(),
                                  result.words_.size());
    // The exact insert count of an intersection is unknowable; keep 0.
    result.numInserted_ = 0;
    return result;
}

bool
BloomFilter::intersectionNonEmpty(const BloomFilter &other) const
{
    sim_assert(compatibleWith(other));
    return activeSignatureOps().andAny(words_.data(),
                                       other.words_.data(),
                                       words_.size());
}

} // namespace bloom
