/**
 * @file
 * The paper's Bloom filter set-size and similarity estimators.
 *
 * These implement Equations 2-4 of the BFGTS paper (after Michael et
 * al.'s extended Bloom filter operations for distributed joins):
 *
 *   Eq. 2:  S^-1(t) = ln(1 - t/m) / (k * ln(1 - 1/m))
 *           estimated number of distinct keys encoded in a filter with
 *           t of its m bits set by k hash functions.
 *
 *   Eq. 3:  |A n B| ~= S^-1(t_A) + S^-1(t_B) - S^-1(t_{A u B})
 *           inclusion-exclusion on the union filter.
 *
 *   Eq. 4:  Similarity = |RW_{t-1} n RW_t| / AvgRWSetSize, in [0, 1].
 */

#ifndef BFGTS_BLOOM_ESTIMATE_H
#define BFGTS_BLOOM_ESTIMATE_H

#include "bloom/bloom_filter.h"

namespace bloom {

/**
 * Eq. 2: estimated cardinality of the set encoded by a filter state.
 *
 * @param bits_set   t, the number of set bits.
 * @param num_bits   m, the filter size in bits.
 * @param num_hashes k, the number of hash functions.
 * @return Estimated number of distinct inserted keys. A saturated
 *         filter (t == m) has no finite estimate; returns m (every
 *         cardinality above the saturation point is indistinguishable).
 */
double estimateSetSize(std::uint64_t bits_set, std::uint64_t num_bits,
                       int num_hashes);

/** Eq. 2 applied to a live filter. */
double estimateSetSize(const BloomFilter &filter);

/**
 * Eq. 3: estimated |A n B| via the union filter.
 *
 * Clamped below at 0: sampling noise can drive the raw
 * inclusion-exclusion value slightly negative for disjoint sets.
 * @pre a.compatibleWith(b).
 */
double estimateIntersectionSize(const BloomFilter &a,
                                const BloomFilter &b);

/**
 * Eq. 4: similarity of two consecutive read/write sets.
 *
 * @param new_filter  Filter of the just-completed execution.
 * @param old_filter  Filter of the previous execution.
 * @param avg_set_size Historical average read/write set size.
 * @return Estimated similarity, clamped to [0, 1].
 * @pre new_filter.compatibleWith(old_filter), avg_set_size > 0.
 */
double similarity(const BloomFilter &new_filter,
                  const BloomFilter &old_filter, double avg_set_size);

/**
 * Exact-set similarity used by BFGTS-NoOverhead (perfect signatures)
 * and by the workload calibration tests.
 *
 * @param intersection_size Exact |RW_{t-1} n RW_t|.
 * @param avg_set_size      Historical average read/write set size.
 */
double exactSimilarity(double intersection_size, double avg_set_size);

} // namespace bloom

#endif // BFGTS_BLOOM_ESTIMATE_H
