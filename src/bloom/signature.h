/**
 * @file
 * Read/write-set signatures: Bloom-encoded or perfect (exact).
 *
 * The BFGTS runtime stores one signature of the most recent read/write
 * set per dTxID and needs three things from it: size estimation,
 * intersection estimation (for similarity, Eqs. 2-4), and an
 * is-the-intersection-empty test (commit-time confidence update).
 *
 * Two implementations share the interface:
 *  - BloomSignature:   the realistic hardware-signature encoding the
 *                      paper uses for its commit routines.
 *  - PerfectSignature: exact sets, used by the BFGTS-NoOverhead
 *                      configuration ("perfect read/write signatures")
 *                      and by tests as ground truth.
 */

#ifndef BFGTS_BLOOM_SIGNATURE_H
#define BFGTS_BLOOM_SIGNATURE_H

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "bloom/bloom_filter.h"
#include "bloom/estimate.h"

namespace bloom {

/** Abstract read/write-set signature. */
class Signature
{
  public:
    virtual ~Signature() = default;

    /** Add a (line) address to the set. */
    virtual void insert(std::uint64_t key) = 0;

    /** Remove all elements. */
    virtual void clear() = 0;

    /** True if nothing was inserted (no bit set / empty set). */
    virtual bool empty() const = 0;

    /** Estimated (or exact) cardinality of the encoded set. */
    virtual double estimateSize() const = 0;

    /**
     * Estimated (or exact) |this n other|.
     * @pre other has the same dynamic type and compatible config.
     */
    virtual double
    estimateIntersectionSize(const Signature &other) const = 0;

    /**
     * May the two sets overlap? Bloom signatures can report a false
     * positive; perfect signatures are exact.
     */
    virtual bool intersectsNonEmpty(const Signature &other) const = 0;

    /** Deep copy preserving dynamic type. */
    virtual std::unique_ptr<Signature> clone() const = 0;
};

/** Signature backed by a BloomFilter. */
class BloomSignature : public Signature
{
  public:
    explicit BloomSignature(const BloomConfig &config = BloomConfig{})
        : filter_(config)
    {
    }

    void insert(std::uint64_t key) override { filter_.insert(key); }
    void clear() override { filter_.clear(); }
    bool empty() const override { return filter_.empty(); }

    double
    estimateSize() const override
    {
        return estimateSetSize(filter_);
    }

    double
    estimateIntersectionSize(const Signature &other) const override
    {
        return bloom::estimateIntersectionSize(filter_, cast(other));
    }

    bool
    intersectsNonEmpty(const Signature &other) const override
    {
        return filter_.intersectionNonEmpty(cast(other));
    }

    std::unique_ptr<Signature>
    clone() const override
    {
        return std::make_unique<BloomSignature>(*this);
    }

    /** Underlying filter (for cost accounting and tests). */
    const BloomFilter &filter() const { return filter_; }

    /** Test-only mutable filter access (audit mutation selftests). */
    BloomFilter &testFilter() { return filter_; }

  private:
    static const BloomFilter &cast(const Signature &other);

    BloomFilter filter_;
};

/** Exact-set signature (BFGTS-NoOverhead / test ground truth). */
class PerfectSignature : public Signature
{
  public:
    PerfectSignature() = default;

    void insert(std::uint64_t key) override { set_.insert(key); }
    void clear() override { set_.clear(); }
    bool empty() const override { return set_.empty(); }

    double
    estimateSize() const override
    {
        return static_cast<double>(set_.size());
    }

    double estimateIntersectionSize(const Signature &other)
        const override;

    bool
    intersectsNonEmpty(const Signature &other) const override
    {
        return estimateIntersectionSize(other) > 0.0;
    }

    std::unique_ptr<Signature>
    clone() const override
    {
        return std::make_unique<PerfectSignature>(*this);
    }

    /** Underlying set (for tests). */
    const std::unordered_set<std::uint64_t> &set() const { return set_; }

  private:
    std::unordered_set<std::uint64_t> set_;
};

/**
 * Similarity of consecutive executions per Eq. 4, on any signature
 * implementation. Clamped to [0, 1].
 */
double signatureSimilarity(const Signature &new_sig,
                           const Signature &old_sig,
                           double avg_set_size);

} // namespace bloom

#endif // BFGTS_BLOOM_SIGNATURE_H
