#include "signature_ops.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BFGTS_SIG_X86 1
#endif

namespace bloom {

namespace {

// ---------------------------------------------------------------------
// Scalar kernels: the seed implementation, preserved as the oracle.
// One word at a time; union/intersection buffers are materialized and
// popcounted in separate passes, exactly as the original BloomFilter /
// estimateIntersectionSize() code did.
// ---------------------------------------------------------------------

std::uint64_t
scalarPopcountWords(const std::uint64_t *words, std::size_t n)
{
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::uint64_t>(std::popcount(words[i]));
    return count;
}

void
scalarOrWords(std::uint64_t *dst, const std::uint64_t *src,
              std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] |= src[i];
}

void
scalarAndWords(std::uint64_t *dst, const std::uint64_t *src,
               std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] &= src[i];
}

bool
scalarAndAny(const std::uint64_t *a, const std::uint64_t *b,
             std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] & b[i])
            return true;
    }
    return false;
}

std::uint64_t
scalarAndPopcount(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n)
{
    // Seed shape: materialize the intersection, then count it.
    std::vector<std::uint64_t> inter(a, a + n);
    scalarAndWords(inter.data(), b, n);
    return scalarPopcountWords(inter.data(), n);
}

UnionCounts
scalarUnionCounts(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n)
{
    // Seed shape: materialize the union, then three separate passes.
    std::vector<std::uint64_t> u(a, a + n);
    scalarOrWords(u.data(), b, n);
    UnionCounts counts;
    counts.popA = scalarPopcountWords(a, n);
    counts.popB = scalarPopcountWords(b, n);
    counts.popUnion = scalarPopcountWords(u.data(), n);
    return counts;
}

// ---------------------------------------------------------------------
// Portable fused kernels: single pass, no temporaries, 4-way unrolled.
// The fallback tier when the host lacks AVX2/POPCNT; also the tail
// handler for the vector kernels. Bit-identical to the scalar tier by
// construction (popcounts are integers).
// ---------------------------------------------------------------------

std::uint64_t
fusedPopcountWords(const std::uint64_t *words, std::size_t n)
{
    std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        c0 += static_cast<std::uint64_t>(std::popcount(words[i]));
        c1 += static_cast<std::uint64_t>(std::popcount(words[i + 1]));
        c2 += static_cast<std::uint64_t>(std::popcount(words[i + 2]));
        c3 += static_cast<std::uint64_t>(std::popcount(words[i + 3]));
    }
    for (; i < n; ++i)
        c0 += static_cast<std::uint64_t>(std::popcount(words[i]));
    return c0 + c1 + c2 + c3;
}

std::uint64_t
fusedAndPopcount(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    std::uint64_t c0 = 0, c1 = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
        c1 += static_cast<std::uint64_t>(
            std::popcount(a[i + 1] & b[i + 1]));
    }
    for (; i < n; ++i)
        c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    return c0 + c1;
}

UnionCounts
fusedUnionCounts(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    UnionCounts counts;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t wa = a[i];
        const std::uint64_t wb = b[i];
        counts.popA += static_cast<std::uint64_t>(std::popcount(wa));
        counts.popB += static_cast<std::uint64_t>(std::popcount(wb));
        counts.popUnion +=
            static_cast<std::uint64_t>(std::popcount(wa | wb));
    }
    return counts;
}

#ifdef BFGTS_SIG_X86

// ---------------------------------------------------------------------
// AVX2 kernels. Popcount follows Mula's nibble-LUT + PSADBW scheme;
// every kernel is a single fused pass over unaligned 256-bit loads
// (four signature words per step). Selected at startup only when
// __builtin_cpu_supports() confirms AVX2 and POPCNT.
// ---------------------------------------------------------------------

__attribute__((target("avx2,popcnt"), always_inline)) inline __m256i
popcount256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    // Per-64-bit-lane partial sums.
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2,popcnt"), always_inline)) inline
std::uint64_t
hsum256(__m256i acc)
{
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0))
         + static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

__attribute__((target("avx2,popcnt"))) std::uint64_t
avx2PopcountWords(const std::uint64_t *words, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        acc = _mm256_add_epi64(acc, popcount256(v));
    }
    std::uint64_t count = hsum256(acc);
    for (; i < n; ++i)
        count += static_cast<std::uint64_t>(std::popcount(words[i]));
    return count;
}

__attribute__((target("avx2,popcnt"))) void
avx2OrWords(std::uint64_t *dst, const std::uint64_t *src,
            std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(d, s));
    }
    for (; i < n; ++i)
        dst[i] |= src[i];
}

__attribute__((target("avx2,popcnt"))) void
avx2AndWords(std::uint64_t *dst, const std::uint64_t *src,
             std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(d, s));
    }
    for (; i < n; ++i)
        dst[i] &= src[i];
}

__attribute__((target("avx2,popcnt"))) bool
avx2AndAny(const std::uint64_t *a, const std::uint64_t *b,
           std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i v = _mm256_and_si256(va, vb);
        if (!_mm256_testz_si256(v, v))
            return true;
    }
    for (; i < n; ++i) {
        if (a[i] & b[i])
            return true;
    }
    return false;
}

__attribute__((target("avx2,popcnt"))) std::uint64_t
avx2AndPopcount(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi64(acc,
                               popcount256(_mm256_and_si256(va, vb)));
    }
    std::uint64_t count = hsum256(acc);
    for (; i < n; ++i)
        count += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    return count;
}

__attribute__((target("avx2,popcnt"))) UnionCounts
avx2UnionCounts(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t n)
{
    __m256i acc_a = _mm256_setzero_si256();
    __m256i acc_b = _mm256_setzero_si256();
    __m256i acc_u = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc_a = _mm256_add_epi64(acc_a, popcount256(va));
        acc_b = _mm256_add_epi64(acc_b, popcount256(vb));
        acc_u = _mm256_add_epi64(acc_u,
                                 popcount256(_mm256_or_si256(va, vb)));
    }
    UnionCounts counts;
    counts.popA = hsum256(acc_a);
    counts.popB = hsum256(acc_b);
    counts.popUnion = hsum256(acc_u);
    for (; i < n; ++i) {
        const std::uint64_t wa = a[i];
        const std::uint64_t wb = b[i];
        counts.popA += static_cast<std::uint64_t>(std::popcount(wa));
        counts.popB += static_cast<std::uint64_t>(std::popcount(wb));
        counts.popUnion +=
            static_cast<std::uint64_t>(std::popcount(wa | wb));
    }
    return counts;
}

bool
hostHasAvx2()
{
    return __builtin_cpu_supports("avx2")
        && __builtin_cpu_supports("popcnt");
}

#endif // BFGTS_SIG_X86

const SignatureOps kScalarOps = {
    "scalar",        scalarPopcountWords, scalarOrWords,
    scalarAndWords,  scalarAndAny,        scalarAndPopcount,
    scalarUnionCounts,
};

const SignatureOps kFusedOps = {
    "simd-fused",   fusedPopcountWords, scalarOrWords,
    scalarAndWords, scalarAndAny,       fusedAndPopcount,
    fusedUnionCounts,
};

#ifdef BFGTS_SIG_X86
const SignatureOps kAvx2Ops = {
    "simd-avx2",  avx2PopcountWords, avx2OrWords, avx2AndWords,
    avx2AndAny,   avx2AndPopcount,   avx2UnionCounts,
};
#endif

const SignatureOps &
pickSimdOps()
{
#ifdef BFGTS_SIG_X86
    if (hostHasAvx2())
        return kAvx2Ops;
#endif
    return kFusedOps;
}

SigImpl
implFromEnv()
{
    // Read-once startup shim, same policy as BFGTS_HASH_SEED
    // (sim/det_hash.h) and BFGTS_AUDIT (sim/audit.cpp). Both
    // implementations produce bit-identical simulation results, so the
    // knob only moves wall-clock metrics, never reports.
    const char *v = std::getenv("BFGTS_SIG_IMPL");
    if (v == nullptr || *v == '\0')
        return SigImpl::Simd;
    const std::string s(v);
    if (s == "scalar")
        return SigImpl::Scalar;
    if (s == "simd" || s == "fast")
        return SigImpl::Simd;
    sim_fatal("BFGTS_SIG_IMPL: expected 'scalar' or 'simd', got '%s'",
              v);
}

std::atomic<SigImpl> &
implSlot()
{
    static std::atomic<SigImpl> slot{implFromEnv()};
    return slot;
}

} // namespace

const SignatureOps &
scalarSignatureOps()
{
    return kScalarOps;
}

const SignatureOps &
simdSignatureOps()
{
    static const SignatureOps &ops = pickSimdOps();
    return ops;
}

const SignatureOps &
activeSignatureOps()
{
    return activeSignatureImpl() == SigImpl::Scalar
             ? scalarSignatureOps()
             : simdSignatureOps();
}

SigImpl
activeSignatureImpl()
{
    return implSlot().load(std::memory_order_relaxed);
}

void
setSignatureImpl(SigImpl impl)
{
    implSlot().store(impl, std::memory_order_relaxed);
}

bool
simdSignatureOpsVectorized()
{
#ifdef BFGTS_SIG_X86
    return &simdSignatureOps() == &kAvx2Ops;
#else
    return false;
#endif
}

} // namespace bloom
