/**
 * @file
 * Bloom filter with the set-algebra operations BFGTS needs.
 *
 * Beyond the classic insert/query, this filter supports the operations
 * the paper builds its similarity metric on (Section 3.2, after
 * Michael et al.'s distributed-join work):
 *  - popCount()           t, the number of set bits
 *  - unionWith()          bitwise OR of two compatible filters
 *  - intersectWith()      bitwise AND (approximate intersection)
 *  - estimateSetSize()    Eq. 2: S^-1(t) = ln(1-t/m) / (k ln(1-1/m))
 *
 * Two filters are compatible (unionable/intersectable) iff they were
 * built with the same bit count, hash count and hash seed.
 */

#ifndef BFGTS_BLOOM_BLOOM_FILTER_H
#define BFGTS_BLOOM_BLOOM_FILTER_H

#include <cstdint>
#include <vector>

#include "bloom/hash.h"

namespace bloom {

/** Configuration shared by compatible Bloom filters. */
struct BloomConfig {
    /** Filter size in bits (m). Paper sweeps 512..8192. */
    std::uint64_t numBits = 2048;
    /** Number of hash functions (k). */
    int numHashes = 4;
    /** Seed of the shared hash family. */
    std::uint64_t seed = 0xb100f17e5eedULL;
    /**
     * Partitioned ("parallel") layout, after Sanchez et al.
     * (MICRO'07): the m bits are split into k banks of m/k bits and
     * hash function i indexes only bank i. Hardware-friendlier (k
     * small SRAMs, one port each) at slightly worse false-positive
     * rates than the unpartitioned layout. numBits must be divisible
     * by numHashes when set.
     */
    bool partitioned = false;

    bool
    operator==(const BloomConfig &o) const
    {
        return numBits == o.numBits && numHashes == o.numHashes
            && seed == o.seed && partitioned == o.partitioned;
    }
};

/**
 * A plain (non-partitioned) Bloom filter over 64-bit keys.
 *
 * The hash family is shared via a const reference-counted pointer so
 * that copying filters (the runtime stores one per dTxID) does not
 * duplicate the H3 matrices.
 */
class BloomFilter
{
  public:
    /** Build an empty filter for @p config. */
    explicit BloomFilter(const BloomConfig &config = BloomConfig{});

    /** Insert @p key. */
    void insert(std::uint64_t key);

    /** @return false if @p key was definitely never inserted. */
    bool mayContain(std::uint64_t key) const;

    /** Remove all elements. */
    void clear();

    /** Number of set bits (t in Eq. 2). */
    std::uint64_t popCount() const;

    /** Number of keys inserted (exact bookkeeping, for tests/stats). */
    std::uint64_t numInserted() const { return numInserted_; }

    /** True if no bit is set. */
    bool empty() const { return popCount() == 0; }

    /** Filter size in bits (m). */
    std::uint64_t numBits() const { return config_.numBits; }

    /** Number of hash functions (k). */
    int numHashes() const { return config_.numHashes; }

    const BloomConfig &config() const { return config_; }

    /** True if @p other can be unioned/intersected with this filter. */
    bool compatibleWith(const BloomFilter &other) const;

    /** Bitwise-OR @p other into this filter. @pre compatibleWith. */
    void unionInPlace(const BloomFilter &other);

    /** @return a new filter = this OR other. @pre compatibleWith. */
    BloomFilter unionWith(const BloomFilter &other) const;

    /** @return a new filter = this AND other. @pre compatibleWith. */
    BloomFilter intersectWith(const BloomFilter &other) const;

    /**
     * True if the bitwise AND of the two filters has any bit set.
     * This is the paper's intersectBlooms() commit-time test; it can
     * report a spurious overlap (false positive) but never misses a
     * real one.
     */
    bool intersectionNonEmpty(const BloomFilter &other) const;

    /** Raw words, for the signature kernels and microbenchmarks. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /**
     * Bit index hash function @p fn maps @p key to (bank-aware in the
     * partitioned layout). Exposed so the audit engine can validate
     * the partitioned-layout no-false-negative property per bank.
     */
    std::uint64_t bitIndexFor(int fn, std::uint64_t key) const;

    /** Test-only: clear one raw bit (audit mutation selftests). */
    void testClearBit(std::uint64_t bit);

  private:
    BloomConfig config_;
    H3HashFamily hashes_;
    std::vector<std::uint64_t> words_;
    std::uint64_t numInserted_ = 0;
};

} // namespace bloom

#endif // BFGTS_BLOOM_BLOOM_FILTER_H
