/**
 * @file
 * Hash families for Bloom filter signatures.
 *
 * Sanchez et al. (MICRO'07, "Implementing Signatures for Transactional
 * Memory") showed H3 hashing is both hardware-cheap and close to ideal
 * for signature false-positive rates, so H3 is the default family here.
 * A multiply-shift family is provided as a cheaper software alternative
 * and to let tests cross-check that the estimation math (Eqs. 2-4 of
 * the BFGTS paper) is hash-family independent.
 */

#ifndef BFGTS_BLOOM_HASH_H
#define BFGTS_BLOOM_HASH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/random.h"

namespace bloom {

/**
 * H3 hash family: h(x) = XOR of a random row per set input bit.
 *
 * Each of the k hash functions owns a 64-row matrix of random words;
 * the hash of a 64-bit key is the XOR of the rows selected by the
 * key's set bits, reduced modulo the number of buckets. All functions
 * built from the same seed are identical, which is what makes two
 * Bloom filters with the same (bits, hashes, seed) unionable.
 *
 * The matrix is held behind a shared const pointer, so copying a
 * family (and therefore a Bloom filter: the runtime stores one
 * signature per dTxID and clones a prototype on the fast path) is a
 * reference-count bump, not a k*64-word copy.
 */
class H3HashFamily
{
  public:
    /**
     * @param num_hashes  Number of independent hash functions (k).
     * @param num_buckets Output range: hashes fall in [0, num_buckets).
     * @param seed        Seed for the random matrices.
     */
    H3HashFamily(int num_hashes, std::uint64_t num_buckets,
                 std::uint64_t seed);

    /** Value of hash function @p fn (0-based) applied to @p key. */
    std::uint64_t hash(int fn, std::uint64_t key) const;

    int numHashes() const { return numHashes_; }
    std::uint64_t numBuckets() const { return numBuckets_; }

  private:
    int numHashes_;
    std::uint64_t numBuckets_;
    /**
     * matrix_[fn * 64 + bit] = random row for input bit @p bit.
     * Immutable after construction and shared across copies.
     */
    std::shared_ptr<const std::vector<std::uint64_t>> matrix_;
};

/**
 * Multiply-shift family: h_i(x) = mix64(x * odd_i + add_i) mod buckets.
 *
 * Not hardware-realistic, but fast and statistically strong; used by
 * tests to verify the estimators are not H3-specific.
 */
class MultiplyShiftHashFamily
{
  public:
    MultiplyShiftHashFamily(int num_hashes, std::uint64_t num_buckets,
                            std::uint64_t seed);

    std::uint64_t hash(int fn, std::uint64_t key) const;

    int numHashes() const { return numHashes_; }
    std::uint64_t numBuckets() const { return numBuckets_; }

  private:
    int numHashes_;
    std::uint64_t numBuckets_;
    std::vector<std::uint64_t> mult_;
    std::vector<std::uint64_t> add_;
};

} // namespace bloom

#endif // BFGTS_BLOOM_HASH_H
