/**
 * @file
 * Word-level signature kernels behind a runtime-selectable seam.
 *
 * The BFGTS hot path (Eq. 2-4 of the paper) reduces to a handful of
 * operations over the raw 64-bit words of Bloom signatures: popcount,
 * bitwise OR/AND, AND-any (the paper's intersectBlooms() test) and the
 * fused union-popcount triple that feeds the Eq. 3 intersection
 * estimate. This header exposes those kernels as a table of function
 * pointers (SignatureOps) with two implementations:
 *
 *  - scalar: the original seed implementation shape, kept alive as a
 *    differential oracle. One word at a time, temporaries materialized
 *    exactly where the seed materialized them (union/intersection
 *    buffers, separate popcount passes).
 *  - simd:   fused single-pass kernels with no temporaries, dispatched
 *    at startup to AVX2+POPCNT code when the host supports it (the
 *    per-part bit vectors of a partitioned signature are plain word
 *    ranges, so every part is probed in the same vector pass --
 *    mirroring the parallel-probe layout of hardware signatures).
 *
 * Both implementations compute bit-identical results: the estimators
 * consume integer popcounts, and identical integers flow through
 * identical double-precision formulas. tests/test_differential.cpp
 * enforces this property end to end.
 *
 * Selection: BFGTS_SIG_IMPL=scalar|simd (read once at startup; the
 * default is simd). Tests and benchmarks may override it at runtime
 * with setSignatureImpl().
 */

#ifndef BFGTS_BLOOM_SIGNATURE_OPS_H
#define BFGTS_BLOOM_SIGNATURE_OPS_H

#include <cstddef>
#include <cstdint>

namespace bloom {

/** Which kernel family services signature word operations. */
enum class SigImpl { Scalar, Simd };

/** Popcounts of two word ranges and of their union, for Eq. 3. */
struct UnionCounts {
    std::uint64_t popA = 0;
    std::uint64_t popB = 0;
    std::uint64_t popUnion = 0;
};

/**
 * Table of word-range kernels. All ranges are @p n words long; callers
 * guarantee compatible geometry (same filter config) before invoking.
 */
struct SignatureOps {
    /** Implementation name, for reports and benchmarks. */
    const char *name;
    /** Total set bits in words[0..n). */
    std::uint64_t (*popcountWords)(const std::uint64_t *words,
                                   std::size_t n);
    /** dst[i] |= src[i]. */
    void (*orWords)(std::uint64_t *dst, const std::uint64_t *src,
                    std::size_t n);
    /** dst[i] &= src[i]. */
    void (*andWords)(std::uint64_t *dst, const std::uint64_t *src,
                     std::size_t n);
    /** True iff any (a[i] & b[i]) is nonzero. */
    bool (*andAny)(const std::uint64_t *a, const std::uint64_t *b,
                   std::size_t n);
    /** popcount of the intersection, |bits(A) & bits(B)|. */
    std::uint64_t (*andPopcount)(const std::uint64_t *a,
                                 const std::uint64_t *b, std::size_t n);
    /** Popcounts of a, b and a|b (the Eq. 3 inputs). */
    UnionCounts (*unionCounts)(const std::uint64_t *a,
                               const std::uint64_t *b, std::size_t n);
};

/** The seed's word-at-a-time kernels (the differential oracle). */
const SignatureOps &scalarSignatureOps();

/** Fused kernels, AVX2+POPCNT when the host supports them. */
const SignatureOps &simdSignatureOps();

/** The kernels selected by BFGTS_SIG_IMPL / setSignatureImpl(). */
const SignatureOps &activeSignatureOps();

/** The currently selected implementation. */
SigImpl activeSignatureImpl();

/**
 * Override the active implementation (tests, benchmarks, the
 * differential harness). Thread-compatible with concurrent readers;
 * do not flip it in the middle of a simulation.
 */
void setSignatureImpl(SigImpl impl);

/** True if the simd table runs vectorized (AVX2) kernels. */
bool simdSignatureOpsVectorized();

} // namespace bloom

#endif // BFGTS_BLOOM_SIGNATURE_OPS_H
