#include "hash.h"

#include "sim/logging.h"

namespace bloom {

H3HashFamily::H3HashFamily(int num_hashes, std::uint64_t num_buckets,
                           std::uint64_t seed)
    : numHashes_(num_hashes), numBuckets_(num_buckets)
{
    sim_assert(num_hashes > 0);
    sim_assert(num_buckets > 1);
    std::vector<std::uint64_t> matrix(
        static_cast<std::size_t>(num_hashes) * 64);
    std::uint64_t sm = seed ^ 0x8e1f0cafe5a5a5a5ULL;
    for (auto &row : matrix)
        row = sim::splitmix64(sm);
    matrix_ = std::make_shared<const std::vector<std::uint64_t>>(
        std::move(matrix));
}

std::uint64_t
H3HashFamily::hash(int fn, std::uint64_t key) const
{
    sim_assert(fn >= 0 && fn < numHashes_);
    const std::uint64_t *rows =
        matrix_->data() + static_cast<std::size_t>(fn) * 64;
    std::uint64_t acc = 0;
    std::uint64_t k = key;
    while (k) {
        int bit = __builtin_ctzll(k);
        acc ^= rows[bit];
        k &= k - 1;
    }
    return acc % numBuckets_;
}

MultiplyShiftHashFamily::MultiplyShiftHashFamily(
    int num_hashes, std::uint64_t num_buckets, std::uint64_t seed)
    : numHashes_(num_hashes), numBuckets_(num_buckets)
{
    sim_assert(num_hashes > 0);
    sim_assert(num_buckets > 1);
    std::uint64_t sm = seed ^ 0x51ab7e9d3c0ffee1ULL;
    mult_.resize(static_cast<std::size_t>(num_hashes));
    add_.resize(static_cast<std::size_t>(num_hashes));
    for (int i = 0; i < num_hashes; ++i) {
        mult_[i] = sim::splitmix64(sm) | 1; // must be odd
        add_[i] = sim::splitmix64(sm);
    }
}

std::uint64_t
MultiplyShiftHashFamily::hash(int fn, std::uint64_t key) const
{
    sim_assert(fn >= 0 && fn < numHashes_);
    return sim::mix64(key * mult_[fn] + add_[fn]) % numBuckets_;
}

} // namespace bloom
