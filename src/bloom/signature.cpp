#include "signature.h"

#include <algorithm>

#include "sim/logging.h"

namespace bloom {

const BloomFilter &
BloomSignature::cast(const Signature &other)
{
    auto *sig = dynamic_cast<const BloomSignature *>(&other);
    if (sig == nullptr)
        sim_panic("BloomSignature combined with a non-Bloom signature");
    return sig->filter_;
}

double
PerfectSignature::estimateIntersectionSize(const Signature &other) const
{
    auto *sig = dynamic_cast<const PerfectSignature *>(&other);
    if (sig == nullptr)
        sim_panic("PerfectSignature combined with a non-perfect "
                  "signature");
    // Iterate the smaller set.
    const auto &small = set_.size() <= sig->set_.size() ? set_
                                                        : sig->set_;
    const auto &large = set_.size() <= sig->set_.size() ? sig->set_
                                                        : set_;
    std::size_t count = 0;
    for (std::uint64_t key : small)
        count += large.count(key);
    return static_cast<double>(count);
}

double
signatureSimilarity(const Signature &new_sig, const Signature &old_sig,
                    double avg_set_size)
{
    const double inter = new_sig.estimateIntersectionSize(old_sig);
    return exactSimilarity(inter, avg_set_size);
}

} // namespace bloom
