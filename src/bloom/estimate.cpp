#include "estimate.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace bloom {

double
estimateSetSize(std::uint64_t bits_set, std::uint64_t num_bits,
                int num_hashes)
{
    sim_assert(num_bits > 1);
    sim_assert(num_hashes >= 1);
    sim_assert(bits_set <= num_bits);
    if (bits_set == 0)
        return 0.0;
    const double m = static_cast<double>(num_bits);
    const double t = static_cast<double>(bits_set);
    if (bits_set == num_bits) {
        // Saturated: ln(0) diverges. Any set at least as large as the
        // saturation knee maps here; report m as the ceiling estimate.
        return m;
    }
    const double k = static_cast<double>(num_hashes);
    return std::log(1.0 - t / m) / (k * std::log(1.0 - 1.0 / m));
}

double
estimateSetSize(const BloomFilter &filter)
{
    return estimateSetSize(filter.popCount(), filter.numBits(),
                           filter.numHashes());
}

double
estimateIntersectionSize(const BloomFilter &a, const BloomFilter &b)
{
    sim_assert(a.compatibleWith(b));
    const BloomFilter u = a.unionWith(b);
    const double est = estimateSetSize(a) + estimateSetSize(b)
                     - estimateSetSize(u);
    return std::max(est, 0.0);
}

double
similarity(const BloomFilter &new_filter, const BloomFilter &old_filter,
           double avg_set_size)
{
    const double inter = estimateIntersectionSize(new_filter,
                                                  old_filter);
    return exactSimilarity(inter, avg_set_size);
}

double
exactSimilarity(double intersection_size, double avg_set_size)
{
    if (avg_set_size <= 0.0)
        return 0.0;
    return std::clamp(intersection_size / avg_set_size, 0.0, 1.0);
}

} // namespace bloom
