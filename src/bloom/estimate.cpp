#include "estimate.h"

#include <algorithm>
#include <cmath>

#include "bloom/signature_ops.h"
#include "sim/logging.h"

namespace bloom {

double
estimateSetSize(std::uint64_t bits_set, std::uint64_t num_bits,
                int num_hashes)
{
    sim_assert(num_bits > 1);
    sim_assert(num_hashes >= 1);
    sim_assert(bits_set <= num_bits);
    if (bits_set == 0)
        return 0.0;
    const double m = static_cast<double>(num_bits);
    const double t = static_cast<double>(bits_set);
    if (bits_set == num_bits) {
        // Saturated: ln(0) diverges. Any set at least as large as the
        // saturation knee maps here; report m as the ceiling estimate.
        return m;
    }
    const double k = static_cast<double>(num_hashes);
    return std::log(1.0 - t / m) / (k * std::log(1.0 - 1.0 / m));
}

double
estimateSetSize(const BloomFilter &filter)
{
    return estimateSetSize(filter.popCount(), filter.numBits(),
                           filter.numHashes());
}

double
estimateIntersectionSize(const BloomFilter &a, const BloomFilter &b)
{
    sim_assert(a.compatibleWith(b));
    // Eq. 3 needs only the three popcounts t_A, t_B, t_{A|B}; the
    // active kernel computes them in one pass (the scalar oracle
    // still materializes the union, as the seed did). Identical
    // integer counts feed identical double-precision formulas, so the
    // two implementations are bit-identical.
    const UnionCounts counts = activeSignatureOps().unionCounts(
        a.words().data(), b.words().data(), a.words().size());
    const double est =
        estimateSetSize(counts.popA, a.numBits(), a.numHashes())
        + estimateSetSize(counts.popB, b.numBits(), b.numHashes())
        - estimateSetSize(counts.popUnion, a.numBits(), a.numHashes());
    return std::max(est, 0.0);
}

double
similarity(const BloomFilter &new_filter, const BloomFilter &old_filter,
           double avg_set_size)
{
    const double inter = estimateIntersectionSize(new_filter,
                                                  old_filter);
    return exactSimilarity(inter, avg_set_size);
}

double
exactSimilarity(double intersection_size, double avg_set_size)
{
    if (avg_set_size <= 0.0)
        return 0.0;
    return std::clamp(intersection_size / avg_set_size, 0.0, 1.0);
}

} // namespace bloom
