/**
 * @file
 * Workload interface: what a benchmark looks like to the simulator.
 *
 * A workload produces, per thread, a sequence of transaction
 * descriptors: which static transaction site executes, the exact
 * memory accesses it performs, the compute work interleaved with
 * them, and the non-transactional work preceding it. The runner
 * executes descriptors on the simulated machine; on abort the same
 * descriptor re-executes with identical accesses (the retried
 * critical section touches the same data).
 *
 * The real STAMP binaries and inputs (paper Table 3) are not
 * available in this environment; src/workloads/stamp.h provides
 * synthetic generators calibrated to reproduce each benchmark's
 * published conflict graph, per-site similarity (Table 1),
 * transaction footprints and baseline contention (Table 4).
 */

#ifndef BFGTS_WORKLOADS_WORKLOAD_H
#define BFGTS_WORKLOADS_WORKLOAD_H

#include <string>
#include <vector>

#include "htm/tx_id.h"
#include "mem/addr.h"
#include "sim/random.h"
#include "sim/types.h"

namespace workloads {

/** One memory access inside a transaction. */
struct TxAccess {
    mem::Addr addr = 0;
    bool write = false;
};

/** One transactional section plus the non-tx work before it. */
struct TxDescriptor {
    /** Static transaction site executing. */
    htm::STxId sTx = 0;
    /** Exact accesses, in order. */
    std::vector<TxAccess> accesses;
    /** Compute cycles between consecutive accesses. */
    sim::Cycles workPerAccess = 10;
    /** Non-transactional cycles before the section begins. */
    sim::Cycles nonTxWork = 1000;
};

/** A benchmark: a per-thread stream of transaction descriptors. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name, e.g. "Delaunay". */
    virtual std::string name() const = 0;

    /** Number of static transaction sites in the program. */
    virtual int numStaticTx() const = 0;

    /** Transactions each thread executes in the measured phase. */
    virtual int txPerThread() const = 0;

    /**
     * Generate the next descriptor for @p thread.
     *
     * Must be called in per-thread program order; the generator may
     * keep per-thread state (e.g. the previous access set, to give
     * sites their target similarity). Uses only @p rng for
     * randomness so runs are deterministic per (seed, thread).
     */
    virtual TxDescriptor next(sim::ThreadId thread, sim::Rng &rng) = 0;
};

} // namespace workloads

#endif // BFGTS_WORKLOADS_WORKLOAD_H
