/**
 * @file
 * SPLASH2-like low-contention workloads.
 *
 * The paper motivates proactive scheduling by contrasting STAMP with
 * transactional SPLASH2 (Section 1): scientific codes use "small,
 * infrequent transactions" that expose almost no contention, which is
 * why early reactive managers looked adequate. These three generators
 * model that regime -- tiny critical sections, long compute phases,
 * large sparsely-shared data -- so the suite can demonstrate the
 * paper's premise: on SPLASH2-like codes every contention manager is
 * equivalent and the cheapest one (Backoff) wins on overhead.
 */

#ifndef BFGTS_WORKLOADS_SPLASH2_H
#define BFGTS_WORKLOADS_SPLASH2_H

#include <memory>
#include <string>
#include <vector>

#include "workloads/generator.h"

namespace workloads {

/** The three SPLASH2-like benchmark names. */
std::vector<std::string> splash2BenchmarkNames();

/**
 * Build a SPLASH2-like benchmark by name ("Barnes", "Ocean",
 * "Raytrace"). Fatal on unknown names.
 */
std::unique_ptr<SyntheticWorkload>
makeSplash2Workload(const std::string &name, int num_threads);

} // namespace workloads

#endif // BFGTS_WORKLOADS_SPLASH2_H
