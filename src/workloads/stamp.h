/**
 * @file
 * Synthetic STAMP benchmark suite (paper Tables 1, 3, 4).
 *
 * The paper evaluates on seven STAMP benchmarks (Bayes is excluded
 * there for non-determinism, and here too). The real programs and
 * inputs aren't available in this environment, so each benchmark is
 * a SyntheticWorkload calibrated to reproduce what the schedulers
 * actually observe:
 *
 *  - the conflict graph of Table 1: which static-transaction pairs
 *    ever conflict (including self-conflicts across threads, and
 *    asymmetric rows produced by read-only sharing);
 *  - the per-site similarity of Table 1;
 *  - the transaction footprint character each benchmark is known
 *    for (tiny for Ssca2/Kmeans/Intruder, moderate for
 *    Genome/Vacation, very large for Labyrinth -- grid copy moved
 *    outside the transaction, as the paper does);
 *  - the baseline contention ordering of Table 4's Backoff column
 *    (Delaunay/Intruder ~70%, Genome ~60%, Kmeans/Labyrinth ~20%,
 *    Vacation ~10%, Ssca2 ~0%).
 *
 * stampTargets() exposes the calibration targets so tests can verify
 * the generators actually deliver them.
 */

#ifndef BFGTS_WORKLOADS_STAMP_H
#define BFGTS_WORKLOADS_STAMP_H

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "workloads/generator.h"

namespace workloads {

/** Calibration targets of one benchmark (from the paper's tables). */
struct StampTargets {
    /** Table 1 similarity per static transaction site. */
    std::vector<double> similarity;
    /** Table 1 conflict graph as ordered (min, max) site pairs. */
    std::set<std::pair<int, int>> conflictEdges;
    /** Table 4 contention under the Backoff manager (fraction). */
    double backoffContention = 0.0;
};

/** The seven benchmark names, in the paper's order. */
std::vector<std::string> stampBenchmarkNames();

/**
 * Build a calibrated benchmark by name.
 *
 * @param name        One of stampBenchmarkNames() (fatal otherwise).
 * @param num_threads Threads that will run it (paper: 64).
 */
std::unique_ptr<SyntheticWorkload>
makeStampWorkload(const std::string &name, int num_threads);

/** Calibration targets for @p name (fatal on unknown names). */
StampTargets stampTargets(const std::string &name);

} // namespace workloads

#endif // BFGTS_WORKLOADS_STAMP_H
