#include "generator.h"

#include <cmath>

#include "sim/logging.h"

namespace workloads {

namespace {

/** Address-space layout: regions spaced far apart, never overlapping. */
constexpr mem::Addr kPrivateBase = 0x1'0000'0000ULL;
// Far above any private region: private regions span at most
// kPrivateBase + (threads * sites) << kRegionShift ~= 0x11'0000'0000.
constexpr mem::Addr kHotBase = 0x1000'0000'0000ULL;
constexpr int kRegionShift = 24; // 16M bytes between region bases
constexpr int kMaxSitesPerWorkload = 64;

} // namespace

SyntheticWorkload::SyntheticWorkload(SyntheticParams params,
                                     int num_threads)
    : params_(std::move(params)), numThreads_(num_threads)
{
    sim_assert(!params_.sites.empty());
    sim_assert(static_cast<int>(params_.sites.size())
               <= kMaxSitesPerWorkload);
    sim_assert(num_threads >= 1);
    for (const SiteParams &site : params_.sites) {
        sim_assert(site.weight >= 0.0);
        sim_assert(site.meanAccesses > site.accessJitter);
        sim_assert(site.privateLines > 0);
        double hot_total = 0.0;
        for (const HotGroupRef &ref : site.hotGroups) {
            sim_assert(ref.group >= 0
                       && ref.group < static_cast<int>(
                              params_.hotGroupLines.size()));
            sim_assert(params_.hotGroupLines[static_cast<std::size_t>(
                           ref.group)]
                       > 0);
            hot_total += ref.frac;
        }
        sim_assert(hot_total <= 1.0 + 1e-9);
        totalWeight_ += site.weight;
    }
    sim_assert(totalWeight_ > 0.0);
    prev_.resize(static_cast<std::size_t>(num_threads)
                 * params_.sites.size());
}

mem::Addr
SyntheticWorkload::privateBase(sim::ThreadId thread, int site) const
{
    const auto region = static_cast<mem::Addr>(thread)
                          * static_cast<mem::Addr>(
                              kMaxSitesPerWorkload)
                      + static_cast<mem::Addr>(site);
    return kPrivateBase + (region << kRegionShift);
}

mem::Addr
SyntheticWorkload::hotBase(int group)
{
    return kHotBase
         + (static_cast<mem::Addr>(group) << kRegionShift);
}

int
SyntheticWorkload::pickSite(sim::Rng &rng) const
{
    double roll = rng.uniform() * totalWeight_;
    for (std::size_t i = 0; i < params_.sites.size(); ++i) {
        roll -= params_.sites[i].weight;
        if (roll < 0.0)
            return static_cast<int>(i);
    }
    return static_cast<int>(params_.sites.size()) - 1;
}

SyntheticWorkload::PrevState &
SyntheticWorkload::prevFor(sim::ThreadId thread, int site)
{
    return prev_[static_cast<std::size_t>(thread)
                     * params_.sites.size()
                 + static_cast<std::size_t>(site)];
}

TxDescriptor
SyntheticWorkload::next(sim::ThreadId thread, sim::Rng &rng)
{
    sim_assert(thread >= 0 && thread < numThreads_);
    const int site = pickSite(rng);
    const SiteParams &sp =
        params_.sites[static_cast<std::size_t>(site)];
    PrevState &prev = prevFor(thread, site);
    prev.hotLines.resize(sp.hotGroups.size());

    const int jitter = sp.accessJitter;
    const int size = static_cast<int>(
        rng.range(sp.meanAccesses - jitter, sp.meanAccesses + jitter));

    TxDescriptor desc;
    desc.sTx = site;
    desc.workPerAccess = sp.workPerAccess;
    desc.nonTxWork = static_cast<sim::Cycles>(rng.range(
        static_cast<std::int64_t>(sp.nonTxWork / 2),
        static_cast<std::int64_t>(sp.nonTxWork + sp.nonTxWork / 2)));

    // Split the budget: hot lines per group ref, remainder private.
    std::vector<TxAccess> early;  // reads / early private accesses
    std::vector<TxAccess> late;   // late private accesses
    std::vector<TxAccess> upgrades; // hot writes at the very end

    int private_budget = size;
    for (std::size_t g = 0; g < sp.hotGroups.size(); ++g) {
        const HotGroupRef &ref = sp.hotGroups[g];
        const std::uint64_t region_lines =
            params_.hotGroupLines[static_cast<std::size_t>(ref.group)];
        const int hot_lines = static_cast<int>(
            std::lround(ref.frac * static_cast<double>(size)));
        private_budget -= hot_lines;

        // Sticky slots hit the region's first lines -- the same
        // structural lines for every thread and every execution.
        const int sticky = static_cast<int>(
            std::lround(ref.stickyFrac
                        * static_cast<double>(hot_lines)));
        const std::uint64_t pool = std::min<std::uint64_t>(
            ref.stickyPoolLines, region_lines);
        const std::uint64_t span =
            region_lines > pool ? region_lines - pool : 1;
        std::vector<mem::Addr> &prev_lines = prev.hotLines[g];
        std::vector<mem::Addr> lines;
        lines.reserve(static_cast<std::size_t>(hot_lines));
        for (int i = 0; i < hot_lines; ++i) {
            mem::Addr addr;
            const bool reuse = static_cast<std::size_t>(i)
                                   < prev_lines.size()
                            && rng.chance(sp.similarity);
            if (reuse) {
                addr = prev_lines[static_cast<std::size_t>(i)];
            } else if (i < sticky) {
                addr = hotBase(ref.group)
                     + rng.below(pool) * mem::kLineBytes;
            } else {
                addr = hotBase(ref.group)
                     + (pool + rng.below(span)) * mem::kLineBytes;
            }
            lines.push_back(addr);
            // Read-early / write-late: every hot line is read up
            // front; written lines are upgraded at the end.
            early.push_back({addr, false});
            if (rng.chance(ref.writeFraction))
                upgrades.push_back({addr, true});
        }
        prev_lines = std::move(lines);
    }

    if (private_budget < 0)
        private_budget = 0;
    std::vector<TxAccess> priv;
    priv.reserve(static_cast<std::size_t>(private_budget));
    for (int i = 0; i < private_budget; ++i) {
        const bool reuse = static_cast<std::size_t>(i)
                               < prev.priv.size()
                        && rng.chance(sp.similarity);
        if (reuse) {
            priv.push_back(prev.priv[static_cast<std::size_t>(i)]);
        } else {
            TxAccess access;
            access.addr = privateBase(thread, site)
                        + rng.below(sp.privateLines)
                              * mem::kLineBytes;
            access.write = rng.chance(sp.writeFraction);
            priv.push_back(access);
        }
    }
    prev.priv = priv;

    // Assemble: first half of private work, hot reads, second half
    // of private work, hot upgrades last.
    const std::size_t half = priv.size() / 2;
    desc.accesses.reserve(priv.size() + early.size()
                          + upgrades.size());
    for (std::size_t i = 0; i < half; ++i)
        desc.accesses.push_back(priv[i]);
    for (const TxAccess &access : early)
        desc.accesses.push_back(access);
    for (std::size_t i = half; i < priv.size(); ++i)
        desc.accesses.push_back(priv[i]);
    for (const TxAccess &access : upgrades)
        desc.accesses.push_back(access);
    (void)late;

    return desc;
}

} // namespace workloads
