#include "stamp.h"

#include "sim/logging.h"

namespace workloads {

namespace {

/**
 * Delaunay mesh refinement (Kulkarni et al.). Four sites with the
 * densest conflict graph in the suite; site 1 (cavity
 * re-triangulation) is large and jumps around the mesh (similarity
 * 0.04) while site 3 (work-queue management) re-touches the same
 * lines every time (0.90). Very high baseline contention.
 */
SyntheticParams
delaunayParams()
{
    SyntheticParams params;
    params.name = "Delaunay";
    params.txPerThread = 70;
    // Group 0: mesh regions shared by the re-triangulation sites.
    // Group 1: the work queue (tiny structural pool) plus cavity
    // boundary lines shared by sites 1-3.
    params.hotGroupLines = {512, 192};
    SiteParams s0;
    s0.weight = 1.0;
    s0.meanAccesses = 24;
    s0.accessJitter = 6;
    s0.similarity = 0.64;
    s0.workPerAccess = 200;
    s0.nonTxWork = 2500;
    s0.hotGroups = {{.group = 0, .frac = 0.35, .writeFraction = 0.55,
                     .stickyFrac = 0.6, .stickyPoolLines = 224}};
    SiteParams s1;
    s1.weight = 1.0;
    s1.meanAccesses = 40;
    s1.accessJitter = 10;
    s1.similarity = 0.04;
    s1.workPerAccess = 200;
    s1.nonTxWork = 2500;
    s1.hotGroups = {{.group = 0, .frac = 0.2, .writeFraction = 0.6},
                    {.group = 1, .frac = 0.1, .writeFraction = 0.5,
                     .stickyFrac = 0.5, .stickyPoolLines = 24}};
    SiteParams s2;
    s2.weight = 1.0;
    s2.meanAccesses = 24;
    s2.accessJitter = 6;
    s2.similarity = 0.56;
    s2.workPerAccess = 200;
    s2.nonTxWork = 2500;
    s2.hotGroups = {{.group = 0, .frac = 0.22, .writeFraction = 0.55,
                     .stickyFrac = 0.5, .stickyPoolLines = 224},
                    {.group = 1, .frac = 0.1, .writeFraction = 0.5,
                     .stickyFrac = 0.5, .stickyPoolLines = 24}};
    // Site 3: the work queue -- tiny, self-similar, hammered.
    SiteParams s3;
    s3.weight = 3.5;
    s3.meanAccesses = 5;
    s3.accessJitter = 1;
    s3.similarity = 0.90;
    s3.workPerAccess = 15;
    s3.nonTxWork = 220;
    s3.hotGroups = {{.group = 1, .frac = 0.85, .writeFraction = 0.9,
                     .stickyFrac = 0.9, .stickyPoolLines = 2}};
    params.sites = {s0, s1, s2, s3};
    return params;
}

/**
 * Genome sequencing: sparse conflict pattern (hash-table segment
 * matching). High *baseline* contention from bursts on small shared
 * pools, but trivially schedulable -- proactive managers push it to
 * ~1%. Site 3 reads what site 2 writes (asymmetric row of Table 1).
 */
SyntheticParams
genomeParams()
{
    SyntheticParams params;
    params.name = "Genome";
    params.txPerThread = 160;
    params.hotGroupLines = {48, 320, 64}; // {0}, {2,3}, {4}
    // Site 0: duplicate-segment hash inserts -- hot buckets, low
    // similarity (segments land anywhere), the Backoff poison here.
    SiteParams s0;
    s0.weight = 1.5;
    s0.meanAccesses = 6;
    s0.accessJitter = 1;
    s0.similarity = 0.12;
    s0.workPerAccess = 20;
    s0.nonTxWork = 400;
    s0.hotGroups = {{.group = 0, .frac = 0.5, .writeFraction = 0.7,
                     .stickyFrac = 0.3, .stickyPoolLines = 16}};
    SiteParams s1;
    s1.meanAccesses = 14;
    s1.accessJitter = 3;
    s1.similarity = 0.25;
    s1.workPerAccess = 60;
    s1.nonTxWork = 1500;
    // Private only: row 1 of Table 1 has no conflict edges.
    SiteParams s2;
    s2.meanAccesses = 8;
    s2.accessJitter = 2;
    s2.similarity = 0.65;
    s2.workPerAccess = 25;
    s2.nonTxWork = 500;
    s2.weight = 2.0;
    s2.hotGroups = {{.group = 1, .frac = 0.7, .writeFraction = 0.85,
                     .stickyFrac = 0.65, .stickyPoolLines = 4}};
    SiteParams s3;
    s3.meanAccesses = 9;
    s3.accessJitter = 2;
    s3.similarity = 0.74;
    s3.workPerAccess = 60;
    s3.nonTxWork = 1000;
    // Read-only member: conflicts with site 2, never with itself.
    s3.hotGroups = {{.group = 1, .frac = 0.5, .writeFraction = 0.0,
                     .stickyFrac = 0.75, .stickyPoolLines = 4}};
    SiteParams s4;
    s4.meanAccesses = 9;
    s4.accessJitter = 2;
    s4.similarity = 0.29;
    s4.workPerAccess = 40;
    s4.nonTxWork = 800;
    s4.hotGroups = {{.group = 2, .frac = 0.5, .writeFraction = 0.85,
                     .stickyFrac = 0.4, .stickyPoolLines = 8}};
    params.sites = {s0, s1, s2, s3, s4};
    return params;
}

/**
 * K-means clustering: tiny centroid-update transactions. Moderate
 * contention; site 2 reads centroids site 1 writes.
 */
SyntheticParams
kmeansParams()
{
    SyntheticParams params;
    params.name = "Kmeans";
    params.txPerThread = 300;
    params.hotGroupLines = {192, 192}; // {0}, {1,2}
    SiteParams s0;
    s0.meanAccesses = 8;
    s0.accessJitter = 2;
    s0.similarity = 0.38;
    s0.nonTxWork = 450;
    s0.hotGroups = {{.group = 0, .frac = 0.65, .writeFraction = 0.85,
                     .stickyFrac = 0.38, .stickyPoolLines = 6}};
    SiteParams s1;
    s1.meanAccesses = 6;
    s1.accessJitter = 2;
    s1.similarity = 0.67;
    s1.nonTxWork = 450;
    s1.hotGroups = {{.group = 1, .frac = 0.7, .writeFraction = 0.85,
                     .stickyFrac = 0.67, .stickyPoolLines = 5}};
    SiteParams s2;
    s2.meanAccesses = 6;
    s2.accessJitter = 2;
    s2.similarity = 0.68;
    s2.nonTxWork = 450;
    s2.hotGroups = {{.group = 1, .frac = 0.65, .writeFraction = 0.0,
                     .stickyFrac = 0.68, .stickyPoolLines = 5}};
    params.sites = {s0, s1, s2};
    return params;
}

/**
 * Vacation travel-reservation server: one site, B-tree-like tables,
 * moderate footprint, low-moderate contention, low similarity
 * (requests hit random records).
 */
SyntheticParams
vacationParams()
{
    SyntheticParams params;
    params.name = "Vacation";
    params.txPerThread = 150;
    params.hotGroupLines = {320};
    SiteParams s0;
    s0.meanAccesses = 28;
    s0.accessJitter = 8;
    s0.similarity = 0.26;
    s0.workPerAccess = 80;
    s0.nonTxWork = 3000;
    s0.hotGroups = {{.group = 0, .frac = 0.17, .writeFraction = 0.3}};
    params.sites = {s0};
    return params;
}

/**
 * Intruder network-packet inspection: small queue/fragment-map
 * transactions executed back-to-back; dense conflicts, very high
 * baseline contention (enqueue/dequeue on shared queues).
 */
SyntheticParams
intruderParams()
{
    SyntheticParams params;
    params.name = "Intruder";
    params.txPerThread = 260;
    params.hotGroupLines = {64, 256}; // {0}: packet queue, {1}: flow map
    // Site 0: the shared packet queue -- tiny, hammered, near-serial.
    SiteParams s0;
    s0.weight = 3.0;
    s0.meanAccesses = 4;
    s0.accessJitter = 1;
    s0.similarity = 0.67;
    s0.workPerAccess = 10;
    s0.nonTxWork = 180;
    s0.hotGroups = {{.group = 0, .frac = 0.8, .writeFraction = 0.9,
                     .stickyFrac = 0.9, .stickyPoolLines = 2}};
    // Sites 1-2: fragment-map lookups/updates -- parallel body.
    SiteParams s1;
    s1.weight = 1.5;
    s1.meanAccesses = 8;
    s1.accessJitter = 2;
    s1.similarity = 0.40;
    s1.workPerAccess = 30;
    s1.nonTxWork = 300;
    s1.hotGroups = {{.group = 1, .frac = 0.35, .writeFraction = 0.6,
                     .stickyFrac = 0.35, .stickyPoolLines = 96}};
    SiteParams s2;
    s2.weight = 1.5;
    s2.meanAccesses = 8;
    s2.accessJitter = 2;
    s2.similarity = 0.66;
    s2.workPerAccess = 30;
    s2.nonTxWork = 300;
    s2.hotGroups = {{.group = 1, .frac = 0.35, .writeFraction = 0.6,
                     .stickyFrac = 0.65, .stickyPoolLines = 96}};
    params.sites = {s0, s1, s2};
    return params;
}

/**
 * SSCA2 graph kernel: tiny, almost conflict-free adjacency-array
 * appends. The overhead-sensitivity benchmark: any CM cost shows.
 */
SyntheticParams
ssca2Params()
{
    SyntheticParams params;
    params.name = "Ssca2";
    params.txPerThread = 500;
    params.hotGroupLines = {2048, 2048}; // {0}, {2}
    SiteParams s0;
    s0.meanAccesses = 3;
    s0.accessJitter = 1;
    s0.similarity = 0.90;
    s0.nonTxWork = 500;
    s0.hotGroups = {{.group = 0, .frac = 0.3, .writeFraction = 0.5}};
    SiteParams s1;
    s1.meanAccesses = 3;
    s1.accessJitter = 1;
    s1.similarity = 0.90;
    s1.nonTxWork = 500;
    // Private only: row 1 has no edges.
    SiteParams s2;
    s2.meanAccesses = 3;
    s2.accessJitter = 1;
    s2.similarity = 0.57;
    s2.nonTxWork = 500;
    s2.hotGroups = {{.group = 1, .frac = 0.3, .writeFraction = 0.5}};
    params.sites = {s0, s1, s2};
    return params;
}

/**
 * Labyrinth maze routing (grid copy hoisted out of the transaction,
 * as the paper does): very large transactions claiming a path
 * through a shared grid; conflicts when paths cross.
 */
SyntheticParams
labyrinthParams()
{
    SyntheticParams params;
    params.name = "Labyrinth";
    params.txPerThread = 40;
    params.hotGroupLines = {6144, 3072}; // {0}, {1,2}
    SiteParams s0;
    s0.meanAccesses = 180;
    s0.accessJitter = 40;
    s0.similarity = 0.86;
    s0.workPerAccess = 40;
    s0.nonTxWork = 4000;
    s0.hotGroups = {{.group = 0, .frac = 0.06, .writeFraction = 0.4}};
    SiteParams s1;
    s1.meanAccesses = 60;
    s1.accessJitter = 15;
    s1.similarity = 0.45;
    s1.workPerAccess = 40;
    s1.nonTxWork = 3000;
    s1.hotGroups = {{.group = 1, .frac = 0.1, .writeFraction = 0.0}};
    SiteParams s2;
    s2.meanAccesses = 220;
    s2.accessJitter = 40;
    s2.similarity = 0.90;
    s2.workPerAccess = 40;
    s2.nonTxWork = 4000;
    s2.hotGroups = {{.group = 1, .frac = 0.08, .writeFraction = 0.5,
                     .stickyFrac = 0.2, .stickyPoolLines = 32}};
    params.sites = {s0, s1, s2};
    return params;
}

SyntheticParams
paramsFor(const std::string &name)
{
    if (name == "Delaunay")
        return delaunayParams();
    if (name == "Genome")
        return genomeParams();
    if (name == "Kmeans")
        return kmeansParams();
    if (name == "Vacation")
        return vacationParams();
    if (name == "Intruder")
        return intruderParams();
    if (name == "Ssca2")
        return ssca2Params();
    if (name == "Labyrinth")
        return labyrinthParams();
    sim_fatal("unknown STAMP benchmark '%s'", name.c_str());
}

} // namespace

std::vector<std::string>
stampBenchmarkNames()
{
    return {"Delaunay", "Genome",  "Kmeans",   "Vacation",
            "Intruder", "Ssca2",   "Labyrinth"};
}

std::unique_ptr<SyntheticWorkload>
makeStampWorkload(const std::string &name, int num_threads)
{
    return std::make_unique<SyntheticWorkload>(paramsFor(name),
                                               num_threads);
}

StampTargets
stampTargets(const std::string &name)
{
    StampTargets targets;
    if (name == "Delaunay") {
        targets.similarity = {0.64, 0.04, 0.56, 0.90};
        targets.conflictEdges = {{0, 0}, {0, 1}, {0, 2}, {1, 1},
                                 {1, 2}, {1, 3}, {2, 2}, {2, 3},
                                 {3, 3}};
        targets.backoffContention = 0.735;
    } else if (name == "Genome") {
        targets.similarity = {0.12, 0.25, 0.65, 0.74, 0.29};
        targets.conflictEdges = {{0, 0}, {2, 2}, {2, 3}, {4, 4}};
        targets.backoffContention = 0.611;
    } else if (name == "Kmeans") {
        targets.similarity = {0.38, 0.67, 0.68};
        targets.conflictEdges = {{0, 0}, {1, 1}, {1, 2}};
        targets.backoffContention = 0.205;
    } else if (name == "Vacation") {
        targets.similarity = {0.26};
        targets.conflictEdges = {{0, 0}};
        targets.backoffContention = 0.102;
    } else if (name == "Intruder") {
        targets.similarity = {0.67, 0.40, 0.66};
        targets.conflictEdges = {{0, 0}, {1, 1}, {1, 2}, {2, 2}};
        targets.backoffContention = 0.704;
    } else if (name == "Ssca2") {
        targets.similarity = {0.90, 0.90, 0.57};
        targets.conflictEdges = {{0, 0}, {2, 2}};
        targets.backoffContention = 0.001;
    } else if (name == "Labyrinth") {
        targets.similarity = {0.86, 0.45, 0.90};
        targets.conflictEdges = {{0, 0}, {1, 2}, {2, 2}};
        targets.backoffContention = 0.202;
    } else {
        sim_fatal("unknown STAMP benchmark '%s'", name.c_str());
    }
    return targets;
}

} // namespace workloads
