#include "structures.h"

#include <cmath>

#include "sim/logging.h"

namespace workloads {

namespace {

// Address-space layout for the shadow structures; far above the
// synthetic generators' regions so the suites can never collide.
constexpr mem::Addr kStructureBase = 0x2000'0000'0000ULL;

/** Line address of control/table entry @p index of region @p region. */
mem::Addr
lineAddr(int region, std::uint64_t index)
{
    return kStructureBase
         + (static_cast<mem::Addr>(region) << 28)
         + index * mem::kLineBytes;
}

// Region ids within the structure address space.
constexpr int kBucketRegion = 0;
constexpr int kNodeRegion = 1;
constexpr int kControlRegion = 2;
constexpr int kSlotRegion = 3;
constexpr int kCounterRegion = 4;

} // namespace

// ---- HashMapWorkload ----------------------------------------------------

HashMapWorkload::HashMapWorkload(const Config &config, int num_threads)
    : config_(config), chains_(config.buckets)
{
    sim_assert(config.buckets >= 1);
    sim_assert(config.keySpace >= config.buckets);
    sim_assert(config.insertFrac + config.lookupFrac <= 1.0 + 1e-9);
    (void)num_threads;
}

TxDescriptor
HashMapWorkload::next(sim::ThreadId thread, sim::Rng &rng)
{
    (void)thread;
    TxDescriptor desc;
    desc.workPerAccess = config_.workPerAccess;
    desc.nonTxWork = static_cast<sim::Cycles>(
        rng.range(static_cast<std::int64_t>(config_.nonTxWork / 2),
                  static_cast<std::int64_t>(config_.nonTxWork * 3
                                            / 2)));

    const std::uint64_t key = rng.below(config_.keySpace);
    const std::uint64_t bucket =
        (key * 0x9e3779b97f4a7c15ULL >> 32) % config_.buckets;
    std::vector<std::uint32_t> &chain =
        chains_[static_cast<std::size_t>(bucket)];

    const double op = rng.uniform();
    // Read the bucket head.
    desc.accesses.push_back({lineAddr(kBucketRegion, bucket), false});
    // Walk the chain (read every node line).
    for (std::uint32_t node : chain)
        desc.accesses.push_back({lineAddr(kNodeRegion, node), false});

    if (op < config_.insertFrac) {
        desc.sTx = 0; // insert
        const std::uint32_t node = nextNode_++;
        // Write the new node and relink the bucket head.
        desc.accesses.push_back({lineAddr(kNodeRegion, node), true});
        desc.accesses.push_back({lineAddr(kBucketRegion, bucket),
                                 true});
        // Update the shared element count (the global hot line).
        desc.accesses.push_back({lineAddr(kControlRegion, 0), true});
        chain.push_back(node);
        ++elements_;
        // Keep chains bounded so walks stay realistic.
        if (chain.size() > 6) {
            chain.erase(chain.begin());
            --elements_;
        }
    } else if (op < config_.insertFrac + config_.lookupFrac) {
        desc.sTx = 1; // lookup: reads only (already emitted)
    } else {
        desc.sTx = 2; // erase
        if (!chain.empty()) {
            const std::size_t victim = rng.below(chain.size());
            // Unlink: write the predecessor (or head) and count.
            if (victim == 0) {
                desc.accesses.push_back(
                    {lineAddr(kBucketRegion, bucket), true});
            } else {
                desc.accesses.push_back(
                    {lineAddr(kNodeRegion, chain[victim - 1]), true});
            }
            desc.accesses.push_back({lineAddr(kControlRegion, 0),
                                     true});
            chain.erase(chain.begin()
                        + static_cast<std::ptrdiff_t>(victim));
            --elements_;
        }
    }
    return desc;
}

// ---- FifoQueueWorkload ----------------------------------------------------

FifoQueueWorkload::FifoQueueWorkload(const Config &config,
                                     int num_threads)
    : config_(config)
{
    sim_assert(config.capacity >= 2);
    (void)num_threads;
}

TxDescriptor
FifoQueueWorkload::next(sim::ThreadId thread, sim::Rng &rng)
{
    (void)thread;
    TxDescriptor desc;
    desc.workPerAccess = config_.workPerAccess;
    desc.nonTxWork = static_cast<sim::Cycles>(
        rng.range(static_cast<std::int64_t>(config_.nonTxWork / 2),
                  static_cast<std::int64_t>(config_.nonTxWork * 3
                                            / 2)));

    // Keep the shadow ring in a workable regime: enqueue when empty,
    // dequeue when full, else flip a coin.
    bool enqueue;
    if (tail_ == head_)
        enqueue = true;
    else if (tail_ - head_ >= config_.capacity)
        enqueue = false;
    else
        enqueue = rng.chance(0.5);

    // Every operation reads both control lines (empty/full check)...
    desc.accesses.push_back({lineAddr(kControlRegion, 1), false});
    desc.accesses.push_back({lineAddr(kControlRegion, 2), false});
    if (enqueue) {
        desc.sTx = 0;
        const std::uint64_t slot = tail_ % config_.capacity;
        // ...writes the data slot, then publishes the new tail.
        desc.accesses.push_back({lineAddr(kSlotRegion, slot), true});
        desc.accesses.push_back({lineAddr(kControlRegion, 2), true});
        ++tail_;
    } else {
        desc.sTx = 1;
        const std::uint64_t slot = head_ % config_.capacity;
        desc.accesses.push_back({lineAddr(kSlotRegion, slot), false});
        desc.accesses.push_back({lineAddr(kControlRegion, 1), true});
        ++head_;
    }
    return desc;
}

// ---- CounterArrayWorkload --------------------------------------------------

CounterArrayWorkload::CounterArrayWorkload(const Config &config,
                                           int num_threads)
    : config_(config)
{
    sim_assert(config.counters >= 1);
    sim_assert(config.touchesPerTx >= 1);
    (void)num_threads;
    // Precompute the Zipf CDF once.
    cdf_.reserve(config.counters);
    double total = 0.0;
    for (std::uint64_t rank = 0; rank < config.counters; ++rank) {
        total += 1.0
               / std::pow(static_cast<double>(rank + 1),
                          config.skew);
        cdf_.push_back(total);
    }
    for (double &value : cdf_)
        value /= total;
}

std::uint64_t
CounterArrayWorkload::drawCounter(sim::Rng &rng) const
{
    const double roll = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), roll);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

TxDescriptor
CounterArrayWorkload::next(sim::ThreadId thread, sim::Rng &rng)
{
    (void)thread;
    TxDescriptor desc;
    desc.sTx = 0;
    desc.workPerAccess = config_.workPerAccess;
    desc.nonTxWork = static_cast<sim::Cycles>(
        rng.range(static_cast<std::int64_t>(config_.nonTxWork / 2),
                  static_cast<std::int64_t>(config_.nonTxWork * 3
                                            / 2)));
    // Read-modify-write each touched counter: reads first, then the
    // upgrades (read-early / write-late, as real code behaves).
    std::vector<std::uint64_t> touched;
    for (int i = 0; i < config_.touchesPerTx; ++i)
        touched.push_back(drawCounter(rng));
    for (std::uint64_t counter : touched)
        desc.accesses.push_back({lineAddr(kCounterRegion, counter),
                                 false});
    for (std::uint64_t counter : touched)
        desc.accesses.push_back({lineAddr(kCounterRegion, counter),
                                 true});
    return desc;
}

} // namespace workloads
