/**
 * @file
 * Semantic data-structure workloads.
 *
 * Where the synthetic STAMP generators *statistically* imitate the
 * paper's benchmarks, these workloads derive their access streams
 * from live shadow data structures: a transaction's addresses are
 * the bucket/node/slot locations an actual operation would touch, so
 * conflicts, footprints and similarity emerge from the structure's
 * real sharing pattern instead of calibrated fractions.
 *
 * Three structures cover the paper's motivating behaviours
 * (Section 3.1):
 *
 *  - HashMapWorkload: insert/lookup/erase over a shared open-chained
 *    hash table. Conflicts are transient bucket collisions -- the
 *    paper's low-similarity example ("inserting to a hash table").
 *  - FifoQueueWorkload: enqueue/dequeue on one shared ring. Every
 *    operation touches the same head/tail lines -- the paper's
 *    high-similarity persistent-conflict example ("enqueuing and
 *    dequeuing from a queue").
 *  - CounterArrayWorkload: Zipf-skewed read-modify-write over an
 *    array of counters (a histogram/statistics kernel): a hot head
 *    with a long parallel tail.
 */

#ifndef BFGTS_WORKLOADS_STRUCTURES_H
#define BFGTS_WORKLOADS_STRUCTURES_H

#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace workloads {

/**
 * Shared open-chained hash table: site 0 = insert, site 1 = lookup,
 * site 2 = erase. An operation reads the bucket head line, walks
 * chain nodes, and (for mutations) writes the affected node plus the
 * shared element-count line.
 */
class HashMapWorkload : public Workload
{
  public:
    struct Config {
        /** Number of buckets (one line each). */
        std::uint64_t buckets = 512;
        /** Keys drawn from [0, keySpace). */
        std::uint64_t keySpace = 4096;
        /** Operation mix: P(insert), P(lookup); rest = erase. */
        double insertFrac = 0.4;
        double lookupFrac = 0.4;
        /** Compute cycles per touched line (hashing, compares). */
        sim::Cycles workPerAccess = 25;
        /** Non-transactional cycles between operations. */
        sim::Cycles nonTxWork = 1200;
        int txPerThread = 150;
    };

    HashMapWorkload(const Config &config, int num_threads);

    std::string name() const override { return "HashMap"; }
    int numStaticTx() const override { return 3; }
    int txPerThread() const override { return config_.txPerThread; }
    TxDescriptor next(sim::ThreadId thread, sim::Rng &rng) override;

    /** Elements currently in the shadow table (tests). */
    std::size_t size() const { return elements_; }

  private:
    Config config_;
    /** Shadow chains: per bucket, the node ids currently chained. */
    std::vector<std::vector<std::uint32_t>> chains_;
    std::size_t elements_ = 0;
    std::uint32_t nextNode_ = 1;
};

/**
 * One shared bounded FIFO: site 0 = enqueue, site 1 = dequeue.
 * Every operation reads head and tail control lines and writes one
 * of them plus the data slot -- the queue example of Section 3.1.
 */
class FifoQueueWorkload : public Workload
{
  public:
    struct Config {
        /** Ring capacity in slots (one line each). */
        std::uint64_t capacity = 256;
        sim::Cycles workPerAccess = 15;
        sim::Cycles nonTxWork = 800;
        int txPerThread = 200;
    };

    FifoQueueWorkload(const Config &config, int num_threads);

    std::string name() const override { return "FifoQueue"; }
    int numStaticTx() const override { return 2; }
    int txPerThread() const override { return config_.txPerThread; }
    TxDescriptor next(sim::ThreadId thread, sim::Rng &rng) override;

    /** Occupancy of the shadow ring (tests). */
    std::uint64_t occupancy() const { return tail_ - head_; }

  private:
    Config config_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

/**
 * Zipf-skewed counter increments: a single site whose transactions
 * read-modify-write a handful of counters, mostly from the hot head
 * of the distribution.
 */
class CounterArrayWorkload : public Workload
{
  public:
    struct Config {
        /** Number of counters (one line each). */
        std::uint64_t counters = 1024;
        /** Zipf skew: P(rank r) ~ 1 / (r+1)^skew. */
        double skew = 1.1;
        /** Counters touched per transaction. */
        int touchesPerTx = 4;
        sim::Cycles workPerAccess = 20;
        sim::Cycles nonTxWork = 1500;
        int txPerThread = 200;
    };

    CounterArrayWorkload(const Config &config, int num_threads);

    std::string name() const override { return "CounterArray"; }
    int numStaticTx() const override { return 1; }
    int txPerThread() const override { return config_.txPerThread; }
    TxDescriptor next(sim::ThreadId thread, sim::Rng &rng) override;

  private:
    /** Draw a counter index from the (precomputed) Zipf CDF. */
    std::uint64_t drawCounter(sim::Rng &rng) const;

    Config config_;
    std::vector<double> cdf_;
};

} // namespace workloads

#endif // BFGTS_WORKLOADS_STRUCTURES_H
