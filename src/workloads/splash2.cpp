#include "splash2.h"

#include "sim/logging.h"

namespace workloads {

namespace {

/**
 * Barnes-Hut n-body: long force computations, tiny tree-insertion
 * critical sections on a large octree (sparse sharing).
 */
SyntheticParams
barnesParams()
{
    SyntheticParams params;
    params.name = "Barnes";
    params.txPerThread = 200;
    params.hotGroupLines = {8192}; // the shared octree
    SiteParams insert;
    insert.meanAccesses = 5;
    insert.accessJitter = 1;
    insert.similarity = 0.3;
    insert.workPerAccess = 15;
    insert.nonTxWork = 9000; // the force computation
    insert.hotGroups = {{.group = 0, .frac = 0.6,
                         .writeFraction = 0.4}};
    params.sites = {insert};
    return params;
}

/**
 * Ocean: grid relaxation with boundary-row exchange; transactions
 * touch only the seam between neighbouring partitions.
 */
SyntheticParams
oceanParams()
{
    SyntheticParams params;
    params.name = "Ocean";
    params.txPerThread = 200;
    params.hotGroupLines = {16384}; // boundary rows
    SiteParams boundary;
    boundary.meanAccesses = 4;
    boundary.accessJitter = 1;
    boundary.similarity = 0.8; // same seam every sweep
    boundary.workPerAccess = 10;
    boundary.nonTxWork = 12000; // interior relaxation
    boundary.hotGroups = {{.group = 0, .frac = 0.5,
                           .writeFraction = 0.5}};
    params.sites = {boundary};
    return params;
}

/**
 * Raytrace: a global ray-bundle counter plus per-thread hit buffers;
 * the counter is the only (tiny, occasional) shared write.
 */
SyntheticParams
raytraceParams()
{
    SyntheticParams params;
    params.name = "Raytrace";
    params.txPerThread = 300;
    params.hotGroupLines = {1024};
    SiteParams counter;
    counter.weight = 1.0;
    counter.meanAccesses = 3;
    counter.accessJitter = 1;
    counter.similarity = 0.6;
    counter.workPerAccess = 10;
    counter.nonTxWork = 6000; // tracing rays
    counter.hotGroups = {{.group = 0, .frac = 0.4,
                          .writeFraction = 0.6}};
    SiteParams shade;
    shade.weight = 1.0;
    shade.meanAccesses = 6;
    shade.accessJitter = 2;
    shade.similarity = 0.2;
    shade.workPerAccess = 20;
    shade.nonTxWork = 6000;
    params.sites = {counter, shade};
    return params;
}

} // namespace

std::vector<std::string>
splash2BenchmarkNames()
{
    return {"Barnes", "Ocean", "Raytrace"};
}

std::unique_ptr<SyntheticWorkload>
makeSplash2Workload(const std::string &name, int num_threads)
{
    SyntheticParams params;
    if (name == "Barnes") {
        params = barnesParams();
    } else if (name == "Ocean") {
        params = oceanParams();
    } else if (name == "Raytrace") {
        params = raytraceParams();
    } else {
        sim_fatal("unknown SPLASH2 benchmark '%s'", name.c_str());
    }
    return std::make_unique<SyntheticWorkload>(params, num_threads);
}

} // namespace workloads
