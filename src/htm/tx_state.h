/**
 * @file
 * Per-transaction runtime state tracked by the HTM substrate.
 *
 * The baseline system is LogTM-like: eager version management (undo
 * log) and eager conflict detection on exact read/write sets held at
 * cache-line granularity ("perfect signature used for conflict
 * detection", Table 2). Contention managers never see these exact
 * sets directly; they work from the Bloom/perfect Signature the
 * runtime captures at commit.
 */

#ifndef BFGTS_HTM_TX_STATE_H
#define BFGTS_HTM_TX_STATE_H

#include <cstdint>

#include "htm/tx_id.h"
#include "mem/addr.h"
#include "sim/det_hash.h"
#include "sim/types.h"

namespace htm {

/** State of one in-flight transaction. */
struct TxState {
    /** Dynamic transaction ID. */
    DTxId dTxId = kNoTx;

    /** Executing software thread. */
    sim::ThreadId thread = sim::kNoThread;

    /** CPU the thread is running on. */
    sim::CpuId cpu = sim::kNoCpu;

    /**
     * Age for conflict resolution. Assigned at the *first* begin of a
     * transactional section and preserved across aborts/retries, as
     * in LogTM, so a repeatedly aborted transaction grows relatively
     * older and eventually wins every conflict (no starvation).
     */
    std::uint64_t timestamp = 0;

    /** Tick this attempt started executing (for wasted-work stats). */
    sim::Tick attemptStart = 0;

    /** Exact read set (line numbers). */
    sim::HashSet<mem::Addr> readSet;

    /** Exact write set (line numbers). */
    sim::HashSet<mem::Addr> writeSet;

    /** Cycles of useful work done in this attempt (for abort cost). */
    sim::Cycles workDone = 0;

    /** Number of accesses performed in this attempt. */
    int accessesDone = 0;

    /** True between begin and commit/abort. */
    bool active = false;

    /** Read/write set footprint in lines. */
    std::size_t
    footprint() const
    {
        // Sets may overlap (read-then-write lines live in both);
        // count the union. writeSet is usually the smaller.
        std::size_t unique_writes = 0;
        // lint:allow(unordered-iteration): commutative sum; the
        // result is independent of visit order.
        for (mem::Addr line : writeSet)
            unique_writes += readSet.count(line) ? 0 : 1;
        return readSet.size() + unique_writes;
    }

    /** Reset per-attempt state (sets, work), keeping identity/age. */
    void
    resetAttempt()
    {
        readSet.clear();
        writeSet.clear();
        workDone = 0;
        accessesDone = 0;
        active = false;
    }
};

} // namespace htm

#endif // BFGTS_HTM_TX_STATE_H
