/**
 * @file
 * Eager, exact conflict detection at cache-line granularity.
 *
 * The detector maintains, per line, the current transactional writer
 * and the set of transactional readers. An access by transaction T
 * conflicts when:
 *   - read:  another transaction has the line in its write set;
 *   - write: another transaction has the line in its read or write
 *            set.
 * Read-read sharing never conflicts.
 *
 * Resolution policy (LogTM-flavored, hybrid "eldest wins"):
 *   - If the requester is older than every conflicting holder, the
 *     holders abort (the oldest transaction in the system can always
 *     make progress -- no livelock).
 *   - Otherwise the requester stalls and retries; after a bounded
 *     number of consecutive stalls on the same access it aborts
 *     itself (breaks potential deadlock cycles, as LogTM's
 *     possible-cycle heuristic does).
 */

#ifndef BFGTS_HTM_CONFLICT_DETECTOR_H
#define BFGTS_HTM_CONFLICT_DETECTOR_H

#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "htm/tx_state.h"
#include "sim/det_hash.h"
#include "sim/stats.h"

namespace sim {
class AuditEngine;
}

namespace htm {

/** How transactional read/write sets are checked for conflicts. */
enum class DetectionMode {
    /** Exact per-line ownership ("perfect signature", Table 2). */
    Exact,
    /**
     * LogTM-SE-style Bloom signatures: each transaction's read and
     * write sets are tracked as hardware Bloom filters and coherence
     * requests test against them. False positives cause *false
     * conflicts* -- transactions serialized or aborted over lines
     * they never actually shared (Sanchez et al., MICRO'07).
     */
    Signature,
};

/** What the requester must do about a conflicting access. */
enum class Resolution {
    /** No conflict: the access was recorded; proceed. */
    Proceed,
    /** Conflict: requester must stall and retry this access. */
    StallRequester,
    /** Conflict: requester must abort itself. */
    AbortRequester,
    /** Conflict: the holders listed must abort; requester retries. */
    AbortHolders,
};

/** Outcome of one requested access. */
struct AccessResult {
    Resolution resolution = Resolution::Proceed;
    /** Conflicting transactions (holders), when resolution != Proceed. */
    std::vector<TxState *> conflicts;
};

/** Tunables of the resolution policy. */
struct ConflictPolicy {
    /**
     * Consecutive stalls on one access before the conflict escalates
     * to an abort (LogTM's possible-cycle heuristic fires quickly;
     * sustained conflicts in an eager HTM end in aborts).
     */
    int maxStallRetries = 1;

    /** Conflict check mechanism (exact, or Bloom signatures). */
    DetectionMode detectionMode = DetectionMode::Exact;

    /** Signature geometry when detectionMode == Signature. */
    bloom::BloomConfig signature{.numBits = 2048, .numHashes = 4};

    /**
     * LogTM aborts the *requester* on a possible cycle, with no age
     * priority -- which is what lets repeated mutual aborts starve
     * long transactions under reactive managers (Bobba et al.'s
     * pathologies). Only after a transaction has self-aborted this
     * many times does age-based arbitration kick in and let an old
     * requester kill younger holders, bounding worst-case starvation.
     */
    int selfAbortEscape = 8;
};

/**
 * Global registry of transactional ownership.
 *
 * All methods are O(1)-ish per line touched; commit/abort removal is
 * proportional to the transaction's footprint.
 */
class ConflictDetector
{
  public:
    explicit ConflictDetector(const ConflictPolicy &policy = {})
        : policy_(policy), sigProto_(policy.signature)
    {
    }

    /**
     * Attempt an access and record it if conflict-free.
     *
     * @param tx            Requesting transaction (must be active).
     * @param line          Line number (mem::lineNumber of the addr).
     * @param is_write      Store or load.
     * @param stall_retries Consecutive stalls the requester has already
     *                      suffered on this same access.
     * @param prior_aborts  Times this transactional section has
     *                      already aborted (starvation escape hatch).
     * @return Resolution and the conflicting holders, if any. On
     *         Proceed the line was added to tx's read/write set and
     *         the registry. On AbortHolders the caller must abort
     *         every holder (abortTx) and then retry the access.
     */
    AccessResult access(TxState &tx, mem::Addr line, bool is_write,
                        int stall_retries, int prior_aborts = 0);

    /**
     * Remove @p tx from the registry (commit or abort). The caller
     * owns undoing speculative state; this only releases isolation.
     */
    void removeTx(TxState &tx);

    /** Number of lines with at least one transactional owner. */
    std::size_t ownedLines() const { return lines_.size(); }

    const sim::Counter &conflictsDetected() const { return conflicts_; }

    /**
     * Conflicts reported by Bloom signatures that the exact sets
     * disprove (signature mode only): pure false-positive cost.
     */
    const sim::Counter &falseConflicts() const
    {
        return falseConflicts_;
    }

    /**
     * Distribution of consecutive NACK retries a requester had
     * already suffered each time a conflict was resolved (how long
     * stalls last before resolution or escalation).
     */
    const sim::Histogram &nackRetryHist() const
    {
        return nackRetryHist_;
    }

    /** Sanity check (tests): registry matches every active tx's sets. */
    bool consistentWith(const std::vector<TxState *> &active) const;

    /**
     * Invariant audit (sim/audit.h): granular version of
     * consistentWith() that reports which invariant broke.
     *  - htm.registry:  every read/write-set entry of every active tx
     *    is present in the line registry and vice versa;
     *  - htm.isolation: eager conflict detection holds -- a written
     *    line has exactly one writer and no foreign readers;
     *  - bloom.membership (Signature mode): a transaction's hardware
     *    signatures contain its entire exact sets (Bloom filters
     *    never report false negatives) and signatures exist only for
     *    active transactions (cleared on commit/abort).
     */
    void auditCheck(sim::AuditEngine &audit,
                    const std::vector<const TxState *> &active,
                    sim::Tick tick) const;

    /**
     * Test hook for the audit mutation selftest: force @p tx as the
     * registered writer of @p line without conflict checking,
     * corrupting isolation so htm.isolation / htm.registry must
     * fire. Never call outside tests.
     */
    void
    testForceWriter(mem::Addr line, TxState &tx)
    {
        lines_[line].writer = &tx;
    }

  private:
    struct LineState {
        TxState *writer = nullptr;
        std::vector<TxState *> readers;
    };

    /**
     * Per-transaction hardware signatures (Signature mode). Built by
     * copying the detector's empty prototype filter: the H3 matrix is
     * shared behind a refcount, so per-transaction setup is two word
     * vectors, not a matrix rebuild.
     */
    struct TxSignatures {
        htm::DTxId dTxId;
        TxState *owner;
        bloom::BloomFilter readSig;
        bloom::BloomFilter writeSig;
        TxSignatures(htm::DTxId id, TxState *tx,
                     const bloom::BloomFilter &proto)
            : dTxId(id), owner(tx), readSig(proto), writeSig(proto)
        {
        }
    };

    /** Holders the configured mechanism reports for an access. */
    std::vector<TxState *> findConflicts(TxState &tx, mem::Addr line,
                                         bool is_write);

    TxSignatures &signaturesFor(TxState &tx);

    ConflictPolicy policy_;
    /** Empty prototype filter cloned into each TxSignatures. */
    bloom::BloomFilter sigProto_;
    sim::HashMap<mem::Addr, LineState> lines_;
    /**
     * Active transactions' signatures, sorted by dTxID. A flat array
     * ordered by construction: the snoop sweep in findConflicts()
     * visits remote transactions in dTxID order directly -- no hash
     * iteration, no post-hoc sort. The active population is small
     * (one tx per hardware thread), so ordered insertion into a
     * contiguous vector beats hashing.
     */
    std::vector<std::unique_ptr<TxSignatures>> signatures_;
    sim::Counter conflicts_;
    sim::Counter falseConflicts_;
    sim::Histogram nackRetryHist_ = sim::Histogram::makeLog2(12);
};

} // namespace htm

#endif // BFGTS_HTM_CONFLICT_DETECTOR_H
