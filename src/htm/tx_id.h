/**
 * @file
 * Static and dynamic transaction identifiers (paper Section 4).
 *
 * An sTxID names a transaction *site* in the program source; a dTxID
 * is the concatenation of an sTxID with the executing thread's ID.
 * The hardware predictor recovers the sTxID from a dTxID with a right
 * shift (Example 1: "confidx = CPUTable[i] >> shift_value"), so the
 * encoding here places the sTxID in the high bits:
 *
 *     dTxID = (sTxID << threadBits) | threadId
 */

#ifndef BFGTS_HTM_TX_ID_H
#define BFGTS_HTM_TX_ID_H

#include <cstdint>

#include "sim/logging.h"
#include "sim/types.h"

namespace htm {

/** Static transaction ID, assigned in program code. */
using STxId = int;

/** Dynamic transaction ID: (sTxID << threadBits) | threadId. */
using DTxId = int;

/** Sentinel: no transaction. */
constexpr DTxId kNoTx = -1;

/**
 * Encoder/decoder for the dTxID space of one program run.
 *
 * The shift value is what BFGTS programs into the predictor's shift
 * register via TX_QUERY_PREDICTOR.
 */
class TxIdSpace
{
  public:
    /**
     * @param num_static_tx Number of transaction sites in the code.
     * @param num_threads   Number of software threads.
     */
    TxIdSpace(int num_static_tx, int num_threads)
        : numStaticTx_(num_static_tx), numThreads_(num_threads),
          shift_(bitsFor(num_threads))
    {
        sim_assert(num_static_tx >= 1);
        sim_assert(num_threads >= 1);
    }

    /** Encode a dTxID. */
    DTxId
    make(sim::ThreadId thread, STxId stx) const
    {
        sim_assert(thread >= 0 && thread < numThreads_);
        sim_assert(stx >= 0 && stx < numStaticTx_);
        return (stx << shift_) | thread;
    }

    /** The predictor's shift: sTxID = dTxID >> shift. */
    int shift() const { return shift_; }

    /** Recover the static ID (the hardware's right shift). */
    STxId
    staticOf(DTxId dtx) const
    {
        sim_assert(dtx >= 0);
        return dtx >> shift_;
    }

    /** Recover the thread ID (mask off the sTxID bits). */
    sim::ThreadId
    threadOf(DTxId dtx) const
    {
        sim_assert(dtx >= 0);
        return dtx & ((1 << shift_) - 1);
    }

    int numStaticTx() const { return numStaticTx_; }
    int numThreads() const { return numThreads_; }

    /** Total number of distinct dTxIDs. */
    int
    numDynamicTx() const
    {
        return numStaticTx_ * numThreads_;
    }

    /**
     * Dense index of a dTxID in [0, numDynamicTx()), for array-backed
     * per-dTxID tables (statistics, Bloom filter tables).
     */
    int
    denseIndex(DTxId dtx) const
    {
        return staticOf(dtx) * numThreads_ + threadOf(dtx);
    }

  private:
    static int
    bitsFor(int n)
    {
        int bits = 1;
        while ((1 << bits) < n)
            ++bits;
        return bits;
    }

    int numStaticTx_;
    int numThreads_;
    int shift_;
};

} // namespace htm

#endif // BFGTS_HTM_TX_ID_H
