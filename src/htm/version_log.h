/**
 * @file
 * LogTM-style undo log (eager version management).
 *
 * LogTM writes memory in place and saves the old value of every line
 * a transaction writes to a per-thread log in cacheable virtual
 * memory. Commit is then trivial (discard the log); abort walks the
 * log backwards in software, restoring old values.
 *
 * The simulator is timing-only, so entries carry no data -- the log
 * tracks which lines were saved (first write per line only, as the
 * hardware filters redundant log writes) and prices the three
 * operations:
 *  - append: one store to the log (usually L1-resident),
 *  - commit: constant (reset the log pointer),
 *  - abort:  trap + per-entry restore (two memory operations each).
 */

#ifndef BFGTS_HTM_VERSION_LOG_H
#define BFGTS_HTM_VERSION_LOG_H

#include <vector>

#include "mem/addr.h"
#include "sim/det_hash.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace htm {

/** Cost model of the undo log. */
struct VersionLogConfig {
    /** Cycles to append one entry (store to a hot log page). */
    sim::Cycles appendCost = 4;
    /** Cycles to seal the log at commit (reset pointer, fence). */
    sim::Cycles commitCost = 10;
    /** Trap + abort-handler entry cost (pipeline flush, vector to
     *  the software handler). */
    sim::Cycles abortTrapCost = 1000;
    /** Cycles to restore one logged line (read entry, write back). */
    sim::Cycles restorePerEntry = 40;
};

/**
 * Per-thread undo log.
 *
 * The runner calls append() on every transactional store; the return
 * value is the logging latency to add to the access (zero for
 * redundant writes to an already-logged line). commit()/abort()
 * return their cost and reset the log.
 */
class VersionLog
{
  public:
    explicit VersionLog(const VersionLogConfig &config = {})
        : config_(config)
    {
    }

    /**
     * Log the old value of @p line before a store.
     * @return Logging cycles (0 if the line was already logged).
     */
    sim::Cycles
    append(mem::Addr line)
    {
        if (!logged_.insert(line).second)
            return 0;
        ++entries_;
        appends_.inc();
        if (entries_ > highWater_)
            highWater_ = entries_;
        return config_.appendCost;
    }

    /** Number of live entries (distinct lines logged). */
    std::size_t size() const { return entries_; }

    /** Deepest the log ever got (stat: log memory footprint). */
    std::size_t highWaterMark() const { return highWater_; }

    /** Commit: discard the log. @return commit cycles. */
    sim::Cycles
    commit()
    {
        reset();
        commits_.inc();
        return config_.commitCost;
    }

    /**
     * Abort: walk the log backwards restoring old values.
     * @return trap + restore cycles, proportional to the entries.
     */
    sim::Cycles
    abort()
    {
        const sim::Cycles cost =
            config_.abortTrapCost
            + static_cast<sim::Cycles>(entries_)
                  * config_.restorePerEntry;
        restoredEntries_.inc(entries_);
        aborts_.inc();
        reset();
        return cost;
    }

    const sim::Counter &appends() const { return appends_; }
    const sim::Counter &commits() const { return commits_; }
    const sim::Counter &aborts() const { return aborts_; }
    const sim::Counter &restoredEntries() const
    {
        return restoredEntries_;
    }

  private:
    void
    reset()
    {
        logged_.clear();
        entries_ = 0;
    }

    VersionLogConfig config_;
    sim::HashSet<mem::Addr> logged_;
    std::size_t entries_ = 0;
    std::size_t highWater_ = 0;
    sim::Counter appends_;
    sim::Counter commits_;
    sim::Counter aborts_;
    sim::Counter restoredEntries_;
};

} // namespace htm

#endif // BFGTS_HTM_VERSION_LOG_H
