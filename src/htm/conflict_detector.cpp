#include "conflict_detector.h"

#include <algorithm>
#include <string>

#include "sim/audit.h"
#include "sim/logging.h"

namespace htm {

ConflictDetector::TxSignatures &
ConflictDetector::signaturesFor(TxState &tx)
{
    auto it = std::lower_bound(
        signatures_.begin(), signatures_.end(), tx.dTxId,
        [](const std::unique_ptr<TxSignatures> &entry, DTxId id) {
            return entry->dTxId < id;
        });
    if (it == signatures_.end() || (*it)->dTxId != tx.dTxId) {
        it = signatures_.insert(
            it, std::make_unique<TxSignatures>(tx.dTxId, &tx,
                                               sigProto_));
    }
    return **it;
}

std::vector<TxState *>
ConflictDetector::findConflicts(TxState &tx, mem::Addr line,
                                bool is_write)
{
    std::vector<TxState *> conflicts;
    LineState &ls = lines_[line];

    // Exact holders (anyone other than tx itself).
    if (ls.writer != nullptr && ls.writer != &tx)
        conflicts.push_back(ls.writer);
    if (is_write) {
        for (TxState *reader : ls.readers) {
            // The writer may also appear in the reader list (it read
            // the line before upgrading); report each holder once.
            if (reader != &tx && reader != ls.writer)
                conflicts.push_back(reader);
        }
    }

    if (policy_.detectionMode == DetectionMode::Exact)
        return conflicts;

    // Signature mode: coherence requests test every active remote
    // transaction's Bloom signatures; hits beyond the exact holders
    // are false conflicts (signature aliasing). signatures_ is kept
    // sorted by dTxID, so this snoop sweep produces holders in
    // deterministic order by construction.
    std::vector<TxState *> signature_conflicts;
    for (const auto &sigs : signatures_) {
        TxState *other = sigs->owner;
        if (other == &tx || !other->active)
            continue;
        const bool hit =
            sigs->writeSig.mayContain(line)
            || (is_write && sigs->readSig.mayContain(line));
        if (!hit)
            continue;
        signature_conflicts.push_back(other);
        const bool real =
            std::find(conflicts.begin(), conflicts.end(), other)
            != conflicts.end();
        if (!real)
            falseConflicts_.inc();
    }
    return signature_conflicts;
}

AccessResult
ConflictDetector::access(TxState &tx, mem::Addr line, bool is_write,
                         int stall_retries, int prior_aborts)
{
    sim_assert(tx.active);

    AccessResult result;
    result.conflicts = findConflicts(tx, line, is_write);

    if (result.conflicts.empty()) {
        // Conflict-free: record ownership.
        LineState &ls = lines_[line];
        if (is_write) {
            ls.writer = &tx;
            tx.writeSet.insert(line);
        } else {
            if (!tx.readSet.count(line))
                ls.readers.push_back(&tx);
            tx.readSet.insert(line);
        }
        if (policy_.detectionMode == DetectionMode::Signature) {
            TxSignatures &sigs = signaturesFor(tx);
            if (is_write)
                sigs.writeSig.insert(line);
            else
                sigs.readSig.insert(line);
        }
        result.resolution = Resolution::Proceed;
        return result;
    }

    conflicts_.inc();
    nackRetryHist_.sample(static_cast<double>(stall_retries));

    // LogTM-flavored: the requester stalls and retries (the holder
    // NACKs it), hoping the holder finishes. When the stall budget
    // runs out -- a possible deadlock cycle -- the *requester*
    // aborts itself, as LogTM does. There is no age priority in the
    // common case, so repeated mutual aborts can starve long
    // transactions (the reactive-manager pathology); only a
    // transaction that has already been beaten selfAbortEscape times
    // gets age-based arbitration, which bounds starvation.
    if (stall_retries < policy_.maxStallRetries) {
        result.resolution = Resolution::StallRequester;
        return result;
    }
    if (prior_aborts >= policy_.selfAbortEscape) {
        const bool requester_oldest = std::all_of(
            result.conflicts.begin(), result.conflicts.end(),
            [&](const TxState *holder) {
                return tx.timestamp < holder->timestamp;
            });
        if (requester_oldest) {
            result.resolution = Resolution::AbortHolders;
            return result;
        }
    }
    result.resolution = Resolution::AbortRequester;
    return result;
}

void
ConflictDetector::removeTx(TxState &tx)
{
    auto sig_it = std::lower_bound(
        signatures_.begin(), signatures_.end(), tx.dTxId,
        [](const std::unique_ptr<TxSignatures> &entry, DTxId id) {
            return entry->dTxId < id;
        });
    if (sig_it != signatures_.end() && (*sig_it)->dTxId == tx.dTxId
        && (*sig_it)->owner == &tx) {
        signatures_.erase(sig_it);
    }
    // lint:allow(unordered-iteration): per-line erasures commute; the
    // final registry state is independent of visit order.
    for (mem::Addr line : tx.readSet) {
        auto it = lines_.find(line);
        if (it == lines_.end())
            continue;
        auto &readers = it->second.readers;
        readers.erase(std::remove(readers.begin(), readers.end(), &tx),
                      readers.end());
        if (readers.empty() && it->second.writer == nullptr)
            lines_.erase(it);
    }
    // lint:allow(unordered-iteration): same -- commuting erasures.
    for (mem::Addr line : tx.writeSet) {
        auto it = lines_.find(line);
        if (it == lines_.end())
            continue;
        if (it->second.writer == &tx)
            it->second.writer = nullptr;
        if (it->second.readers.empty() && it->second.writer == nullptr)
            lines_.erase(it);
    }
}

bool
ConflictDetector::consistentWith(
    const std::vector<TxState *> &active) const
{
    // Every read/write-set entry of every active tx must be present
    // in the registry, and vice versa.
    std::size_t expected_reads = 0;
    std::size_t expected_writes = 0;
    for (const TxState *tx : active) {
        // lint:allow(unordered-iteration): order-insensitive
        // membership checks in a test-only consistency sweep.
        for (mem::Addr line : tx->readSet) {
            auto it = lines_.find(line);
            if (it == lines_.end())
                return false;
            const auto &readers = it->second.readers;
            if (std::find(readers.begin(), readers.end(), tx)
                == readers.end()) {
                return false;
            }
            ++expected_reads;
        }
        // lint:allow(unordered-iteration): same -- test-only checks.
        for (mem::Addr line : tx->writeSet) {
            auto it = lines_.find(line);
            if (it == lines_.end() || it->second.writer != tx)
                return false;
            ++expected_writes;
        }
    }
    std::size_t actual_reads = 0;
    std::size_t actual_writes = 0;
    // lint:allow(unordered-iteration): commutative sums in a
    // test-only consistency check; no simulated behavior depends on
    // the order.
    for (const auto &[line, ls] : lines_) {
        actual_reads += ls.readers.size();
        actual_writes += ls.writer != nullptr ? 1 : 0;
    }
    return actual_reads == expected_reads
        && actual_writes == expected_writes;
}

void
ConflictDetector::auditCheck(sim::AuditEngine &audit,
                             const std::vector<const TxState *> &active,
                             sim::Tick tick) const
{
    std::size_t expected_reads = 0;
    std::size_t expected_writes = 0;
    for (const TxState *tx : active) {
        const auto dtx = static_cast<std::int64_t>(tx->dTxId);
        // lint:allow(unordered-iteration): order-insensitive
        // membership checks; the audit reads state, never mutates.
        for (mem::Addr line : tx->readSet) {
            auto it = lines_.find(line);
            const bool registered =
                it != lines_.end()
                && std::find(it->second.readers.begin(),
                             it->second.readers.end(), tx)
                       != it->second.readers.end();
            audit.check(registered, "htm.registry",
                        "read-set line " + std::to_string(line)
                            + " missing from line registry",
                        tick, tx->cpu, tx->thread, -1, dtx);
            ++expected_reads;
        }
        // lint:allow(unordered-iteration): same -- membership checks.
        for (mem::Addr line : tx->writeSet) {
            auto it = lines_.find(line);
            audit.check(it != lines_.end() && it->second.writer == tx,
                        "htm.registry",
                        "write-set line " + std::to_string(line)
                            + " not registered to its writer",
                        tick, tx->cpu, tx->thread, -1, dtx);
            ++expected_writes;
        }
    }

    // Reverse direction plus eager isolation: a written line has one
    // writer and no foreign readers (two committed writers on one
    // line in overlapping windows are impossible by construction).
    std::size_t actual_reads = 0;
    std::size_t actual_writes = 0;
    // lint:allow(unordered-iteration): commutative sums and per-line
    // checks; no simulated behavior depends on the order.
    for (const auto &[line, ls] : lines_) {
        actual_reads += ls.readers.size();
        if (ls.writer == nullptr)
            continue;
        ++actual_writes;
        bool foreign_reader = false;
        for (const TxState *reader : ls.readers) {
            if (reader != ls.writer)
                foreign_reader = true;
        }
        audit.check(!foreign_reader, "htm.isolation",
                    "line " + std::to_string(line)
                        + " has a writer and a foreign reader",
                    tick, ls.writer->cpu, ls.writer->thread, -1,
                    static_cast<std::int64_t>(ls.writer->dTxId));
    }
    audit.check(actual_reads == expected_reads
                    && actual_writes == expected_writes,
                "htm.registry",
                "line registry holds entries no active tx owns", tick);

    if (policy_.detectionMode != DetectionMode::Signature)
        return;

    // Signatures exist only for active transactions (removeTx erases
    // them on commit/abort) and never report false negatives on the
    // owner's own exact sets.
    for (const auto &sigs : signatures_) {
        const TxState *owner = sigs->owner;
        const bool is_active =
            std::find(active.begin(), active.end(), owner)
            != active.end();
        audit.check(is_active, "bloom.membership",
                    "signature survives a committed/aborted tx", tick,
                    owner->cpu, owner->thread, -1,
                    static_cast<std::int64_t>(owner->dTxId));
        if (!is_active)
            continue;
        bool covered = true;
        // lint:allow(unordered-iteration): membership-only checks.
        for (mem::Addr line : owner->readSet)
            covered = covered && sigs->readSig.mayContain(line);
        // lint:allow(unordered-iteration): same.
        for (mem::Addr line : owner->writeSet)
            covered = covered && sigs->writeSig.mayContain(line);
        audit.check(covered, "bloom.membership",
                    "signature misses a line of its own exact set "
                    "(false negative)",
                    tick, owner->cpu, owner->thread, -1,
                    static_cast<std::int64_t>(owner->dTxId));
    }
}

} // namespace htm
