/**
 * @file
 * Experiment drivers shared by the benches, tests and examples.
 *
 * The paper's headline metric is speedup over a single core
 * (Fig. 4a): the same total work run on one CPU with one thread
 * under the plain Backoff manager. runStamp() runs one (benchmark,
 * contention manager) cell of the evaluation matrix;
 * runSingleCoreBaseline() produces the denominator. BaselineCache
 * memoizes baselines across a sweep.
 */

#ifndef BFGTS_RUNNER_EXPERIMENT_H
#define BFGTS_RUNNER_EXPERIMENT_H

#include <future>
#include <map>
#include <mutex>
#include <string>

#include "runner/config.h"
#include "runner/results.h"
#include "runner/simulation.h"

namespace runner {

/** Knobs a sweep varies on top of the Table 2 defaults. */
struct RunOptions {
    int numCpus = 16;
    int threadsPerCpu = 4;
    std::uint64_t seed = 1;
    /** 0 = use the workload's default transactions per thread. */
    int txPerThread = 0;
    /** 0 = keep the BFGTS default; else Bloom bits (Fig. 6 sweep). */
    std::uint64_t bloomBits = 0;
    /** 0 = keep the default small-tx similarity-update interval. */
    int smallTxInterval = 0;
    /** Base per-manager tunables (bloomBits/interval layered on top). */
    cm::CmTuning tuning;
    /** Checked simulation mode (--audit); ORed with the BFGTS_AUDIT
     *  environment switch via the SimConfig default. */
    bool audit = false;
};

/** Assemble a full SimConfig for one evaluation cell. */
SimConfig makeConfig(const std::string &workload, cm::CmKind kind,
                     const RunOptions &options = {});

/**
 * Run one (benchmark, manager) cell.
 *
 * @p profiler optionally attaches the host-performance profiler to
 * the run (SimConfig::profiler); @p quality optionally attaches the
 * decision-quality recorder (SimConfig::quality). Both are
 * deliberately NOT RunOptions knobs: RunOptions feeds the sweep
 * cache key, and observers must never perturb cache identity or
 * results.
 */
SimResults runStamp(const std::string &workload, cm::CmKind kind,
                    const RunOptions &options = {},
                    sim::Profiler *profiler = nullptr,
                    sim::QualityRecorder *quality = nullptr);

/**
 * Run the single-core baseline: one CPU, one thread, Backoff, the
 * same total transaction count as the parallel configuration in
 * @p options.
 */
SimResults runSingleCoreBaseline(const std::string &workload,
                                 const RunOptions &options = {},
                                 sim::Profiler *profiler = nullptr,
                                 sim::QualityRecorder *quality
                                 = nullptr);

/** Fig. 4a metric: baseline runtime / parallel runtime. */
double speedupOverOneCore(const SimResults &parallel,
                          const SimResults &baseline);

/**
 * Memoizes single-core baselines keyed by workload name.
 *
 * Safe for concurrent use (e.g. shared across SweepRunner workers):
 * each workload's baseline is computed exactly once -- the first
 * caller runs it while later callers for the same workload block on
 * the shared future instead of duplicating the simulation.
 */
class BaselineCache
{
  public:
    /** Baseline runtime for @p workload (computed once). */
    sim::Tick runtime(const std::string &workload,
                      const RunOptions &options = {});

  private:
    std::mutex mutex_;
    std::map<std::string, std::shared_future<sim::Tick>> cache_;
};

} // namespace runner

#endif // BFGTS_RUNNER_EXPERIMENT_H
