#include "audit_checks.h"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/audit.h"

namespace runner {

LifecycleAuditor::LifecycleAuditor(sim::AuditEngine &audit,
                                   int num_threads)
    : audit_(audit),
      threads_(static_cast<std::size_t>(num_threads))
{
}

void
LifecycleAuditor::onEvent(sim::ThreadId thread, TxEvent event,
                          sim::Tick tick, sim::CpuId cpu,
                          std::int64_t dtx)
{
    ThreadTx &state = threads_[static_cast<std::size_t>(thread)];
    audit_.check(!state.finished, "fsm.transition",
                 "lifecycle event on a finished thread", tick, cpu,
                 thread, -1, dtx);

    switch (event) {
      case TxEvent::Begin:
        audit_.check(!state.active, "fsm.transition",
                     "tx begin while a transaction is already active",
                     tick, cpu, thread, -1, dtx);
        state.active = true;
        state.dtx = dtx;
        ++begins_;
        return;
      case TxEvent::Access:
        audit_.check(state.active && state.dtx == dtx,
                     "fsm.transition",
                     "tx access outside an active transaction", tick,
                     cpu, thread, -1, dtx);
        return;
      case TxEvent::Commit:
      case TxEvent::Abort:
        audit_.check(state.active && state.dtx == dtx,
                     "fsm.transition",
                     event == TxEvent::Commit
                         ? "commit without a matching begin"
                         : "abort without a matching begin",
                     tick, cpu, thread, -1, dtx);
        state.active = false;
        state.dtx = -1;
        if (event == TxEvent::Commit)
            ++commits_;
        else
            ++aborts_;
        return;
      case TxEvent::ThreadFinish:
        audit_.check(!state.active, "fsm.transition",
                     "thread finished mid-transaction", tick, cpu,
                     thread, -1, dtx);
        state.finished = true;
        return;
    }
}

void
LifecycleAuditor::finalize(sim::Tick tick)
{
    audit_.check(begins_ == commits_ + aborts_, "fsm.balance",
                 "begins (" + std::to_string(begins_)
                     + ") != commits (" + std::to_string(commits_)
                     + ") + aborts (" + std::to_string(aborts_) + ")",
                 tick);
    for (std::size_t t = 0; t < threads_.size(); ++t) {
        const ThreadTx &state = threads_[t];
        audit_.check(state.finished && !state.active, "fsm.balance",
                     "thread ended the run unfinished or mid-"
                     "transaction",
                     tick, sim::kNoCpu,
                     static_cast<sim::ThreadId>(t));
    }
}

void
auditBreakdown(sim::AuditEngine &audit, const Breakdown &breakdown,
               sim::Cycles runtime, int num_cpus, sim::Tick tick)
{
    const sim::Cycles busy = breakdown.nonTx + breakdown.kernel
                           + breakdown.tx + breakdown.aborted
                           + breakdown.sched;
    const sim::Cycles capacity =
        static_cast<sim::Cycles>(num_cpus) * runtime;
    audit.check(busy <= capacity, "cycles.conservation",
                "busy cycles (" + std::to_string(busy)
                    + ") oversubscribe the machine capacity ("
                    + std::to_string(capacity) + ")",
                tick);
    audit.check(busy + breakdown.idle == capacity,
                "cycles.conservation",
                "breakdown buckets + idle ("
                    + std::to_string(busy + breakdown.idle)
                    + ") != numCpus * runtime ("
                    + std::to_string(capacity) + ")",
                tick);
}

void
auditResultTotals(sim::AuditEngine &audit, const SimResults &results,
                  std::uint64_t cm_commits, std::uint64_t cm_aborts,
                  sim::Tick tick)
{
    audit.check(results.commits == cm_commits, "cycles.results",
                "runner commit total (" + std::to_string(results.commits)
                    + ") != CM commit total ("
                    + std::to_string(cm_commits) + ")",
                tick);
    audit.check(results.aborts == cm_aborts, "cycles.results",
                "runner abort total (" + std::to_string(results.aborts)
                    + ") != CM abort total ("
                    + std::to_string(cm_aborts) + ")",
                tick);
}

void
auditCmCpuTable(sim::AuditEngine &audit,
                const std::vector<std::int64_t> &cm_view,
                const std::vector<std::int64_t> &running_dtxs,
                sim::Tick tick)
{
    for (std::size_t cpu = 0; cpu < cm_view.size(); ++cpu) {
        const std::int64_t dtx = cm_view[cpu];
        audit.check(dtx < 0
                        || std::find(running_dtxs.begin(),
                                     running_dtxs.end(), dtx)
                               != running_dtxs.end(),
                    "cm.cputable",
                    "CM CPU table names a transaction that is not "
                    "running",
                    tick, static_cast<sim::CpuId>(cpu),
                    sim::kNoThread, -1, dtx);
    }
}

void
auditWaitGraph(sim::AuditEngine &audit,
               const std::vector<ActiveTx> &active,
               const std::vector<WaitEdge> &edges, sim::Tick tick)
{
    // Timestamps: positive, and unique across active transactions
    // (the age arbiter breaks ties by timestamp; a duplicate would
    // make "oldest wins" ambiguous).
    for (std::size_t i = 0; i < active.size(); ++i) {
        audit.check(active[i].timestamp > 0, "htm.timestamp",
                    "active transaction has no timestamp", tick,
                    sim::kNoCpu, sim::kNoThread, -1, active[i].dtx);
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            audit.check(
                active[i].timestamp != active[j].timestamp,
                "htm.timestamp",
                "two active transactions share timestamp "
                    + std::to_string(active[i].timestamp),
                tick, sim::kNoCpu, sim::kNoThread, -1, active[i].dtx);
        }
    }

    // No transaction NACK-waits on itself.
    for (const WaitEdge &edge : edges) {
        audit.check(edge.waiter != edge.holder, "htm.waitgraph",
                    "transaction waits on itself", tick, sim::kNoCpu,
                    sim::kNoThread, -1, edge.waiter);
    }

    // The subgraph of younger-waits-on-older edges must be acyclic:
    // timestamps strictly decrease along such edges, so a cycle
    // requires a timestamp tie or corruption -- and it is the
    // direction age arbitration cannot break, a guaranteed deadlock.
    // (Edges where an older tx waits on a younger one are excluded:
    // mixed-direction cycles are transient and legal.)
    std::vector<std::size_t> restricted;
    for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].waiterTs >= edges[e].holderTs)
            restricted.push_back(e);
    }
    // Iterative DFS with colors over the restricted edges; the graph
    // is tiny (<= one edge set per stalled worker).
    enum class Color { White, Grey, Black };
    std::vector<std::int64_t> nodes;
    for (std::size_t e : restricted) {
        nodes.push_back(edges[e].waiter);
        nodes.push_back(edges[e].holder);
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    const auto indexOf = [&nodes](std::int64_t dtx) {
        return static_cast<std::size_t>(
            std::lower_bound(nodes.begin(), nodes.end(), dtx)
            - nodes.begin());
    };
    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (std::size_t e : restricted) {
        adj[indexOf(edges[e].waiter)].push_back(
            indexOf(edges[e].holder));
    }
    std::vector<Color> color(nodes.size(), Color::White);
    bool cycle = false;
    for (std::size_t root = 0; root < nodes.size() && !cycle; ++root) {
        if (color[root] != Color::White)
            continue;
        // Stack of (node, next child index) frames.
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        stack.emplace_back(root, 0);
        color[root] = Color::Grey;
        while (!stack.empty() && !cycle) {
            auto &[node, child] = stack.back();
            if (child >= adj[node].size()) {
                color[node] = Color::Black;
                stack.pop_back();
                continue;
            }
            const std::size_t next = adj[node][child++];
            if (color[next] == Color::Grey) {
                cycle = true;
            } else if (color[next] == Color::White) {
                color[next] = Color::Grey;
                stack.emplace_back(next, 0);
            }
        }
    }
    audit.check(!cycle, "htm.waitgraph",
                "cycle in the younger-waits-on-older NACK subgraph "
                "(unresolvable deadlock)",
                tick);
}

} // namespace runner
