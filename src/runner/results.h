/**
 * @file
 * Simulation outputs: runtime, contention, time breakdown, and the
 * Table-1-style per-site measurements.
 */

#ifndef BFGTS_RUNNER_RESULTS_H
#define BFGTS_RUNNER_RESULTS_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace runner {

/** Where the machine's cycles went (Fig. 5 categories). */
struct Breakdown {
    /** Useful non-transactional work. */
    sim::Cycles nonTx = 0;
    /** Kernel mode: context switches, yields, blocks, queue ops. */
    sim::Cycles kernel = 0;
    /** Useful (committed) transactional work. */
    sim::Cycles tx = 0;
    /** Aborted transactional work + rollback + backoff. */
    sim::Cycles aborted = 0;
    /** Contention-manager scheduling work (prediction, Bloom math,
     *  begin-stall spinning). */
    sim::Cycles sched = 0;
    /** CPU idle (no runnable thread). */
    sim::Cycles idle = 0;

    sim::Cycles
    total() const
    {
        return nonTx + kernel + tx + aborted + sched + idle;
    }

    /** Fraction of total machine cycles in a category. */
    double
    frac(sim::Cycles category) const
    {
        const sim::Cycles t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(category)
                            / static_cast<double>(t);
    }
};

/**
 * Begin-time conflict-prediction quality, measured against the exact
 * read/write sets the runner keeps (docs/observability.md).
 *
 * A "prediction" is a begin decision that serialized the transaction
 * behind a running enemy. At the serialized attempt's commit the
 * runner intersects its exact commit set with the enemy's last
 * committed set: overlap means the stall avoided a certain conflict
 * (true positive); no overlap means the enemy committed clean and
 * the stall was wasted (false positive). An abort of an attempt that
 * was never serialized is a missed prediction (false negative).
 */
struct PredictionQuality {
    /** Begin decisions that serialized (predicted-conflict -> stall). */
    std::uint64_t predictedStalls = 0;
    /** Serialized attempt committed, sets overlapped (stall-avoided-
     *  abort). */
    std::uint64_t truePositives = 0;
    /** Serialized attempt committed, enemy's set was disjoint
     *  (stall-but-enemy-committed-clean). */
    std::uint64_t falsePositives = 0;
    /** Abort of an attempt no prediction had serialized. */
    std::uint64_t falseNegatives = 0;
    /** Serialized attempt aborted anyway (conflict was real but the
     *  stall did not prevent it). */
    std::uint64_t predictedAborts = 0;
    /** Unserialized attempt committed cleanly (nothing to predict,
     *  nothing predicted). */
    std::uint64_t trueNegatives = 0;

    /** TP / (TP + FP); 0 when no classified predictions. */
    double
    precision() const
    {
        const std::uint64_t denom = truePositives + falsePositives;
        return denom == 0 ? 0.0
                          : static_cast<double>(truePositives)
                                / static_cast<double>(denom);
    }

    /** TP / (TP + FN); 0 when there was nothing to catch. */
    double
    recall() const
    {
        const std::uint64_t denom = truePositives + falseNegatives;
        return denom == 0 ? 0.0
                          : static_cast<double>(truePositives)
                                / static_cast<double>(denom);
    }

    /** Harmonic mean of precision and recall; 0 when both are 0. */
    double
    f1() const
    {
        const double p = precision();
        const double r = recall();
        return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
    }

    /** (TP + TN) / all classified attempts; 0 when none. */
    double
    accuracy() const
    {
        const std::uint64_t denom = truePositives + trueNegatives
                                  + falsePositives + falseNegatives;
        return denom == 0
                   ? 0.0
                   : static_cast<double>(truePositives
                                         + trueNegatives)
                         / static_cast<double>(denom);
    }
};

/**
 * Per-(winner, victim) abort attribution. An abort's "winner" is the
 * enemy transaction that survived the conflict; the victim is the one
 * rolled back. Keys are static transaction IDs, so edges aggregate
 * over threads and executions into a who-aborts-whom graph.
 */
struct ConflictEdgeStats {
    /** Aborts this edge inflicted on the victim site. */
    std::uint64_t aborts = 0;
    /** Victim cycles thrown away across those aborts. */
    sim::Cycles wastedCycles = 0;
};

/** Everything one simulation run reports. */
struct SimResults {
    std::string workload;
    std::string cm;

    /** Ticks until the last thread finished. */
    sim::Tick runtime = 0;

    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    /** Conflicting accesses detected (can exceed aborts: stalls). */
    std::uint64_t conflicts = 0;
    /** Begin-time serializations the CM imposed. */
    std::uint64_t serializations = 0;
    /** Begin-stalls that hit the safety timeout (should be ~0). */
    std::uint64_t stallTimeouts = 0;

    /** Table 4 metric: aborts / (commits + aborts). */
    double contentionRate = 0.0;

    Breakdown breakdown;

    /** Begin-time prediction quality (aggregate over all sites). */
    PredictionQuality prediction;

    /** Measured average similarity per static transaction site
     *  (Table 1), from exact read/write sets. */
    std::vector<double> similarityPerSite;

    /** Observed conflict graph as (min,max) site pairs (Table 1). */
    std::set<std::pair<int, int>> conflictGraph;

    /** Aborts per (min,max) site pair (diagnostics). */
    std::map<std::pair<int, int>, std::uint64_t> abortPairs;

    /** Directed abort attribution: (winner sTx, victim sTx) ->
     *  abort count and wasted victim cycles. Unlike abortPairs this
     *  keeps direction, so asymmetric bullying is visible. */
    std::map<std::pair<int, int>, ConflictEdgeStats> abortEdges;

    /** Begin-time serializations per (winner sTx, victim sTx) edge;
     *  winner -1 = serialized on a token/queue, not a named enemy. */
    std::map<std::pair<int, int>, std::uint64_t> serializationEdges;
};

} // namespace runner

#endif // BFGTS_RUNNER_RESULTS_H
