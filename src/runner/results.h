/**
 * @file
 * Simulation outputs: runtime, contention, time breakdown, and the
 * Table-1-style per-site measurements.
 */

#ifndef BFGTS_RUNNER_RESULTS_H
#define BFGTS_RUNNER_RESULTS_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace runner {

/** Where the machine's cycles went (Fig. 5 categories). */
struct Breakdown {
    /** Useful non-transactional work. */
    sim::Cycles nonTx = 0;
    /** Kernel mode: context switches, yields, blocks, queue ops. */
    sim::Cycles kernel = 0;
    /** Useful (committed) transactional work. */
    sim::Cycles tx = 0;
    /** Aborted transactional work + rollback + backoff. */
    sim::Cycles aborted = 0;
    /** Contention-manager scheduling work (prediction, Bloom math,
     *  begin-stall spinning). */
    sim::Cycles sched = 0;
    /** CPU idle (no runnable thread). */
    sim::Cycles idle = 0;

    sim::Cycles
    total() const
    {
        return nonTx + kernel + tx + aborted + sched + idle;
    }

    /** Fraction of total machine cycles in a category. */
    double
    frac(sim::Cycles category) const
    {
        const sim::Cycles t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(category)
                            / static_cast<double>(t);
    }
};

/** Everything one simulation run reports. */
struct SimResults {
    std::string workload;
    std::string cm;

    /** Ticks until the last thread finished. */
    sim::Tick runtime = 0;

    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    /** Conflicting accesses detected (can exceed aborts: stalls). */
    std::uint64_t conflicts = 0;
    /** Begin-time serializations the CM imposed. */
    std::uint64_t serializations = 0;
    /** Begin-stalls that hit the safety timeout (should be ~0). */
    std::uint64_t stallTimeouts = 0;

    /** Table 4 metric: aborts / (commits + aborts). */
    double contentionRate = 0.0;

    Breakdown breakdown;

    /** Measured average similarity per static transaction site
     *  (Table 1), from exact read/write sets. */
    std::vector<double> similarityPerSite;

    /** Observed conflict graph as (min,max) site pairs (Table 1). */
    std::set<std::pair<int, int>> conflictGraph;

    /** Aborts per (min,max) site pair (diagnostics). */
    std::map<std::pair<int, int>, std::uint64_t> abortPairs;
};

} // namespace runner

#endif // BFGTS_RUNNER_RESULTS_H
