#include "experiment.h"

#include "sim/logging.h"
#include "workloads/stamp.h"

namespace runner {

SimConfig
makeConfig(const std::string &workload, cm::CmKind kind,
           const RunOptions &options)
{
    SimConfig config;
    config.workload = workload;
    config.cm = kind;
    config.numCpus = options.numCpus;
    config.threadsPerCpu = options.threadsPerCpu;
    config.seed = options.seed;
    config.txPerThreadOverride = options.txPerThread;
    config.tuning = options.tuning;
    // The SimConfig default already reflects BFGTS_AUDIT; --audit can
    // only turn checking on, never below the environment's level.
    config.audit = config.audit || options.audit;
    if (options.bloomBits != 0)
        config.tuning.bfgts.bloom.numBits = options.bloomBits;
    if (options.smallTxInterval != 0)
        config.tuning.bfgts.smallTxInterval = options.smallTxInterval;
    return config;
}

SimResults
runStamp(const std::string &workload, cm::CmKind kind,
         const RunOptions &options, sim::Profiler *profiler,
         sim::QualityRecorder *quality)
{
    SimConfig config = makeConfig(workload, kind, options);
    config.profiler = profiler;
    config.quality = quality;
    Simulation simulation(config);
    return simulation.run();
}

SimResults
runSingleCoreBaseline(const std::string &workload,
                      const RunOptions &options,
                      sim::Profiler *profiler,
                      sim::QualityRecorder *quality)
{
    RunOptions single = options;
    single.numCpus = 1;
    single.threadsPerCpu = 1;
    // Same total work: one thread runs what all parallel threads
    // would have, combined.
    const int per_thread =
        options.txPerThread > 0
            ? options.txPerThread
            : workloads::makeStampWorkload(workload, 1)->txPerThread();
    single.txPerThread =
        per_thread * options.numCpus * options.threadsPerCpu;
    return runStamp(workload, cm::CmKind::Backoff, single, profiler,
                    quality);
}

double
speedupOverOneCore(const SimResults &parallel,
                   const SimResults &baseline)
{
    sim_assert(parallel.runtime > 0);
    return static_cast<double>(baseline.runtime)
         / static_cast<double>(parallel.runtime);
}

sim::Tick
BaselineCache::runtime(const std::string &workload,
                       const RunOptions &options)
{
    std::shared_future<sim::Tick> future;
    // Valid only on the thread that inserted the entry; that thread
    // runs the simulation outside the lock while everyone else for
    // the same workload blocks on the shared future.
    std::packaged_task<sim::Tick()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(workload);
        if (it == cache_.end()) {
            task = std::packaged_task<sim::Tick()>(
                [workload, options] {
                    return runSingleCoreBaseline(workload, options)
                        .runtime;
                });
            it = cache_.emplace(workload, task.get_future().share())
                     .first;
        }
        future = it->second;
    }
    if (task.valid())
        task();
    return future.get();
}

} // namespace runner
