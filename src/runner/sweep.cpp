#include "sweep.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "sim/audit.h"
#include "sim/json.h"
#include "sim/thread_pool.h"

namespace runner {

std::string
sweepDigestHex(const std::string &s)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const char c : s) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

namespace {

void
appendBloom(std::ostream &os, const bloom::BloomConfig &bloom)
{
    os << bloom.numBits << ',' << bloom.numHashes << ',' << bloom.seed
       << ',' << bloom.partitioned;
}

/** Every tunable that can change a cell's results, in fixed order. */
void
appendTuning(std::ostream &os, const cm::CmTuning &t)
{
    const auto num = [](double v) { return sim::jsonNumber(v); };
    os << "|backoff=" << t.backoff.baseWindow << ','
       << t.backoff.maxExponent;
    os << "|ats=" << num(t.ats.alpha) << ',' << num(t.ats.threshold)
       << ',' << t.ats.dynamicThreshold << ',' << t.ats.tuningWindow
       << ',' << num(t.ats.tuningStep) << ','
       << num(t.ats.minThreshold) << ',' << num(t.ats.maxThreshold)
       << ',' << t.ats.pressureCheckCost << ',' << t.ats.queueOpCost
       << ',' << t.ats.wakeCost << ',' << t.ats.abortBackoff;
    os << "|pts=";
    appendBloom(os, t.pts.bloom);
    os << ',' << t.pts.confThreshold << ',' << num(t.pts.incVal) << ','
       << num(t.pts.decVal) << ',' << num(t.pts.suspendDecay) << ','
       << num(t.pts.smallTxLines) << ',' << t.pts.scanBaseCost << ','
       << t.pts.scanPerEntryCost << ',' << t.pts.commitBaseCost << ','
       << t.pts.perWordCycle << ',' << t.pts.conflictCost << ','
       << t.pts.abortBackoff;
    os << "|bfgts=";
    appendBloom(os, t.bfgts.bloom);
    os << ',' << t.bfgts.confThreshold << ',' << num(t.bfgts.incVal)
       << ',' << num(t.bfgts.decayVal) << ','
       << num(t.bfgts.initialSimilarity) << ','
       << t.bfgts.confTableSlots << ',' << t.bfgts.similarityWeighting
       << ',' << num(t.bfgts.smallTxLines) << ','
       << t.bfgts.smallTxInterval << ',' << num(t.bfgts.pressureAlpha)
       << ',' << num(t.bfgts.pressureThreshold) << ','
       << t.bfgts.abortBackoff << ',' << t.bfgts.swScanBase << ','
       << t.bfgts.swScanPerEntry << ',' << t.bfgts.suspendCost << ','
       << t.bfgts.conflictCost << ',' << t.bfgts.commitBase << ','
       << t.bfgts.perWordCycle << ',' << t.bfgts.bloomPasses << ','
       << t.bfgts.fyl2xCost << ',' << t.bfgts.mathTailCost << ','
       << t.bfgts.pressureCheckCost;
}

// ---- cache file body (de)serialization -------------------------------

constexpr const char *kCacheMagic = "bfgts-sweep-cache-v1";

void
writeString(std::ostream &os, const char *key, const std::string &s)
{
    os << key << ' ' << s.size() << ' ' << s << '\n';
}

bool
readString(std::istream &is, const char *key, std::string *out)
{
    std::string token;
    std::size_t length = 0;
    if (!(is >> token) || token != key || !(is >> length))
        return false;
    if (is.get() != ' ')
        return false;
    out->resize(length);
    is.read(out->data(), static_cast<std::streamsize>(length));
    return static_cast<std::size_t>(is.gcount()) == length;
}

bool
expectToken(std::istream &is, const char *key)
{
    std::string token;
    return static_cast<bool>(is >> token) && token == key;
}

bool
readU64(std::istream &is, std::uint64_t *out)
{
    unsigned long long value = 0;
    if (!(is >> value))
        return false;
    *out = value;
    return true;
}

/** Shortest-round-trip doubles (sim::jsonNumber) parse back exactly
 *  with strtod; stream extraction would be locale-shaped. */
bool
readDouble(std::istream &is, double *out)
{
    std::string token;
    if (!(is >> token))
        return false;
    char *end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0' && end != token.c_str();
}

} // namespace

void
writeSweepResults(std::ostream &os, const SimResults &r)
{
    const auto num = [](double v) { return sim::jsonNumber(v); };
    writeString(os, "workload", r.workload);
    writeString(os, "cm", r.cm);
    os << "runtime " << r.runtime << '\n';
    os << "commits " << r.commits << '\n';
    os << "aborts " << r.aborts << '\n';
    os << "conflicts " << r.conflicts << '\n';
    os << "serializations " << r.serializations << '\n';
    os << "stallTimeouts " << r.stallTimeouts << '\n';
    os << "contentionRate " << num(r.contentionRate) << '\n';
    const Breakdown &b = r.breakdown;
    os << "breakdown " << b.nonTx << ' ' << b.kernel << ' ' << b.tx
       << ' ' << b.aborted << ' ' << b.sched << ' ' << b.idle << '\n';
    const PredictionQuality &p = r.prediction;
    os << "prediction " << p.predictedStalls << ' ' << p.truePositives
       << ' ' << p.falsePositives << ' ' << p.falseNegatives << ' '
       << p.predictedAborts << ' ' << p.trueNegatives << '\n';
    os << "similarity " << r.similarityPerSite.size();
    for (const double similarity : r.similarityPerSite)
        os << ' ' << num(similarity);
    os << '\n';
    os << "conflictGraph " << r.conflictGraph.size();
    for (const auto &[a, b2] : r.conflictGraph)
        os << ' ' << a << ' ' << b2;
    os << '\n';
    os << "abortPairs " << r.abortPairs.size();
    for (const auto &[pair, count] : r.abortPairs)
        os << ' ' << pair.first << ' ' << pair.second << ' ' << count;
    os << '\n';
    os << "abortEdges " << r.abortEdges.size();
    for (const auto &[pair, stats] : r.abortEdges) {
        os << ' ' << pair.first << ' ' << pair.second << ' '
           << stats.aborts << ' ' << stats.wastedCycles;
    }
    os << '\n';
    os << "serializationEdges " << r.serializationEdges.size();
    for (const auto &[pair, count] : r.serializationEdges)
        os << ' ' << pair.first << ' ' << pair.second << ' ' << count;
    os << '\n';
    os << "end\n";
}

bool
readSweepResults(std::istream &is, SimResults *r)
{
    if (!readString(is, "workload", &r->workload)
        || !readString(is, "cm", &r->cm)) {
        return false;
    }
    std::uint64_t runtime = 0;
    if (!expectToken(is, "runtime") || !readU64(is, &runtime))
        return false;
    r->runtime = runtime;
    if (!expectToken(is, "commits") || !readU64(is, &r->commits))
        return false;
    if (!expectToken(is, "aborts") || !readU64(is, &r->aborts))
        return false;
    if (!expectToken(is, "conflicts") || !readU64(is, &r->conflicts))
        return false;
    if (!expectToken(is, "serializations")
        || !readU64(is, &r->serializations)) {
        return false;
    }
    if (!expectToken(is, "stallTimeouts")
        || !readU64(is, &r->stallTimeouts)) {
        return false;
    }
    if (!expectToken(is, "contentionRate")
        || !readDouble(is, &r->contentionRate)) {
        return false;
    }
    Breakdown &b = r->breakdown;
    std::uint64_t cycles[6];
    if (!expectToken(is, "breakdown"))
        return false;
    for (std::uint64_t &value : cycles) {
        if (!readU64(is, &value))
            return false;
    }
    b.nonTx = cycles[0];
    b.kernel = cycles[1];
    b.tx = cycles[2];
    b.aborted = cycles[3];
    b.sched = cycles[4];
    b.idle = cycles[5];
    PredictionQuality &p = r->prediction;
    if (!expectToken(is, "prediction")
        || !readU64(is, &p.predictedStalls)
        || !readU64(is, &p.truePositives)
        || !readU64(is, &p.falsePositives)
        || !readU64(is, &p.falseNegatives)
        || !readU64(is, &p.predictedAborts)
        || !readU64(is, &p.trueNegatives)) {
        return false;
    }
    std::uint64_t count = 0;
    if (!expectToken(is, "similarity") || !readU64(is, &count))
        return false;
    r->similarityPerSite.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        double similarity = 0.0;
        if (!readDouble(is, &similarity))
            return false;
        r->similarityPerSite.push_back(similarity);
    }
    if (!expectToken(is, "conflictGraph") || !readU64(is, &count))
        return false;
    r->conflictGraph.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        int a = 0, b2 = 0;
        if (!(is >> a >> b2))
            return false;
        r->conflictGraph.emplace(a, b2);
    }
    if (!expectToken(is, "abortPairs") || !readU64(is, &count))
        return false;
    r->abortPairs.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        int a = 0, b2 = 0;
        std::uint64_t pairs = 0;
        if (!(is >> a >> b2) || !readU64(is, &pairs))
            return false;
        r->abortPairs[{a, b2}] = pairs;
    }
    if (!expectToken(is, "abortEdges") || !readU64(is, &count))
        return false;
    r->abortEdges.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        int a = 0, b2 = 0;
        ConflictEdgeStats stats;
        std::uint64_t wasted = 0;
        if (!(is >> a >> b2) || !readU64(is, &stats.aborts)
            || !readU64(is, &wasted)) {
            return false;
        }
        stats.wastedCycles = wasted;
        r->abortEdges[{a, b2}] = stats;
    }
    if (!expectToken(is, "serializationEdges") || !readU64(is, &count))
        return false;
    r->serializationEdges.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        int a = 0, b2 = 0;
        std::uint64_t edges = 0;
        if (!(is >> a >> b2) || !readU64(is, &edges))
            return false;
        r->serializationEdges[{a, b2}] = edges;
    }
    return expectToken(is, "end");
}

// ---- SweepRunner -----------------------------------------------------

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options))
{
}

std::string
SweepRunner::cellLabel(const SweepCell &cell)
{
    if (!cell.label.empty())
        return cell.label;
    if (cell.custom)
        return "custom";
    if (cell.baseline)
        return cell.workload + "/baseline";
    return cell.workload + "/" + cm::cmKindName(cell.cm)
         + " seed=" + std::to_string(cell.options.seed);
}

std::string
SweepRunner::cellKey(const SweepCell &cell)
{
    const RunOptions &o = cell.options;
    std::ostringstream key;
    key << "bfgts-sweep-key-v1";
    key << "|workload=" << cell.workload;
    key << "|cm=" << (cell.baseline ? "baseline"
                                    : cm::cmKindName(cell.cm));
    key << "|cpus=" << o.numCpus << "|tpc=" << o.threadsPerCpu
        << "|seed=" << o.seed << "|tx=" << o.txPerThread
        << "|bloomBits=" << o.bloomBits
        << "|interval=" << o.smallTxInterval
        // Effective audit mode: results are byte-identical either
        // way, but a warm cache must never silently satisfy a
        // checked run without executing the checks.
        << "|audit=" << (o.audit || sim::auditEnvEnabled() ? 1 : 0);
    appendTuning(key, o.tuning);
    key << "|git=" << sim::buildGitDescribe();
    return key.str();
}

std::vector<SweepCellResult>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    cells_ = cells;
    results_.assign(cells.size(), SweepCellResult{});
    stats_ = SweepStats{};
    if (!options_.cacheDir.empty()) {
        std::filesystem::create_directories(options_.cacheDir);
        // The -dirty suffix cannot distinguish successive dirty
        // states, so a warm cache may silently serve results from a
        // *different* uncommitted model. Loud warning, and the report
        // carries gitDirty so merged farm runs can't hide it.
        if (sim::buildGitDirty()) {
            std::fprintf(stderr,
                         "sweep: WARNING: cache key embeds dirty "
                         "'%s'; cached cells may predate current "
                         "uncommitted changes -- clear %s when "
                         "iterating\n",
                         sim::buildGitDescribe(),
                         options_.cacheDir.c_str());
        }
    }

    sim::ThreadPool pool(options_.jobs);
    std::size_t completed = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        pool.submit([this, i, &completed] {
            runCell(i);
            std::lock_guard<std::mutex> lock(mutex_);
            ++completed;
            progressLine(completed, i);
        });
    }
    pool.wait();
    return results_;
}

void
SweepRunner::runCell(std::size_t index)
{
    const SweepCell &cell = cells_[index];
    SweepCellResult &out = results_[index];
    try {
        if (cell.custom) {
            out.results = cell.custom();
        } else {
            const bool cached = !options_.cacheDir.empty();
            const std::string key = cached ? cellKey(cell) : "";
            // Quality sweeps skip cache *reads*: every cell must
            // execute so every cell carries quality data and the
            // report stays byte-identical across --jobs counts and
            // cache temperatures. Cache writes still happen below.
            if (cached && !options_.quality
                && readCache(key, &out.results)) {
                out.ok = true;
                out.fromCache = true;
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.cacheHits;
                return;
            }
            // One profiler/recorder per executed cell (never shared
            // across workers); the Data snapshots are the cell's
            // side channels.
            sim::Profiler prof;
            sim::Profiler *profiler =
                options_.profile ? &prof : nullptr;
            sim::QualityRecorder qual;
            sim::QualityRecorder *quality =
                options_.quality ? &qual : nullptr;
            out.results =
                cell.baseline
                    ? runSingleCoreBaseline(cell.workload,
                                            cell.options, profiler,
                                            quality)
                    : runStamp(cell.workload, cell.cm, cell.options,
                               profiler, quality);
            if (profiler != nullptr)
                out.profile = prof.data();
            if (quality != nullptr)
                out.quality = qual.data();
            if (cached && writeCache(key, index, out.results)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.cacheRaces;
            }
        }
        out.ok = true;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.executed;
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.errors;
    } catch (...) {
        out.ok = false;
        out.error = "unknown exception";
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.errors;
    }
}

void
SweepRunner::progressLine(std::size_t completed, std::size_t index)
{
    if (options_.progress == nullptr)
        return;
    const SweepCellResult &result = results_[index];
    std::ostream &os = *options_.progress;
    os << '[' << completed << '/' << cells_.size() << "] "
       << cellLabel(cells_[index]);
    if (!result.ok) {
        os << ": ERROR: " << result.error;
    } else {
        os << ": " << result.results.runtime << " ticks";
        if (result.fromCache)
            os << " (cached)";
    }
    os << std::endl;
}

std::string
SweepRunner::cachePath(const std::string &key) const
{
    return options_.cacheDir + "/" + sweepDigestHex(key) + ".cell";
}

bool
SweepRunner::readCache(const std::string &key,
                       SimResults *results) const
{
    std::ifstream is(cachePath(key));
    if (!is)
        return false;
    std::string magic;
    if (!std::getline(is, magic) || magic != kCacheMagic)
        return false;
    // Digest-collision / stale-entry guard: the stored key must match
    // the full configuration string, not just its hash.
    std::string stored;
    if (!readString(is, "key", &stored) || stored != key)
        return false;
    return readSweepResults(is, results);
}

bool
SweepRunner::writeCache(const std::string &key, std::size_t index,
                        const SimResults &results) const
{
    // Write to a temp file unique across processes AND jobs (farm
    // workers share one cache directory), then rename: every writer
    // lands a complete file and the last rename wins. Writers of the
    // same key produce identical bytes, so losing the race is
    // harmless; it is only counted (SweepStats::cacheRaces).
    const std::string path = cachePath(key);
    const std::string tmp = path + ".tmp." + std::to_string(getpid())
                            + "." + std::to_string(index);
    {
        std::ofstream os(tmp);
        if (!os)
            return false; // cache is best-effort; the results stand
        os << kCacheMagic << '\n';
        writeString(os, "key", key);
        writeSweepResults(os, results);
        if (!os)
            return false;
    }
    std::error_code ec;
    const bool raced = std::filesystem::exists(path, ec);
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
    return raced;
}

void
writeSweepReportPreamble(sim::JsonWriter &jw, const std::string &name,
                         const std::string &git, bool gitDirty,
                         std::uint64_t cellCount)
{
    jw.kv("schema", "bfgts-sweep-v1");
    jw.kv("kind", "sweep");
    jw.kv("name", name);
    jw.kv("git", git);
    jw.kv("gitDirty", gitDirty);
    jw.kv("cellCount", cellCount);
}

void
writeSweepCellJson(sim::JsonWriter &jw, const SweepCell &cell,
                   const SweepCellResult &result)
{
    jw.beginObject();
    jw.kv("label", SweepRunner::cellLabel(cell));
    jw.kv("workload", cell.workload);
    jw.kv("cm", cm::cmKindName(cell.cm));
    jw.kv("baseline", cell.baseline);
    jw.kv("cpus", cell.options.numCpus);
    jw.kv("threadsPerCpu", cell.options.threadsPerCpu);
    jw.kv("seed", cell.options.seed);
    jw.kv("txPerThread", cell.options.txPerThread);
    jw.kv("bloomBits", cell.options.bloomBits);
    jw.kv("smallTxInterval", cell.options.smallTxInterval);
    jw.kv("ok", result.ok);
    if (!result.ok) {
        jw.kv("error", result.error);
    } else {
        const SimResults &r = result.results;
        jw.kv("runtime", static_cast<std::uint64_t>(r.runtime));
        jw.kv("commits", r.commits);
        jw.kv("aborts", r.aborts);
        jw.kv("conflicts", r.conflicts);
        jw.kv("serializations", r.serializations);
        jw.kv("stallTimeouts", r.stallTimeouts);
        jw.kv("contentionRate", r.contentionRate);
        const Breakdown &b = r.breakdown;
        jw.beginObject("breakdown");
        jw.kv("nonTx", static_cast<std::uint64_t>(b.nonTx));
        jw.kv("kernel", static_cast<std::uint64_t>(b.kernel));
        jw.kv("tx", static_cast<std::uint64_t>(b.tx));
        jw.kv("aborted", static_cast<std::uint64_t>(b.aborted));
        jw.kv("sched", static_cast<std::uint64_t>(b.sched));
        jw.kv("idle", static_cast<std::uint64_t>(b.idle));
        jw.endObject();
    }
    jw.endObject();
}

void
SweepRunner::writeReport(std::ostream &os,
                         const std::string &name) const
{
    sim::JsonWriter jw(os);
    jw.beginObject();
    writeSweepReportPreamble(jw, name, sim::buildGitDescribe(),
                             sim::buildGitDirty(),
                             static_cast<std::uint64_t>(
                                 cells_.size()));
    jw.beginArray("cells");
    for (std::size_t i = 0; i < cells_.size(); ++i)
        writeSweepCellJson(jw, cells_[i], results_[i]);
    jw.endArray();
    jw.endObject();
}

void
SweepRunner::writeProfileReport(std::ostream &os,
                                const std::string &name) const
{
    std::vector<double> wall_ns_per_cycle;
    std::vector<double> events_per_sec;
    std::vector<double> wall_ns;
    for (const SweepCellResult &result : results_) {
        if (!result.profile.has_value())
            continue;
        wall_ns_per_cycle.push_back(result.profile->wallNsPerCycle());
        events_per_sec.push_back(result.profile->eventsPerSec());
        wall_ns.push_back(static_cast<double>(result.profile->wallNs));
    }
    const auto agg = [](sim::JsonWriter &jw, const char *key,
                        const sim::MinMedMax &m) {
        jw.beginObject(key);
        jw.kv("min", m.min);
        jw.kv("median", m.median);
        jw.kv("max", m.max);
        jw.endObject();
    };

    sim::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "bfgts-prof-v1");
    jw.kv("kind", "sweep");
    jw.kv("name", name);
    jw.kv("git", sim::buildGitDescribe());
    jw.kv("cellCount", static_cast<std::uint64_t>(cells_.size()));
    jw.kv("profiledCells",
          static_cast<std::uint64_t>(wall_ns.size()));
    jw.beginArray("cells");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const SweepCellResult &result = results_[i];
        if (!result.profile.has_value())
            continue;
        jw.beginObject();
        jw.kv("label", cellLabel(cells_[i]));
        jw.beginObject("run");
        result.profile->writeJson(jw);
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.beginObject("aggregate");
    agg(jw, "wallNsPerCycle", sim::minMedianMax(wall_ns_per_cycle));
    agg(jw, "eventsPerSec", sim::minMedianMax(events_per_sec));
    agg(jw, "wallNs", sim::minMedianMax(wall_ns));
    jw.endObject();
    jw.endObject();
    os << "\n";
}

void
SweepRunner::writeQualityReport(std::ostream &os,
                                const std::string &name) const
{
    std::vector<double> brier;
    std::vector<double> eq2_mean_abs;
    std::vector<double> eq3_mean_abs;
    std::vector<double> eq4_mean_abs;
    std::vector<double> wasted_stall;
    std::vector<double> saved_abort;
    for (const SweepCellResult &result : results_) {
        if (!result.quality.has_value())
            continue;
        const sim::QualityRecorder::Data &d = *result.quality;
        brier.push_back(d.brierScore());
        eq2_mean_abs.push_back(d.eq2SetSize.meanAbs());
        eq3_mean_abs.push_back(d.eq3Intersection.meanAbs());
        eq4_mean_abs.push_back(d.eq4Similarity.meanAbs());
        wasted_stall.push_back(
            static_cast<double>(d.wastedStallCycles));
        saved_abort.push_back(
            static_cast<double>(d.savedAbortCycles));
    }
    const auto agg = [](sim::JsonWriter &jw, const char *key,
                        const sim::MinMedMax &m) {
        jw.beginObject(key);
        jw.kv("min", m.min);
        jw.kv("median", m.median);
        jw.kv("max", m.max);
        jw.endObject();
    };

    sim::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "bfgts-qual-v1");
    jw.kv("kind", "sweep");
    jw.kv("name", name);
    jw.kv("git", sim::buildGitDescribe());
    jw.kv("cellCount", static_cast<std::uint64_t>(cells_.size()));
    jw.kv("qualityCells", static_cast<std::uint64_t>(brier.size()));
    jw.beginArray("cells");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const SweepCellResult &result = results_[i];
        if (!result.quality.has_value())
            continue;
        jw.beginObject();
        jw.kv("label", cellLabel(cells_[i]));
        jw.beginObject("run");
        result.quality->writeJson(jw);
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.beginObject("aggregate");
    agg(jw, "brierScore", sim::minMedianMax(brier));
    agg(jw, "eq2MeanAbsError", sim::minMedianMax(eq2_mean_abs));
    agg(jw, "eq3MeanAbsError", sim::minMedianMax(eq3_mean_abs));
    agg(jw, "eq4MeanAbsError", sim::minMedianMax(eq4_mean_abs));
    agg(jw, "wastedStallCycles", sim::minMedianMax(wasted_stall));
    agg(jw, "savedAbortCycles", sim::minMedianMax(saved_abort));
    jw.endObject();
    jw.endObject();
    os << "\n";
}

} // namespace runner
