/**
 * @file
 * Parallel sweep engine with on-disk result caching.
 *
 * Every table/figure bench and `bfgts_cli --sweep` walks a matrix of
 * independent deterministic simulations: (workload, manager, seed,
 * RunOptions) cells. SweepRunner executes such a matrix on a host
 * thread pool (src/sim/thread_pool.h) and guarantees:
 *
 *  - determinism: results are collected in job-index order, so
 *    aggregation and the JSON report are byte-identical no matter
 *    how many workers ran the sweep or in what order cells finished
 *    (tests/test_sweep.cpp proves parallel == serial bit-for-bit);
 *  - failure isolation: a throwing cell records an error result
 *    instead of killing the sweep;
 *  - caching: with a cache directory set, each standard cell's
 *    results are stored keyed by a digest of the full configuration
 *    (workload + manager + every RunOptions knob + git describe), so
 *    re-running a bench recomputes only changed cells. On a dirty
 *    tree `git describe` gains `-dirty` but cannot distinguish two
 *    different dirty states -- clear or disable the cache when
 *    iterating on uncommitted model changes.
 */

#ifndef BFGTS_RUNNER_SWEEP_H
#define BFGTS_RUNNER_SWEEP_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/results.h"
#include "sim/profiler.h"
#include "sim/quality.h"

namespace sim {
class JsonWriter;
} // namespace sim

namespace runner {

/** One cell of the evaluation matrix. */
struct SweepCell {
    std::string workload;
    cm::CmKind cm = cm::CmKind::BfgtsHw;
    RunOptions options;

    /** Run runSingleCoreBaseline() instead of runStamp() (the cm
     *  field is ignored; baselines always run under Backoff). */
    bool baseline = false;

    /** Display label for progress lines and the report; defaults to
     *  "workload/manager seed=N" (or "workload/baseline"). */
    std::string label;

    /**
     * Extension/test hook: run this instead of the standard cell.
     * Custom cells are never cached (there is no configuration to
     * digest) and may throw -- the sweep records the error.
     */
    std::function<SimResults()> custom;
};

/** Outcome of one cell. */
struct SweepCellResult {
    /** False when the cell threw; see error. */
    bool ok = false;
    /** True when results came from the on-disk cache. */
    bool fromCache = false;
    /** what() of the escaped exception (when !ok). */
    std::string error;
    /** Valid when ok. */
    SimResults results;
    /**
     * Host-performance profile of the cell, present only when
     * SweepOptions::profile was set AND the cell actually executed
     * (cache hits and errors have nothing to measure). Wall-clock
     * data, so inherently nondeterministic -- it flows only into
     * writeProfileReport(), never into results or the cache.
     */
    std::optional<sim::Profiler::Data> profile;
    /**
     * Decision-quality data of the cell, present only when
     * SweepOptions::quality was set. Unlike profile this is
     * deterministic, so quality sweeps bypass cache *reads* (every
     * cell executes and carries data; reports stay byte-identical
     * across --jobs counts) while still writing the cache.
     */
    std::optional<sim::QualityRecorder::Data> quality;
};

/** Execution accounting for one run() (not part of the report);
 *  every cell lands in exactly one of the first three buckets. */
struct SweepStats {
    /** Simulations executed to completion. */
    int executed = 0;
    /** Cells answered from the cache. */
    int cacheHits = 0;
    /** Cells that threw. */
    int errors = 0;
    /**
     * Cache writes that found the entry already present -- another
     * process (a farm worker sharing the cache directory) or a
     * duplicate cell landed the same key between our read miss and
     * our rename. Harmless (both writers produced identical bytes
     * for the same key), counted so multi-process runs can observe
     * contention. Not a cell bucket: a raced cell still counts in
     * executed.
     */
    int cacheRaces = 0;
};

/** How to execute a sweep. */
struct SweepOptions {
    /** Worker threads (clamped to at least 1). */
    int jobs = 1;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
    /** Per-cell progress lines ("[ 3/42] ..."); null disables. */
    std::ostream *progress = nullptr;
    /**
     * Attach a host-performance profiler to every executed standard
     * cell (--profile). Deliberately NOT part of cellKey(): profiling
     * must never change cache identity, cached results stay valid and
     * are still served (profile-less) on a warm cache.
     */
    bool profile = false;
    /**
     * Attach a decision-quality recorder to every standard cell
     * (--quality). Like profile, NOT part of cellKey(); but because
     * quality data must be complete and deterministic, cache reads
     * are skipped (cells always execute) while cache writes still
     * happen for later quality-less runs.
     */
    bool quality = false;
};

/**
 * Executes cell matrices; see the file comment. One SweepRunner can
 * run() multiple matrices; stats() and writeReport() describe the
 * most recent run.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Execute every cell (parallel, cached, failure-isolated) and
     * return the results in job-index order.
     */
    std::vector<SweepCellResult> run(const std::vector<SweepCell> &cells);

    /** Execution accounting for the last run(). */
    const SweepStats &stats() const { return stats_; }

    /**
     * Write the `bfgts-sweep-v1` JSON report of the last run().
     * Deliberately omits worker count and cache hits so equal sweeps
     * produce byte-identical reports regardless of how they ran.
     */
    void writeReport(std::ostream &os, const std::string &name) const;

    /**
     * Write the `bfgts-prof-v1` JSON report (kind "sweep") of the
     * last run(): one row per profiled cell plus min/median/max
     * aggregates of wallNsPerCycle, eventsPerSec and wallNs across
     * them. Wall-clock data -- nondeterministic by design and kept
     * out of writeReport() and the byte-identity gates.
     */
    void writeProfileReport(std::ostream &os,
                            const std::string &name) const;

    /**
     * Write the `bfgts-qual-v1` JSON report (kind "sweep") of the
     * last run(): one row per quality-recorded cell plus
     * min/median/max aggregates of brierScore and the Eq. 2-4 mean
     * absolute errors. Fully deterministic -- byte-identical across
     * BFGTS_HASH_SEED values and --jobs counts.
     */
    void writeQualityReport(std::ostream &os,
                            const std::string &name) const;

    /** Progress/report label of @p cell (default or explicit). */
    static std::string cellLabel(const SweepCell &cell);

    /** Canonical cache-key string of a standard cell (pre-digest;
     *  exposed for tests). */
    static std::string cellKey(const SweepCell &cell);

  private:
    void runCell(std::size_t index);
    void progressLine(std::size_t completed, std::size_t index);
    std::string cachePath(const std::string &key) const;
    bool readCache(const std::string &key, SimResults *results) const;
    /** Returns true when the entry already existed (a concurrent
     *  writer won the rename race); see SweepStats::cacheRaces. */
    bool writeCache(const std::string &key, std::size_t index,
                    const SimResults &results) const;

    SweepOptions options_;
    SweepStats stats_;
    std::vector<SweepCell> cells_;
    std::vector<SweepCellResult> results_;
    /** Guards stats_ and progress output during run(). */
    std::mutex mutex_;
};

/** Serialize every SimResults field (cache file body; tests). */
void writeSweepResults(std::ostream &os, const SimResults &results);

/** Inverse of writeSweepResults(); false on malformed input. */
bool readSweepResults(std::istream &is, SimResults *results);

/** FNV-1a 64 over @p s as 16 hex digits: cache file names, the farm
 *  matrix digest (runner/farm.h). */
std::string sweepDigestHex(const std::string &s);

/**
 * The fixed `bfgts-sweep-v1` header members (schema through
 * cellCount), shared by SweepRunner::writeReport(), the farm's
 * partial reports, and mergeSweepReports() -- one writer means the
 * merged report reproduces the single-machine header byte-for-byte.
 */
void writeSweepReportPreamble(sim::JsonWriter &jw,
                              const std::string &name,
                              const std::string &git, bool gitDirty,
                              std::uint64_t cellCount);

/** One cell object of the `bfgts-sweep-v1` cells array, shared by
 *  SweepRunner::writeReport() and the farm's partial reports. */
void writeSweepCellJson(sim::JsonWriter &jw, const SweepCell &cell,
                        const SweepCellResult &result);

} // namespace runner

#endif // BFGTS_RUNNER_SWEEP_H
