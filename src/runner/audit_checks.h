/**
 * @file
 * Runner-level invariant auditors (sim/audit.h).
 *
 * Three families of cross-layer checks the per-component
 * auditCheck() sweeps cannot see on their own:
 *
 *  - LifecycleAuditor: a per-thread transaction state machine fed by
 *    the runner at every lifecycle event. Only the legal tx_state.h
 *    transitions are accepted ("fsm.transition"), and at end of run
 *    every begin must have reached exactly one commit or abort and
 *    every thread must have finished outside a transaction
 *    ("fsm.balance").
 *
 *  - auditBreakdown / auditResultTotals: cycle-accounting
 *    conservation. The per-CPU buckets of the Fig. 5 breakdown must
 *    sum to the machine's cycle capacity ("cycles.conservation"),
 *    and the runner's commit/abort counters must agree with the
 *    contention manager's independently tracked totals
 *    ("cycles.results").
 *
 *  - auditWaitGraph: the NACK wait-for relation. Timestamps of
 *    active transactions are unique and positive ("htm.timestamp"),
 *    no transaction waits on itself, and the subgraph of
 *    younger-waits-on-older edges is acyclic -- the direction
 *    age-based arbitration resolves, so a cycle there would be a
 *    guaranteed deadlock ("htm.waitgraph"). Full-graph cycles are
 *    deliberately not flagged: transient mutual NACK stalls are
 *    legal and resolve within a retry interval.
 *
 * Everything here is purely observational: no simulated state is
 * read-modified, no cost is charged, and nothing reaches the stats
 * output, so audited runs stay byte-identical to unaudited ones.
 */

#ifndef BFGTS_RUNNER_AUDIT_CHECKS_H
#define BFGTS_RUNNER_AUDIT_CHECKS_H

#include <cstdint>
#include <vector>

#include "runner/results.h"
#include "sim/types.h"

namespace sim {
class AuditEngine;
}

namespace runner {

/** Per-thread transaction-lifecycle state machine. */
class LifecycleAuditor
{
  public:
    /** Lifecycle events the runner reports. */
    enum class TxEvent {
        Begin,
        Access,
        Commit,
        Abort,
        ThreadFinish,
    };

    LifecycleAuditor(sim::AuditEngine &audit, int num_threads);

    /** Feed one lifecycle event ("fsm.transition" on violations). */
    void onEvent(sim::ThreadId thread, TxEvent event, sim::Tick tick,
                 sim::CpuId cpu, std::int64_t dtx);

    /** End-of-run balance: begins == commits + aborts, every thread
     *  finished and idle ("fsm.balance"). */
    void finalize(sim::Tick tick);

    std::uint64_t begins() const { return begins_; }
    std::uint64_t commits() const { return commits_; }
    std::uint64_t aborts() const { return aborts_; }

  private:
    struct ThreadTx {
        bool active = false;
        bool finished = false;
        std::int64_t dtx = -1;
    };

    sim::AuditEngine &audit_;
    std::vector<ThreadTx> threads_;
    std::uint64_t begins_ = 0;
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

/**
 * Cycle conservation over the final breakdown: the six buckets must
 * sum exactly to numCpus * runtime ("cycles.conservation"). run()
 * computes idle as the capacity remainder, so this fails only when
 * the busy buckets oversubscribe the machine -- some cycle was
 * charged to two buckets (or to a thread that was not on a CPU).
 */
void auditBreakdown(sim::AuditEngine &audit,
                    const Breakdown &breakdown, sim::Cycles runtime,
                    int num_cpus, sim::Tick tick);

/**
 * Totals cross-check: the runner-side and CM-side commit/abort
 * counters are maintained by different layers and must agree
 * ("cycles.results").
 */
void auditResultTotals(sim::AuditEngine &audit,
                       const SimResults &results,
                       std::uint64_t cm_commits,
                       std::uint64_t cm_aborts, sim::Tick tick);

/**
 * CPU-table liveness: every transaction the contention manager's
 * software CPU Table names must actually be running
 * ("cm.cputable"). @p cm_view is indexed by CPU with -1 for empty
 * slots; @p running_dtxs lists the active transaction ids.
 */
void auditCmCpuTable(sim::AuditEngine &audit,
                     const std::vector<std::int64_t> &cm_view,
                     const std::vector<std::int64_t> &running_dtxs,
                     sim::Tick tick);

/** One NACK wait: @p waiter stalls until @p holder finishes. */
struct WaitEdge {
    std::int64_t waiter = -1;
    std::uint64_t waiterTs = 0;
    std::int64_t holder = -1;
    std::uint64_t holderTs = 0;
};

/** One active transaction, for timestamp uniqueness. */
struct ActiveTx {
    std::int64_t dtx = -1;
    std::uint64_t timestamp = 0;
};

/** Wait-graph and timestamp checks (see the file comment). */
void auditWaitGraph(sim::AuditEngine &audit,
                    const std::vector<ActiveTx> &active,
                    const std::vector<WaitEdge> &edges, sim::Tick tick);

} // namespace runner

#endif // BFGTS_RUNNER_AUDIT_CHECKS_H
