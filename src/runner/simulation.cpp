#include "simulation.h"

#include <algorithm>

#include "sim/logging.h"
#include "workloads/stamp.h"

namespace runner {

Simulation::Simulation(const SimConfig &config)
    : config_(config), rng_(config.seed)
{
    sim_assert(config_.numCpus >= 1);
    sim_assert(config_.threadsPerCpu >= 1);
    const int num_threads = config_.numThreads();

    if (config_.workloadFactory) {
        workload_ = config_.workloadFactory(num_threads);
    } else {
        workload_ = workloads::makeStampWorkload(config_.workload,
                                                 num_threads);
    }
    sim_assert(workload_ != nullptr);

    ids_ = std::make_unique<htm::TxIdSpace>(workload_->numStaticTx(),
                                            num_threads);

    mem::MemSystemConfig mem_config = config_.mem;
    mem_config.numCpus = config_.numCpus;
    mem_ = std::make_unique<mem::MemSystem>(mem_config);

    detector_ =
        std::make_unique<htm::ConflictDetector>(config_.conflict);

    os::SchedulerConfig sched_config = config_.sched;
    sched_config.numCpus = config_.numCpus;
    sched_ = std::make_unique<os::OsScheduler>(events_, sched_config);

    predictors_ = std::make_unique<cpu::PredictorSystem>(
        config_.numCpus, *ids_, config_.predictor);

    cm::Services services;
    services.scheduler = sched_.get();
    services.rng = &rng_;
    services.events = &events_;
    if (config_.cm == cm::CmKind::BfgtsHw
        || config_.cm == cm::CmKind::BfgtsHwBackoff) {
        services.predictors = predictors_.get();
    }
    if (config_.managerFactory) {
        cm_ = config_.managerFactory(config_.numCpus, *ids_,
                                     services);
    } else {
        cm_ = cm::makeManager(config_.cm, config_.numCpus, *ids_,
                              services, config_.tuning);
    }
    sim_assert(cm_ != nullptr);

    workers_.resize(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
        const sim::CpuId cpu = t % config_.numCpus;
        const sim::ThreadId tid = sched_->addThread(cpu);
        sim_assert(tid == t);
        Worker &worker = workers_[static_cast<std::size_t>(t)];
        worker.tid = tid;
        worker.undoLog = htm::VersionLog(config_.versionLog);
        worker.rng = sim::Rng(
            sim::mix64(config_.seed
                       ^ (0x6a09e667f3bcc909ULL
                          * static_cast<std::uint64_t>(t + 1))));
    }

    simTrack_.resize(static_cast<std::size_t>(ids_->numDynamicTx()));
    siteSim_.resize(
        static_cast<std::size_t>(workload_->numStaticTx()));

    sched_->setDispatchFn([this](sim::ThreadId tid) {
        step(workers_[static_cast<std::size_t>(tid)]);
    });
}

Simulation::~Simulation() = default;

void
Simulation::trace(const Worker &worker, const char *event,
                  const std::string &detail)
{
    if (config_.traceStream == nullptr)
        return;
    *config_.traceStream
        << "tick=" << events_.curTick() << " thread=" << worker.tid
        << " sTx=" << ids_->staticOf(worker.tx.dTxId) << ' ' << event;
    if (!detail.empty())
        *config_.traceStream << ' ' << detail;
    *config_.traceStream << '\n';
}

cm::TxInfo
Simulation::infoFor(const Worker &worker) const
{
    return infoFor(worker.tx);
}

cm::TxInfo
Simulation::infoFor(const htm::TxState &tx) const
{
    cm::TxInfo info;
    info.thread = tx.thread;
    info.cpu = tx.cpu;
    info.dTx = tx.dTxId;
    info.sTx = ids_->staticOf(tx.dTxId);
    return info;
}

bool
Simulation::isTxRunning(htm::DTxId dtx) const
{
    return runningTx_.count(dtx) > 0;
}

void
Simulation::charge(Worker &worker, sim::Cycles cycles, Bucket bucket)
{
    switch (bucket) {
      case Bucket::NonTx:
        worker.buckets.nonTx += cycles;
        break;
      case Bucket::Kernel:
        worker.buckets.kernel += cycles;
        break;
      case Bucket::Sched:
        worker.buckets.sched += cycles;
        break;
      case Bucket::Abort:
        worker.buckets.aborted += cycles;
        break;
      case Bucket::Attempt:
        worker.attemptCycles += cycles;
        break;
    }
}

void
Simulation::advance(Worker &worker, sim::Cycles cycles, Bucket bucket)
{
    advanceMulti(worker, {{cycles, bucket}});
}

void
Simulation::advanceMulti(Worker &worker,
                         const std::vector<Charge> &charges)
{
    sim_assert(worker.pendingEvent == sim::kNoEvent);
    sim::Cycles total = 0;
    for (const Charge &item : charges) {
        charge(worker, item.cycles, item.bucket);
        total += item.cycles;
    }
    Worker *wp = &worker;
    worker.pendingEvent = events_.scheduleIn(total, [this, wp] {
        wp->pendingEvent = sim::kNoEvent;
        step(*wp);
    });
}

void
Simulation::step(Worker &worker)
{
    sim_assert(worker.pendingEvent == sim::kNoEvent);
    sim_assert(sched_->runningOn(sched_->thread(worker.tid).cpu)
               == worker.tid);
    bool cont = true;
    while (cont) {
        switch (worker.phase) {
          case Phase::StartDescriptor:
            cont = doStartDescriptor(worker);
            break;
          case Phase::NonTxWork:
            cont = doNonTxWork(worker);
            break;
          case Phase::TxBegin:
            cont = doTxBegin(worker);
            break;
          case Phase::BeginStall:
            cont = doBeginStall(worker);
            break;
          case Phase::YieldNow:
            worker.phase = Phase::TxBegin;
            sched_->yieldCurrent(worker.tid);
            cont = false;
            break;
          case Phase::BlockNow:
            worker.phase = Phase::TxBegin;
            sched_->blockCurrent(worker.tid);
            cont = false;
            break;
          case Phase::TxAccess:
            cont = doTxAccess(worker);
            break;
          case Phase::Commit:
            cont = doCommit(worker);
            break;
          case Phase::CommitDone:
            cont = doCommitDone(worker);
            break;
        }
    }
}

bool
Simulation::doStartDescriptor(Worker &worker)
{
    const int tx_total = config_.txPerThreadOverride > 0
                             ? config_.txPerThreadOverride
                             : workload_->txPerThread();
    if (worker.done >= tx_total) {
        lastFinish_ = std::max(lastFinish_, events_.curTick());
        ++finishedThreads_;
        sched_->finishCurrent(worker.tid);
        return false;
    }
    if (sched_->shouldPreempt(worker.tid)) {
        sched_->preemptCurrent(worker.tid);
        return false;
    }
    worker.desc = workload_->next(worker.tid, worker.rng);
    worker.tx.dTxId = ids_->make(worker.tid, worker.desc.sTx);
    worker.tx.thread = worker.tid;
    worker.tx.cpu = sched_->thread(worker.tid).cpu;
    // Age is assigned once per transactional section and survives
    // aborts, so a long-suffering transaction eventually wins.
    worker.tx.timestamp = nextTimestamp_++;
    worker.nonTxRemaining = worker.desc.nonTxWork;
    worker.descriptorAborts = 0;
    worker.phase = Phase::NonTxWork;
    return true;
}

bool
Simulation::doNonTxWork(Worker &worker)
{
    if (worker.nonTxRemaining == 0) {
        worker.phase = Phase::TxBegin;
        return true;
    }
    if (sched_->shouldPreempt(worker.tid)) {
        sched_->preemptCurrent(worker.tid);
        return false;
    }
    const sim::Cycles chunk =
        std::min(worker.nonTxRemaining, config_.nonTxChunk);
    worker.nonTxRemaining -= chunk;
    advance(worker, chunk, Bucket::NonTx);
    return false;
}

bool
Simulation::doTxBegin(Worker &worker)
{
    const cm::TxInfo info = infoFor(worker);
    const cm::BeginDecision decision = cm_->onTxBegin(info);
    const std::vector<Charge> cost_charges{
        {decision.cost.sched, Bucket::Sched},
        {decision.cost.kernel, Bucket::Kernel}};

    switch (decision.action) {
      case cm::BeginAction::Proceed: {
        trace(worker, "start");
        worker.tx.active = true;
        worker.tx.attemptStart = events_.curTick();
        worker.accessIndex = 0;
        worker.stallRetries = 0;
        worker.reportedEnemies.clear();
        runningTx_.insert(worker.tx.dTxId);
        cm_->onTxStart(info);
        worker.phase = Phase::TxAccess;
        if (decision.cost.sched + decision.cost.kernel == 0)
            return true;
        advanceMulti(worker, cost_charges);
        return false;
      }
      case cm::BeginAction::StallOn: {
        trace(worker, "suspend-stall",
              "on=" + std::to_string(decision.waitOn));
        worker.stallOn = decision.waitOn;
        worker.stallStart = events_.curTick();
        worker.phase = Phase::BeginStall;
        advanceMulti(worker, cost_charges);
        return false;
      }
      case cm::BeginAction::YieldOn: {
        trace(worker, "suspend-yield",
              "on=" + std::to_string(decision.waitOn));
        worker.phase = Phase::YieldNow;
        if (decision.cost.sched + decision.cost.kernel == 0)
            return true;
        advanceMulti(worker, cost_charges);
        return false;
      }
      case cm::BeginAction::Block: {
        trace(worker, "block");
        worker.phase = Phase::BlockNow;
        if (decision.cost.sched + decision.cost.kernel == 0)
            return true;
        advanceMulti(worker, cost_charges);
        return false;
      }
    }
    sim_panic("unhandled BeginAction");
}

bool
Simulation::doBeginStall(Worker &worker)
{
    if (!isTxRunning(worker.stallOn)) {
        worker.phase = Phase::TxBegin;
        return true;
    }
    if (events_.curTick() - worker.stallStart
        >= config_.beginStallTimeout) {
        stallTimeouts_.inc();
        worker.phase = Phase::TxBegin;
        return true;
    }
    if (sched_->shouldPreempt(worker.tid)) {
        sched_->preemptCurrent(worker.tid);
        return false;
    }
    advance(worker, config_.beginStallPollInterval, Bucket::Sched);
    return false;
}

bool
Simulation::doTxAccess(Worker &worker)
{
    if (static_cast<std::size_t>(worker.accessIndex)
        >= worker.desc.accesses.size()) {
        worker.phase = Phase::Commit;
        return true;
    }
    const workloads::TxAccess &access =
        worker.desc.accesses[static_cast<std::size_t>(
            worker.accessIndex)];
    const mem::Addr line = mem::lineNumber(access.addr);

    htm::AccessResult result = detector_->access(
        worker.tx, line, access.write, worker.stallRetries,
        worker.descriptorAborts);

    // Extra charges from CM conflict notification, folded into the
    // next advance so bucket totals match consumed CPU time.
    std::vector<Charge> notify_charges;
    if (result.resolution != htm::Resolution::Proceed) {
        // Reactive managers may arbitrate the conflict themselves
        // (Timestamp, Polka); the substrate's verdict stands unless
        // every holder's arbitration agrees on an override, with the
        // most requester-hostile verdict winning.
        bool cm_arbitrated = true;
        bool any_requester_abort = false;
        bool any_stall = false;
        for (const htm::TxState *holder : result.conflicts) {
            cm::ArbitrationContext context;
            context.requester = infoFor(worker);
            context.requesterAccesses = worker.tx.accessesDone;
            context.stallRetries = worker.stallRetries;
            context.priorAborts = worker.descriptorAborts;
            context.holder = infoFor(*holder);
            context.holderAccesses = holder->accessesDone;
            context.holderAgeDelta =
                static_cast<std::int64_t>(holder->timestamp)
                - static_cast<std::int64_t>(worker.tx.timestamp);
            switch (cm_->arbitrate(context)) {
              case cm::ConflictArbitration::UseSubstrate:
                cm_arbitrated = false;
                break;
              case cm::ConflictArbitration::StallRequester:
                any_stall = true;
                break;
              case cm::ConflictArbitration::AbortRequester:
                any_requester_abort = true;
                break;
              case cm::ConflictArbitration::AbortHolders:
                break;
            }
        }
        if (cm_arbitrated) {
            if (any_requester_abort) {
                result.resolution = htm::Resolution::AbortRequester;
            } else if (any_stall) {
                result.resolution = htm::Resolution::StallRequester;
            } else {
                result.resolution = htm::Resolution::AbortHolders;
            }
        }
        conflicts_.inc();
        for (const htm::TxState *holder : result.conflicts) {
            const int a = ids_->staticOf(worker.tx.dTxId);
            const int b = ids_->staticOf(holder->dTxId);
            conflictGraph_.insert({std::min(a, b), std::max(a, b)});
        }
        // Tell the CM about the conflict once per (attempt, enemy)
        // pair -- the granularity of the paper's txConflict() -- not
        // on every NACKed access or stall retry.
        for (const htm::TxState *holder : result.conflicts) {
            if (!worker.reportedEnemies.insert(holder->dTxId).second)
                continue;
            const cm::CmCost cost = cm_->onConflictDetected(
                infoFor(worker), infoFor(*holder));
            notify_charges.push_back({cost.sched, Bucket::Sched});
            notify_charges.push_back({cost.kernel, Bucket::Kernel});
        }
    }

    switch (result.resolution) {
      case htm::Resolution::Proceed: {
        worker.stallRetries = 0;
        sim::Cycles latency =
            mem_->access(worker.tx.cpu, access.addr, access.write,
                         events_.curTick())
            + worker.desc.workPerAccess;
        // Eager versioning: first store to a line saves the old
        // value to the undo log.
        if (access.write)
            latency += worker.undoLog.append(line);
        worker.tx.workDone += latency;
        ++worker.tx.accessesDone;
        ++worker.accessIndex;
        advance(worker, latency, Bucket::Attempt);
        return false;
      }
      case htm::Resolution::StallRequester: {
        ++worker.stallRetries;
        notify_charges.push_back(
            {config_.nackRetryInterval, Bucket::Attempt});
        advanceMulti(worker, notify_charges);
        return false;
      }
      case htm::Resolution::AbortRequester: {
        sim_assert(!result.conflicts.empty());
        abortTx(worker, infoFor(*result.conflicts.front()));
        return false;
      }
      case htm::Resolution::AbortHolders: {
        // A holder that already reached its commit point cannot be
        // aborted; back off and retry instead.
        const bool any_committing = std::any_of(
            result.conflicts.begin(), result.conflicts.end(),
            [this](const htm::TxState *holder) {
                return workers_[static_cast<std::size_t>(
                                    holder->thread)]
                    .committing;
            });
        notify_charges.push_back(
            {config_.nackRetryInterval, Bucket::Attempt});
        if (any_committing) {
            ++worker.stallRetries;
            advanceMulti(worker, notify_charges);
            return false;
        }
        const cm::TxInfo enemy = infoFor(worker);
        for (htm::TxState *holder : result.conflicts) {
            abortTx(workers_[static_cast<std::size_t>(holder->thread)],
                    enemy);
        }
        worker.stallRetries = 0;
        advanceMulti(worker, notify_charges);
        return false;
      }
    }
    sim_panic("unhandled Resolution");
}

void
Simulation::abortTx(Worker &worker, const cm::TxInfo &enemy)
{
    sim_assert(worker.tx.active);
    sim_assert(!worker.committing);

    // A remotely aborted victim has an in-flight continuation;
    // replace it with the abort sequence.
    if (worker.pendingEvent != sim::kNoEvent) {
        events_.deschedule(worker.pendingEvent);
        worker.pendingEvent = sim::kNoEvent;
    }

    detector_->removeTx(worker.tx);
    runningTx_.erase(worker.tx.dTxId);
    worker.tx.active = false;

    aborts_.inc();
    trace(worker, "abort",
          "enemy=" + std::to_string(enemy.dTx) + " wasted="
              + std::to_string(worker.attemptCycles));
    {
        const int a = ids_->staticOf(worker.tx.dTxId);
        const int b = enemy.dTx != htm::kNoTx ? enemy.sTx : a;
        ++abortPairs_[{std::min(a, b), std::max(a, b)}];
    }
    ++worker.descriptorAborts;
    worker.buckets.aborted += worker.attemptCycles;
    worker.attemptCycles = 0;

    // Walk the undo log backwards in software (LogTM abort).
    const sim::Cycles rollback = worker.undoLog.abort();

    const cm::AbortResponse resp =
        cm_->onTxAbort(infoFor(worker), enemy);

    worker.tx.resetAttempt();
    worker.accessIndex = 0;
    worker.stallRetries = 0;
    worker.phase = Phase::TxBegin;
    advanceMulti(worker, {{rollback + resp.backoff, Bucket::Abort},
                          {resp.cost.sched, Bucket::Sched},
                          {resp.cost.kernel, Bucket::Kernel}});
}

bool
Simulation::doCommit(Worker &worker)
{
    // Past this point the transaction is irrevocable.
    worker.committing = true;
    worker.phase = Phase::CommitDone;
    advance(worker,
            config_.commitLatency + worker.undoLog.commit(),
            Bucket::Attempt);
    return false;
}

bool
Simulation::doCommitDone(Worker &worker)
{
    // Union of read and write sets, as line numbers.
    std::vector<mem::Addr> rw_lines;
    rw_lines.reserve(worker.tx.readSet.size()
                     + worker.tx.writeSet.size());
    // lint:allow(unordered-iteration): collected into rw_lines and
    // sorted below, so hash order never reaches the CM or stats.
    for (mem::Addr line : worker.tx.readSet)
        rw_lines.push_back(line);
    // lint:allow(unordered-iteration): same -- sorted below.
    for (mem::Addr line : worker.tx.writeSet) {
        if (!worker.tx.readSet.count(line))
            rw_lines.push_back(line);
    }
    // CMs receive the commit set in line-number order, not the hash
    // order of the exact sets, so their decisions are reproducible
    // across standard libraries and hash seeds.
    std::sort(rw_lines.begin(), rw_lines.end());

    detector_->removeTx(worker.tx);
    runningTx_.erase(worker.tx.dTxId);
    worker.tx.active = false;
    worker.committing = false;

    const cm::CmCost cost = cm_->onTxCommit(infoFor(worker), rw_lines);

    commits_.inc();
    trace(worker, "commit",
          "lines=" + std::to_string(rw_lines.size()));
    worker.buckets.tx += worker.attemptCycles;
    worker.attemptCycles = 0;
    recordSimilarity(worker, rw_lines);

    ++worker.done;
    worker.tx.resetAttempt();
    worker.phase = Phase::StartDescriptor;
    if (cost.sched + cost.kernel == 0)
        return true;
    advanceMulti(worker, {{cost.sched, Bucket::Sched},
                          {cost.kernel, Bucket::Kernel}});
    return false;
}

void
Simulation::recordSimilarity(Worker &worker,
                             const std::vector<mem::Addr> &rw_lines)
{
    SimTrack &track = simTrack_[static_cast<std::size_t>(
        ids_->denseIndex(worker.tx.dTxId))];
    const auto size = static_cast<double>(rw_lines.size());
    track.avgSize = track.avgSize == 0.0
                        ? size
                        : 0.5 * (track.avgSize + size);
    if (!track.lastSet.empty() && track.avgSize > 0.0) {
        std::size_t inter = 0;
        for (mem::Addr line : rw_lines)
            inter += track.lastSet.count(line);
        const double sim = std::clamp(
            static_cast<double>(inter) / track.avgSize, 0.0, 1.0);
        siteSim_[static_cast<std::size_t>(
                     ids_->staticOf(worker.tx.dTxId))]
            .sample(sim);
    }
    track.lastSet.clear();
    track.lastSet.insert(rw_lines.begin(), rw_lines.end());
}

void
Simulation::dumpStats(std::ostream &os) const
{
    // Memory hierarchy.
    {
        sim::Counter l1_hits, l1_misses;
        for (int cpu = 0; cpu < config_.numCpus; ++cpu) {
            l1_hits.inc(mem_->l1(cpu).hits().value());
            l1_misses.inc(mem_->l1(cpu).misses().value());
        }
        sim::StatGroup group("mem");
        group.addCounter("l1.hits", &l1_hits);
        group.addCounter("l1.misses", &l1_misses);
        group.addCounter("l2.hits", &mem_->l2().hits());
        group.addCounter("l2.misses", &mem_->l2().misses());
        group.addCounter("bus.requests", &mem_->bus().requests());
        group.addCounter("bus.queuedCycles",
                         &mem_->bus().queuedCycles());
        group.dump(os);
    }
    // HTM substrate.
    {
        sim::Counter log_appends, log_restored;
        sim::Counter log_high_water;
        for (const Worker &worker : workers_) {
            log_appends.inc(worker.undoLog.appends().value());
            log_restored.inc(
                worker.undoLog.restoredEntries().value());
            log_high_water.inc(worker.undoLog.highWaterMark());
        }
        sim::StatGroup group("htm");
        group.addCounter("conflictsDetected",
                         &detector_->conflictsDetected());
        group.addCounter("undoLog.appends", &log_appends);
        group.addCounter("undoLog.restoredEntries", &log_restored);
        group.addCounter("undoLog.highWaterSum", &log_high_water);
        group.addCounter("commits", &commits_);
        group.addCounter("aborts", &aborts_);
        group.dump(os);
    }
    // Predictor hardware (meaningful for the HW variants).
    {
        sim::Counter cache_hits, cache_misses, refetches;
        for (int cpu = 0; cpu < config_.numCpus; ++cpu) {
            cache_hits.inc(
                predictors_->confCache(cpu).hits().value());
            cache_misses.inc(
                predictors_->confCache(cpu).misses().value());
            refetches.inc(
                predictors_->confCache(cpu).refetches().value());
        }
        sim::StatGroup group("predictor");
        group.addCounter("predictions", &predictors_->predictions());
        group.addCounter("conflictsPredicted",
                         &predictors_->conflictsPredicted());
        group.addCounter("confCache.hits", &cache_hits);
        group.addCounter("confCache.misses", &cache_misses);
        group.addCounter("confCache.refetches", &refetches);
        group.dump(os);
    }
    // Contention manager.
    if (auto *base =
            dynamic_cast<cm::ContentionManagerBase *>(cm_.get())) {
        sim::StatGroup group("cm");
        group.addCounter("commits", &base->commits());
        group.addCounter("aborts", &base->aborts());
        group.addCounter("serializations", &base->serializations());
        group.dump(os);
    }
    // OS scheduler.
    {
        sim::Counter yields, preemptions, blocks, kernel;
        for (int t = 0; t < config_.numThreads(); ++t) {
            yields.inc(sched_->thread(t).yields);
            preemptions.inc(sched_->thread(t).preemptions);
            blocks.inc(sched_->thread(t).blocks);
            kernel.inc(sched_->thread(t).kernelCycles);
        }
        sim::StatGroup group("os");
        group.addCounter("yields", &yields);
        group.addCounter("preemptions", &preemptions);
        group.addCounter("blocks", &blocks);
        group.addCounter("kernelCycles", &kernel);
        group.dump(os);
    }
}

SimResults
Simulation::run()
{
    sim_assert(!ran_);
    ran_ = true;

    sched_->start();
    events_.run();

    if (!sched_->allFinished()) {
        sim_panic("simulation drained with %d/%d threads unfinished",
                  finishedThreads_, config_.numThreads());
    }

    SimResults results;
    results.workload = workload_->name();
    results.cm = cm_->name();
    results.runtime = lastFinish_;
    results.commits = commits_.value();
    results.aborts = aborts_.value();
    results.conflicts = conflicts_.value();
    results.stallTimeouts = stallTimeouts_.value();
    const std::uint64_t attempts = results.commits + results.aborts;
    results.contentionRate =
        attempts == 0 ? 0.0
                      : static_cast<double>(results.aborts)
                            / static_cast<double>(attempts);

    for (const Worker &worker : workers_) {
        results.breakdown.nonTx += worker.buckets.nonTx;
        results.breakdown.kernel += worker.buckets.kernel;
        results.breakdown.tx += worker.buckets.tx;
        results.breakdown.aborted += worker.buckets.aborted;
        results.breakdown.sched += worker.buckets.sched;
    }
    for (int t = 0; t < config_.numThreads(); ++t)
        results.breakdown.kernel += sched_->thread(t).kernelCycles;

    const sim::Cycles busy =
        results.breakdown.nonTx + results.breakdown.kernel
        + results.breakdown.tx + results.breakdown.aborted
        + results.breakdown.sched;
    const sim::Cycles capacity =
        static_cast<sim::Cycles>(config_.numCpus) * results.runtime;
    results.breakdown.idle = capacity > busy ? capacity - busy : 0;

    if (auto *base =
            dynamic_cast<cm::ContentionManagerBase *>(cm_.get())) {
        results.serializations = base->serializations().value();
    }

    for (const sim::Accumulator &acc : siteSim_)
        results.similarityPerSite.push_back(acc.mean());
    results.conflictGraph = conflictGraph_;
    results.abortPairs = abortPairs_;
    return results;
}

} // namespace runner
