#include "simulation.h"

#include <algorithm>

#include "cm/ats.h"
#include "cm/bfgts.h"
#include "sim/host_clock.h"
#include "sim/json.h"
#include "sim/logging.h"
#include "sim/profiler.h"
#include "sim/quality.h"
#include "sim/sampler.h"
#include "workloads/stamp.h"

namespace runner {

Simulation::Simulation(const SimConfig &config)
    : config_(config), rng_(config.seed)
{
    sim_assert(config_.numCpus >= 1);
    sim_assert(config_.threadsPerCpu >= 1);
    const int num_threads = config_.numThreads();

    if (config_.workloadFactory) {
        workload_ = config_.workloadFactory(num_threads);
    } else {
        workload_ = workloads::makeStampWorkload(config_.workload,
                                                 num_threads);
    }
    sim_assert(workload_ != nullptr);

    ids_ = std::make_unique<htm::TxIdSpace>(workload_->numStaticTx(),
                                            num_threads);

    mem::MemSystemConfig mem_config = config_.mem;
    mem_config.numCpus = config_.numCpus;
    mem_ = std::make_unique<mem::MemSystem>(mem_config);

    detector_ =
        std::make_unique<htm::ConflictDetector>(config_.conflict);

    os::SchedulerConfig sched_config = config_.sched;
    sched_config.numCpus = config_.numCpus;
    sched_ = std::make_unique<os::OsScheduler>(events_, sched_config);

    predictors_ = std::make_unique<cpu::PredictorSystem>(
        config_.numCpus, *ids_, config_.predictor);

    if (config_.audit) {
        if (config_.auditEngine != nullptr) {
            audit_ = config_.auditEngine;
        } else {
            ownedAudit_ = std::make_unique<sim::AuditEngine>();
            ownedAudit_->setTraceSink(config_.traceSink);
            audit_ = ownedAudit_.get();
        }
        audit_->setEnabled(true);
        events_.setAudit(audit_);
        lifecycle_ =
            std::make_unique<LifecycleAuditor>(*audit_, num_threads);
    }

    events_.setProfiler(config_.profiler);

    cm::Services services;
    services.scheduler = sched_.get();
    services.rng = &rng_;
    services.events = &events_;
    services.audit = audit_;
    services.profiler = config_.profiler;
    services.quality = config_.quality;
    if (config_.cm == cm::CmKind::BfgtsHw
        || config_.cm == cm::CmKind::BfgtsHwBackoff) {
        services.predictors = predictors_.get();
    }
    if (config_.managerFactory) {
        cm_ = config_.managerFactory(config_.numCpus, *ids_,
                                     services);
    } else {
        cm_ = cm::makeManager(config_.cm, config_.numCpus, *ids_,
                              services, config_.tuning);
    }
    sim_assert(cm_ != nullptr);

    workers_.resize(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
        const sim::CpuId cpu = t % config_.numCpus;
        const sim::ThreadId tid = sched_->addThread(cpu);
        sim_assert(tid == t);
        Worker &worker = workers_[static_cast<std::size_t>(t)];
        worker.tid = tid;
        worker.undoLog = htm::VersionLog(config_.versionLog);
        worker.rng = sim::Rng(
            sim::mix64(config_.seed
                       ^ (0x6a09e667f3bcc909ULL
                          * static_cast<std::uint64_t>(t + 1))));
    }

    simTrack_.resize(static_cast<std::size_t>(ids_->numDynamicTx()));
    siteSim_.resize(
        static_cast<std::size_t>(workload_->numStaticTx()));
    sitePrediction_.resize(
        static_cast<std::size_t>(workload_->numStaticTx()));

    sched_->setDispatchFn([this](sim::ThreadId tid) {
        step(workers_[static_cast<std::size_t>(tid)]);
    });
}

Simulation::~Simulation() = default;

void
Simulation::trace(const Worker &worker, sim::TraceCategory category,
                  const char *event,
                  std::vector<std::pair<std::string, std::string>>
                      details)
{
    if (config_.traceSink == nullptr
        || !config_.traceSink->wants(category)) {
        return;
    }
    sim::TraceRecord record;
    record.tick = events_.curTick();
    record.cpu = worker.tx.cpu;
    record.thread = worker.tid;
    record.sTx = ids_->staticOf(worker.tx.dTxId);
    record.dTx = static_cast<std::int64_t>(worker.tx.dTxId);
    record.category = category;
    record.event = event;
    record.details = std::move(details);
    config_.traceSink->emit(record);
}

cm::TxInfo
Simulation::infoFor(const Worker &worker) const
{
    return infoFor(worker.tx);
}

cm::TxInfo
Simulation::infoFor(const htm::TxState &tx) const
{
    cm::TxInfo info;
    info.thread = tx.thread;
    info.cpu = tx.cpu;
    info.dTx = tx.dTxId;
    info.sTx = ids_->staticOf(tx.dTxId);
    return info;
}

bool
Simulation::isTxRunning(htm::DTxId dtx) const
{
    return runningTx_.count(dtx) > 0;
}

void
Simulation::charge(Worker &worker, sim::Cycles cycles, Bucket bucket)
{
    switch (bucket) {
      case Bucket::NonTx:
        worker.buckets.nonTx += cycles;
        break;
      case Bucket::Kernel:
        worker.buckets.kernel += cycles;
        break;
      case Bucket::Sched:
        worker.buckets.sched += cycles;
        break;
      case Bucket::Abort:
        worker.buckets.aborted += cycles;
        break;
      case Bucket::Attempt:
        worker.attemptCycles += cycles;
        break;
    }
}

void
Simulation::advance(Worker &worker, sim::Cycles cycles, Bucket bucket)
{
    const Charge single{cycles, bucket};
    advanceSpan(worker, &single, 1);
}

void
Simulation::advanceMulti(Worker &worker,
                         std::initializer_list<Charge> charges)
{
    advanceSpan(worker, charges.begin(), charges.size());
}

void
Simulation::advanceMulti(Worker &worker,
                         const std::vector<Charge> &charges)
{
    advanceSpan(worker, charges.data(), charges.size());
}

void
Simulation::advanceSpan(Worker &worker, const Charge *charges,
                        std::size_t count)
{
    sim_assert(worker.pendingEvent == sim::kNoEvent);
    sim::Cycles total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        charge(worker, charges[i].cycles, charges[i].bucket);
        total += charges[i].cycles;
    }
    Worker *wp = &worker;
    worker.pendingEvent = events_.scheduleIn(total, [this, wp] {
        wp->pendingEvent = sim::kNoEvent;
        step(*wp);
    });
}

void
Simulation::step(Worker &worker)
{
    sim_assert(worker.pendingEvent == sim::kNoEvent);
    sim_assert(sched_->runningOn(sched_->thread(worker.tid).cpu)
               == worker.tid);
    bool cont = true;
    while (cont) {
        switch (worker.phase) {
          case Phase::StartDescriptor:
            cont = doStartDescriptor(worker);
            break;
          case Phase::NonTxWork:
            cont = doNonTxWork(worker);
            break;
          case Phase::TxBegin:
            cont = doTxBegin(worker);
            break;
          case Phase::BeginStall:
            cont = doBeginStall(worker);
            break;
          case Phase::YieldNow: {
            worker.phase = Phase::TxBegin;
            sim::ScopedPhase prof_phase(config_.profiler,
                                        sim::Profiler::kOsSched);
            sched_->yieldCurrent(worker.tid);
            cont = false;
            break;
          }
          case Phase::BlockNow: {
            worker.phase = Phase::TxBegin;
            sim::ScopedPhase prof_phase(config_.profiler,
                                        sim::Profiler::kOsSched);
            sched_->blockCurrent(worker.tid);
            cont = false;
            break;
          }
          case Phase::TxAccess:
            cont = doTxAccess(worker);
            break;
          case Phase::Commit:
            cont = doCommit(worker);
            break;
          case Phase::CommitDone:
            cont = doCommitDone(worker);
            break;
        }
    }
}

bool
Simulation::doStartDescriptor(Worker &worker)
{
    const int tx_total = config_.txPerThreadOverride > 0
                             ? config_.txPerThreadOverride
                             : workload_->txPerThread();
    if (worker.done >= tx_total) {
        lastFinish_ = std::max(lastFinish_, events_.curTick());
        ++finishedThreads_;
        if (auditing()) {
            auditLifecycle(worker,
                           LifecycleAuditor::TxEvent::ThreadFinish);
        }
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kOsSched);
        sched_->finishCurrent(worker.tid);
        return false;
    }
    if (sched_->shouldPreempt(worker.tid)) {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kOsSched);
        sched_->preemptCurrent(worker.tid);
        return false;
    }
    {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kWorkload);
        worker.desc = workload_->next(worker.tid, worker.rng);
    }
    worker.tx.dTxId = ids_->make(worker.tid, worker.desc.sTx);
    worker.tx.thread = worker.tid;
    worker.tx.cpu = sched_->thread(worker.tid).cpu;
    // Age is assigned once per transactional section and survives
    // aborts, so a long-suffering transaction eventually wins.
    worker.tx.timestamp = nextTimestamp_++;
    worker.nonTxRemaining = worker.desc.nonTxWork;
    worker.descriptorAborts = 0;
    worker.phase = Phase::NonTxWork;
    return true;
}

bool
Simulation::doNonTxWork(Worker &worker)
{
    if (worker.nonTxRemaining == 0) {
        worker.phase = Phase::TxBegin;
        return true;
    }
    if (sched_->shouldPreempt(worker.tid)) {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kOsSched);
        sched_->preemptCurrent(worker.tid);
        return false;
    }
    const sim::Cycles chunk =
        std::min(worker.nonTxRemaining, config_.nonTxChunk);
    worker.nonTxRemaining -= chunk;
    advance(worker, chunk, Bucket::NonTx);
    return false;
}

bool
Simulation::doTxBegin(Worker &worker)
{
    const cm::TxInfo info = infoFor(worker);
    cm::BeginDecision decision;
    {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kCmDecide);
        decision = cm_->onTxBegin(info);
    }
    const Charge cost_charges[2] = {
        {decision.cost.sched, Bucket::Sched},
        {decision.cost.kernel, Bucket::Kernel}};

    switch (decision.action) {
      case cm::BeginAction::Proceed: {
        // The attempt that is about to run inherits whatever enemy
        // the most recent begin decision serialized behind (kNoTx if
        // the CM let it straight through); the commit/abort paths
        // classify the prediction against it.
        worker.attemptSerializedOn = worker.lastSerializedOn;
        worker.lastSerializedOn = htm::kNoTx;
        // A serialized attempt is classified against the stall
        // decision's confidence; a straight-through attempt against
        // the confidence this go decision was based on.
        worker.attemptConfidence =
            worker.attemptSerializedOn != htm::kNoTx
                ? worker.lastConfidence
                : decision.confidence;
        worker.lastConfidence = -1.0;
        trace(worker, sim::TraceCategory::Tx, "start");
        worker.tx.active = true;
        worker.tx.attemptStart = events_.curTick();
        worker.accessIndex = 0;
        worker.stallRetries = 0;
        worker.reportedEnemies.clear();
        runningTx_.insert(worker.tx.dTxId);
        {
            sim::ScopedPhase prof_phase(config_.profiler,
                                        sim::Profiler::kCmDecide);
            cm_->onTxStart(info);
        }
        if (auditing()) {
            auditLifecycle(worker, LifecycleAuditor::TxEvent::Begin);
            auditSweep();
        }
        worker.phase = Phase::TxAccess;
        if (decision.cost.sched + decision.cost.kernel == 0)
            return true;
        advanceSpan(worker, cost_charges, 2);
        return false;
      }
      case cm::BeginAction::StallOn: {
        sitePrediction_[static_cast<std::size_t>(info.sTx)]
            .predictedStalls.inc();
        worker.lastSerializedOn = decision.waitOn;
        worker.lastConfidence = decision.confidence;
        if (wantsTrace(sim::TraceCategory::Predictor)) {
            trace(worker, sim::TraceCategory::Predictor, "predict",
                  {{"on", std::to_string(decision.waitOn)}});
        }
        if (wantsTrace(sim::TraceCategory::Sched)) {
            trace(worker, sim::TraceCategory::Sched, "suspend-stall",
                  {{"on", std::to_string(decision.waitOn)}});
        }
        worker.stallOn = decision.waitOn;
        worker.stallStart = events_.curTick();
        worker.phase = Phase::BeginStall;
        advanceSpan(worker, cost_charges, 2);
        return false;
      }
      case cm::BeginAction::YieldOn: {
        sitePrediction_[static_cast<std::size_t>(info.sTx)]
            .predictedStalls.inc();
        worker.lastSerializedOn = decision.waitOn;
        worker.lastConfidence = decision.confidence;
        if (wantsTrace(sim::TraceCategory::Predictor)) {
            trace(worker, sim::TraceCategory::Predictor, "predict",
                  {{"on", std::to_string(decision.waitOn)}});
        }
        if (wantsTrace(sim::TraceCategory::Sched)) {
            trace(worker, sim::TraceCategory::Sched, "suspend-yield",
                  {{"on", std::to_string(decision.waitOn)}});
        }
        worker.phase = Phase::YieldNow;
        if (decision.cost.sched + decision.cost.kernel == 0)
            return true;
        advanceSpan(worker, cost_charges, 2);
        return false;
      }
      case cm::BeginAction::Block: {
        trace(worker, sim::TraceCategory::Sched, "block");
        worker.phase = Phase::BlockNow;
        if (decision.cost.sched + decision.cost.kernel == 0)
            return true;
        advanceSpan(worker, cost_charges, 2);
        return false;
      }
    }
    sim_panic("unhandled BeginAction");
}

bool
Simulation::doBeginStall(Worker &worker)
{
    if (!isTxRunning(worker.stallOn)) {
        stallCyclesHist_.sample(static_cast<double>(
            events_.curTick() - worker.stallStart));
        worker.attemptStallCycles +=
            events_.curTick() - worker.stallStart;
        if (wantsTrace(sim::TraceCategory::Sched)) {
            trace(worker, sim::TraceCategory::Sched, "stall-end",
                  {{"on", std::to_string(worker.stallOn)},
                   {"cycles",
                    std::to_string(events_.curTick()
                                   - worker.stallStart)}});
        }
        worker.phase = Phase::TxBegin;
        return true;
    }
    if (events_.curTick() - worker.stallStart
        >= config_.beginStallTimeout) {
        stallTimeouts_.inc();
        stallCyclesHist_.sample(static_cast<double>(
            events_.curTick() - worker.stallStart));
        worker.attemptStallCycles +=
            events_.curTick() - worker.stallStart;
        if (wantsTrace(sim::TraceCategory::Sched)) {
            trace(worker, sim::TraceCategory::Sched, "stall-timeout",
                  {{"on", std::to_string(worker.stallOn)}});
        }
        worker.phase = Phase::TxBegin;
        return true;
    }
    if (sched_->shouldPreempt(worker.tid)) {
        // The stall window closes with the CPU: timeline spans must
        // not show this thread spinning while another one runs here.
        trace(worker, sim::TraceCategory::Sched, "preempt");
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kOsSched);
        sched_->preemptCurrent(worker.tid);
        return false;
    }
    advance(worker, config_.beginStallPollInterval, Bucket::Sched);
    return false;
}

bool
Simulation::doTxAccess(Worker &worker)
{
    if (static_cast<std::size_t>(worker.accessIndex)
        >= worker.desc.accesses.size()) {
        worker.phase = Phase::Commit;
        return true;
    }
    const workloads::TxAccess &access =
        worker.desc.accesses[static_cast<std::size_t>(
            worker.accessIndex)];
    const mem::Addr line = mem::lineNumber(access.addr);

    htm::AccessResult result = detector_->access(
        worker.tx, line, access.write, worker.stallRetries,
        worker.descriptorAborts);

    // Extra charges from CM conflict notification, folded into the
    // next advance so bucket totals match consumed CPU time. Reuses
    // the worker's scratch list so the access path never allocates.
    std::vector<Charge> &notify_charges = worker.chargeScratch;
    notify_charges.clear();
    if (result.resolution != htm::Resolution::Proceed) {
        // Conflict arbitration + notification is CM decide-path work.
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kCmDecide);
        // Reactive managers may arbitrate the conflict themselves
        // (Timestamp, Polka); the substrate's verdict stands unless
        // every holder's arbitration agrees on an override, with the
        // most requester-hostile verdict winning.
        bool cm_arbitrated = true;
        bool any_requester_abort = false;
        bool any_stall = false;
        for (const htm::TxState *holder : result.conflicts) {
            cm::ArbitrationContext context;
            context.requester = infoFor(worker);
            context.requesterAccesses = worker.tx.accessesDone;
            context.stallRetries = worker.stallRetries;
            context.priorAborts = worker.descriptorAborts;
            context.holder = infoFor(*holder);
            context.holderAccesses = holder->accessesDone;
            context.holderAgeDelta =
                static_cast<std::int64_t>(holder->timestamp)
                - static_cast<std::int64_t>(worker.tx.timestamp);
            switch (cm_->arbitrate(context)) {
              case cm::ConflictArbitration::UseSubstrate:
                cm_arbitrated = false;
                break;
              case cm::ConflictArbitration::StallRequester:
                any_stall = true;
                break;
              case cm::ConflictArbitration::AbortRequester:
                any_requester_abort = true;
                break;
              case cm::ConflictArbitration::AbortHolders:
                break;
            }
        }
        if (cm_arbitrated) {
            if (any_requester_abort) {
                result.resolution = htm::Resolution::AbortRequester;
            } else if (any_stall) {
                result.resolution = htm::Resolution::StallRequester;
            } else {
                result.resolution = htm::Resolution::AbortHolders;
            }
        }
        conflicts_.inc();
        for (const htm::TxState *holder : result.conflicts) {
            const int a = ids_->staticOf(worker.tx.dTxId);
            const int b = ids_->staticOf(holder->dTxId);
            conflictGraph_.insert({std::min(a, b), std::max(a, b)});
        }
        // Tell the CM about the conflict once per (attempt, enemy)
        // pair -- the granularity of the paper's txConflict() -- not
        // on every NACKed access or stall retry.
        for (const htm::TxState *holder : result.conflicts) {
            if (!worker.reportedEnemies.insert(holder->dTxId))
                continue;
            if (wantsTrace(sim::TraceCategory::Cm)) {
                std::vector<std::pair<std::string, std::string>>
                    details;
                details.reserve(3);
                details.emplace_back("enemy",
                                     std::to_string(holder->dTxId));
                details.emplace_back("line", std::to_string(line));
                details.emplace_back("write",
                                     access.write ? "1" : "0");
                trace(worker, sim::TraceCategory::Cm, "conflict",
                      std::move(details));
            }
            const cm::CmCost cost = cm_->onConflictDetected(
                infoFor(worker), infoFor(*holder));
            notify_charges.push_back({cost.sched, Bucket::Sched});
            notify_charges.push_back({cost.kernel, Bucket::Kernel});
        }
    }

    switch (result.resolution) {
      case htm::Resolution::Proceed: {
        worker.stallRetries = 0;
        if (auditing()) {
            worker.waitHolders.clear();
            auditLifecycle(worker, LifecycleAuditor::TxEvent::Access);
        }
        sim::Cycles latency;
        {
            sim::ScopedPhase prof_phase(config_.profiler,
                                        sim::Profiler::kMem);
            latency = mem_->access(worker.tx.cpu, access.addr,
                                   access.write, events_.curTick());
        }
        latency += worker.desc.workPerAccess;
        // Eager versioning: first store to a line saves the old
        // value to the undo log.
        if (access.write)
            latency += worker.undoLog.append(line);
        worker.tx.workDone += latency;
        ++worker.tx.accessesDone;
        ++worker.accessIndex;
        advance(worker, latency, Bucket::Attempt);
        return false;
      }
      case htm::Resolution::StallRequester: {
        ++worker.stallRetries;
        if (auditing()) {
            worker.waitHolders.clear();
            for (const htm::TxState *holder : result.conflicts)
                worker.waitHolders.insert(holder->dTxId);
            auditSweep();
        }
        notify_charges.push_back(
            {config_.nackRetryInterval, Bucket::Attempt});
        advanceMulti(worker, notify_charges);
        return false;
      }
      case htm::Resolution::AbortRequester: {
        sim_assert(!result.conflicts.empty());
        abortTx(worker, infoFor(*result.conflicts.front()));
        return false;
      }
      case htm::Resolution::AbortHolders: {
        // A holder that already reached its commit point cannot be
        // aborted; back off and retry instead.
        const bool any_committing = std::any_of(
            result.conflicts.begin(), result.conflicts.end(),
            [this](const htm::TxState *holder) {
                return workers_[static_cast<std::size_t>(
                                    holder->thread)]
                    .committing;
            });
        notify_charges.push_back(
            {config_.nackRetryInterval, Bucket::Attempt});
        if (any_committing) {
            ++worker.stallRetries;
            if (auditing()) {
                worker.waitHolders.clear();
                for (const htm::TxState *holder : result.conflicts)
                    worker.waitHolders.insert(holder->dTxId);
            }
            advanceMulti(worker, notify_charges);
            return false;
        }
        const cm::TxInfo enemy = infoFor(worker);
        for (htm::TxState *holder : result.conflicts) {
            abortTx(workers_[static_cast<std::size_t>(holder->thread)],
                    enemy);
        }
        worker.stallRetries = 0;
        advanceMulti(worker, notify_charges);
        return false;
      }
    }
    sim_panic("unhandled Resolution");
}

void
Simulation::abortTx(Worker &worker, const cm::TxInfo &enemy)
{
    sim_assert(worker.tx.active);
    sim_assert(!worker.committing);

    // A remotely aborted victim has an in-flight continuation;
    // replace it with the abort sequence.
    if (worker.pendingEvent != sim::kNoEvent) {
        events_.deschedule(worker.pendingEvent);
        worker.pendingEvent = sim::kNoEvent;
    }

    if (auditing())
        auditLifecycle(worker, LifecycleAuditor::TxEvent::Abort);

    detector_->removeTx(worker.tx);
    runningTx_.erase(worker.tx.dTxId);
    worker.tx.active = false;
    worker.waitHolders.clear();

    aborts_.inc();
    abortCyclesHist_.sample(static_cast<double>(worker.attemptCycles));
    {
        // Prediction quality: an abort of an attempt no begin
        // decision serialized is a missed prediction; a serialized
        // attempt that aborted anyway predicted a real conflict but
        // the stall failed to prevent it.
        SitePrediction &site = sitePrediction_[static_cast<std::size_t>(
            ids_->staticOf(worker.tx.dTxId))];
        if (worker.attemptSerializedOn == htm::kNoTx)
            site.falseNegatives.inc();
        else
            site.predictedAborts.inc();
    }
    const bool was_serialized =
        worker.attemptSerializedOn != htm::kNoTx;
    worker.attemptSerializedOn = htm::kNoTx;
    const int victim_stx = ids_->staticOf(worker.tx.dTxId);
    const int winner_stx =
        enemy.dTx != htm::kNoTx ? enemy.sTx : victim_stx;
    if (config_.quality != nullptr) {
        // The aborted attempt's cycles are the wasted work; the
        // enemy is the abort's actual winner, which keeps the ledger
        // totals reconcilable against the conflict-edge wasted
        // cycles in the obs report.
        config_.quality->recordOutcome(
            events_.curTick(), winner_stx, victim_stx,
            worker.attemptConfidence,
            was_serialized
                ? sim::QualityRecorder::Outcome::PredictedAbort
                : sim::QualityRecorder::Outcome::FalseNegative,
            worker.attemptCycles);
    }
    worker.attemptConfidence = -1.0;
    worker.attemptStallCycles = 0;
    if (wantsTrace(sim::TraceCategory::Tx)) {
        std::vector<std::pair<std::string, std::string>> details;
        details.reserve(3);
        details.emplace_back("enemy", std::to_string(enemy.dTx));
        details.emplace_back("enemySTx", std::to_string(winner_stx));
        details.emplace_back("wasted",
                             std::to_string(worker.attemptCycles));
        trace(worker, sim::TraceCategory::Tx, "abort",
              std::move(details));
    }
    ++abortPairs_[{std::min(winner_stx, victim_stx),
                   std::max(winner_stx, victim_stx)}];
    {
        ConflictEdgeStats &edge =
            abortEdges_[{winner_stx, victim_stx}];
        ++edge.aborts;
        edge.wastedCycles += worker.attemptCycles;
    }
    ++worker.descriptorAborts;
    worker.buckets.aborted += worker.attemptCycles;
    worker.attemptCycles = 0;

    // Walk the undo log backwards in software (LogTM abort).
    const sim::Cycles rollback = worker.undoLog.abort();
    if (wantsTrace(sim::TraceCategory::Mem)) {
        trace(worker, sim::TraceCategory::Mem, "rollback",
              {{"cycles", std::to_string(rollback)}});
    }

    cm::AbortResponse resp;
    {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kCmCommit);
        resp = cm_->onTxAbort(infoFor(worker), enemy);
    }
    if (auditing())
        auditSweep();

    worker.tx.resetAttempt();
    worker.accessIndex = 0;
    worker.stallRetries = 0;
    worker.phase = Phase::TxBegin;
    advanceMulti(worker, {{rollback + resp.backoff, Bucket::Abort},
                          {resp.cost.sched, Bucket::Sched},
                          {resp.cost.kernel, Bucket::Kernel}});
}

bool
Simulation::doCommit(Worker &worker)
{
    // Past this point the transaction is irrevocable.
    worker.committing = true;
    worker.phase = Phase::CommitDone;
    advance(worker,
            config_.commitLatency + worker.undoLog.commit(),
            Bucket::Attempt);
    return false;
}

bool
Simulation::doCommitDone(Worker &worker)
{
    // Union of read and write sets, as line numbers. The worker's
    // commit buffer is reused across commits (capacity sticks), so a
    // steady-state commit performs no allocation here.
    std::vector<mem::Addr> &rw_lines = worker.commitLines;
    rw_lines.clear();
    rw_lines.reserve(worker.tx.readSet.size()
                     + worker.tx.writeSet.size());
    // lint:allow(unordered-iteration): collected into rw_lines and
    // sorted below, so hash order never reaches the CM or stats.
    for (mem::Addr line : worker.tx.readSet)
        rw_lines.push_back(line);
    // lint:allow(unordered-iteration): same -- sorted below.
    for (mem::Addr line : worker.tx.writeSet) {
        if (!worker.tx.readSet.count(line))
            rw_lines.push_back(line);
    }
    // CMs receive the commit set in line-number order, not the hash
    // order of the exact sets, so their decisions are reproducible
    // across standard libraries and hash seeds.
    std::sort(rw_lines.begin(), rw_lines.end());

    if (auditing())
        auditLifecycle(worker, LifecycleAuditor::TxEvent::Commit);

    detector_->removeTx(worker.tx);
    runningTx_.erase(worker.tx.dTxId);
    worker.tx.active = false;
    worker.committing = false;
    worker.waitHolders.clear();

    cm::CmCost cost;
    {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kCmCommit);
        cost = cm_->onTxCommit(infoFor(worker), rw_lines);
    }
    if (auditing())
        auditSweep();

    commits_.inc();
    if (wantsTrace(sim::TraceCategory::Tx)) {
        trace(worker, sim::TraceCategory::Tx, "commit",
              {{"lines", std::to_string(rw_lines.size())}});
    }
    // Classify before recordSimilarity: the enemy's lastSet must
    // still hold the set it most recently committed.
    classifyPrediction(worker, rw_lines);
    worker.attemptSerializedOn = htm::kNoTx;
    worker.attemptConfidence = -1.0;
    worker.attemptStallCycles = 0;
    worker.buckets.tx += worker.attemptCycles;
    worker.attemptCycles = 0;
    recordSimilarity(worker, rw_lines);

    ++worker.done;
    worker.tx.resetAttempt();
    worker.phase = Phase::StartDescriptor;
    if (cost.sched + cost.kernel == 0)
        return true;
    advanceMulti(worker, {{cost.sched, Bucket::Sched},
                          {cost.kernel, Bucket::Kernel}});
    return false;
}

void
Simulation::auditLifecycle(const Worker &worker,
                           LifecycleAuditor::TxEvent event)
{
    lifecycle_->onEvent(worker.tid, event, events_.curTick(),
                        worker.tx.cpu,
                        static_cast<std::int64_t>(worker.tx.dTxId));
}

void
Simulation::auditSweep()
{
    const sim::Tick tick = events_.curTick();

    // Active transactions, ordered by dTxID (runningTx_ is a set).
    std::vector<const htm::TxState *> active;
    std::vector<ActiveTx> active_ts;
    active.reserve(runningTx_.size());
    active_ts.reserve(runningTx_.size());
    for (htm::DTxId dtx : runningTx_) {
        const Worker &w =
            workers_[static_cast<std::size_t>(ids_->threadOf(dtx))];
        active.push_back(&w.tx);
        active_ts.push_back(
            {static_cast<std::int64_t>(dtx), w.tx.timestamp});
    }

    detector_->auditCheck(*audit_, active, tick);
    sched_->auditCheck(*audit_, tick);

    // NACK wait-for edges from stalled workers to their recorded
    // holders, restricted to still-active endpoints (a holder that
    // finished just means the stall ends at the next retry).
    std::vector<WaitEdge> edges;
    for (const Worker &w : workers_) {
        if (!w.tx.active || w.waitHolders.empty())
            continue;
        for (htm::DTxId holder : w.waitHolders) {
            if (!isTxRunning(holder))
                continue;
            const Worker &h = workers_[static_cast<std::size_t>(
                ids_->threadOf(holder))];
            edges.push_back({static_cast<std::int64_t>(w.tx.dTxId),
                             w.tx.timestamp,
                             static_cast<std::int64_t>(holder),
                             h.tx.timestamp});
        }
    }
    auditWaitGraph(*audit_, active_ts, edges, tick);

    if (const auto *base =
            dynamic_cast<const cm::ContentionManagerBase *>(
                cm_.get())) {
        // The CM's software CPU Table only names running txs.
        std::vector<std::int64_t> cm_view(
            static_cast<std::size_t>(config_.numCpus), -1);
        for (int cpu = 0; cpu < config_.numCpus; ++cpu) {
            const htm::DTxId dtx = base->runningOn(cpu);
            if (dtx != htm::kNoTx)
                cm_view[static_cast<std::size_t>(cpu)] =
                    static_cast<std::int64_t>(dtx);
        }
        std::vector<std::int64_t> running;
        running.reserve(runningTx_.size());
        for (htm::DTxId dtx : runningTx_)
            running.push_back(static_cast<std::int64_t>(dtx));
        auditCmCpuTable(*audit_, cm_view, running, tick);
    }
    if (const auto *bfgts =
            dynamic_cast<const cm::BfgtsManager *>(cm_.get())) {
        bfgts->auditCheck(*audit_, tick);
        const cm::BfgtsVariant variant = bfgts->config().variant;
        if (variant == cm::BfgtsVariant::Hw
            || variant == cm::BfgtsVariant::HwBackoff) {
            // The snooped hardware CPU Tables mirror the software
            // view the broadcasts are generated from.
            std::vector<htm::DTxId> expected(
                static_cast<std::size_t>(config_.numCpus),
                htm::kNoTx);
            for (int cpu = 0; cpu < config_.numCpus; ++cpu)
                expected[static_cast<std::size_t>(cpu)] =
                    bfgts->runningOn(cpu);
            predictors_->auditCheck(*audit_, expected, tick);
        }
    }
}

void
Simulation::recordSimilarity(Worker &worker,
                             const std::vector<mem::Addr> &rw_lines)
{
    SimTrack &track = simTrack_[static_cast<std::size_t>(
        ids_->denseIndex(worker.tx.dTxId))];
    const auto size = static_cast<double>(rw_lines.size());
    track.avgSize = track.avgSize == 0.0
                        ? size
                        : 0.5 * (track.avgSize + size);
    if (!track.lastSet.empty() && track.avgSize > 0.0) {
        std::size_t inter = 0;
        for (mem::Addr line : rw_lines)
            inter += track.lastSet.count(line);
        const double sim = std::clamp(
            static_cast<double>(inter) / track.avgSize, 0.0, 1.0);
        siteSim_[static_cast<std::size_t>(
                     ids_->staticOf(worker.tx.dTxId))]
            .sample(sim);
    }
    track.lastSet.clear();
    track.lastSet.insert(rw_lines.begin(), rw_lines.end());
}

void
Simulation::classifyPrediction(const Worker &worker,
                               const std::vector<mem::Addr> &rw_lines)
{
    const htm::DTxId enemy = worker.attemptSerializedOn;
    const int victim_stx = ids_->staticOf(worker.tx.dTxId);
    SitePrediction &site =
        sitePrediction_[static_cast<std::size_t>(victim_stx)];
    if (enemy == htm::kNoTx) {
        // Unserialized clean commit: nothing was predicted and
        // nothing needed to be.
        site.trueNegatives.inc();
        if (config_.quality != nullptr) {
            config_.quality->recordOutcome(
                events_.curTick(), /*enemy_stx=*/-1, victim_stx,
                worker.attemptConfidence,
                sim::QualityRecorder::Outcome::TrueNegative,
                /*cycles=*/0);
        }
        return;
    }
    // Exact-set ground truth: if this commit's lines intersect the
    // enemy's last committed set, the serialization dodged a certain
    // conflict (true positive); a disjoint set means the enemy would
    // have committed clean and the stall was wasted (false positive).
    const SimTrack &track = simTrack_[static_cast<std::size_t>(
        ids_->denseIndex(enemy))];
    bool overlap = false;
    for (mem::Addr line : rw_lines) {
        if (track.lastSet.count(line) > 0) {
            overlap = true;
            break;
        }
    }
    if (overlap)
        site.truePositives.inc();
    else
        site.falsePositives.inc();
    if (config_.quality != nullptr) {
        // Cost-benefit attribution: a correct stall saved the cycles
        // this attempt would have lost to an abort; a wrong one
        // wasted the cycles spent begin-stalling.
        config_.quality->recordOutcome(
            events_.curTick(), ids_->staticOf(enemy), victim_stx,
            worker.attemptConfidence,
            overlap ? sim::QualityRecorder::Outcome::TruePositive
                    : sim::QualityRecorder::Outcome::FalsePositive,
            overlap ? worker.attemptCycles
                    : worker.attemptStallCycles);
    }
}

void
Simulation::visitStatGroups(
    const std::function<void(const sim::StatGroup &)> &visit) const
{
    // Scratch aggregation counters live in each block so they stay
    // alive while the group (which holds pointers) is visited.

    // Memory hierarchy.
    {
        sim::Counter l1_hits, l1_misses;
        for (int cpu = 0; cpu < config_.numCpus; ++cpu) {
            l1_hits.inc(mem_->l1(cpu).hits().value());
            l1_misses.inc(mem_->l1(cpu).misses().value());
        }
        sim::StatGroup group("mem");
        group.addCounter("l1.hits", &l1_hits);
        group.addCounter("l1.misses", &l1_misses);
        group.addCounter("l2.hits", &mem_->l2().hits());
        group.addCounter("l2.misses", &mem_->l2().misses());
        group.addCounter("bus.requests", &mem_->bus().requests());
        group.addCounter("bus.queuedCycles",
                         &mem_->bus().queuedCycles());
        visit(group);
    }
    // HTM substrate.
    {
        sim::Counter log_appends, log_restored;
        sim::Counter log_high_water;
        for (const Worker &worker : workers_) {
            log_appends.inc(worker.undoLog.appends().value());
            log_restored.inc(
                worker.undoLog.restoredEntries().value());
            log_high_water.inc(worker.undoLog.highWaterMark());
        }
        sim::StatGroup group("htm");
        group.addCounter("conflictsDetected",
                         &detector_->conflictsDetected());
        group.addCounter("undoLog.appends", &log_appends);
        group.addCounter("undoLog.restoredEntries", &log_restored);
        group.addCounter("undoLog.highWaterSum", &log_high_water);
        group.addCounter("commits", &commits_);
        group.addCounter("aborts", &aborts_);
        group.addHistogram("nackRetries",
                           &detector_->nackRetryHist());
        visit(group);
    }
    // Predictor hardware (meaningful for the HW variants).
    {
        sim::Counter cache_hits, cache_misses, refetches;
        for (int cpu = 0; cpu < config_.numCpus; ++cpu) {
            cache_hits.inc(
                predictors_->confCache(cpu).hits().value());
            cache_misses.inc(
                predictors_->confCache(cpu).misses().value());
            refetches.inc(
                predictors_->confCache(cpu).refetches().value());
        }
        sim::StatGroup group("predictor");
        group.addCounter("predictions", &predictors_->predictions());
        group.addCounter("conflictsPredicted",
                         &predictors_->conflictsPredicted());
        group.addCounter("confCache.hits", &cache_hits);
        group.addCounter("confCache.misses", &cache_misses);
        group.addCounter("confCache.refetches", &refetches);
        group.addCounter("snoopInvalidations",
                         &predictors_->snoopInvalidations());
        group.addCounter("cpuTableUpdates",
                         &predictors_->cpuTableUpdates());
        visit(group);
    }
    // Predictor decision quality (runner ground truth).
    {
        sim::Counter stalls, tp, fp, fn, predicted_aborts, tn;
        for (const SitePrediction &site : sitePrediction_) {
            stalls.inc(site.predictedStalls.value());
            tp.inc(site.truePositives.value());
            fp.inc(site.falsePositives.value());
            fn.inc(site.falseNegatives.value());
            predicted_aborts.inc(site.predictedAborts.value());
            tn.inc(site.trueNegatives.value());
        }
        PredictionQuality quality;
        quality.predictedStalls = stalls.value();
        quality.truePositives = tp.value();
        quality.falsePositives = fp.value();
        quality.falseNegatives = fn.value();
        quality.predictedAborts = predicted_aborts.value();
        quality.trueNegatives = tn.value();
        sim::StatGroup group("predictor.quality");
        group.addCounter("predictedStalls", &stalls);
        group.addCounter("truePositives", &tp);
        group.addCounter("falsePositives", &fp);
        group.addCounter("falseNegatives", &fn);
        group.addCounter("predictedAborts", &predicted_aborts);
        group.addCounter("trueNegatives", &tn);
        group.addScalar("precision", quality.precision());
        group.addScalar("recall", quality.recall());
        group.addScalar("f1", quality.f1());
        group.addScalar("accuracy", quality.accuracy());
        visit(group);
    }
    // Contention manager.
    if (auto *base =
            dynamic_cast<cm::ContentionManagerBase *>(cm_.get())) {
        sim::StatGroup group("cm");
        group.addCounter("commits", &base->commits());
        group.addCounter("aborts", &base->aborts());
        group.addCounter("serializations", &base->serializations());
        visit(group);
    }
    // BFGTS internals (similarity EWMA inputs and gating).
    if (auto *bfgts = dynamic_cast<cm::BfgtsManager *>(cm_.get())) {
        sim::StatGroup group("bfgts");
        group.addCounter("gatedBegins", &bfgts->gatedBegins());
        group.addCounter("skippedSimUpdates",
                         &bfgts->skippedSimUpdates());
        group.addHistogram("similarity", &bfgts->similarityHist());
        group.addHistogram("confidence", &bfgts->confidenceHist());
        visit(group);
    }
    // OS scheduler.
    {
        sim::Counter yields, preemptions, blocks, kernel;
        for (int t = 0; t < config_.numThreads(); ++t) {
            yields.inc(sched_->thread(t).yields);
            preemptions.inc(sched_->thread(t).preemptions);
            blocks.inc(sched_->thread(t).blocks);
            kernel.inc(sched_->thread(t).kernelCycles);
        }
        sim::StatGroup group("os");
        group.addCounter("yields", &yields);
        group.addCounter("preemptions", &preemptions);
        group.addCounter("blocks", &blocks);
        group.addCounter("kernelCycles", &kernel);
        visit(group);
    }
    // Runner-level cycle distributions.
    {
        sim::StatGroup group("runner");
        group.addCounter("conflicts", &conflicts_);
        group.addCounter("stallTimeouts", &stallTimeouts_);
        group.addHistogram("abortCycles", &abortCyclesHist_);
        group.addHistogram("stallCycles", &stallCyclesHist_);
        visit(group);
    }
}

void
Simulation::dumpStats(std::ostream &os) const
{
    visitStatGroups(
        [&os](const sim::StatGroup &group) { group.dump(os); });
}

void
Simulation::dumpStatsJson(sim::JsonWriter &jw) const
{
    jw.beginObject("stats");
    visitStatGroups(
        [&jw](const sim::StatGroup &group) { group.dumpJson(jw); });
    jw.endObject();

    PredictionQuality total;
    for (const SitePrediction &site : sitePrediction_) {
        total.predictedStalls += site.predictedStalls.value();
        total.truePositives += site.truePositives.value();
        total.falsePositives += site.falsePositives.value();
        total.falseNegatives += site.falseNegatives.value();
        total.predictedAborts += site.predictedAborts.value();
        total.trueNegatives += site.trueNegatives.value();
    }
    jw.beginObject("predictor_quality");
    jw.kv("predictedStalls", total.predictedStalls);
    jw.kv("truePositives", total.truePositives);
    jw.kv("falsePositives", total.falsePositives);
    jw.kv("falseNegatives", total.falseNegatives);
    jw.kv("predictedAborts", total.predictedAborts);
    jw.kv("trueNegatives", total.trueNegatives);
    jw.kv("precision", total.precision());
    jw.kv("recall", total.recall());
    jw.kv("f1", total.f1());
    jw.kv("accuracy", total.accuracy());
    jw.beginArray("perSite");
    for (std::size_t s = 0; s < sitePrediction_.size(); ++s) {
        const SitePrediction &site = sitePrediction_[s];
        PredictionQuality per_site;
        per_site.truePositives = site.truePositives.value();
        per_site.falsePositives = site.falsePositives.value();
        per_site.falseNegatives = site.falseNegatives.value();
        per_site.trueNegatives = site.trueNegatives.value();
        jw.beginObject();
        jw.kv("sTx", static_cast<std::uint64_t>(s));
        jw.kv("predictedStalls", site.predictedStalls.value());
        jw.kv("truePositives", site.truePositives.value());
        jw.kv("falsePositives", site.falsePositives.value());
        jw.kv("falseNegatives", site.falseNegatives.value());
        jw.kv("predictedAborts", site.predictedAborts.value());
        jw.kv("trueNegatives", site.trueNegatives.value());
        jw.kv("f1", per_site.f1());
        jw.kv("accuracy", per_site.accuracy());
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    jw.beginArray("similarity_per_site");
    for (const sim::Accumulator &acc : siteSim_)
        jw.value(acc.mean());
    jw.endArray();
}

void
Simulation::sampleSnapshot(sim::SampleCounts &counts,
                           sim::SampleGauges &gauges) const
{
    counts.commits = commits_.value();
    counts.aborts = aborts_.value();
    counts.conflicts = conflicts_.value();
    counts.stallTimeouts = stallTimeouts_.value();
    for (const SitePrediction &site : sitePrediction_)
        counts.predictedStalls += site.predictedStalls.value();

    for (int cpu = 0; cpu < config_.numCpus; ++cpu) {
        gauges.readyQueueDepth += sched_->readyCount(cpu);
        const sim::ThreadId tid = sched_->runningOn(cpu);
        if (tid == sim::kNoThread)
            continue;
        ++gauges.cpusRunning;
        if (workers_[static_cast<std::size_t>(tid)].phase
            == Phase::BeginStall) {
            ++gauges.cpusStalled;
        }
    }

    if (const auto *bfgts =
            dynamic_cast<const cm::BfgtsManager *>(cm_.get())) {
        gauges.meanConfidence = bfgts->meanConfidence();
        gauges.bloomOccupancy = bfgts->meanBloomOccupancy();
        gauges.conflictPressure = bfgts->meanPressure();
    } else if (const auto *ats =
                   dynamic_cast<const cm::AtsManager *>(cm_.get())) {
        gauges.conflictPressure = ats->meanPressure();
    }

    if (config_.quality != nullptr) {
        gauges.calibrationBrier =
            config_.quality->data().brierScore();
    }
}

SimResults
Simulation::run()
{
    sim_assert(!ran_);
    ran_ = true;

    if (config_.sampler != nullptr) {
        config_.sampler->start(
            events_,
            [this](sim::SampleCounts &counts,
                   sim::SampleGauges &gauges) {
                sampleSnapshot(counts, gauges);
            },
            // Once every thread finished, the sampler must stop
            // rescheduling itself or the queue would never drain;
            // the tail lands in the final partial window below.
            [this] { return !sched_->allFinished(); });
    }

    // Host accounting brackets the whole run loop. The two clock
    // reads per *run* are always on (they feed the process-global
    // wall_ns_per_cycle / events_per_sec totals the bench reports
    // stamp); per-phase attribution only happens under a profiler.
    if (config_.profiler != nullptr)
        config_.profiler->beginRun();
    const std::uint64_t host_start = sim::hostNowNs();

    {
        sim::ScopedPhase prof_phase(config_.profiler,
                                    sim::Profiler::kOsSched);
        sched_->start();
    }
    const std::uint64_t executed = events_.run();

    const std::uint64_t host_end = sim::hostNowNs();

    if (config_.sampler != nullptr)
        config_.sampler->finish(lastFinish_);

    if (!sched_->allFinished()) {
        sim_panic("simulation drained with %d/%d threads unfinished",
                  finishedThreads_, config_.numThreads());
    }

    sim::addHostRunSample(host_end > host_start
                              ? host_end - host_start
                              : 0,
                          executed, lastFinish_);
    if (config_.profiler != nullptr) {
        config_.profiler->endRun(executed, lastFinish_);
        cm_->profileMemory(*config_.profiler);
        config_.profiler->recordBytes(
            sim::Profiler::kPredictorCaches,
            predictors_->memoryFootprintBytes());
    }

    SimResults results;
    results.workload = workload_->name();
    results.cm = cm_->name();
    results.runtime = lastFinish_;
    results.commits = commits_.value();
    results.aborts = aborts_.value();
    results.conflicts = conflicts_.value();
    results.stallTimeouts = stallTimeouts_.value();
    const std::uint64_t attempts = results.commits + results.aborts;
    results.contentionRate =
        attempts == 0 ? 0.0
                      : static_cast<double>(results.aborts)
                            / static_cast<double>(attempts);

    for (const Worker &worker : workers_) {
        results.breakdown.nonTx += worker.buckets.nonTx;
        results.breakdown.kernel += worker.buckets.kernel;
        results.breakdown.tx += worker.buckets.tx;
        results.breakdown.aborted += worker.buckets.aborted;
        results.breakdown.sched += worker.buckets.sched;
    }
    for (int t = 0; t < config_.numThreads(); ++t)
        results.breakdown.kernel += sched_->thread(t).kernelCycles;

    const sim::Cycles busy =
        results.breakdown.nonTx + results.breakdown.kernel
        + results.breakdown.tx + results.breakdown.aborted
        + results.breakdown.sched;
    const sim::Cycles capacity =
        static_cast<sim::Cycles>(config_.numCpus) * results.runtime;
    results.breakdown.idle = capacity > busy ? capacity - busy : 0;

    if (auto *base =
            dynamic_cast<cm::ContentionManagerBase *>(cm_.get())) {
        results.serializations = base->serializations().value();
    }

    for (const SitePrediction &site : sitePrediction_) {
        results.prediction.predictedStalls +=
            site.predictedStalls.value();
        results.prediction.truePositives +=
            site.truePositives.value();
        results.prediction.falsePositives +=
            site.falsePositives.value();
        results.prediction.falseNegatives +=
            site.falseNegatives.value();
        results.prediction.predictedAborts +=
            site.predictedAborts.value();
        results.prediction.trueNegatives +=
            site.trueNegatives.value();
    }

    for (const sim::Accumulator &acc : siteSim_)
        results.similarityPerSite.push_back(acc.mean());
    results.conflictGraph = conflictGraph_;
    results.abortPairs = abortPairs_;
    results.abortEdges = abortEdges_;
    if (auto *base =
            dynamic_cast<cm::ContentionManagerBase *>(cm_.get())) {
        results.serializationEdges = base->serializationEdges();
    }

    if (auditing()) {
        // End-of-run conservation: every begin resolved, the cycle
        // buckets account for the whole machine, and independently
        // maintained totals agree across layers.
        lifecycle_->finalize(lastFinish_);
        audit_->check(lifecycle_->commits() == results.commits
                          && lifecycle_->aborts() == results.aborts,
                      "cycles.results",
                      "lifecycle-auditor totals disagree with the "
                      "runner counters",
                      lastFinish_);
        auditBreakdown(*audit_, results.breakdown, results.runtime,
                       config_.numCpus, lastFinish_);
        if (const auto *base =
                dynamic_cast<const cm::ContentionManagerBase *>(
                    cm_.get())) {
            auditResultTotals(*audit_, results,
                              base->commits().value(),
                              base->aborts().value(), lastFinish_);
        }
        auditSweep();
    }
    return results;
}

} // namespace runner
