/**
 * @file
 * Distributed sweep farm: shard a sweep across processes/machines and
 * merge the pieces back into the byte-identical single-machine report.
 *
 * A Farm wraps a SweepRunner and adds three things:
 *
 *  - **Static sharding.** shardIndices() partitions the cell list of
 *    a sweep into N disjoint, order-preserving, covering slices; a
 *    worker runs `--shard i/N` and emits a partial `bfgts-sweep-v1`
 *    report whose `shard` manifest records the matrix digest, shard
 *    coordinates, and the global cell-index ranges it covers.
 *
 *  - **Filesystem work-stealing.** With a shared queue directory,
 *    heterogeneous workers claim cells one lease file at a time
 *    (O_CREAT|O_EXCL is atomic on a POSIX filesystem, including NFS
 *    with modern clients), mark them done, and reclaim leases whose
 *    mtime is older than a staleness bound (a crashed worker's
 *    claims). Every worker emits a partial report covering exactly
 *    the cells it ran.
 *
 *  - **Byte-identical merge.** mergeSweepReports() validates that a
 *    set of partial reports came from the same matrix (digest,
 *    totalCells, name, git), that their ranges are disjoint and
 *    cover the matrix, and re-emits the cells in global index order.
 *    Because partials carry each cell's original JSON (numbers kept
 *    as raw lexemes via sim/json_parse.h), the merged document is
 *    byte-identical to what a single `SweepRunner --jobs N` run
 *    would have written.
 *
 * Crash-resume needs no extra machinery: completed cells land in the
 * shared content-addressed cache (multi-process-safe writers, see
 * SweepRunner::writeCache), so re-running a killed shard re-executes
 * only the cells missing from the cache.
 *
 * Custom cells (SweepCell::custom) have no configuration to digest
 * and cannot participate in a farm; run() rejects them.
 */

#ifndef BFGTS_RUNNER_FARM_H
#define BFGTS_RUNNER_FARM_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "runner/sweep.h"

namespace runner {

/** How to execute one farm worker. */
struct FarmOptions {
    /** Execution options for the wrapped SweepRunner. For resume and
     *  work sharing, sweep.cacheDir should point at storage shared by
     *  every worker of the farm. profile/quality are unsupported in
     *  farm runs (partial side-channel reports do not merge). */
    SweepOptions sweep;

    /** Static mode: this worker's shard, 0 <= shardIndex < shardCount.
     *  Ignored when stealDir is set. */
    int shardIndex = 0;
    int shardCount = 1;

    /** Work-stealing mode: shared queue directory (created on
     *  demand). Empty selects static mode. */
    std::string stealDir;
    /** Reclaim another worker's lease once its mtime is older than
     *  this many seconds (a crashed worker's claim). */
    int stealStaleSec = 900;
    /** Attempts when an O_EXCL claim keeps racing (exponential
     *  backoff between tries) before skipping the cell. */
    int stealMaxRetries = 6;
};

/**
 * One sweep-farm worker; see the file comment. Like SweepRunner, a
 * Farm can run() multiple matrices; accessors describe the most
 * recent run.
 */
class Farm
{
  public:
    explicit Farm(FarmOptions options = {});

    /**
     * Global cell indices of shard @p shard_index out of
     * @p shard_count over a @p cell_count-cell matrix: contiguous,
     * balanced (sizes differ by at most one), in ascending order.
     * Disjoint across shards; the union over all shards is exactly
     * [0, cell_count). Pure arithmetic -- independent of
     * BFGTS_HASH_SEED, worker counts, and cell contents.
     */
    static std::vector<std::size_t> shardIndices(std::size_t cell_count,
                                                 int shard_index,
                                                 int shard_count);

    /**
     * Digest identifying the full cell matrix (order-sensitive FNV-1a
     * over every cell's cellKey). Workers refuse to merge or steal
     * across differing digests. Throws std::invalid_argument on
     * custom cells.
     */
    static std::string matrixDigest(const std::vector<SweepCell> &cells);

    /**
     * Run this worker's share of @p cells (the full matrix; every
     * worker must pass the identical list). Returns the results of
     * the claimed cells, parallel to claimed(). Throws
     * std::invalid_argument on custom cells or invalid options, and
     * std::runtime_error when a steal queue belongs to a different
     * matrix.
     */
    std::vector<SweepCellResult> run(const std::vector<SweepCell> &cells);

    /** Global indices of the cells this worker ran, ascending. */
    const std::vector<std::size_t> &claimed() const { return claimed_; }

    /** Execution accounting of the wrapped SweepRunner. */
    const SweepStats &stats() const { return stats_; }

    /**
     * Write the partial `bfgts-sweep-v1` report of the last run():
     * the standard preamble, a `shard` manifest, and the claimed
     * cells in global index order.
     */
    void writeReport(std::ostream &os, const std::string &name) const;

  private:
    FarmOptions options_;
    SweepStats stats_;
    std::string digest_;
    std::size_t totalCells_ = 0;
    std::vector<std::size_t> claimed_;
    std::vector<SweepCell> claimedCells_;
    std::vector<SweepCellResult> results_;
};

/**
 * Merge partial shard reports (file paths) into the byte-identical
 * single-machine `bfgts-sweep-v1` report on @p os. Validates matrix
 * agreement (digest, totalCells, name, git), range disjointness, and
 * full coverage. Returns false (leaving @p os untouched) with a
 * message in @p error on any inconsistency.
 */
bool mergeSweepReports(const std::vector<std::string> &paths,
                       std::ostream &os, std::string *error);

} // namespace runner

#endif // BFGTS_RUNNER_FARM_H
