/**
 * @file
 * Full simulation configuration (paper Table 2 defaults).
 *
 * A SimConfig is a pure value: two simulations built from equal
 * configs (including the seed) produce identical results.
 */

#ifndef BFGTS_RUNNER_CONFIG_H
#define BFGTS_RUNNER_CONFIG_H

#include <cstdint>
#include <functional>
#include <ostream>
#include <memory>
#include <string>

#include "cm/factory.h"
#include "cpu/predictor.h"
#include "htm/tx_id.h"
#include "htm/conflict_detector.h"
#include "htm/version_log.h"
#include "mem/mem_system.h"
#include "os/scheduler.h"
#include "sim/audit.h"
#include "sim/trace.h"
#include "workloads/workload.h"

namespace sim {
class Profiler;
class QualityRecorder;
class Sampler;
}

namespace runner {

/** Builds the workload for a run (given the thread count). */
using WorkloadFactory =
    std::function<std::unique_ptr<workloads::Workload>(int num_threads)>;

/** Builds a custom contention manager (overrides `cm` when set). */
using ManagerFactory =
    std::function<std::unique_ptr<cm::ContentionManager>(
        int num_cpus, const htm::TxIdSpace &ids,
        const cm::Services &services)>;

/** Everything needed to run one simulation. */
struct SimConfig {
    /** STAMP benchmark name; ignored if workloadFactory is set. */
    std::string workload = "Intruder";

    /** Optional custom workload (examples/ uses this). */
    WorkloadFactory workloadFactory;

    /** Contention manager under test. */
    cm::CmKind cm = cm::CmKind::BfgtsHw;

    /** Optional user-defined manager (examples/custom_manager.cpp);
     *  when set, `cm` is ignored. */
    ManagerFactory managerFactory;

    /** Table 2: 16 one-IPC cores. */
    int numCpus = 16;

    /** Section 5.1: overcommitted, 4 threads per processor. */
    int threadsPerCpu = 4;

    /** Master seed; everything derives from it. */
    std::uint64_t seed = 1;

    /** Override the workload's transactions-per-thread (0 = keep). */
    int txPerThreadOverride = 0;

    /** Memory hierarchy (numCpus is synchronized at build time). */
    mem::MemSystemConfig mem;

    /** OS model. */
    os::SchedulerConfig sched;

    /** LogTM-style conflict resolution. */
    htm::ConflictPolicy conflict;

    /** Hardware scheduling accelerator (BFGTS-HW variants). */
    cpu::PredictorConfig predictor;

    /** Per-manager tunables. */
    cm::CmTuning tuning;

    // ---- runner cost model -------------------------------------------
    /** Cycles to commit a transaction (log seal + broadcast). */
    sim::Cycles commitLatency = 20;
    /** LogTM undo-log cost model (append / commit / abort walk). */
    htm::VersionLogConfig versionLog;
    /** Cycles between NACKed-access retries (in-tx stall). */
    sim::Cycles nackRetryInterval = 30;
    /** Cycles between begin-stall polls (TX_QUERY_PREDICTOR spin). */
    sim::Cycles beginStallPollInterval = 50;
    /** Give up a begin-stall after this many cycles (safety valve). */
    sim::Cycles beginStallTimeout = 2'000'000;
    /** Preemption-check granularity for non-transactional work. */
    sim::Cycles nonTxChunk = 20'000;

    /**
     * When set, every transaction-lifecycle event (begin decision,
     * start, conflict, abort, commit, rollback) is emitted here as a
     * structured sim::TraceRecord; the sink filters by category and
     * renders text or JSONL (docs/observability.md). For debugging
     * and tests; adds no simulated cost.
     */
    sim::TraceSink *traceSink = nullptr;

    /**
     * When set, run() drives this interval sampler on the simulation
     * event queue: it snapshots windowed counters and gauges every
     * sampler interval and emits the bfgts-ts-v1 time-series
     * (docs/observability.md). Observational only; adds no simulated
     * cost. The caller owns the sampler and reads its windows and
     * summary after run().
     */
    sim::Sampler *sampler = nullptr;

    /**
     * Host-performance profiler (docs/observability.md). When set,
     * run() brackets the event loop with host-clock stamps, the
     * instrumented subsystems charge their wall time to self-time
     * phases, and memory high-water gauges are sampled at the end of
     * the run. Observational only: wall-clock data never feeds model
     * state, so a profiled run produces byte-identical deterministic
     * reports; the measurements leave through the separate
     * nondeterministic `bfgts-prof-v1` document. The caller owns the
     * profiler and reads/serializes it after run().
     */
    sim::Profiler *profiler = nullptr;

    /**
     * Decision-quality recorder (docs/observability.md). When set,
     * the CM and runner report every Eq. 2-4 estimate alongside the
     * exact RW-set ground truth, and every classified stall/go
     * outcome with its predicted confidence and cycle attribution;
     * the recorder aggregates them into the `bfgts-qual-v1` report.
     * Observational only: quality data never feeds model state, so
     * a recorded run produces byte-identical deterministic results,
     * and the report itself is deterministic (byte-identical across
     * BFGTS_HASH_SEED values and sweep --jobs counts). The caller
     * owns the recorder and serializes it after run().
     */
    sim::QualityRecorder *quality = nullptr;

    /**
     * Checked simulation mode (docs/static-analysis.md): run every
     * invariant auditor at transaction boundaries and end of run.
     * Checks are purely observational -- an audited run produces
     * byte-identical results and output to an unaudited one (or
     * panics with a structured violation report). Defaults to the
     * BFGTS_AUDIT environment switch so whole test and bench suites
     * can be audited without code changes; `--audit` and this field
     * layer on top.
     */
    bool audit = sim::auditEnvEnabled();

    /**
     * Optional externally owned audit engine. When set (and `audit`
     * is true) the simulation reports through it instead of an
     * internal Panic-mode engine, letting tests collect violations
     * and inspect which checks fired.
     */
    sim::AuditEngine *auditEngine = nullptr;

    /** Total software threads. */
    int
    numThreads() const
    {
        return numCpus * threadsPerCpu;
    }
};

} // namespace runner

#endif // BFGTS_RUNNER_CONFIG_H
