/**
 * @file
 * The simulation engine: executes a workload on the modeled machine
 * under a contention manager and reports SimResults.
 *
 * Execution model
 * ---------------
 * Each software thread is a state machine driven by the event queue.
 * While a thread runs on its CPU it advances through phases:
 *
 *   StartDescriptor -> NonTxWork -> TxBegin -> (BeginStall | yield |
 *   block)* -> TxAccess... -> Commit -> CommitDone -> StartDescriptor
 *
 * with aborts rewinding to TxBegin after rollback + backoff. Every
 * cycle a thread consumes is charged to one accounting bucket
 * (Fig. 5 categories); in-transaction cycles accumulate per attempt
 * and land in "tx" on commit or "aborted" on abort.
 *
 * Threads never leave their CPU mid-transaction (stalls spin); they
 * yield/block/preempt only at begin-time and non-transactional safe
 * points, which keeps conflict resolution's progress guarantees
 * intact (the oldest transaction always wins and is always on-CPU).
 */

#ifndef BFGTS_RUNNER_SIMULATION_H
#define BFGTS_RUNNER_SIMULATION_H

#include <algorithm>
#include <functional>
#include <memory>
#include <ostream>
#include <set>
#include <vector>

#include "htm/version_log.h"
#include "runner/audit_checks.h"
#include "runner/config.h"
#include "runner/results.h"
#include "sim/det_hash.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace sim {
class JsonWriter;
struct SampleCounts;
struct SampleGauges;
}

namespace runner {

/** One full simulation run. Build, run() once, read the results. */
class Simulation
{
  public:
    explicit Simulation(const SimConfig &config);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Execute to completion. Call at most once. */
    SimResults run();

    /**
     * Dump every component's raw statistics (caches, bus, conflict
     * detector, predictors, contention manager, undo logs, predictor
     * decision quality) in the gem5-style "group.stat value" format.
     * Valid after run().
     */
    void dumpStats(std::ostream &os) const;

    /**
     * JSON twin of dumpStats(): writes a "stats" object (one member
     * per component group), a "predictor_quality" object with
     * precision/recall and the per-site confusion counters, and a
     * "similarity_per_site" array into the writer's current object.
     * Key order is fixed, so equal runs dump byte-identical JSON.
     */
    void dumpStatsJson(sim::JsonWriter &jw) const;

    /** The contention manager under test (for tests). */
    cm::ContentionManager &manager() { return *cm_; }

    /** The workload driving the run (for tests). */
    workloads::Workload &workload() { return *workload_; }

  private:
    enum class Phase {
        StartDescriptor,
        NonTxWork,
        TxBegin,
        BeginStall,
        YieldNow,
        BlockNow,
        TxAccess,
        Commit,
        CommitDone,
    };

    enum class Bucket { NonTx, Kernel, Sched, Abort, Attempt };

    /** A (cycles, bucket) charge for multi-bucket advances. */
    struct Charge {
        sim::Cycles cycles;
        Bucket bucket;
    };

    /**
     * Small sorted set of dTxIDs in a flat vector. A worker sees a
     * handful of enemies per attempt, so ordered insertion into a
     * contiguous array beats a node-based std::set: no allocation in
     * steady state (clear() keeps capacity) and iteration is ordered
     * by construction, preserving determinism.
     */
    class DtxFlatSet
    {
      public:
        /** @return true if @p value was newly inserted. */
        bool
        insert(htm::DTxId value)
        {
            auto it = std::lower_bound(items_.begin(), items_.end(),
                                       value);
            if (it != items_.end() && *it == value)
                return false;
            items_.insert(it, value);
            return true;
        }

        void clear() { items_.clear(); }
        bool empty() const { return items_.empty(); }
        auto begin() const { return items_.begin(); }
        auto end() const { return items_.end(); }

      private:
        std::vector<htm::DTxId> items_;
    };

    struct Worker {
        sim::ThreadId tid = sim::kNoThread;
        sim::Rng rng{0};
        Phase phase = Phase::StartDescriptor;
        int done = 0;
        workloads::TxDescriptor desc;
        /** Aborts suffered by the current descriptor (starvation). */
        int descriptorAborts = 0;
        sim::Cycles nonTxRemaining = 0;
        htm::TxState tx;
        htm::VersionLog undoLog;
        int accessIndex = 0;
        int stallRetries = 0;
        sim::Tick stallStart = 0;
        htm::DTxId stallOn = htm::kNoTx;
        bool committing = false;
        sim::EventId pendingEvent = sim::kNoEvent;
        sim::Cycles attemptCycles = 0;
        /** Enemy the most recent begin decision serialized behind
         *  (kNoTx when the last begin proceeded unserialized). */
        htm::DTxId lastSerializedOn = htm::kNoTx;
        /** Enemy the *running* attempt was serialized behind; drives
         *  the prediction-quality classification at commit/abort. */
        htm::DTxId attemptSerializedOn = htm::kNoTx;
        /** Confidence behind the most recent begin decision, in
         *  [0, 1]; negative when the CM consulted none. */
        double lastConfidence = -1.0;
        /** Confidence behind the running attempt's begin decision
         *  (frozen copy of lastConfidence at Proceed). */
        double attemptConfidence = -1.0;
        /** Begin-stall cycles accumulated by the running attempt;
         *  the wasted-stall cost if the prediction was wrong. */
        sim::Cycles attemptStallCycles = 0;
        /** Enemies already reported to the CM in this attempt.
         *  Ordered by dTxID so any future iteration (e.g. picking a
         *  victim among enemies) is deterministic by construction. */
        DtxFlatSet reportedEnemies;
        /** Holders this worker currently NACK-waits on; maintained
         *  only in checked mode, feeds the wait-graph audit. */
        DtxFlatSet waitHolders;
        /** Reusable commit-set buffer (doCommitDone); cleared per
         *  commit, capacity kept so steady state never allocates. */
        std::vector<mem::Addr> commitLines;
        /** Reusable charge list for the access path, same idea. */
        std::vector<Charge> chargeScratch;
        Breakdown buckets;
    };

    void step(Worker &worker);

    // Phase bodies; return true to continue the zero-time loop.
    bool doStartDescriptor(Worker &worker);
    bool doNonTxWork(Worker &worker);
    bool doTxBegin(Worker &worker);
    bool doBeginStall(Worker &worker);
    bool doTxAccess(Worker &worker);
    bool doCommit(Worker &worker);
    bool doCommitDone(Worker &worker);

    /** Charge cycles and schedule the next step after them. */
    void advance(Worker &worker, sim::Cycles cycles, Bucket bucket);
    /** Literal charge lists: no heap allocation at the call site. */
    void advanceMulti(Worker &worker,
                      std::initializer_list<Charge> charges);
    /** Dynamically built charge lists (worker.chargeScratch). */
    void advanceMulti(Worker &worker,
                      const std::vector<Charge> &charges);
    void advanceSpan(Worker &worker, const Charge *charges,
                     std::size_t count);
    void charge(Worker &worker, sim::Cycles cycles, Bucket bucket);

    /** Abort @p worker's transaction; @p enemy is the other party. */
    void abortTx(Worker &worker, const cm::TxInfo &enemy);

    /** Emit one trace record if tracing is enabled (no sim cost). */
    void trace(const Worker &worker, sim::TraceCategory category,
               const char *event,
               std::vector<std::pair<std::string, std::string>>
                   details = {});

    /** Would a record of @p category be rendered? Emission sites use
     *  this to skip building detail strings nobody consumes. */
    bool
    wantsTrace(sim::TraceCategory category) const
    {
        return config_.traceSink != nullptr
            && config_.traceSink->wants(category);
    }

    /** Fill the sampler's cumulative counts and current gauges. */
    void sampleSnapshot(sim::SampleCounts &counts,
                        sim::SampleGauges &gauges) const;

    /** Classify a serialized attempt's outcome at commit time. */
    void classifyPrediction(const Worker &worker,
                            const std::vector<mem::Addr> &rw_lines);

    /** Build every component StatGroup and hand it to @p visit.
     *  Shared by the text and JSON stat dumps. */
    void visitStatGroups(
        const std::function<void(const sim::StatGroup &)> &visit)
        const;

    cm::TxInfo infoFor(const Worker &worker) const;
    cm::TxInfo infoFor(const htm::TxState &tx) const;

    bool isTxRunning(htm::DTxId dtx) const;

    /** Record exact-set similarity at commit (Table 1 measurement). */
    void recordSimilarity(Worker &worker,
                          const std::vector<mem::Addr> &rw_lines);

    /** True when invariant checking is active this run. */
    bool
    auditing() const
    {
        return audit_ != nullptr && audit_->shouldCheck();
    }

    /** Feed the lifecycle FSM auditor (checked mode only). */
    void auditLifecycle(const Worker &worker,
                        LifecycleAuditor::TxEvent event);

    /** Structural sweep over every subsystem's invariants, run at
     *  transaction boundaries and end of run (checked mode only). */
    void auditSweep();

    SimConfig config_;
    sim::EventQueue events_;
    std::unique_ptr<workloads::Workload> workload_;
    std::unique_ptr<htm::TxIdSpace> ids_;
    std::unique_ptr<mem::MemSystem> mem_;
    std::unique_ptr<htm::ConflictDetector> detector_;
    std::unique_ptr<os::OsScheduler> sched_;
    std::unique_ptr<cpu::PredictorSystem> predictors_;
    std::unique_ptr<cm::ContentionManager> cm_;
    sim::Rng rng_;

    /** Checked simulation mode (null members when audit is off). */
    std::unique_ptr<sim::AuditEngine> ownedAudit_;
    sim::AuditEngine *audit_ = nullptr;
    std::unique_ptr<LifecycleAuditor> lifecycle_;

    std::vector<Worker> workers_;
    /** Active transactions, ordered by dTxID: victim/enemy scans over
     *  this set resolve ties deterministically, never in hash order. */
    std::set<htm::DTxId> runningTx_;
    std::uint64_t nextTimestamp_ = 1;
    bool ran_ = false;

    // Measurements.
    sim::Counter commits_;
    sim::Counter aborts_;
    sim::Counter conflicts_;
    sim::Counter stallTimeouts_;
    sim::Tick lastFinish_ = 0;
    int finishedThreads_ = 0;

    /** Per-sTxID prediction confusion counters (see
     *  runner::PredictionQuality for the classification rules). */
    struct SitePrediction {
        sim::Counter predictedStalls;
        sim::Counter truePositives;
        sim::Counter falsePositives;
        sim::Counter falseNegatives;
        sim::Counter predictedAborts;
        sim::Counter trueNegatives;
    };
    std::vector<SitePrediction> sitePrediction_; // per sTxId
    /** Cycles wasted per aborted attempt (Fig. 5 "aborted" source). */
    sim::Histogram abortCyclesHist_ = sim::Histogram::makeLog2(34);
    /** Cycles spent in each begin-stall (prediction wait time). */
    sim::Histogram stallCyclesHist_ = sim::Histogram::makeLog2(34);

    struct SimTrack {
        sim::HashSet<mem::Addr> lastSet;
        double avgSize = 0.0;
    };
    std::vector<SimTrack> simTrack_;          // per dTxId dense index
    std::vector<sim::Accumulator> siteSim_;   // per sTxId
    std::set<std::pair<int, int>> conflictGraph_;
    std::map<std::pair<int, int>, std::uint64_t> abortPairs_;
    /** Directed (winner sTx, victim sTx) abort attribution. */
    std::map<std::pair<int, int>, ConflictEdgeStats> abortEdges_;
};

} // namespace runner

#endif // BFGTS_RUNNER_SIMULATION_H
