#include "farm.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "sim/host_clock.h"
#include "sim/json.h"
#include "sim/json_parse.h"

namespace runner {

namespace {

// ---- work-stealing queue files ---------------------------------------
//
// Queue layout (one directory shared by every worker):
//   manifest        matrix identity; all workers must agree
//   c<i>.lease      created O_CREAT|O_EXCL by the claiming worker
//   c<i>.done       published (tmp+rename) when cell <i> completed
//
// A lease without a done marker whose mtime is older than the
// staleness bound belonged to a crashed worker and may be reclaimed.
// Reclaim itself is made single-winner by an atomic rename of the
// stale lease to a per-claimant name.

std::string
leasePath(const std::string &dir, std::size_t index)
{
    return dir + "/c" + std::to_string(index) + ".lease";
}

std::string
donePath(const std::string &dir, std::size_t index)
{
    return dir + "/c" + std::to_string(index) + ".done";
}

/** Publish @p body at @p path atomically (unique temp + rename). */
void
publishFile(const std::string &path, const std::string &body)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(getpid());
    {
        std::ofstream os(tmp);
        if (!os)
            return;
        os << body;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

/**
 * Create-or-verify the queue manifest. Racing creators publish
 * identical bytes, so rename order does not matter; a worker whose
 * matrix disagrees with the established manifest must not proceed.
 */
void
ensureQueueManifest(const std::string &dir, const std::string &digest,
                    std::size_t total_cells)
{
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/manifest";
    const std::string expected = "bfgts-farm-queue-v1\ndigest "
                                 + digest + "\ntotalCells "
                                 + std::to_string(total_cells) + "\n";
    if (!std::filesystem::exists(path))
        publishFile(path, expected);
    std::ifstream is(path);
    std::ostringstream actual;
    actual << is.rdbuf();
    if (actual.str() != expected) {
        throw std::runtime_error(
            "farm: steal queue " + dir
            + " belongs to a different sweep matrix (manifest "
              "mismatch)");
    }
}

enum class Claim { Won, Done, Busy };

/**
 * Try to claim cell @p index. Won means this worker owns the cell;
 * Done means another worker already completed it; Busy means another
 * worker holds a fresh lease. Stale leases (mtime older than
 * @p stale_sec) are reclaimed via an atomic rename, then the O_EXCL
 * create is retried with exponential backoff, up to @p max_retries
 * times before conceding Busy.
 */
Claim
tryClaimCell(const std::string &dir, std::size_t index, int stale_sec,
             int max_retries)
{
    const std::string lease = leasePath(dir, index);
    const std::string done = donePath(dir, index);
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1L << attempt));
        }
        if (std::filesystem::exists(done))
            return Claim::Done;
        const int fd =
            ::open(lease.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            const std::string body =
                "pid " + std::to_string(getpid()) + "\n";
            // Best-effort owner stamp; the claim is the file itself.
            (void)!::write(fd, body.data(), body.size());
            ::close(fd);
            // The done marker may have been published between the
            // check above and the (reclaimed) create.
            if (std::filesystem::exists(done))
                return Claim::Done;
            return Claim::Won;
        }
        // Lease exists: fresh (live owner), stale (crashed owner),
        // or already gone again (lost a race). Only the stale case
        // lets us proceed, through a single-winner rename.
        std::error_code ec;
        const auto mtime = std::filesystem::last_write_time(lease, ec);
        if (ec)
            continue; // lease vanished under us; retry the create
        const auto age =
            std::chrono::duration_cast<std::chrono::seconds>(
                sim::hostFileTimeNow() - mtime)
                .count();
        if (age < stale_sec)
            return Claim::Busy;
        const std::string reclaim = lease + ".reclaim."
                                    + std::to_string(getpid()) + "."
                                    + std::to_string(attempt);
        std::filesystem::rename(lease, reclaim, ec);
        if (ec)
            continue; // another claimant won the reclaim; retry
        std::filesystem::remove(reclaim, ec);
    }
    return Claim::Busy;
}

void
accumulate(SweepStats *into, const SweepStats &s)
{
    into->executed += s.executed;
    into->cacheHits += s.cacheHits;
    into->errors += s.errors;
    into->cacheRaces += s.cacheRaces;
}

void
rejectCustomCells(const std::vector<SweepCell> &cells)
{
    for (const SweepCell &cell : cells) {
        if (cell.custom) {
            throw std::invalid_argument(
                "farm: custom cells have no configuration to digest "
                "and cannot be sharded");
        }
    }
}

} // namespace

// ---- Farm ------------------------------------------------------------

Farm::Farm(FarmOptions options) : options_(std::move(options))
{
}

std::vector<std::size_t>
Farm::shardIndices(std::size_t cell_count, int shard_index,
                   int shard_count)
{
    if (shard_count < 1 || shard_index < 0
        || shard_index >= shard_count) {
        throw std::invalid_argument("farm: shard index "
                                    + std::to_string(shard_index)
                                    + "/"
                                    + std::to_string(shard_count)
                                    + " out of range");
    }
    const auto shards = static_cast<std::size_t>(shard_count);
    const auto shard = static_cast<std::size_t>(shard_index);
    const std::size_t base = cell_count / shards;
    const std::size_t extra = cell_count % shards;
    // The first `extra` shards take one extra cell; slices stay
    // contiguous and ascending, so concatenating shards 0..N-1
    // reproduces [0, cell_count) exactly.
    const std::size_t begin =
        shard * base + std::min(shard, extra);
    const std::size_t size = base + (shard < extra ? 1 : 0);
    std::vector<std::size_t> indices;
    indices.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        indices.push_back(begin + i);
    return indices;
}

std::string
Farm::matrixDigest(const std::vector<SweepCell> &cells)
{
    rejectCustomCells(cells);
    std::string all;
    for (const SweepCell &cell : cells) {
        all += SweepRunner::cellKey(cell);
        all += '\n';
    }
    all += "cells=" + std::to_string(cells.size());
    return sweepDigestHex(all);
}

std::vector<SweepCellResult>
Farm::run(const std::vector<SweepCell> &cells)
{
    rejectCustomCells(cells);
    if (options_.sweep.profile || options_.sweep.quality) {
        throw std::invalid_argument(
            "farm: profile/quality side channels are not supported "
            "in farm runs (partial side reports do not merge)");
    }
    digest_ = matrixDigest(cells);
    totalCells_ = cells.size();
    stats_ = SweepStats{};
    claimed_.clear();
    claimedCells_.clear();
    results_.clear();

    if (options_.stealDir.empty()) {
        claimed_ = shardIndices(cells.size(), options_.shardIndex,
                                options_.shardCount);
        claimedCells_.reserve(claimed_.size());
        for (const std::size_t index : claimed_)
            claimedCells_.push_back(cells[index]);
        SweepRunner runner(options_.sweep);
        results_ = runner.run(claimedCells_);
        stats_ = runner.stats();
        return results_;
    }

    // Work-stealing: claim up to `jobs` cells per pass, run the
    // batch, publish done markers, rescan. A pass that claims
    // nothing means every remaining cell is done or owned by a live
    // worker -- this worker is finished.
    ensureQueueManifest(options_.stealDir, digest_, totalCells_);
    const std::size_t batch = static_cast<std::size_t>(
        std::max(1, options_.sweep.jobs));
    std::vector<char> settled(cells.size(), 0);
    std::vector<std::pair<std::size_t, SweepCellResult>> collected;
    for (;;) {
        std::vector<std::size_t> mine;
        for (std::size_t i = 0;
             i < cells.size() && mine.size() < batch; ++i) {
            if (settled[i])
                continue;
            switch (tryClaimCell(options_.stealDir, i,
                                 options_.stealStaleSec,
                                 options_.stealMaxRetries)) {
              case Claim::Won:
                mine.push_back(i);
                settled[i] = 1;
                break;
              case Claim::Done:
                settled[i] = 1;
                break;
              case Claim::Busy:
                break;
            }
        }
        if (mine.empty())
            break;
        std::vector<SweepCell> batch_cells;
        batch_cells.reserve(mine.size());
        for (const std::size_t index : mine)
            batch_cells.push_back(cells[index]);
        SweepRunner runner(options_.sweep);
        std::vector<SweepCellResult> batch_results =
            runner.run(batch_cells);
        accumulate(&stats_, runner.stats());
        for (std::size_t k = 0; k < mine.size(); ++k) {
            publishFile(donePath(options_.stealDir, mine[k]),
                        "done\n");
            collected.emplace_back(mine[k],
                                   std::move(batch_results[k]));
        }
    }
    std::sort(collected.begin(), collected.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (auto &entry : collected) {
        claimed_.push_back(entry.first);
        claimedCells_.push_back(cells[entry.first]);
        results_.push_back(std::move(entry.second));
    }
    return results_;
}

void
Farm::writeReport(std::ostream &os, const std::string &name) const
{
    const bool steal = !options_.stealDir.empty();
    sim::JsonWriter jw(os);
    jw.beginObject();
    writeSweepReportPreamble(
        jw, name, sim::buildGitDescribe(), sim::buildGitDirty(),
        static_cast<std::uint64_t>(claimed_.size()));
    jw.beginObject("shard");
    jw.kv("matrixDigest", digest_);
    jw.kv("mode", steal ? "steal" : "static");
    jw.kv("shardIndex", steal ? -1 : options_.shardIndex);
    jw.kv("shardCount", steal ? 0 : options_.shardCount);
    jw.kv("totalCells", static_cast<std::uint64_t>(totalCells_));
    jw.beginArray("cellRanges");
    std::size_t i = 0;
    while (i < claimed_.size()) {
        std::size_t j = i + 1;
        while (j < claimed_.size()
               && claimed_[j] == claimed_[j - 1] + 1)
            ++j;
        jw.beginArray();
        jw.value(static_cast<std::uint64_t>(claimed_[i]));
        jw.value(static_cast<std::uint64_t>(claimed_[j - 1] + 1));
        jw.endArray();
        i = j;
    }
    jw.endArray();
    jw.endObject();
    jw.beginArray("cells");
    for (std::size_t k = 0; k < claimed_.size(); ++k)
        writeSweepCellJson(jw, claimedCells_[k], results_[k]);
    jw.endArray();
    jw.endObject();
}

// ---- merge -----------------------------------------------------------

namespace {

/** Validation state of one parsed partial report. */
struct Partial {
    std::string path;
    sim::JsonValue doc;
    std::string digest;
    std::string name;
    std::string git;
    bool gitDirty = false;
    std::uint64_t totalCells = 0;
    /** [start, end) global index ranges, ascending. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    const sim::JsonValue *cells = nullptr;
};

bool
mergeFail(std::string *error, const std::string &what)
{
    if (error)
        *error = "merge-reports: " + what;
    return false;
}

const sim::JsonValue *
memberOfKind(const sim::JsonValue &doc, const std::string &key,
             sim::JsonValue::Kind kind)
{
    const sim::JsonValue *v = doc.find(key);
    return (v != nullptr && v->kind == kind) ? v : nullptr;
}

bool
loadPartial(const std::string &path, Partial *out,
            std::string *error)
{
    out->path = path;
    std::ifstream is(path);
    if (!is)
        return mergeFail(error, path + ": cannot open");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string parse_error;
    if (!sim::parseJson(buffer.str(), &out->doc, &parse_error))
        return mergeFail(error, path + ": " + parse_error);

    const sim::JsonValue &doc = out->doc;
    const auto *schema =
        memberOfKind(doc, "schema", sim::JsonValue::Kind::String);
    const auto *kind =
        memberOfKind(doc, "kind", sim::JsonValue::Kind::String);
    if (schema == nullptr || schema->text != "bfgts-sweep-v1"
        || kind == nullptr || kind->text != "sweep") {
        return mergeFail(error,
                         path + ": not a bfgts-sweep-v1 report");
    }
    const auto *name =
        memberOfKind(doc, "name", sim::JsonValue::Kind::String);
    const auto *git =
        memberOfKind(doc, "git", sim::JsonValue::Kind::String);
    const auto *dirty =
        memberOfKind(doc, "gitDirty", sim::JsonValue::Kind::Bool);
    if (name == nullptr || git == nullptr || dirty == nullptr)
        return mergeFail(error, path + ": missing report header");
    out->name = name->text;
    out->git = git->text;
    out->gitDirty = dirty->boolean;

    const auto *shard =
        memberOfKind(doc, "shard", sim::JsonValue::Kind::Object);
    if (shard == nullptr) {
        return mergeFail(error,
                         path
                             + ": no shard manifest (already a "
                               "merged or single-machine report?)");
    }
    const auto *digest = memberOfKind(*shard, "matrixDigest",
                                      sim::JsonValue::Kind::String);
    const sim::JsonValue *total = shard->find("totalCells");
    const auto *ranges = memberOfKind(*shard, "cellRanges",
                                      sim::JsonValue::Kind::Array);
    if (digest == nullptr || total == nullptr || ranges == nullptr
        || !total->asU64(&out->totalCells)) {
        return mergeFail(error, path + ": malformed shard manifest");
    }
    out->digest = digest->text;
    std::uint64_t prev_end = 0;
    for (const sim::JsonValue &range : ranges->items) {
        std::uint64_t start = 0, end = 0;
        if (!range.isArray() || range.items.size() != 2
            || !range.items[0].asU64(&start)
            || !range.items[1].asU64(&end)) {
            return mergeFail(error, path + ": malformed cell range");
        }
        if (start >= end || end > out->totalCells
            || (!out->ranges.empty() && start < prev_end)) {
            return mergeFail(error,
                             path + ": cell ranges out of order or "
                                    "out of bounds");
        }
        out->ranges.emplace_back(start, end);
        prev_end = end;
    }

    out->cells =
        memberOfKind(doc, "cells", sim::JsonValue::Kind::Array);
    if (out->cells == nullptr)
        return mergeFail(error, path + ": missing cells array");
    std::uint64_t covered = 0;
    for (const auto &range : out->ranges)
        covered += range.second - range.first;
    std::uint64_t cell_count = 0;
    const sim::JsonValue *count = doc.find("cellCount");
    if (count == nullptr || !count->asU64(&cell_count)
        || cell_count != out->cells->items.size()
        || cell_count != covered) {
        return mergeFail(error,
                         path + ": cellCount, cells array, and "
                                "shard ranges disagree");
    }
    return true;
}

} // namespace

bool
mergeSweepReports(const std::vector<std::string> &paths,
                  std::ostream &os, std::string *error)
{
    if (paths.empty())
        return mergeFail(error, "no input reports");
    std::vector<Partial> partials(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (!loadPartial(paths[i], &partials[i], error))
            return false;
    }
    const Partial &first = partials.front();
    for (const Partial &p : partials) {
        if (p.digest != first.digest || p.totalCells != first.totalCells)
            return mergeFail(error,
                             p.path + ": matrix digest/size differs "
                                      "from "
                                 + first.path);
        if (p.name != first.name || p.git != first.git
            || p.gitDirty != first.gitDirty) {
            return mergeFail(error,
                             p.path + ": report name/git differs "
                                      "from "
                                 + first.path);
        }
    }

    // Place every partial's cells into their global slots; overlap
    // and coverage failures name the first offending index.
    std::vector<const sim::JsonValue *> slots(first.totalCells,
                                              nullptr);
    for (const Partial &p : partials) {
        std::size_t next = 0;
        for (const auto &range : p.ranges) {
            for (std::uint64_t index = range.first;
                 index < range.second; ++index) {
                if (slots[index] != nullptr) {
                    return mergeFail(
                        error, p.path + ": cell "
                                   + std::to_string(index)
                                   + " already covered by another "
                                     "shard");
                }
                slots[index] = &p.cells->items[next++];
            }
        }
    }
    for (std::size_t index = 0; index < slots.size(); ++index) {
        if (slots[index] == nullptr) {
            return mergeFail(error,
                             "cell " + std::to_string(index)
                                 + " covered by no shard (incomplete "
                                   "farm run?)");
        }
    }

    sim::JsonWriter jw(os);
    jw.beginObject();
    writeSweepReportPreamble(jw, first.name, first.git,
                             first.gitDirty, first.totalCells);
    jw.beginArray("cells");
    for (const sim::JsonValue *cell : slots)
        sim::writeJson(jw, *cell);
    jw.endArray();
    jw.endObject();
    return true;
}

} // namespace runner
