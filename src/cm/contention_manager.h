/**
 * @file
 * Contention manager interface.
 *
 * A contention manager (CM) observes four events in a transaction's
 * life -- begin, conflict-abort, commit, plus the moment it actually
 * starts executing -- and steers scheduling through its begin-time
 * decision. Every hook also reports the *cycle cost* of the CM's own
 * bookkeeping, split into scheduling-software cycles and kernel-mode
 * cycles, because the paper's evaluation (Fig. 5) is largely a story
 * about who pays how much overhead where.
 *
 * Implementations: BackoffManager (reactive baseline), AtsManager
 * (Yoo & Lee), PtsManager (Blake et al., MICRO'09), BfgtsManager
 * (this paper, four variants).
 */

#ifndef BFGTS_CM_CONTENTION_MANAGER_H
#define BFGTS_CM_CONTENTION_MANAGER_H

#include <string>
#include <vector>

#include "htm/tx_id.h"
#include "mem/addr.h"
#include "sim/types.h"

namespace sim {
class Profiler;
}

namespace cm {

/** Cycle cost of a CM hook, split by accounting bucket. */
struct CmCost {
    /** Scheduling software/hardware cycles (Fig. 5 "Scheduling"). */
    sim::Cycles sched = 0;
    /** Kernel-mode cycles, e.g. pthread queue ops (Fig. 5 "Kernel"). */
    sim::Cycles kernel = 0;

    CmCost &
    operator+=(const CmCost &o)
    {
        sched += o.sched;
        kernel += o.kernel;
        return *this;
    }
};

/** What a transaction must do at TX_BEGIN. */
enum class BeginAction {
    /** Start executing now. */
    Proceed,
    /** Busy-wait until waitOn is no longer running, then retry begin. */
    StallOn,
    /** pthread_yield(); retry begin when re-dispatched. */
    YieldOn,
    /** Block; the CM will wake the thread (e.g. ATS wait queue). */
    Block,
};

/** Begin-time decision plus its cost. */
struct BeginDecision {
    BeginAction action = BeginAction::Proceed;
    htm::DTxId waitOn = htm::kNoTx;
    CmCost cost;
    /** Predicted conflict probability in [0, 1] behind this
     *  decision: the (normalized) confidence that triggered a
     *  stall, or the highest confidence consulted on a go.
     *  Negative when the CM consulted no confidence table.
     *  Observability only -- never feeds back into scheduling. */
    double confidence = -1.0;
};

/** Identity of a transaction as the CM hooks see it. */
struct TxInfo {
    sim::ThreadId thread = sim::kNoThread;
    sim::CpuId cpu = sim::kNoCpu;
    htm::STxId sTx = 0;
    htm::DTxId dTx = htm::kNoTx;
};

/**
 * A contention manager's verdict on a detected conflict. Reactive
 * managers in the Scherer & Scott tradition (Timestamp, Polka)
 * arbitrate conflicts themselves; the proactive managers of the
 * paper's evaluation leave arbitration to the HTM substrate and act
 * at begin time instead.
 */
enum class ConflictArbitration {
    /** Let the substrate's LogTM-style policy decide. */
    UseSubstrate,
    /** NACK the requester; it retries the access. */
    StallRequester,
    /** The requester aborts itself. */
    AbortRequester,
    /** The holder(s) abort; the requester retries. */
    AbortHolders,
};

/** What the arbitration hook gets to look at. */
struct ArbitrationContext {
    TxInfo requester;
    /** Accesses the requester has performed this attempt (karma). */
    int requesterAccesses = 0;
    /** Consecutive stalls already suffered on this access. */
    int stallRetries = 0;
    /** Times the requester's section has aborted (starvation). */
    int priorAborts = 0;
    TxInfo holder;
    /** Accesses the holder has performed this attempt (karma). */
    int holderAccesses = 0;
    /** The holder's age timestamp relative to the requester's:
     *  negative = holder is older. */
    std::int64_t holderAgeDelta = 0;
};

/** Response to an abort: bookkeeping cost plus backoff to wait. */
struct AbortResponse {
    CmCost cost;
    /** Cycles to spin before retrying the transaction. */
    sim::Cycles backoff = 0;
};

/**
 * Abstract contention manager.
 *
 * Tracking duties shared by every implementation (which transaction
 * runs on which CPU) live in the ContentionManagerBase helper below.
 */
class ContentionManager
{
  public:
    virtual ~ContentionManager() = default;

    /** Human-readable name, e.g. "BFGTS-HW". */
    virtual std::string name() const = 0;

    /**
     * TX_BEGIN hook; called on the first begin and on every retry
     * after an abort, yield, stall or wake.
     */
    virtual BeginDecision onTxBegin(const TxInfo &tx) = 0;

    /** The transaction passed its begin decision and is now running. */
    virtual void onTxStart(const TxInfo &tx) = 0;

    /**
     * Arbitrate a detected conflict (called once per conflicting
     * holder, before onConflictDetected). The default defers to the
     * substrate; reactive managers override this to implement their
     * victim-selection heuristic. When several holders conflict, the
     * most severe verdict against the requester wins, and
     * AbortHolders is only honored if every holder loses.
     */
    virtual ConflictArbitration
    arbitrate(const ArbitrationContext &context)
    {
        (void)context;
        return ConflictArbitration::UseSubstrate;
    }

    /**
     * A conflict was detected (the requester got NACKed) between the
     * running transaction @p tx and @p other. Called once per
     * conflicting access, whether or not the conflict later ends in
     * an abort -- profiling managers learn their conflict graphs
     * from these events.
     */
    virtual CmCost
    onConflictDetected(const TxInfo &tx, const TxInfo &other)
    {
        (void)tx;
        (void)other;
        return CmCost{};
    }

    /**
     * The transaction aborted after a conflict with @p other.
     * @p other is the transaction on the far side of the conflict
     * (the enemy), whether self- or remotely-aborted.
     */
    virtual AbortResponse onTxAbort(const TxInfo &tx,
                                    const TxInfo &other) = 0;

    /**
     * The transaction committed.
     *
     * @param rw_lines Exact read/write set as line numbers (what the
     *                 hardware exposes via readCPUBloomFilter(); the
     *                 CM encodes it into its own signature).
     */
    virtual CmCost onTxCommit(const TxInfo &tx,
                              const std::vector<mem::Addr> &rw_lines)
        = 0;

    /**
     * Report this manager's per-structure memory footprint (byte
     * high-water gauges) into the host profiler at the end of a
     * profiled run. Observational only; the default reports nothing.
     */
    virtual void
    profileMemory(sim::Profiler &profiler) const
    {
        (void)profiler;
    }
};

} // namespace cm

#endif // BFGTS_CM_CONTENTION_MANAGER_H
