/**
 * @file
 * Adaptive Transaction Scheduling (Yoo & Lee, SPAA'08).
 *
 * Each transaction site tracks a "conflict pressure" moving average
 * that rises when an execution aborts and falls when one commits.
 * When a transaction begins while its pressure exceeds a threshold,
 * it must acquire a single global serialization token; transactions
 * that cannot get the token enqueue on a central wait queue and
 * block. At commit the token holder hands the token to the queue
 * head and wakes it.
 *
 * This gives graceful degradation to a single global lock under very
 * high contention and near-zero overhead under low contention -- but
 * it serializes *all* high-pressure transactions against each other
 * whether or not they actually conflict, and pays kernel time for
 * every block/wake pair. Both effects are what BFGTS improves on.
 */

#ifndef BFGTS_CM_ATS_H
#define BFGTS_CM_ATS_H

#include <deque>
#include <vector>

#include "cm/base.h"

namespace cm {

/** ATS tunables (defaults per Yoo & Lee's recommended settings). */
struct AtsConfig {
    /** EWMA weight on history: p' = alpha*p + (1-alpha)*outcome. */
    double alpha = 0.7;
    /** Serialize when pressure exceeds this. */
    double threshold = 0.5;
    /**
     * Yoo & Lee's "dynamically tuning" software version: every
     * tuningWindow commits the manager measures commit throughput
     * and hill-climbs the threshold (keep moving it in the direction
     * that helped, reverse otherwise). Off by default so the
     * calibrated fixed threshold stays reproducible.
     */
    bool dynamicThreshold = false;
    /** Commits per tuning window. */
    int tuningWindow = 256;
    /** Threshold adjustment per window. */
    double tuningStep = 0.05;
    /** Threshold clamp range under tuning. */
    double minThreshold = 0.1;
    double maxThreshold = 0.9;
    /** Scheduling cycles to read/update the pressure word. */
    sim::Cycles pressureCheckCost = 5;
    /** Kernel cycles to manipulate the central wait queue (locked). */
    sim::Cycles queueOpCost = 400;
    /** Kernel cycles the committer pays to wake the queue head. */
    sim::Cycles wakeCost = 1'500;
    /** Mean random backoff after an abort, cycles. */
    sim::Cycles abortBackoff = 300;
};

/** Central-queue adaptive serializer. */
class AtsManager : public ContentionManagerBase
{
  public:
    AtsManager(int num_cpus, int num_static_tx,
               const Services &services, const AtsConfig &config = {});

    std::string name() const override { return "ATS"; }

    BeginDecision onTxBegin(const TxInfo &tx) override;
    void onTxStart(const TxInfo &tx) override { trackStart(tx); }
    CmCost onConflictDetected(const TxInfo &tx,
                              const TxInfo &other) override;
    AbortResponse onTxAbort(const TxInfo &tx,
                            const TxInfo &other) override;
    CmCost onTxCommit(const TxInfo &tx,
                      const std::vector<mem::Addr> &rw_lines) override;

    /** Current conflict pressure of a transaction site (tests). */
    double pressure(htm::STxId stx) const;

    /** Mean conflict pressure over all sites (sim::Sampler gauge). */
    double meanPressure() const;

    /** Current serialization threshold (fixed or self-tuned). */
    double threshold() const { return threshold_; }

    /** Thread currently holding the serialization token (tests). */
    sim::ThreadId tokenHolder() const { return tokenHolder_; }

    /** Length of the central wait queue (tests). */
    std::size_t queueLength() const { return waitQueue_.size(); }

  private:
    void updatePressure(htm::STxId stx, bool conflicted);

    /** Hill-climb the threshold on commit-throughput feedback. */
    void tuneThreshold();

    AtsConfig config_;
    double threshold_ = 0.5;
    // Tuning state: commits and start tick of the current window.
    int windowCommits_ = 0;
    sim::Tick windowStart_ = 0;
    double lastRate_ = 0.0;
    double direction_ = 1.0;
    std::vector<double> pressure_;
    std::deque<sim::ThreadId> waitQueue_;
    sim::ThreadId tokenHolder_ = sim::kNoThread;
    /** Thread the token was handed to while waking it. */
    sim::ThreadId tokenPromise_ = sim::kNoThread;
};

} // namespace cm

#endif // BFGTS_CM_ATS_H
