#include "pts.h"

#include <algorithm>

#include "bloom/signature_ops.h"
#include "sim/logging.h"

namespace cm {

PtsManager::PtsManager(int num_cpus, const htm::TxIdSpace &ids,
                       const Services &services,
                       const PtsConfig &config)
    : ContentionManagerBase(num_cpus, services), config_(config),
      ids_(ids)
{
    const auto n = static_cast<std::size_t>(ids.numDynamicTx());
    graph_.assign(n * (n + 1) / 2, 0.0);
    edgeTouched_.assign(n * (n + 1) / 2, 0);
    stats_.resize(n);
    protoSig_ = std::make_unique<bloom::BloomSignature>(config_.bloom);
}

std::size_t
PtsManager::edgeIndex(htm::DTxId a, htm::DTxId b) const
{
    const auto ia = static_cast<std::size_t>(ids_.denseIndex(a));
    const auto ib = static_cast<std::size_t>(ids_.denseIndex(b));
    const std::size_t hi = std::max(ia, ib);
    const std::size_t lo = std::min(ia, ib);
    return hi * (hi + 1) / 2 + lo;
}

double
PtsManager::confidence(htm::DTxId a, htm::DTxId b) const
{
    return graph_[edgeIndex(a, b)];
}

void
PtsManager::bumpConfidence(htm::DTxId a, htm::DTxId b, double delta)
{
    const std::size_t index = edgeIndex(a, b);
    // Count first-touch like the old hash map counted entries: an
    // edge stays materialized even when later decayed back to zero.
    if (!edgeTouched_[index]) {
        edgeTouched_[index] = 1;
        ++graphEdges_;
    }
    double &conf = graph_[index];
    conf = std::clamp(conf + delta, 0.0, 255.0);
}

PtsManager::DtxStats &
PtsManager::statsFor(htm::DTxId dtx)
{
    return stats_[static_cast<std::size_t>(ids_.denseIndex(dtx))];
}

BeginDecision
PtsManager::onTxBegin(const TxInfo &tx)
{
    BeginDecision decision;
    decision.cost.sched = config_.scanBaseCost;

    double max_conf = 0.0;
    for (int cpu = 0; cpu < numCpus(); ++cpu) {
        if (cpu == tx.cpu)
            continue;
        const htm::DTxId running = runningOn(cpu);
        if (running == htm::kNoTx)
            continue;
        decision.cost.sched += config_.scanPerEntryCost;
        const double conf = confidence(tx.dTx, running);
        max_conf = std::max(max_conf, conf);
        if (conf > static_cast<double>(config_.confThreshold)) {
            trackSerialization(ids_.staticOf(running), tx.sTx);
            // Decay the consulted edge so repeated serializations
            // eventually let the pair run concurrently again.
            bumpConfidence(tx.dTx, running, -config_.suspendDecay);
            statsFor(tx.dTx).waitedOn.push_back(running);
            decision.waitOn = running;
            decision.confidence = std::clamp(conf / 255.0, 0.0, 1.0);
            decision.action =
                statsFor(running).avgSize >= config_.smallTxLines
                    ? BeginAction::YieldOn
                    : BeginAction::StallOn;
            return decision;
        }
    }
    decision.confidence = std::clamp(max_conf / 255.0, 0.0, 1.0);
    return decision;
}

CmCost
PtsManager::onConflictDetected(const TxInfo &tx, const TxInfo &other)
{
    CmCost cost;
    cost.sched = config_.conflictCost;
    if (other.dTx != htm::kNoTx)
        bumpConfidence(tx.dTx, other.dTx, config_.incVal);
    return cost;
}

AbortResponse
PtsManager::onTxAbort(const TxInfo &tx, const TxInfo &other)
{
    (void)other;
    trackEnd(tx, false);
    AbortResponse resp;
    // The edge was strengthened at conflict detection; the abort
    // only pays bookkeeping.
    resp.cost.sched = config_.conflictCost;
    sim_assert(services_.rng != nullptr);
    resp.backoff = services_.rng->below(
        std::max<sim::Cycles>(1, config_.abortBackoff * 2));
    // An aborted attempt keeps its waitedOn history: the retry will
    // re-run the begin scan and may serialize again.
    return resp;
}

CmCost
PtsManager::onTxCommit(const TxInfo &tx,
                       const std::vector<mem::Addr> &rw_lines)
{
    trackEnd(tx, true);
    CmCost cost;
    cost.sched = config_.commitBaseCost;

    DtxStats &stats = statsFor(tx.dTx);
    const auto size = static_cast<double>(rw_lines.size());
    stats.avgSize = stats.avgSize == 0.0 ? size
                                         : 0.5 * (stats.avgSize + size);

    // Encode this commit's read/write set. The scalar oracle builds a
    // fresh signature each commit (the seed's cost shape: a full H3
    // matrix rebuild); the fast path clones the empty prototype,
    // which shares the matrix behind a refcount.
    std::unique_ptr<bloom::Signature> sig;
    if (bloom::activeSignatureImpl() == bloom::SigImpl::Scalar)
        sig = std::make_unique<bloom::BloomSignature>(config_.bloom);
    else
        sig = protoSig_->clone();
    for (mem::Addr line : rw_lines)
        sig->insert(line);
    const sim::Cycles words = (config_.bloom.numBits + 63) / 64;
    cost.sched += words * config_.perWordCycle;

    // Verify every serialization decision taken this execution.
    for (htm::DTxId waited : stats.waitedOn) {
        DtxStats &holder = statsFor(waited);
        if (!holder.lastBloom)
            continue;
        cost.sched += words * config_.perWordCycle;
        if (sig->intersectsNonEmpty(*holder.lastBloom)) {
            bumpConfidence(tx.dTx, waited, config_.incVal);
        } else {
            bumpConfidence(tx.dTx, waited, -config_.decVal);
        }
    }
    stats.waitedOn.clear();
    stats.lastBloom = std::move(sig);
    return cost;
}

} // namespace cm
