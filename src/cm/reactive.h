/**
 * @file
 * Classic reactive contention managers (Scherer & Scott, PODC'04/05).
 *
 * The paper's Section 2 traces contention management back to these
 * heuristic managers, which pick a victim when a conflict happens
 * instead of preventing the conflict. Two representatives are
 * implemented on the arbitrate() hook:
 *
 *  - Timestamp: the older transaction always wins; a younger
 *    requester stalls briefly and then aborts itself. Livelock-free
 *    by construction, but age says nothing about how much work is
 *    at stake.
 *  - Polka: the published best-of-breed heuristic. Each transaction's
 *    "karma" is the number of objects (here: lines) it has opened;
 *    a requester backs off up to (holder karma - requester karma)
 *    times with randomized exponentially growing intervals, then
 *    kills the holder. Big transactions tend to win, but a patient
 *    requester eventually prevails.
 *
 * Both keep Backoff's empty begin-time behaviour: they are purely
 * reactive, so they slot into the evaluation as additional baselines
 * (bench/reactive_managers) showing why the paper moved to proactive
 * scheduling.
 */

#ifndef BFGTS_CM_REACTIVE_H
#define BFGTS_CM_REACTIVE_H

#include "cm/base.h"

namespace cm {

/** Tunables of the Timestamp manager. */
struct TimestampConfig {
    /** Stalls a doomed (younger) requester endures before aborting
     *  itself; gives the holder a chance to finish. */
    int graceStalls = 2;
    /** Mean random backoff after an abort, cycles. */
    sim::Cycles abortBackoff = 300;
};

/** Timestamp manager: oldest transaction wins every conflict. */
class TimestampManager : public ContentionManagerBase
{
  public:
    using Config = TimestampConfig;

    TimestampManager(int num_cpus, const Services &services,
                     const Config &config = {})
        : ContentionManagerBase(num_cpus, services), config_(config)
    {
    }

    std::string name() const override { return "Timestamp"; }

    BeginDecision
    onTxBegin(const TxInfo &) override
    {
        return BeginDecision{};
    }

    void onTxStart(const TxInfo &tx) override { trackStart(tx); }

    ConflictArbitration
    arbitrate(const ArbitrationContext &context) override
    {
        if (context.holderAgeDelta > 0) {
            // Holder is younger: the requester (older) wins.
            return ConflictArbitration::AbortHolders;
        }
        return context.stallRetries < config_.graceStalls
                   ? ConflictArbitration::StallRequester
                   : ConflictArbitration::AbortRequester;
    }

    AbortResponse onTxAbort(const TxInfo &tx,
                            const TxInfo &other) override;

    CmCost
    onTxCommit(const TxInfo &tx, const std::vector<mem::Addr> &) override
    {
        trackEnd(tx, true);
        return CmCost{};
    }

  private:
    Config config_;
};

/** Tunables of the Polka manager. */
struct PolkaConfig {
    /** Base backoff window, doubled per retry, cycles. */
    sim::Cycles baseWindow = 120;
    /** Cap on the exponential growth. */
    int maxExponent = 8;
    /** Mean random backoff after losing (being aborted). */
    sim::Cycles abortBackoff = 300;
};

/** Polka: karma-weighted randomized-backoff victim selection. */
class PolkaManager : public ContentionManagerBase
{
  public:
    using Config = PolkaConfig;

    PolkaManager(int num_cpus, const Services &services,
                 const Config &config = {})
        : ContentionManagerBase(num_cpus, services), config_(config)
    {
    }

    std::string name() const override { return "Polka"; }

    BeginDecision
    onTxBegin(const TxInfo &) override
    {
        return BeginDecision{};
    }

    void onTxStart(const TxInfo &tx) override { trackStart(tx); }

    ConflictArbitration
    arbitrate(const ArbitrationContext &context) override
    {
        // Karma = lines opened. The requester spends one randomized
        // backoff interval per point of karma deficit; once it has
        // been patient enough (or was never behind), it wins.
        const int deficit = context.holderAccesses
                          - context.requesterAccesses;
        if (context.stallRetries >= deficit)
            return ConflictArbitration::AbortHolders;
        // Bounded patience: a holder that keeps opening lines could
        // otherwise outrun the requester's retries forever.
        if (context.stallRetries >= 4 * config_.maxExponent)
            return ConflictArbitration::AbortRequester;
        return ConflictArbitration::StallRequester;
    }

    AbortResponse onTxAbort(const TxInfo &tx,
                            const TxInfo &other) override;

    CmCost
    onTxCommit(const TxInfo &tx, const std::vector<mem::Addr> &) override
    {
        trackEnd(tx, true);
        return CmCost{};
    }

  private:
    Config config_;
};

} // namespace cm

#endif // BFGTS_CM_REACTIVE_H
