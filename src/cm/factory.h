/**
 * @file
 * Construction of the seven evaluated contention managers.
 *
 * The paper's evaluation matrix (Figs. 4-5, Table 4) compares:
 * Backoff, PTS, ATS, BFGTS-SW, BFGTS-HW, BFGTS-HW/Backoff and
 * BFGTS-NoOverhead. CmKind enumerates them; makeManager() builds one.
 */

#ifndef BFGTS_CM_FACTORY_H
#define BFGTS_CM_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "cm/ats.h"
#include "cm/backoff.h"
#include "cm/bfgts.h"
#include "cm/pts.h"
#include "cm/reactive.h"

namespace cm {

/**
 * The contention managers available. The first seven are the paper's
 * evaluation matrix; Timestamp and Polka are the classic reactive
 * managers from the paper's background section, kept out of the
 * paper-table benches but available as extra baselines.
 */
enum class CmKind {
    Backoff,
    Pts,
    Ats,
    BfgtsSw,
    BfgtsHw,
    BfgtsHwBackoff,
    BfgtsNoOverhead,
    Timestamp,
    Polka,
};

/** The paper's seven managers, in its presentation order. */
std::vector<CmKind> allCmKinds();

/** Every manager, including the reactive extras. */
std::vector<CmKind> extendedCmKinds();

/** Display name matching the paper's figures. */
const char *cmKindName(CmKind kind);

/** Parse a display name back to a kind; fatal on unknown names. */
CmKind cmKindFromName(const std::string &name);

/** True for the four BFGTS variants. */
bool isBfgts(CmKind kind);

/** Per-manager tunables used by the factory. */
struct CmTuning {
    BackoffConfig backoff;
    AtsConfig ats;
    PtsConfig pts;
    BfgtsConfig bfgts; // variant field is overwritten by the factory
};

/**
 * Build a contention manager.
 *
 * @param kind     Which manager.
 * @param num_cpus CPUs in the system.
 * @param ids      Transaction ID space of the program under test.
 * @param services Scheduler/RNG/predictors (predictors required for
 *                 the HW variants).
 * @param tuning   Tunables (defaults are the paper's settings).
 */
std::unique_ptr<ContentionManager>
makeManager(CmKind kind, int num_cpus, const htm::TxIdSpace &ids,
            const Services &services, const CmTuning &tuning = {});

} // namespace cm

#endif // BFGTS_CM_FACTORY_H
