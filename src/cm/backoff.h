/**
 * @file
 * Reactive randomized-exponential-backoff contention manager.
 *
 * The classic baseline the paper (and Bobba et al.'s pathologies
 * work) measures everyone against: do nothing at begin, and on abort
 * spin for a random interval that doubles with each consecutive
 * abort. Near-zero overhead at low contention; collapses at high
 * contention because it never prevents a conflict from recurring.
 */

#ifndef BFGTS_CM_BACKOFF_H
#define BFGTS_CM_BACKOFF_H

#include <vector>

#include "cm/base.h"

namespace cm {

/** Tunables of the backoff baseline. */
struct BackoffConfig {
    /** Mean of the first backoff window, cycles. */
    sim::Cycles baseWindow = 400;
    /** Window doubles per consecutive abort up to this exponent. */
    int maxExponent = 10;
};

/** Randomized exponential backoff. */
class BackoffManager : public ContentionManagerBase
{
  public:
    BackoffManager(int num_cpus, const Services &services,
                   const BackoffConfig &config = {})
        : ContentionManagerBase(num_cpus, services), config_(config)
    {
    }

    std::string name() const override { return "Backoff"; }

    BeginDecision
    onTxBegin(const TxInfo &) override
    {
        return BeginDecision{}; // always proceed, zero cost
    }

    void onTxStart(const TxInfo &tx) override { trackStart(tx); }

    AbortResponse onTxAbort(const TxInfo &tx,
                            const TxInfo &other) override;

    CmCost
    onTxCommit(const TxInfo &tx, const std::vector<mem::Addr> &) override
    {
        trackEnd(tx, true);
        streakFor(tx.thread) = 0;
        return CmCost{};
    }

  private:
    /** Per-thread abort streak, grown on first touch. */
    int &
    streakFor(sim::ThreadId thread)
    {
        const auto index = static_cast<std::size_t>(thread);
        if (index >= consecutiveAborts_.size())
            consecutiveAborts_.resize(index + 1, 0);
        return consecutiveAborts_[index];
    }

    BackoffConfig config_;
    /** Flat per-thread state: threads are dense small integers. */
    std::vector<int> consecutiveAborts_;
};

} // namespace cm

#endif // BFGTS_CM_BACKOFF_H
