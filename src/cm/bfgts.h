/**
 * @file
 * Bloom Filter Guided Transaction Scheduling (the paper's Section 4).
 *
 * BFGTS keeps three compact software structures (Fig. 3):
 *  - a confidence table indexed by *static* transaction ID pairs
 *    (sTxID x sTxID), 0..255 saturating entries -- small enough to
 *    stay cache-resident and to be cached by the per-CPU hardware
 *    predictor;
 *  - a per-dTxID statistics array: average read/write-set size,
 *    similarity, and the dTxID this transaction last serialized
 *    behind;
 *  - a per-dTxID table of the most recent read/write-set Bloom
 *    filter.
 *
 * Scheduling logic (paper Examples 1-4):
 *  - TX_BEGIN walks the CPU Table and serializes behind the first
 *    running transaction whose confidence exceeds the threshold;
 *    small holders are busy-waited on, large holders are yielded
 *    behind (suspendTx). Each suspend decays the edge by
 *    decayVal*(1-sim) so optimism returns, fastest for dissimilar
 *    (transient-conflict) transactions.
 *  - On abort, confidence between the two parties rises by
 *    incVal*sim: conflicts between self-similar transactions are
 *    learned fast because they will persist.
 *  - On commit, the similarity EWMA is refreshed from the Bloom
 *    estimators (Eqs. 2-4), and any serialization taken this
 *    execution is verified by intersecting Bloom filters.
 *
 * Four variants share this class (paper Section 5.1):
 *  - Sw:          begin-scan runs in software (no accelerator).
 *  - Hw:          begin-scan runs on the PredictorSystem.
 *  - HwBackoff:   Hw, gated by an ATS-style conflict-pressure EWMA;
 *                 below the pressure threshold BFGTS is off and plain
 *                 randomized backoff is used (Section 4.3).
 *  - NoOverhead:  every scheduling operation costs one cycle and
 *                 signatures are perfect (exact sets) -- the paper's
 *                 upper bound.
 */

#ifndef BFGTS_CM_BFGTS_H
#define BFGTS_CM_BFGTS_H

#include <memory>
#include <vector>

#include "bloom/signature.h"
#include "cm/base.h"

namespace cm {

/** Which BFGTS configuration to run (paper Section 5.1). */
enum class BfgtsVariant {
    Sw,
    Hw,
    HwBackoff,
    NoOverhead,
};

/** Printable variant name ("BFGTS-HW" etc.). */
const char *bfgtsVariantName(BfgtsVariant variant);

/** BFGTS tunables; defaults follow the paper where it gives numbers. */
struct BfgtsConfig {
    BfgtsVariant variant = BfgtsVariant::Hw;

    /** Signature geometry for the commit routines (512..8192 bits). */
    bloom::BloomConfig bloom{.numBits = 2048, .numHashes = 4};

    /** Serialize when confidence exceeds this (0..255 scale). One
     *  average-similarity abort (incVal * 0.5) crosses it. */
    std::uint32_t confThreshold = 50;

    /** Confidence increment scale; applied as incVal * sim. */
    double incVal = 96.0;

    /** Confidence decay scale; applied as decayVal * (1 - sim).
     *  Decay fires on every suspend, which recurs while the holder
     *  keeps running, so it must be much smaller than incVal. */
    double decayVal = 12.0;

    /** Initial similarity before any history exists (neutral). */
    double initialSimilarity = 0.5;

    /**
     * The paper's "future work" knob: cap the prediction structures
     * at this many static-transaction slots and alias sTxIDs onto
     * them (slot = sTxID mod slots). 0 = exact, one slot per sTxID.
     * Aliasing bounds the memory of the confidence table and the
     * per-dTxID arrays for programs with many transaction sites, at
     * the cost of prediction cross-talk between aliased sites
     * (bench/ablation_aliasing quantifies it).
     */
    int confTableSlots = 0;

    /**
     * Ablation switch: when false, confidence increments and decays
     * use the neutral similarity 0.5 instead of the learned values
     * (similarity is still tracked, just not fed back). Reduces the
     * learning rule to fixed steps over the compressed table.
     */
    bool similarityWeighting = true;

    /** Holders with avg footprint >= this many lines are yielded
     *  behind instead of busy-waited on (paper: 10 cache lines). */
    double smallTxLines = 10.0;

    /** Small transactions refresh similarity once per this many
     *  commits (paper Section 5.3.2; best setting: 20). */
    int smallTxInterval = 20;

    /** Hybrid: pressure EWMA weight on history ("heavily biases past
     *  history"). */
    double pressureAlpha = 0.95;

    /** Hybrid: BFGTS engages above this pressure (paper: 0.25). */
    double pressureThreshold = 0.25;

    /** Mean random backoff after an abort, cycles. */
    sim::Cycles abortBackoff = 300;

    // ---- cost model (cycles) ----------------------------------------
    /** SW begin scan: fixed part. */
    sim::Cycles swScanBase = 40;
    /** SW begin scan: per CPU Table entry consulted. */
    sim::Cycles swScanPerEntry = 12;
    /** suspendTx() bookkeeping (Example 2). */
    sim::Cycles suspendCost = 30;
    /** txConflict() bookkeeping (Example 3). */
    sim::Cycles conflictCost = 25;
    /** commitTx() fixed bookkeeping (Example 4). */
    sim::Cycles commitBase = 80;
    /** Per 64-bit Bloom word per pass (read/union/popcnt). */
    sim::Cycles perWordCycle = 1;
    /** Passes over the filter words in updateBloom(). */
    int bloomPasses = 5;
    /** fyl2x latency (Table 2: 15 cycles); three calls in calcSim. */
    sim::Cycles fyl2xCost = 15;
    /**

     * Scalar math tail of calcSim / EWMA updates. */
    sim::Cycles mathTailCost = 40;
    /** Hybrid: cost of the conflict-pressure check. */
    sim::Cycles pressureCheckCost = 5;
};

/** The BFGTS contention manager (all four variants). */
class BfgtsManager : public ContentionManagerBase
{
  public:
    /**
     * @param num_cpus  CPUs in the system.
     * @param ids       dTxID encode/decode shared with the runner.
     * @param services  Scheduler/RNG/predictors. Hw and HwBackoff
     *                  require services.predictors.
     * @param config    Variant and tunables.
     */
    BfgtsManager(int num_cpus, const htm::TxIdSpace &ids,
                 const Services &services,
                 const BfgtsConfig &config = {});

    std::string name() const override;

    BeginDecision onTxBegin(const TxInfo &tx) override;
    void onTxStart(const TxInfo &tx) override;
    CmCost onConflictDetected(const TxInfo &tx,
                              const TxInfo &other) override;
    AbortResponse onTxAbort(const TxInfo &tx,
                            const TxInfo &other) override;
    CmCost onTxCommit(const TxInfo &tx,
                      const std::vector<mem::Addr> &rw_lines) override;

    // ---- introspection (tests, stats) --------------------------------

    /** Confidence table entry (0..255). */
    std::uint32_t confidence(htm::STxId row, htm::STxId col) const;

    /** Similarity EWMA of a dTxID. */
    double similarityOf(htm::DTxId dtx) const;

    /** Average footprint (lines) of a dTxID. */
    double avgSizeOf(htm::DTxId dtx) const;

    /** Hybrid conflict pressure of a transaction site. */
    double pressure(htm::STxId stx) const;

    // ---- time-series gauges (sim::Sampler) ---------------------------

    /** Mean confidence-table entry over all slots (0..255 scale). */
    double meanConfidence() const;

    /** Mean set-bit fraction over live Bloom signatures; 0 when no
     *  signature exists yet or signatures are perfect sets. */
    double meanBloomOccupancy() const;

    /** Mean hybrid conflict pressure over transaction sites. */
    double meanPressure() const;

    /** Number of begins that skipped prediction (hybrid gating). */
    const sim::Counter &gatedBegins() const { return gatedBegins_; }

    /** Number of commits that skipped the similarity update. */
    const sim::Counter &skippedSimUpdates() const
    {
        return skippedSimUpdates_;
    }

    /** Distribution of freshly measured similarities (Eq. 4). */
    const sim::Histogram &similarityHist() const
    {
        return similarityHist_;
    }

    /** Distribution of confidence values after each table write. */
    const sim::Histogram &confidenceHist() const
    {
        return confidenceHist_;
    }

    const BfgtsConfig &config() const { return config_; }

    /**
     * Invariant audit (sim/audit.h) over the prediction structures:
     *  - cm.confidence:   every confidence-table entry stays in the
     *    saturating 0..255 range writeConfidence() clamps to;
     *  - bloom.similarity: every similarity EWMA stays in [0,1];
     *  - cm.stats:        average footprints are non-negative and a
     *    recorded serialization target is a valid dTxID slot;
     *  - cm.pressure:     hybrid conflict-pressure EWMAs stay in
     *    [0,1].
     */
    void auditCheck(sim::AuditEngine &audit, sim::Tick tick) const;

    /** Host-profiler byte gauges: confidence/pressure tables plus
     *  the live per-dTxID Bloom signatures (ROADMAP item 2 says both
     *  explode with sTxID^2 and thread count; this makes the growth
     *  visible). */
    void profileMemory(sim::Profiler &profiler) const override;

    // ---- audit mutation-selftest hooks. Never call outside tests.
    /** Corrupt a confidence entry, bypassing the saturating clamp. */
    void
    testCorruptConfidence(htm::STxId row, htm::STxId col, double value)
    {
        conf_[static_cast<std::size_t>(slotOf(row))
                  * static_cast<std::size_t>(numSlots())
              + static_cast<std::size_t>(slotOf(col))] = value;
    }
    /** Corrupt a similarity EWMA out of [0,1]. */
    void
    testCorruptSimilarity(htm::DTxId dtx, double value)
    {
        statsFor(dtx).similarity = value;
    }
    /** Corrupt an average-footprint estimate (negative = broken). */
    void
    testCorruptAvgSize(htm::DTxId dtx, double value)
    {
        statsFor(dtx).avgSize = value;
    }
    /** Corrupt a conflict-pressure EWMA out of [0,1]. */
    void
    testCorruptPressure(htm::STxId stx, double value)
    {
        pressure_[static_cast<std::size_t>(slotOf(stx))] = value;
    }
    /** Run the commit-time signature audit on a crafted signature
     *  (requires services.audit). */
    void
    testAuditSignature(const TxInfo &tx, const bloom::Signature &sig,
                       const std::vector<mem::Addr> &rw_lines)
    {
        auditSignature(tx, sig, rw_lines);
    }

  private:
    /** Number of physical slots backing the prediction structures. */
    int numSlots() const;

    /** Physical slot an sTxID maps to (aliasing, future work). */
    htm::STxId slotOf(htm::STxId stx) const;

    struct DtxStats {
        double avgSize = 0.0;
        double similarity;
        htm::DTxId waitingOn = htm::kNoTx;
        int commitsSinceSimUpdate = 0;
        std::unique_ptr<bloom::Signature> lastBloom;
    };

    bool usesHardware() const;
    bool noOverhead() const
    {
        return config_.variant == BfgtsVariant::NoOverhead;
    }

    /** Make a signature of the configured kind (Bloom or perfect). */
    std::unique_ptr<bloom::Signature> makeSignature() const;

    DtxStats &statsFor(htm::DTxId dtx);
    const DtxStats &statsFor(htm::DTxId dtx) const;

    /** Saturating confidence update + predictor-cache invalidation. */
    void writeConfidence(htm::STxId row, htm::STxId col, double delta);

    /** suspendTx() (Example 2): returns the final decision. */
    BeginDecision suspend(const TxInfo &tx, htm::DTxId wait_on,
                          CmCost cost);

    /**
     * Commit-time audit of the freshly built signature: Eq. 2-4
     * estimator bounds ("bloom.estimate", "bloom.similarity").
     * Caller guarantees services_.audit is attached and checking.
     */
    void auditSignature(const TxInfo &tx,
                        const bloom::Signature &n_bloom,
                        const std::vector<mem::Addr> &rw_lines);

    /** Hybrid pressure update. */
    void updatePressure(htm::STxId stx, bool conflicted);

    /** Cycles of the full Bloom similarity update for one commit. */
    sim::Cycles bloomUpdateCost() const;

    BfgtsConfig config_;
    const htm::TxIdSpace &ids_;
    /** Prototype signature cloned per commit on the fast path. */
    std::unique_ptr<bloom::Signature> protoSig_;
    /** Confidence table, numStaticTx^2, row-major, 0..255. */
    std::vector<double> conf_;
    std::vector<DtxStats> stats_;
    std::vector<double> pressure_;
    sim::Counter gatedBegins_;
    sim::Counter skippedSimUpdates_;
    /** Fresh Eq.-4 similarity per update, 20 buckets over [0,1). */
    sim::Histogram similarityHist_ =
        sim::Histogram::makeLinear(0.0, 1.0, 20);
    /** Post-write confidence values, 16 buckets over [0,256). */
    sim::Histogram confidenceHist_ =
        sim::Histogram::makeLinear(0.0, 256.0, 16);
};

} // namespace cm

#endif // BFGTS_CM_BFGTS_H
