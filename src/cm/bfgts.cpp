#include "bfgts.h"

#include <algorithm>
#include <string>

#include "bloom/signature_ops.h"
#include "cpu/predictor.h"
#include "sim/audit.h"
#include "sim/event_queue.h"
#include "sim/logging.h"
#include "sim/profiler.h"
#include "sim/quality.h"

namespace cm {

const char *
bfgtsVariantName(BfgtsVariant variant)
{
    switch (variant) {
      case BfgtsVariant::Sw:
        return "BFGTS-SW";
      case BfgtsVariant::Hw:
        return "BFGTS-HW";
      case BfgtsVariant::HwBackoff:
        return "BFGTS-HW/Backoff";
      case BfgtsVariant::NoOverhead:
        return "BFGTS-NoOverhead";
    }
    return "BFGTS-?";
}

BfgtsManager::BfgtsManager(int num_cpus, const htm::TxIdSpace &ids,
                           const Services &services,
                           const BfgtsConfig &config)
    : ContentionManagerBase(num_cpus, services), config_(config),
      ids_(ids)
{
    const auto slots = static_cast<std::size_t>(numSlots());
    conf_.assign(slots * slots, 0.0);
    pressure_.assign(slots, 0.0);
    stats_.resize(slots * static_cast<std::size_t>(ids.numThreads()));
    for (DtxStats &s : stats_)
        s.similarity = config_.initialSimilarity;
    if (!noOverhead()) {
        protoSig_ =
            std::make_unique<bloom::BloomSignature>(config_.bloom);
    }
    if (usesHardware())
        sim_assert(services_.predictors != nullptr);
}

int
BfgtsManager::numSlots() const
{
    if (config_.confTableSlots <= 0
        || config_.confTableSlots >= ids_.numStaticTx()) {
        return ids_.numStaticTx();
    }
    return config_.confTableSlots;
}

htm::STxId
BfgtsManager::slotOf(htm::STxId stx) const
{
    return stx % numSlots();
}

std::string
BfgtsManager::name() const
{
    return bfgtsVariantName(config_.variant);
}

bool
BfgtsManager::usesHardware() const
{
    return config_.variant == BfgtsVariant::Hw
        || config_.variant == BfgtsVariant::HwBackoff;
}

std::unique_ptr<bloom::Signature>
BfgtsManager::makeSignature() const
{
    if (noOverhead())
        return std::make_unique<bloom::PerfectSignature>();
    // The scalar oracle constructs a fresh signature (the seed's cost
    // shape: a full H3 matrix rebuild per commit); the fast path
    // clones the empty prototype, whose matrix is shared behind a
    // refcount. Same config and seed, so the hashes -- and therefore
    // every downstream estimate -- are identical.
    if (bloom::activeSignatureImpl() == bloom::SigImpl::Scalar)
        return std::make_unique<bloom::BloomSignature>(config_.bloom);
    return protoSig_->clone();
}

BfgtsManager::DtxStats &
BfgtsManager::statsFor(htm::DTxId dtx)
{
    const auto index =
        static_cast<std::size_t>(slotOf(ids_.staticOf(dtx)))
            * static_cast<std::size_t>(ids_.numThreads())
        + static_cast<std::size_t>(ids_.threadOf(dtx));
    return stats_[index];
}

const BfgtsManager::DtxStats &
BfgtsManager::statsFor(htm::DTxId dtx) const
{
    const auto index =
        static_cast<std::size_t>(slotOf(ids_.staticOf(dtx)))
            * static_cast<std::size_t>(ids_.numThreads())
        + static_cast<std::size_t>(ids_.threadOf(dtx));
    return stats_[index];
}

std::uint32_t
BfgtsManager::confidence(htm::STxId row, htm::STxId col) const
{
    const auto index = static_cast<std::size_t>(slotOf(row))
                         * static_cast<std::size_t>(numSlots())
                     + static_cast<std::size_t>(slotOf(col));
    return static_cast<std::uint32_t>(conf_[index]);
}

double
BfgtsManager::similarityOf(htm::DTxId dtx) const
{
    return statsFor(dtx).similarity;
}

double
BfgtsManager::avgSizeOf(htm::DTxId dtx) const
{
    return statsFor(dtx).avgSize;
}

double
BfgtsManager::pressure(htm::STxId stx) const
{
    return pressure_[static_cast<std::size_t>(slotOf(stx))];
}

double
BfgtsManager::meanConfidence() const
{
    if (conf_.empty())
        return 0.0;
    double sum = 0.0;
    for (double entry : conf_)
        sum += entry;
    return sum / static_cast<double>(conf_.size());
}

double
BfgtsManager::meanBloomOccupancy() const
{
    double sum = 0.0;
    std::size_t live = 0;
    for (const DtxStats &stats : stats_) {
        if (!stats.lastBloom)
            continue;
        const auto *sig = dynamic_cast<const bloom::BloomSignature *>(
            stats.lastBloom.get());
        if (sig == nullptr)
            continue; // perfect signatures have no bit density
        const bloom::BloomFilter &filter = sig->filter();
        sum += static_cast<double>(filter.popCount())
               / static_cast<double>(filter.numBits());
        ++live;
    }
    return live == 0 ? 0.0 : sum / static_cast<double>(live);
}

double
BfgtsManager::meanPressure() const
{
    if (pressure_.empty())
        return 0.0;
    double sum = 0.0;
    for (double p : pressure_)
        sum += p;
    return sum / static_cast<double>(pressure_.size());
}

void
BfgtsManager::writeConfidence(htm::STxId row, htm::STxId col,
                              double delta)
{
    const htm::STxId slot_row = slotOf(row);
    const htm::STxId slot_col = slotOf(col);
    const auto index = static_cast<std::size_t>(slot_row)
                         * static_cast<std::size_t>(numSlots())
                     + static_cast<std::size_t>(slot_col);
    conf_[index] = std::clamp(conf_[index] + delta, 0.0, 255.0);
    confidenceHist_.sample(conf_[index]);
    // The main processor wrote a confidence entry; the predictors'
    // confidence caches snoop the invalidation (and refetch). The
    // physical (aliased) slot is what lives at the cached address.
    if (usesHardware()) {
        sim::ScopedPhase prof_phase(services_.profiler,
                                    sim::Profiler::kPredictor);
        services_.predictors->onConfidenceWrite(slot_row, slot_col);
    }
}

void
BfgtsManager::updatePressure(htm::STxId stx, bool conflicted)
{
    double &p = pressure_[static_cast<std::size_t>(slotOf(stx))];
    p = config_.pressureAlpha * p
      + (1.0 - config_.pressureAlpha) * (conflicted ? 1.0 : 0.0);
}

sim::Cycles
BfgtsManager::bloomUpdateCost() const
{
    if (noOverhead())
        return 1;
    const sim::Cycles words = (config_.bloom.numBits + 63) / 64;
    return words * config_.perWordCycle
               * static_cast<sim::Cycles>(config_.bloomPasses)
         + 3 * config_.fyl2xCost + config_.mathTailCost;
}

BeginDecision
BfgtsManager::suspend(const TxInfo &tx, htm::DTxId wait_on,
                      CmCost cost)
{
    // suspendTx(), Example 2. The triggering confidence is read
    // before the decay below so the decision reports the value the
    // stall was actually based on.
    const double trigger_conf =
        static_cast<double>(confidence(tx.sTx, ids_.staticOf(wait_on)))
        / 255.0;
    trackSerialization(ids_.staticOf(wait_on), tx.sTx);
    if (!noOverhead())
        cost.sched += config_.suspendCost;
    else
        cost.sched += 1;

    DtxStats &self = statsFor(tx.dTx);
    const DtxStats &holder = statsFor(wait_on);
    const double sim_avg =
        config_.similarityWeighting
            ? 0.5 * (self.similarity + holder.similarity)
            : 0.5;
    const double decay = config_.decayVal * (1.0 - sim_avg);
    writeConfidence(tx.sTx, ids_.staticOf(wait_on), -decay);
    self.waitingOn = wait_on;

    if (config_.variant == BfgtsVariant::HwBackoff)
        updatePressure(tx.sTx, true); // predicted conflicts add pressure

    BeginDecision decision;
    decision.cost = cost;
    decision.waitOn = wait_on;
    decision.confidence = trigger_conf;
    decision.action = holder.avgSize >= config_.smallTxLines
                          ? BeginAction::YieldOn
                          : BeginAction::StallOn;
    return decision;
}

BeginDecision
BfgtsManager::onTxBegin(const TxInfo &tx)
{
    BeginDecision decision;

    if (config_.variant == BfgtsVariant::HwBackoff) {
        decision.cost.sched += config_.pressureCheckCost;
        if (pressure(tx.sTx) <= config_.pressureThreshold) {
            gatedBegins_.inc();
            return decision; // backoff mode: run immediately
        }
    }

    if (usesHardware()) {
        // The TX_BEGIN instruction triggers the predictor (Example 1
        // runs in hardware).
        auto read_conf = [this](htm::STxId row, htm::STxId col) {
            return confidence(row, col);
        };
        cpu::PredictResult result;
        {
            sim::ScopedPhase prof_phase(services_.profiler,
                                        sim::Profiler::kPredictor);
            result = services_.predictors->predict(
                tx.cpu, tx.sTx, read_conf, config_.confThreshold);
        }
        decision.cost.sched += result.latency;
        if (result.conflictPredicted)
            return suspend(tx, result.waitOn, decision.cost);
        decision.confidence =
            static_cast<double>(result.maxConfidence) / 255.0;
        return decision;
    }

    // Software walk of the CPU Table (BFGTS-SW / NoOverhead).
    if (!noOverhead())
        decision.cost.sched += config_.swScanBase;
    else
        decision.cost.sched += 1;
    std::uint32_t max_conf = 0;
    for (int cpu = 0; cpu < numCpus(); ++cpu) {
        if (cpu == tx.cpu)
            continue;
        if (!noOverhead())
            decision.cost.sched += config_.swScanPerEntry;
        const htm::DTxId running = runningOn(cpu);
        if (running == htm::kNoTx)
            continue;
        const std::uint32_t conf =
            confidence(tx.sTx, ids_.staticOf(running));
        max_conf = std::max(max_conf, conf);
        if (conf > config_.confThreshold)
            return suspend(tx, running, decision.cost);
    }
    decision.confidence = static_cast<double>(max_conf) / 255.0;
    return decision;
}

void
BfgtsManager::onTxStart(const TxInfo &tx)
{
    trackStart(tx);
    if (usesHardware()) {
        sim::ScopedPhase prof_phase(services_.profiler,
                                    sim::Profiler::kPredictor);
        services_.predictors->broadcastBegin(tx.cpu, tx.dTx);
    }
}

CmCost
BfgtsManager::onConflictDetected(const TxInfo &tx, const TxInfo &other)
{
    // txConflict(), Example 3: strengthen the edge in both
    // directions, scaled by the average similarity of the parties.
    CmCost cost;
    cost.sched = noOverhead() ? 1 : config_.conflictCost;
    if (other.dTx != htm::kNoTx) {
        const double sim_avg =
            config_.similarityWeighting
                ? 0.5
                      * (statsFor(tx.dTx).similarity
                         + statsFor(other.dTx).similarity)
                : 0.5;
        const double inc = config_.incVal * sim_avg;
        writeConfidence(tx.sTx, other.sTx, inc);
        writeConfidence(other.sTx, tx.sTx, inc);
    }
    // Hybrid pressure rises on aborts and predicted conflicts only
    // (Section 4.3), not on every NACK.
    return cost;
}

AbortResponse
BfgtsManager::onTxAbort(const TxInfo &tx, const TxInfo &other)
{
    trackEnd(tx, false);
    if (usesHardware()) {
        sim::ScopedPhase prof_phase(services_.profiler,
                                    sim::Profiler::kPredictor);
        services_.predictors->broadcastEnd(tx.cpu);
    }

    (void)other;
    AbortResponse resp;
    // The conflict edge was already strengthened when the conflict
    // was detected (onConflictDetected, fired on the first NACK);
    // the abort only pays rollback bookkeeping and raises the
    // hybrid's pressure on the victim's side.
    resp.cost.sched = noOverhead() ? 1 : config_.conflictCost;
    if (config_.variant == BfgtsVariant::HwBackoff)
        updatePressure(tx.sTx, true);

    sim_assert(services_.rng != nullptr);
    resp.backoff = services_.rng->below(
        std::max<sim::Cycles>(1, config_.abortBackoff * 2));
    return resp;
}

void
BfgtsManager::profileMemory(sim::Profiler &profiler) const
{
    profiler.recordBytes(sim::Profiler::kConfidenceTables,
                         (conf_.size() + pressure_.size())
                             * sizeof(double));
    // Live signatures, approximated from the configured geometry
    // (perfect signatures in the NoOverhead variant are costed the
    // same way; the gauge tracks growth, not exact heap bytes).
    const std::uint64_t per_signature =
        sizeof(bloom::BloomSignature)
        + static_cast<std::uint64_t>(config_.bloom.numBits) / 8;
    std::uint64_t signature_bytes = 0;
    for (const DtxStats &stats : stats_) {
        if (stats.lastBloom)
            signature_bytes += per_signature;
    }
    profiler.recordBytes(sim::Profiler::kBloomSignatures,
                         signature_bytes);
}

void
BfgtsManager::auditCheck(sim::AuditEngine &audit, sim::Tick tick) const
{
    for (std::size_t i = 0; i < conf_.size(); ++i) {
        if (!audit.check(conf_[i] >= 0.0 && conf_[i] <= 255.0,
                         "cm.confidence",
                         "confidence entry " + std::to_string(i)
                             + " escaped the saturating 0..255 range",
                         tick)) {
            break; // one witness per sweep keeps Collect mode cheap
        }
    }
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        const DtxStats &s = stats_[i];
        audit.check(s.similarity >= 0.0 && s.similarity <= 1.0,
                    "bloom.similarity",
                    "similarity EWMA of stats slot " + std::to_string(i)
                        + " escaped [0,1]",
                    tick);
        audit.check(s.avgSize >= 0.0, "cm.stats",
                    "negative average footprint in stats slot "
                        + std::to_string(i),
                    tick);
        audit.check(s.waitingOn == htm::kNoTx
                        || (ids_.staticOf(s.waitingOn)
                                < ids_.numStaticTx()
                            && ids_.threadOf(s.waitingOn)
                                   < ids_.numThreads()),
                    "cm.stats",
                    "stats slot " + std::to_string(i)
                        + " records an out-of-range serialization "
                          "target",
                    tick);
    }
    for (std::size_t i = 0; i < pressure_.size(); ++i) {
        audit.check(pressure_[i] >= 0.0 && pressure_[i] <= 1.0,
                    "cm.pressure",
                    "conflict-pressure EWMA of site "
                        + std::to_string(i) + " escaped [0,1]",
                    tick);
    }
}

void
BfgtsManager::auditSignature(const TxInfo &tx,
                             const bloom::Signature &n_bloom,
                             const std::vector<mem::Addr> &rw_lines)
{
    sim::AuditEngine &audit = *services_.audit;
    const sim::Tick tick =
        services_.events != nullptr ? services_.events->curTick() : 0;
    const auto dtx = static_cast<std::int64_t>(tx.dTx);
    const auto stx = static_cast<std::int64_t>(tx.sTx);

    const double est = n_bloom.estimateSize();
    audit.check(est >= 0.0, "bloom.estimate",
                "negative Eq. 2 set-size estimate", tick, tx.cpu,
                tx.thread, stx, dtx);
    if (noOverhead()) {
        // Perfect signatures estimate exactly: the count of distinct
        // lines inserted.
        std::vector<mem::Addr> unique(rw_lines);
        std::sort(unique.begin(), unique.end());
        unique.erase(std::unique(unique.begin(), unique.end()),
                     unique.end());
        audit.check(est == static_cast<double>(unique.size()),
                    "bloom.estimate",
                    "perfect signature misestimates its exact set "
                    "size",
                    tick, tx.cpu, tx.thread, stx, dtx);
    }

    // Layout and membership of the Bloom encoding itself: every hash
    // function must map every inserted line to a set bit (a Bloom
    // filter never false-negatives on its own set), and under the
    // partitioned layout (Sanchez et al.) hash function i may only
    // index bank i's bit range.
    if (const auto *sig =
            dynamic_cast<const bloom::BloomSignature *>(&n_bloom)) {
        const bloom::BloomFilter &filter = sig->filter();
        const auto k = static_cast<std::uint64_t>(filter.numHashes());
        const std::uint64_t bank_bits = filter.numBits() / k;
        bool member = true;
        bool in_bank = true;
        for (const mem::Addr line : rw_lines) {
            for (int fn = 0; fn < filter.numHashes(); ++fn) {
                const std::uint64_t bit = filter.bitIndexFor(fn, line);
                member = member
                      && (filter.words()[bit >> 6]
                          & (1ULL << (bit & 63)))
                             != 0;
                if (filter.config().partitioned) {
                    in_bank = in_bank
                           && bit / bank_bits
                                  == static_cast<std::uint64_t>(fn);
                }
            }
        }
        audit.check(member, "bloom.partition",
                    "signature misses a bit of its own inserted set "
                    "(false negative)",
                    tick, tx.cpu, tx.thread, stx, dtx);
        audit.check(in_bank, "bloom.partition",
                    "partitioned layout: a hash function indexed "
                    "outside its bank",
                    tick, tx.cpu, tx.thread, stx, dtx);
    }

    // Eq. 3 intersection estimates are bounded by the smaller of the
    // two Eq. 2 size estimates (monotonicity of the estimator), and
    // the derived Eq. 4 similarity lands in [0,1].
    const DtxStats &self = statsFor(tx.dTx);
    if (self.lastBloom) {
        const double other = self.lastBloom->estimateSize();
        const double inter =
            n_bloom.estimateIntersectionSize(*self.lastBloom);
        const double bound = std::min(est, other) + 1e-9;
        audit.check(inter >= -1e-9 && inter <= bound, "bloom.estimate",
                    "Eq. 3 intersection estimate exceeds the smaller "
                    "set estimate",
                    tick, tx.cpu, tx.thread, stx, dtx);
        const double new_sim = bloom::signatureSimilarity(
            n_bloom, *self.lastBloom, self.avgSize);
        audit.check(new_sim >= 0.0 && new_sim <= 1.0,
                    "bloom.similarity",
                    "Eq. 4 similarity escaped [0,1]", tick, tx.cpu,
                    tx.thread, stx, dtx);
    }
}

CmCost
BfgtsManager::onTxCommit(const TxInfo &tx,
                         const std::vector<mem::Addr> &rw_lines)
{
    trackEnd(tx, true);
    if (usesHardware()) {
        sim::ScopedPhase prof_phase(services_.profiler,
                                    sim::Profiler::kPredictor);
        services_.predictors->broadcastEnd(tx.cpu);
    }

    CmCost cost;
    cost.sched = noOverhead() ? 1 : config_.commitBase;

    DtxStats &self = statsFor(tx.dTx);

    // updateAvgSize().
    const auto size = static_cast<double>(rw_lines.size());
    self.avgSize = self.avgSize == 0.0 ? size
                                       : 0.5 * (self.avgSize + size);

    bool hybrid_gated = false;
    if (config_.variant == BfgtsVariant::HwBackoff) {
        cost.sched += config_.pressureCheckCost;
        updatePressure(tx.sTx, false);
        if (pressure(tx.sTx) <= config_.pressureThreshold
            && self.waitingOn == htm::kNoTx) {
            hybrid_gated = true; // skip the Bloom machinery entirely
        }
    }

    // Small transactions only refresh similarity every
    // smallTxInterval commits (Section 5.3.2).
    bool sim_update_due = true;
    if (self.avgSize < config_.smallTxLines) {
        ++self.commitsSinceSimUpdate;
        if (self.commitsSinceSimUpdate < config_.smallTxInterval) {
            sim_update_due = false;
        } else {
            self.commitsSinceSimUpdate = 0;
        }
    }
    if (hybrid_gated)
        sim_update_due = false;

    const bool need_bloom = sim_update_due
                         || self.waitingOn != htm::kNoTx;
    if (!need_bloom) {
        if (!sim_update_due)
            skippedSimUpdates_.inc();
        return cost;
    }

    // Everything from here on is Bloom signature machinery: build,
    // similarity estimate, serialization check. Self-time phase
    // nesting keeps it disjoint from the enclosing cm_commit bucket.
    sim::ScopedPhase prof_phase(services_.profiler,
                                sim::Profiler::kBloom);

    // readCPUBloomFilter(): encode the just-committed read/write set.
    std::unique_ptr<bloom::Signature> n_bloom = makeSignature();
    for (mem::Addr line : rw_lines)
        n_bloom->insert(line);

    if (services_.audit != nullptr && services_.audit->shouldCheck())
        auditSignature(tx, *n_bloom, rw_lines);

    if (sim_update_due) {
        // updateBloom(), Example 4: newSim via Eqs. 2-4 against the
        // previous execution's filter, then EWMA into the stats.
        cost.sched += bloomUpdateCost();
        if (self.lastBloom) {
            const double new_sim = bloom::signatureSimilarity(
                *n_bloom, *self.lastBloom, self.avgSize);
            similarityHist_.sample(new_sim);
            self.similarity = 0.5 * (self.similarity + new_sim);
            if (services_.quality != nullptr) {
                double occupancy = 0.0;
                const auto *sig =
                    dynamic_cast<const bloom::BloomSignature *>(
                        n_bloom.get());
                if (sig != nullptr) {
                    const bloom::BloomFilter &filter = sig->filter();
                    occupancy =
                        static_cast<double>(filter.popCount())
                        / static_cast<double>(filter.numBits());
                }
                services_.quality->recordEstimate(
                    static_cast<std::int64_t>(tx.dTx), rw_lines,
                    n_bloom->estimateSize(),
                    n_bloom->estimateIntersectionSize(*self.lastBloom),
                    new_sim, occupancy, self.avgSize);
            }
        }
    } else {
        skippedSimUpdates_.inc();
    }

    // checkWasSerialized(): verify the begin-time serialization.
    if (self.waitingOn != htm::kNoTx) {
        const htm::DTxId waited = self.waitingOn;
        self.waitingOn = htm::kNoTx;
        const DtxStats &holder = statsFor(waited);
        if (holder.lastBloom) {
            if (!noOverhead()) {
                const sim::Cycles words =
                    (config_.bloom.numBits + 63) / 64;
                cost.sched += words * config_.perWordCycle;
            }
            const double sim_avg =
                config_.similarityWeighting
                    ? 0.5 * (self.similarity + holder.similarity)
                    : 0.5;
            // "If an intersection is not null the confidence is
            // incremented" -- BFGTS judges this with the Eq. 3
            // estimator rather than a raw bitwise AND: at realistic
            // densities the AND of two signatures almost always has
            // a few chance bits in common, which is exactly the
            // "rudimentary Bloom filter use" the paper criticizes
            // PTS for.
            if (n_bloom->estimateIntersectionSize(*holder.lastBloom)
                >= 1.0) {
                writeConfidence(tx.sTx, ids_.staticOf(waited),
                                config_.incVal * sim_avg);
            } else {
                writeConfidence(tx.sTx, ids_.staticOf(waited),
                                -config_.decayVal * (1.0 - sim_avg));
            }
        }
    }

    if (sim_update_due) {
        self.lastBloom = std::move(n_bloom);
        // The recorder's exact previous set must track the stored
        // signature so Eq. 3/4 ground truth matches what the next
        // estimate is computed against.
        if (services_.quality != nullptr) {
            services_.quality->noteSet(
                static_cast<std::int64_t>(tx.dTx), rw_lines);
        }
    }
    return cost;
}

} // namespace cm
