#include "factory.h"

#include "sim/logging.h"

namespace cm {

std::vector<CmKind>
allCmKinds()
{
    return {CmKind::Backoff,        CmKind::Pts,
            CmKind::Ats,            CmKind::BfgtsSw,
            CmKind::BfgtsHw,        CmKind::BfgtsHwBackoff,
            CmKind::BfgtsNoOverhead};
}

std::vector<CmKind>
extendedCmKinds()
{
    std::vector<CmKind> kinds = allCmKinds();
    kinds.push_back(CmKind::Timestamp);
    kinds.push_back(CmKind::Polka);
    return kinds;
}

const char *
cmKindName(CmKind kind)
{
    switch (kind) {
      case CmKind::Backoff:
        return "Backoff";
      case CmKind::Pts:
        return "PTS";
      case CmKind::Ats:
        return "ATS";
      case CmKind::BfgtsSw:
        return "BFGTS-SW";
      case CmKind::BfgtsHw:
        return "BFGTS-HW";
      case CmKind::BfgtsHwBackoff:
        return "BFGTS-HW/Backoff";
      case CmKind::BfgtsNoOverhead:
        return "BFGTS-NoOverhead";
      case CmKind::Timestamp:
        return "Timestamp";
      case CmKind::Polka:
        return "Polka";
    }
    return "?";
}

CmKind
cmKindFromName(const std::string &name)
{
    for (CmKind kind : extendedCmKinds()) {
        if (name == cmKindName(kind))
            return kind;
    }
    sim_fatal("unknown contention manager '%s'", name.c_str());
}

bool
isBfgts(CmKind kind)
{
    switch (kind) {
      case CmKind::BfgtsSw:
      case CmKind::BfgtsHw:
      case CmKind::BfgtsHwBackoff:
      case CmKind::BfgtsNoOverhead:
        return true;
      default:
        return false;
    }
}

std::unique_ptr<ContentionManager>
makeManager(CmKind kind, int num_cpus, const htm::TxIdSpace &ids,
            const Services &services, const CmTuning &tuning)
{
    switch (kind) {
      case CmKind::Backoff:
        return std::make_unique<BackoffManager>(num_cpus, services,
                                                tuning.backoff);
      case CmKind::Timestamp:
        return std::make_unique<TimestampManager>(num_cpus, services);
      case CmKind::Polka:
        return std::make_unique<PolkaManager>(num_cpus, services);
      case CmKind::Ats:
        return std::make_unique<AtsManager>(num_cpus,
                                            ids.numStaticTx(),
                                            services, tuning.ats);
      case CmKind::Pts:
        return std::make_unique<PtsManager>(num_cpus, ids, services,
                                            tuning.pts);
      case CmKind::BfgtsSw:
      case CmKind::BfgtsHw:
      case CmKind::BfgtsHwBackoff:
      case CmKind::BfgtsNoOverhead: {
        BfgtsConfig config = tuning.bfgts;
        switch (kind) {
          case CmKind::BfgtsSw:
            config.variant = BfgtsVariant::Sw;
            break;
          case CmKind::BfgtsHw:
            config.variant = BfgtsVariant::Hw;
            break;
          case CmKind::BfgtsHwBackoff:
            config.variant = BfgtsVariant::HwBackoff;
            break;
          default:
            config.variant = BfgtsVariant::NoOverhead;
            break;
        }
        return std::make_unique<BfgtsManager>(num_cpus, ids, services,
                                              config);
      }
    }
    sim_panic("unhandled CmKind");
}

} // namespace cm
