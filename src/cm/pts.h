/**
 * @file
 * Proactive Transaction Scheduling (Blake et al., MICRO'09).
 *
 * PTS profiles the runtime conflict pattern into a *global* conflict
 * graph keyed by dynamic transaction ID pairs, with edge weights
 * acting as conflict confidences. Before a transaction begins it
 * scans the table of running transactions and serializes behind the
 * first one whose edge confidence exceeds a threshold. At commit it
 * intersects its read/write-set Bloom filter with the saved filters
 * of the transactions it serialized behind: a non-empty intersection
 * means the serialization was justified (strengthen the edge), an
 * empty one means it was too pessimistic (weaken it).
 *
 * Three properties the BFGTS paper criticizes are modeled explicitly:
 *  1. the per-dTxID-pair graph is large and cache-hostile, so the
 *     begin-time scan is expensive (scanPerEntryCost);
 *  2. the scan runs in software on *every* begin;
 *  3. Bloom filter use is rudimentary: fixed size, and confidence
 *     updates use fixed increments -- no similarity weighting.
 */

#ifndef BFGTS_CM_PTS_H
#define BFGTS_CM_PTS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/signature.h"
#include "cm/base.h"

namespace cm {

/** PTS tunables. */
struct PtsConfig {
    /** Fixed ("rudimentary") Bloom filter for commit-time checks. */
    bloom::BloomConfig bloom{.numBits = 1024, .numHashes = 2};
    /** Serialize when edge confidence exceeds this (0..255 scale);
     *  a single conflict (incVal) crosses it. */
    std::uint32_t confThreshold = 40;
    /** Fixed confidence increment on a confirmed/actual conflict. */
    double incVal = 48.0;
    /** Fixed confidence decrement on a disproven serialization. */
    double decVal = 24.0;
    /** Decay applied to the consulted edge at each serialization. */
    double suspendDecay = 12.0;
    /** Holders at least this big (avg lines) are yielded behind. */
    double smallTxLines = 10.0;

    /** Begin-scan fixed cost (graph pointer chasing setup). */
    sim::Cycles scanBaseCost = 120;
    /** Begin-scan cost per running transaction consulted. */
    sim::Cycles scanPerEntryCost = 55;
    /** Commit bookkeeping base cost. */
    sim::Cycles commitBaseCost = 150;
    /** Cycles per 64-bit Bloom word per pass at commit. */
    sim::Cycles perWordCycle = 1;
    /** Abort-path bookkeeping cost. */
    sim::Cycles conflictCost = 60;
    /** Mean random backoff after an abort, cycles. */
    sim::Cycles abortBackoff = 300;
};

/** Conflict-graph-driven proactive scheduler. */
class PtsManager : public ContentionManagerBase
{
  public:
    PtsManager(int num_cpus, const htm::TxIdSpace &ids,
               const Services &services, const PtsConfig &config = {});

    std::string name() const override { return "PTS"; }

    BeginDecision onTxBegin(const TxInfo &tx) override;
    void onTxStart(const TxInfo &tx) override { trackStart(tx); }
    CmCost onConflictDetected(const TxInfo &tx,
                              const TxInfo &other) override;
    AbortResponse onTxAbort(const TxInfo &tx,
                            const TxInfo &other) override;
    CmCost onTxCommit(const TxInfo &tx,
                      const std::vector<mem::Addr> &rw_lines) override;

    /** Edge confidence between two dTxIDs (tests). */
    double confidence(htm::DTxId a, htm::DTxId b) const;

    /** Number of edges materialized in the graph (size accounting). */
    std::size_t graphEdges() const { return graphEdges_; }

  private:
    /**
     * Flat index of the symmetric edge (a, b) in the dense
     * lower-triangular confidence matrix over denseIndex space.
     */
    std::size_t edgeIndex(htm::DTxId a, htm::DTxId b) const;

    void bumpConfidence(htm::DTxId a, htm::DTxId b, double delta);

    struct DtxStats {
        double avgSize = 0.0;
        std::vector<htm::DTxId> waitedOn;
        std::unique_ptr<bloom::Signature> lastBloom;
    };

    DtxStats &statsFor(htm::DTxId dtx);

    PtsConfig config_;
    const htm::TxIdSpace &ids_;
    /**
     * Conflict graph: symmetric dTxID-pair -> confidence, stored as a
     * flat lower-triangular matrix over dense dTx indices (the
     * begin-time scan is a plain array read, no hashing). This models
     * the structure the BFGTS paper criticizes as large: n(n+1)/2
     * doubles for n = numDynamicTx(), which is fine at paper scale
     * but will need a sparse/tiered replacement for the big-machine
     * axis (ROADMAP item 2).
     */
    std::vector<double> graph_;
    /** Which edges have ever been written (edge-count accounting). */
    std::vector<std::uint8_t> edgeTouched_;
    std::size_t graphEdges_ = 0;
    /** Per-dTx stats, indexed by TxIdSpace::denseIndex(). */
    std::vector<DtxStats> stats_;
    /** Prototype signature cloned per commit on the fast path. */
    std::unique_ptr<bloom::Signature> protoSig_;
};

} // namespace cm

#endif // BFGTS_CM_PTS_H
