#include "backoff.h"

#include <algorithm>

#include "sim/logging.h"

namespace cm {

AbortResponse
BackoffManager::onTxAbort(const TxInfo &tx, const TxInfo &other)
{
    (void)other;
    trackEnd(tx, false);
    int &streak = streakFor(tx.thread);
    streak = std::min(streak + 1, config_.maxExponent);

    AbortResponse resp;
    sim_assert(services_.rng != nullptr);
    const sim::Cycles window = config_.baseWindow
                             << static_cast<unsigned>(streak);
    resp.backoff = services_.rng->below(window ? window : 1);
    return resp;
}

} // namespace cm
