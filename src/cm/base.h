/**
 * @file
 * Shared plumbing for contention managers.
 *
 * Services gives a CM controlled access to the simulated machine:
 * the OS scheduler (to wake blocked threads), the RNG (for randomized
 * backoff) and the hardware predictor system (BFGTS-HW only).
 *
 * ContentionManagerBase maintains the software view of the CPU Table
 * -- which dTxID is running on each CPU -- that PTS and BFGTS-SW scan
 * at begin time, and collects commit/abort counters every manager
 * wants.
 */

#ifndef BFGTS_CM_BASE_H
#define BFGTS_CM_BASE_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "cm/contention_manager.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace os {
class OsScheduler;
}
namespace cpu {
class PredictorSystem;
}
namespace sim {
class AuditEngine;
class EventQueue;
class Profiler;
class QualityRecorder;
}

namespace cm {

/** Simulated-machine services a CM may use. */
struct Services {
    os::OsScheduler *scheduler = nullptr;
    sim::Rng *rng = nullptr;
    /** Only wired for BFGTS-HW / BFGTS-HW/Backoff. */
    cpu::PredictorSystem *predictors = nullptr;
    /** Simulated clock, for throughput-based self-tuning. */
    const sim::EventQueue *events = nullptr;
    /** Invariant auditor; null or disabled outside --audit runs. */
    sim::AuditEngine *audit = nullptr;
    /** Host-performance profiler; null outside --profile runs. Only
     *  wall-time/memory accounting may flow through it -- never model
     *  state. */
    sim::Profiler *profiler = nullptr;
    /** Decision-quality recorder; null outside --quality runs.
     *  Observational only: hooks may report estimates and exact
     *  RW-sets to it but must never read it back. */
    sim::QualityRecorder *quality = nullptr;
};

/**
 * Base class: per-CPU running-transaction table plus counters.
 *
 * Subclasses must call the on*() methods of this base when they
 * override them (they are non-virtual helpers named differently to
 * make forgetting impossible: subclasses implement the interface and
 * call track*()).
 */
class ContentionManagerBase : public ContentionManager
{
  public:
    ContentionManagerBase(int num_cpus, const Services &services)
        : services_(services),
          runningByCpu_(static_cast<std::size_t>(num_cpus), htm::kNoTx)
    {
    }

    /** dTxID running on @p cpu, or kNoTx. */
    htm::DTxId
    runningOn(sim::CpuId cpu) const
    {
        return runningByCpu_[static_cast<std::size_t>(cpu)];
    }

    int
    numCpus() const
    {
        return static_cast<int>(runningByCpu_.size());
    }

    const sim::Counter &commits() const { return commits_; }
    const sim::Counter &aborts() const { return aborts_; }
    const sim::Counter &serializations() const { return serializations_; }

    /**
     * Begin-time serializations per (winner sTx, victim sTx) edge:
     * how often each site was made to wait behind each other site.
     * Winner kUnknownSite means the CM serialized without naming an
     * enemy transaction (ATS's central token queue). Ordered map, so
     * iteration is deterministic.
     */
    static constexpr int kUnknownSite = -1;
    const std::map<std::pair<int, int>, std::uint64_t> &
    serializationEdges() const
    {
        return serializationEdges_;
    }

  protected:
    /** Record that @p tx started running (call from onTxStart). */
    void
    trackStart(const TxInfo &tx)
    {
        runningByCpu_[static_cast<std::size_t>(tx.cpu)] = tx.dTx;
    }

    /** Record that @p tx stopped (call from onTxAbort/onTxCommit). */
    void
    trackEnd(const TxInfo &tx, bool committed)
    {
        auto &slot = runningByCpu_[static_cast<std::size_t>(tx.cpu)];
        if (slot == tx.dTx)
            slot = htm::kNoTx;
        if (committed)
            commits_.inc();
        else
            aborts_.inc();
    }

    /** Count a begin-time serialization decision and attribute the
     *  (winner, victim) site edge; kUnknownSite when the CM has no
     *  specific enemy (token-based schemes). */
    void
    trackSerialization(int winner_stx, int victim_stx)
    {
        serializations_.inc();
        ++serializationEdges_[{winner_stx, victim_stx}];
    }

    Services services_;

  private:
    std::vector<htm::DTxId> runningByCpu_;
    sim::Counter commits_;
    sim::Counter aborts_;
    sim::Counter serializations_;
    std::map<std::pair<int, int>, std::uint64_t> serializationEdges_;
};

} // namespace cm

#endif // BFGTS_CM_BASE_H
