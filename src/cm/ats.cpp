#include "ats.h"

#include "sim/event_queue.h"

#include <algorithm>

#include "os/scheduler.h"
#include "sim/logging.h"

namespace cm {

AtsManager::AtsManager(int num_cpus, int num_static_tx,
                       const Services &services,
                       const AtsConfig &config)
    : ContentionManagerBase(num_cpus, services), config_(config),
      threshold_(config.threshold),
      pressure_(static_cast<std::size_t>(num_static_tx), 0.0)
{
    sim_assert(num_static_tx >= 1);
}

void
AtsManager::tuneThreshold()
{
    if (++windowCommits_ < config_.tuningWindow)
        return;
    sim_assert(services_.events != nullptr);
    const sim::Tick now = services_.events->curTick();
    if (now > windowStart_) {
        const double rate =
            static_cast<double>(windowCommits_)
            / static_cast<double>(now - windowStart_);
        if (lastRate_ > 0.0 && rate < lastRate_)
            direction_ = -direction_; // that move hurt; reverse
        threshold_ = std::clamp(threshold_
                                    + direction_
                                          * config_.tuningStep,
                                config_.minThreshold,
                                config_.maxThreshold);
        lastRate_ = rate;
    }
    windowCommits_ = 0;
    windowStart_ = now;
}

double
AtsManager::pressure(htm::STxId stx) const
{
    sim_assert(stx >= 0
               && stx < static_cast<htm::STxId>(pressure_.size()));
    return pressure_[static_cast<std::size_t>(stx)];
}

double
AtsManager::meanPressure() const
{
    double sum = 0.0;
    for (double p : pressure_)
        sum += p;
    return pressure_.empty()
               ? 0.0
               : sum / static_cast<double>(pressure_.size());
}

void
AtsManager::updatePressure(htm::STxId stx, bool conflicted)
{
    double &p = pressure_[static_cast<std::size_t>(stx)];
    p = config_.alpha * p + (1.0 - config_.alpha)
                                * (conflicted ? 1.0 : 0.0);
}

BeginDecision
AtsManager::onTxBegin(const TxInfo &tx)
{
    BeginDecision decision;
    decision.cost.sched = config_.pressureCheckCost;

    // A thread that was handed the token while blocked starts now.
    if (tokenPromise_ == tx.thread) {
        tokenPromise_ = sim::kNoThread;
        tokenHolder_ = tx.thread;
        return decision;
    }
    // Retries of the current token holder keep the token.
    if (tokenHolder_ == tx.thread)
        return decision;

    if (pressure(tx.sTx) <= threshold_)
        return decision; // bypass the queue entirely

    // The central queue serializes against whoever holds the token,
    // not a known enemy transaction.
    trackSerialization(kUnknownSite, tx.sTx);
    if (tokenHolder_ == sim::kNoThread
        && tokenPromise_ == sim::kNoThread && waitQueue_.empty()) {
        tokenHolder_ = tx.thread;
        decision.cost.kernel += config_.queueOpCost;
        return decision;
    }
    waitQueue_.push_back(tx.thread);
    decision.action = BeginAction::Block;
    decision.cost.kernel += config_.queueOpCost;
    return decision;
}

CmCost
AtsManager::onConflictDetected(const TxInfo &tx, const TxInfo &other)
{
    // Yoo & Lee update conflict pressure per transaction *outcome*
    // (abort raises it, commit lowers it), not per conflicting
    // access -- per-access updates would saturate the EWMA in one
    // burst. Nothing to do at detection time.
    (void)tx;
    (void)other;
    return CmCost{};
}

AbortResponse
AtsManager::onTxAbort(const TxInfo &tx, const TxInfo &other)
{
    (void)other;
    trackEnd(tx, false);
    updatePressure(tx.sTx, true);

    AbortResponse resp;
    resp.cost.sched = config_.pressureCheckCost;
    sim_assert(services_.rng != nullptr);
    resp.backoff = services_.rng->below(
        std::max<sim::Cycles>(1, config_.abortBackoff * 2));
    // The token (if held) is kept across retries: the transaction is
    // still serialized until it commits.
    return resp;
}

CmCost
AtsManager::onTxCommit(const TxInfo &tx,
                       const std::vector<mem::Addr> &rw_lines)
{
    (void)rw_lines;
    trackEnd(tx, true);
    updatePressure(tx.sTx, false);
    if (config_.dynamicThreshold)
        tuneThreshold();

    CmCost cost;
    cost.sched = config_.pressureCheckCost;

    if (tokenHolder_ == tx.thread) {
        tokenHolder_ = sim::kNoThread;
        cost.kernel += config_.queueOpCost;
        if (!waitQueue_.empty()) {
            const sim::ThreadId next = waitQueue_.front();
            waitQueue_.pop_front();
            // Hand the token over and wake the head. The kernel cost
            // of the wake is charged here (to the committer); the
            // scheduler is told waker=kNoThread so it is not counted
            // twice.
            tokenPromise_ = next;
            cost.kernel += config_.wakeCost;
            sim_assert(services_.scheduler != nullptr);
            services_.scheduler->wake(next, sim::kNoThread);
        }
    }
    return cost;
}

} // namespace cm
