#include "reactive.h"

#include <algorithm>

#include "sim/logging.h"

namespace cm {

AbortResponse
TimestampManager::onTxAbort(const TxInfo &tx, const TxInfo &other)
{
    (void)other;
    trackEnd(tx, false);
    AbortResponse resp;
    sim_assert(services_.rng != nullptr);
    resp.backoff = services_.rng->below(
        std::max<sim::Cycles>(1, config_.abortBackoff * 2));
    return resp;
}

AbortResponse
PolkaManager::onTxAbort(const TxInfo &tx, const TxInfo &other)
{
    (void)other;
    trackEnd(tx, false);
    AbortResponse resp;
    sim_assert(services_.rng != nullptr);
    resp.backoff = services_.rng->below(
        std::max<sim::Cycles>(1, config_.abortBackoff * 2));
    return resp;
}

} // namespace cm
