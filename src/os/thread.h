/**
 * @file
 * Software-thread context for the OS scheduling model.
 *
 * The evaluation runs an overcommitted system: 64 threads on 16 CPUs,
 * 4 threads statically assigned per CPU (paper Section 5.1). A thread
 * is a schedulable entity; what it *does* when running is owned by
 * the simulation runner (runner/simulation.cpp), which registers a
 * dispatch callback with the scheduler.
 */

#ifndef BFGTS_OS_THREAD_H
#define BFGTS_OS_THREAD_H

#include "sim/types.h"

namespace os {

/** Scheduling state of a thread. */
enum class ThreadState {
    /** On its CPU's ready queue. */
    Ready,
    /** Currently executing on its CPU. */
    Running,
    /** Waiting for an explicit wake() (e.g. ATS wait queue). */
    Blocked,
    /** Completed all of its work. */
    Finished,
};

/** Scheduler-visible bookkeeping for one thread. */
struct ThreadContext {
    sim::ThreadId id = sim::kNoThread;

    /** Static home CPU (threads do not migrate, as in the paper). */
    sim::CpuId cpu = sim::kNoCpu;

    ThreadState state = ThreadState::Ready;

    /**
     * A wake() arrived while the thread was still running toward its
     * block (signal-before-sleep); the next blockCurrent() consumes
     * it and becomes a no-op requeue, as with a futex.
     */
    bool wakePending = false;

    /** Tick of the last dispatch (for quantum accounting). */
    sim::Tick dispatchedAt = 0;

    /** Total kernel-mode cycles charged to this thread. */
    sim::Cycles kernelCycles = 0;

    /** Voluntary yields (pthread_yield). */
    std::uint64_t yields = 0;

    /** Involuntary preemptions at quantum expiry. */
    std::uint64_t preemptions = 0;

    /** Block/wake round trips (e.g. ATS queue waits). */
    std::uint64_t blocks = 0;
};

} // namespace os

#endif // BFGTS_OS_THREAD_H
