/**
 * @file
 * Event-driven OS thread scheduler model.
 *
 * Models the slice of a Linux-like kernel the paper's evaluation
 * depends on: per-CPU round-robin run queues over statically assigned
 * threads, pthread_yield(), blocking/waking (condition-variable style,
 * used by ATS's central wait queue), quantum preemption, and the
 * kernel-mode cycle cost of each of these operations. ATS's poor
 * showing on high-contention benchmarks is precisely this kernel time
 * (paper Fig. 5), so the costs are first-class here.
 *
 * Contract with the runner:
 *  - The runner registers a dispatch callback; the scheduler invokes
 *    it (via the event queue) whenever a thread starts running.
 *  - The running thread's state machine eventually calls exactly one
 *    of yieldCurrent / blockCurrent / finishCurrent, or simply asks
 *    shouldPreempt() at safe points and yields if told to.
 *  - All scheduler operations account their kernel cost to the
 *    affected thread and delay the next dispatch accordingly.
 */

#ifndef BFGTS_OS_SCHEDULER_H
#define BFGTS_OS_SCHEDULER_H

#include <deque>
#include <functional>
#include <vector>

#include "os/thread.h"
#include "sim/event_queue.h"
#include "sim/types.h"

namespace os {

/** Kernel cost model and scheduling parameters. */
struct SchedulerConfig {
    int numCpus = 16;

    /** Round-robin time slice in cycles (~25 us at 2GHz; short,
     *  CFS-granularity-like, so pthread_yield round-trips on an
     *  overcommitted CPU stay in the tens of microseconds). */
    sim::Cycles quantum = 50'000;

    /** Cycles to switch thread contexts on a CPU. */
    sim::Cycles contextSwitchCost = 700;

    /** Kernel cycles for a pthread_yield() call. */
    sim::Cycles yieldCost = 350;

    /** Kernel cycles to block on a futex/condvar. */
    sim::Cycles blockCost = 1'500;

    /** Kernel cycles to wake a blocked thread (on the waker side). */
    sim::Cycles wakeCost = 1'000;
};

/**
 * Per-CPU round-robin scheduler with explicit kernel costs.
 */
class OsScheduler
{
  public:
    /** Callback invoked when a thread is dispatched onto its CPU. */
    using DispatchFn = std::function<void(sim::ThreadId)>;

    OsScheduler(sim::EventQueue &events, const SchedulerConfig &config);

    /** Register a thread on its home CPU. Threads get ids 0..N-1. */
    sim::ThreadId addThread(sim::CpuId cpu);

    /** Set the callback that runs a dispatched thread. */
    void setDispatchFn(DispatchFn fn) { dispatchFn_ = std::move(fn); }

    /** Dispatch the first thread on every CPU (simulation start). */
    void start();

    /**
     * Voluntary yield by the running thread (pthread_yield).
     * The thread goes to the tail of its CPU's ready queue; the next
     * thread is dispatched after the kernel cost.
     */
    void yieldCurrent(sim::ThreadId tid);

    /**
     * Block the running thread until wake(). Used by ATS's central
     * wait queue and any CM that sleeps a thread.
     */
    void blockCurrent(sim::ThreadId tid);

    /**
     * Wake a blocked thread; it becomes ready on its home CPU and is
     * dispatched when the CPU next idles or switches.
     *
     * @param tid   Thread to wake.
     * @param waker Thread paying the wake kernel cost (kNoThread if
     *              woken by the simulation harness itself).
     */
    void wake(sim::ThreadId tid, sim::ThreadId waker = sim::kNoThread);

    /** The running thread has finished all its work. */
    void finishCurrent(sim::ThreadId tid);

    /**
     * True if @p tid has exceeded its quantum and another thread is
     * waiting on its CPU. The runner checks this at safe points and
     * must then call preemptCurrent().
     */
    bool shouldPreempt(sim::ThreadId tid) const;

    /** Involuntary round-robin preemption (charged like a yield). */
    void preemptCurrent(sim::ThreadId tid);

    /** Thread bookkeeping (stats, tests). */
    const ThreadContext &thread(sim::ThreadId tid) const;

    /** Number of registered threads. */
    int numThreads() const { return static_cast<int>(threads_.size()); }

    int numCpus() const { return config_.numCpus; }

    /** Currently running thread on @p cpu (kNoThread if idle). */
    sim::ThreadId runningOn(sim::CpuId cpu) const;

    /** Threads waiting in @p cpu's ready queue (excludes running). */
    int
    readyCount(sim::CpuId cpu) const
    {
        return static_cast<int>(
            cpus_[static_cast<std::size_t>(cpu)].readyQueue.size());
    }

    /** True when every registered thread has finished. */
    bool allFinished() const;

    /** Total cycles each CPU spent with no thread to run. */
    sim::Cycles idleCycles(sim::CpuId cpu) const;

    /**
     * Invariant audit (sim/audit.h):
     *  - os.affinity:   the running thread of a CPU is in state
     *    Running with a matching home CPU, threads never appear on a
     *    foreign CPU's queue, and every thread occupies at most one
     *    place in the system (one run slot or one queue position);
     *  - os.readyqueue: queued threads are Ready; Blocked and
     *    Finished threads are neither queued nor running.
     */
    void auditCheck(sim::AuditEngine &audit, sim::Tick tick) const;

    /**
     * Test hook for the audit mutation selftest: push @p tid onto
     * @p cpu's ready queue unconditionally, duplicating or
     * misplacing it so os.affinity / os.readyqueue must fire. Never
     * call outside tests.
     */
    void
    testPushReady(sim::ThreadId tid, sim::CpuId cpu)
    {
        cpus_[static_cast<std::size_t>(cpu)].readyQueue.push_back(tid);
    }

  private:
    struct CpuState {
        std::deque<sim::ThreadId> readyQueue;
        sim::ThreadId running = sim::kNoThread;
        /** Set while a dispatch event is in flight for this CPU. */
        bool dispatchPending = false;
        sim::Tick idleSince = 0;
        sim::Cycles idleCycles = 0;
        sim::ThreadId lastRun = sim::kNoThread;
    };

    /** Schedule the next dispatch on @p cpu after @p delay cycles. */
    void scheduleDispatch(sim::CpuId cpu, sim::Cycles delay);

    /** Pop and run the next ready thread on @p cpu (event body). */
    void dispatch(sim::CpuId cpu);

    ThreadContext &mutableThread(sim::ThreadId tid);

    sim::EventQueue &events_;
    SchedulerConfig config_;
    DispatchFn dispatchFn_;
    std::vector<ThreadContext> threads_;
    std::vector<CpuState> cpus_;
    int finished_ = 0;
};

} // namespace os

#endif // BFGTS_OS_SCHEDULER_H
