#include "scheduler.h"

#include <string>

#include "sim/audit.h"
#include "sim/logging.h"

namespace os {

OsScheduler::OsScheduler(sim::EventQueue &events,
                         const SchedulerConfig &config)
    : events_(events), config_(config),
      cpus_(static_cast<std::size_t>(config.numCpus))
{
    sim_assert(config.numCpus >= 1);
}

sim::ThreadId
OsScheduler::addThread(sim::CpuId cpu)
{
    sim_assert(cpu >= 0 && cpu < config_.numCpus);
    ThreadContext tc;
    tc.id = static_cast<sim::ThreadId>(threads_.size());
    tc.cpu = cpu;
    tc.state = ThreadState::Ready;
    threads_.push_back(tc);
    cpus_[cpu].readyQueue.push_back(tc.id);
    return tc.id;
}

void
OsScheduler::start()
{
    sim_assert(dispatchFn_);
    for (int cpu = 0; cpu < config_.numCpus; ++cpu)
        scheduleDispatch(cpu, 0);
}

ThreadContext &
OsScheduler::mutableThread(sim::ThreadId tid)
{
    sim_assert(tid >= 0
               && tid < static_cast<sim::ThreadId>(threads_.size()));
    return threads_[static_cast<std::size_t>(tid)];
}

const ThreadContext &
OsScheduler::thread(sim::ThreadId tid) const
{
    sim_assert(tid >= 0
               && tid < static_cast<sim::ThreadId>(threads_.size()));
    return threads_[static_cast<std::size_t>(tid)];
}

sim::ThreadId
OsScheduler::runningOn(sim::CpuId cpu) const
{
    sim_assert(cpu >= 0 && cpu < config_.numCpus);
    return cpus_[cpu].running;
}

bool
OsScheduler::allFinished() const
{
    return finished_ == static_cast<int>(threads_.size());
}

sim::Cycles
OsScheduler::idleCycles(sim::CpuId cpu) const
{
    sim_assert(cpu >= 0 && cpu < config_.numCpus);
    return cpus_[cpu].idleCycles;
}

void
OsScheduler::yieldCurrent(sim::ThreadId tid)
{
    ThreadContext &tc = mutableThread(tid);
    sim_assert(tc.state == ThreadState::Running);
    CpuState &cpu = cpus_[tc.cpu];
    sim_assert(cpu.running == tid);

    tc.state = ThreadState::Ready;
    tc.kernelCycles += config_.yieldCost;
    ++tc.yields;
    cpu.readyQueue.push_back(tid);
    cpu.running = sim::kNoThread;
    scheduleDispatch(tc.cpu, config_.yieldCost);
}

void
OsScheduler::preemptCurrent(sim::ThreadId tid)
{
    ThreadContext &tc = mutableThread(tid);
    sim_assert(tc.state == ThreadState::Running);
    CpuState &cpu = cpus_[tc.cpu];
    sim_assert(cpu.running == tid);

    tc.state = ThreadState::Ready;
    tc.kernelCycles += config_.yieldCost;
    ++tc.preemptions;
    cpu.readyQueue.push_back(tid);
    cpu.running = sim::kNoThread;
    scheduleDispatch(tc.cpu, config_.yieldCost);
}

void
OsScheduler::blockCurrent(sim::ThreadId tid)
{
    ThreadContext &tc = mutableThread(tid);
    sim_assert(tc.state == ThreadState::Running);
    CpuState &cpu = cpus_[tc.cpu];
    sim_assert(cpu.running == tid);

    tc.kernelCycles += config_.blockCost;
    ++tc.blocks;
    cpu.running = sim::kNoThread;
    if (tc.wakePending) {
        // The wake raced ahead of the sleep; stay runnable.
        tc.wakePending = false;
        tc.state = ThreadState::Ready;
        cpu.readyQueue.push_back(tid);
    } else {
        tc.state = ThreadState::Blocked;
    }
    scheduleDispatch(tc.cpu, config_.blockCost);
}

void
OsScheduler::wake(sim::ThreadId tid, sim::ThreadId waker)
{
    ThreadContext &tc = mutableThread(tid);
    if (waker != sim::kNoThread)
        mutableThread(waker).kernelCycles += config_.wakeCost;

    if (tc.state != ThreadState::Blocked) {
        // Signal-before-sleep: remember the wake; blockCurrent()
        // will consume it instead of sleeping.
        sim_assert(tc.state != ThreadState::Finished);
        tc.wakePending = true;
        return;
    }

    tc.state = ThreadState::Ready;
    CpuState &cpu = cpus_[tc.cpu];
    cpu.readyQueue.push_back(tid);
    if (cpu.running == sim::kNoThread && !cpu.dispatchPending)
        scheduleDispatch(tc.cpu, 0);
}

void
OsScheduler::finishCurrent(sim::ThreadId tid)
{
    ThreadContext &tc = mutableThread(tid);
    sim_assert(tc.state == ThreadState::Running);
    CpuState &cpu = cpus_[tc.cpu];
    sim_assert(cpu.running == tid);

    tc.state = ThreadState::Finished;
    ++finished_;
    cpu.running = sim::kNoThread;
    scheduleDispatch(tc.cpu, 0);
}

bool
OsScheduler::shouldPreempt(sim::ThreadId tid) const
{
    const ThreadContext &tc = thread(tid);
    if (tc.state != ThreadState::Running)
        return false;
    const CpuState &cpu = cpus_[tc.cpu];
    if (cpu.readyQueue.empty())
        return false;
    return events_.curTick() - tc.dispatchedAt >= config_.quantum;
}

void
OsScheduler::scheduleDispatch(sim::CpuId cpu_id, sim::Cycles delay)
{
    CpuState &cpu = cpus_[cpu_id];
    if (cpu.dispatchPending)
        return;
    cpu.dispatchPending = true;
    events_.scheduleIn(delay, [this, cpu_id] { dispatch(cpu_id); });
}

void
OsScheduler::dispatch(sim::CpuId cpu_id)
{
    CpuState &cpu = cpus_[cpu_id];
    cpu.dispatchPending = false;
    sim_assert(cpu.running == sim::kNoThread);

    if (cpu.idleSince != 0) {
        cpu.idleCycles += events_.curTick() - cpu.idleSince;
        cpu.idleSince = 0;
    }

    if (cpu.readyQueue.empty()) {
        // Nothing to run; go idle until a wake() re-arms us. Use
        // max(curTick, 1) so idleSince==0 keeps meaning "not idle".
        cpu.idleSince = events_.curTick() ? events_.curTick() : 1;
        return;
    }

    sim::ThreadId tid = cpu.readyQueue.front();
    cpu.readyQueue.pop_front();
    ThreadContext &tc = mutableThread(tid);
    sim_assert(tc.state == ThreadState::Ready);

    sim::Cycles ctx_cost = 0;
    if (cpu.lastRun != tid && cpu.lastRun != sim::kNoThread) {
        ctx_cost = config_.contextSwitchCost;
        tc.kernelCycles += ctx_cost;
    }
    cpu.lastRun = tid;
    cpu.running = tid;
    tc.state = ThreadState::Running;
    tc.dispatchedAt = events_.curTick() + ctx_cost;

    if (ctx_cost == 0) {
        dispatchFn_(tid);
    } else {
        events_.scheduleIn(ctx_cost, [this, tid] { dispatchFn_(tid); });
    }
}

void
OsScheduler::auditCheck(sim::AuditEngine &audit, sim::Tick tick) const
{
    // How many places each thread occupies across run slots and
    // ready queues; a schedulable entity exists at most once.
    std::vector<int> placements(threads_.size(), 0);

    for (std::size_t c = 0; c < cpus_.size(); ++c) {
        const auto cpu_id = static_cast<sim::CpuId>(c);
        const CpuState &cpu = cpus_[c];
        if (cpu.running != sim::kNoThread) {
            const ThreadContext &tc = thread(cpu.running);
            ++placements[static_cast<std::size_t>(cpu.running)];
            audit.check(tc.state == ThreadState::Running,
                        "os.readyqueue",
                        "running thread is not in state Running", tick,
                        cpu_id, cpu.running);
            audit.check(tc.cpu == cpu_id, "os.affinity",
                        "thread runs on a CPU that is not its home",
                        tick, cpu_id, cpu.running);
        }
        for (sim::ThreadId tid : cpu.readyQueue) {
            const ThreadContext &tc = thread(tid);
            ++placements[static_cast<std::size_t>(tid)];
            audit.check(tc.state == ThreadState::Ready,
                        "os.readyqueue",
                        "queued thread is not in state Ready", tick,
                        cpu_id, tid);
            audit.check(tc.cpu == cpu_id, "os.affinity",
                        "thread queued on a foreign CPU's ready queue",
                        tick, cpu_id, tid);
            audit.check(tid != cpu.running, "os.affinity",
                        "running thread also sits in a ready queue",
                        tick, cpu_id, tid);
        }
    }

    for (const ThreadContext &tc : threads_) {
        audit.check(placements[static_cast<std::size_t>(tc.id)] <= 1,
                    "os.affinity",
                    "thread occupies more than one scheduler slot",
                    tick, tc.cpu, tc.id);
        if (tc.state == ThreadState::Blocked
            || tc.state == ThreadState::Finished) {
            audit.check(
                placements[static_cast<std::size_t>(tc.id)] == 0,
                "os.readyqueue",
                "blocked/finished thread is queued or running", tick,
                tc.cpu, tc.id);
        }
    }
}

} // namespace os
