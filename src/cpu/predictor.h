/**
 * @file
 * The BFGTS hardware scheduling accelerator (paper Section 4.1).
 *
 * One TxPredictor per CPU, each holding:
 *  - a CPU Table: the dTxID currently executing on every other CPU,
 *    kept coherent by snooping begin/commit/abort broadcasts on the
 *    interconnect (TLB-shootdown style);
 *  - control registers: confidence threshold, dTxID->sTxID shift,
 *    confidence-table base address, and the dTxID to serialize
 *    against (read back by software via TX_QUERY_PREDICTOR);
 *  - a small (2kB, 16-way) Tx confidence cache that caches the
 *    per-CPU confidence table and *refetches* lines killed by
 *    invalidation snoops, so repeated predictions stay fast even
 *    while other CPUs write the tables.
 *
 * On TX_BEGIN the predictor runs the paper's Example 1: walk the CPU
 * Table, look up confidence[sTxID][sTxID(remote)], and report the
 * first remote transaction whose confidence exceeds the threshold.
 *
 * The predictor does not own the confidence *values* -- those live in
 * the BFGTS software runtime's tables -- it owns the cached *timing*
 * of reading them, so predict() takes a read functor.
 */

#ifndef BFGTS_CPU_PREDICTOR_H
#define BFGTS_CPU_PREDICTOR_H

#include <functional>
#include <memory>
#include <vector>

#include "htm/tx_id.h"
#include "mem/cache.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace sim {
class AuditEngine;
}

namespace cpu {

/** Timing and geometry of one predictor unit. */
struct PredictorConfig {
    /** Tx confidence cache (Table 2: 2kB, 16-way, 1 cycle). */
    mem::CacheConfig confCache{
        .sizeBytes = 2 * 1024,
        .associativity = 16,
        .hitLatency = 1,
        .refetchPolicy = mem::RefetchPolicy::OnInvalidate};

    /** Cycles to trigger the predictor on TX_BEGIN. */
    sim::Cycles triggerCost = 1;

    /** Cycles to scan one CPU Table entry (register read + compare). */
    sim::Cycles perEntryCost = 1;

    /** Cycles to fill a confidence line on a cache miss (from L2). */
    sim::Cycles missLatency = 32;

    /** Bytes per confidence entry in the table layout. */
    std::uint64_t entryBytes = 4;
};

/** Result of a TX_BEGIN prediction. */
struct PredictResult {
    /** True if a likely conflict was found and the tx must serialize. */
    bool conflictPredicted = false;
    /** dTxID to serialize against (valid when conflictPredicted). */
    htm::DTxId waitOn = htm::kNoTx;
    /** Cycles the prediction took. */
    sim::Cycles latency = 0;
    /** Highest confidence value consulted (0..255 table units);
     *  the triggering confidence when conflictPredicted. */
    std::uint32_t maxConfidence = 0;
};

/** Reads confidence[row][col] from the runtime's table. */
using ConfidenceFn =
    std::function<std::uint32_t(htm::STxId row, htm::STxId col)>;

/**
 * The per-CPU predictor units plus the snooping interconnect glue
 * that keeps their CPU Tables coherent.
 */
class PredictorSystem
{
  public:
    /**
     * @param num_cpus      CPUs in the system (one predictor each).
     * @param ids           dTxID encode/decode (provides the shift).
     * @param config        Timing/geometry.
     */
    PredictorSystem(int num_cpus, const htm::TxIdSpace &ids,
                    const PredictorConfig &config = {});

    /**
     * Broadcast: @p cpu started executing @p dtx. All other
     * predictors update their CPU Table entry for @p cpu.
     */
    void broadcastBegin(sim::CpuId cpu, htm::DTxId dtx);

    /** Broadcast: @p cpu committed or aborted its transaction. */
    void broadcastEnd(sim::CpuId cpu);

    /**
     * The software runtime wrote confidence[row][col]; invalidate the
     * line in every predictor's confidence cache (they refetch).
     */
    void onConfidenceWrite(htm::STxId row, htm::STxId col);

    /**
     * Run Example 1 on @p self's predictor.
     *
     * @param self       Predicting CPU.
     * @param stx        Static ID of the transaction about to begin.
     * @param read_conf  Confidence table reader.
     * @param threshold  Serialize when confidence > threshold.
     */
    PredictResult predict(sim::CpuId self, htm::STxId stx,
                          const ConfidenceFn &read_conf,
                          std::uint32_t threshold);

    /** CPU Table entry of @p owner as seen by @p viewer (tests). */
    htm::DTxId cpuTableEntry(sim::CpuId viewer, sim::CpuId owner) const;

    /**
     * Invariant audit (sim/audit.h): the snooped CPU Tables are
     * coherent -- every predictor unit agrees on which dTxID runs on
     * every CPU, and those entries match @p expected (the committer's
     * ground truth, expected[cpu] == kNoTx when that CPU runs no
     * transaction). Reports "predictor.cputable".
     */
    void auditCheck(sim::AuditEngine &audit,
                    const std::vector<htm::DTxId> &expected,
                    sim::Tick tick) const;

    /**
     * Test hook for the audit mutation selftest: corrupt one unit's
     * CPU Table entry so predictor.cputable must fire. Never call
     * outside tests.
     */
    void
    testCorruptCpuTable(sim::CpuId viewer, sim::CpuId owner,
                        htm::DTxId dtx)
    {
        units_[static_cast<std::size_t>(viewer)]
            .cpuTable[static_cast<std::size_t>(owner)] = dtx;
    }

    /** Confidence cache of @p cpu (stats/tests). */
    const mem::Cache &confCache(sim::CpuId cpu) const;

    /** Modeled bytes held per CPU (CPU Table entries plus the
     *  confidence-cache capacity); host-profiler memory gauge. Grows
     *  linearly with CPUs -- the ROADMAP item-2 scaling hazard. */
    std::uint64_t
    memoryFootprintBytes() const
    {
        std::uint64_t bytes = 0;
        for (const Unit &unit : units_) {
            bytes += unit.cpuTable.size() * sizeof(htm::DTxId);
            bytes += config_.confCache.sizeBytes;
        }
        return bytes;
    }

    const sim::Counter &predictions() const { return predictions_; }
    const sim::Counter &conflictsPredicted() const
    {
        return conflictsPredicted_;
    }

    /** Confidence-write snoops broadcast to the caches. */
    const sim::Counter &snoopInvalidations() const
    {
        return snoopInvalidations_;
    }

    /** CPU Table updates from begin/end broadcasts. */
    const sim::Counter &cpuTableUpdates() const
    {
        return cpuTableUpdates_;
    }

  private:
    struct Unit {
        std::vector<htm::DTxId> cpuTable;
        std::unique_ptr<mem::Cache> cache;
    };

    /** Synthetic physical address of confidence[row][col] for @p cpu. */
    mem::Addr confAddr(sim::CpuId cpu, htm::STxId row,
                       htm::STxId col) const;

    int numCpus_;
    const htm::TxIdSpace &ids_;
    PredictorConfig config_;
    std::vector<Unit> units_;
    sim::Counter predictions_;
    sim::Counter conflictsPredicted_;
    sim::Counter snoopInvalidations_;
    sim::Counter cpuTableUpdates_;
};

} // namespace cpu

#endif // BFGTS_CPU_PREDICTOR_H
