#include "predictor.h"

#include <algorithm>
#include <string>

#include "sim/audit.h"
#include "sim/logging.h"

namespace cpu {

PredictorSystem::PredictorSystem(int num_cpus,
                                 const htm::TxIdSpace &ids,
                                 const PredictorConfig &config)
    : numCpus_(num_cpus), ids_(ids), config_(config)
{
    sim_assert(num_cpus >= 1);
    units_.reserve(static_cast<std::size_t>(num_cpus));
    for (int i = 0; i < num_cpus; ++i) {
        Unit unit;
        unit.cpuTable.assign(static_cast<std::size_t>(num_cpus),
                             htm::kNoTx);
        unit.cache = std::make_unique<mem::Cache>(config.confCache);
        units_.push_back(std::move(unit));
    }
}

void
PredictorSystem::broadcastBegin(sim::CpuId cpu, htm::DTxId dtx)
{
    sim_assert(cpu >= 0 && cpu < numCpus_);
    for (Unit &unit : units_)
        unit.cpuTable[static_cast<std::size_t>(cpu)] = dtx;
    cpuTableUpdates_.inc();
}

void
PredictorSystem::broadcastEnd(sim::CpuId cpu)
{
    sim_assert(cpu >= 0 && cpu < numCpus_);
    for (Unit &unit : units_)
        unit.cpuTable[static_cast<std::size_t>(cpu)] = htm::kNoTx;
    cpuTableUpdates_.inc();
}

mem::Addr
PredictorSystem::confAddr(sim::CpuId cpu, htm::STxId row,
                          htm::STxId col) const
{
    // Each CPU's copy of the confidence table lives in its own
    // region; 1MB spacing keeps regions disjoint for any realistic
    // table size (max tables in the paper are ~800 bytes).
    const mem::Addr base = 0x10000000ULL
                         + static_cast<mem::Addr>(cpu) * (1ULL << 20);
    const auto index = static_cast<mem::Addr>(row)
                         * static_cast<mem::Addr>(ids_.numStaticTx())
                     + static_cast<mem::Addr>(col);
    return base + index * config_.entryBytes;
}

void
PredictorSystem::onConfidenceWrite(htm::STxId row, htm::STxId col)
{
    for (int cpu = 0; cpu < numCpus_; ++cpu) {
        units_[static_cast<std::size_t>(cpu)].cache->invalidate(
            confAddr(cpu, row, col));
    }
    snoopInvalidations_.inc();
}

PredictResult
PredictorSystem::predict(sim::CpuId self, htm::STxId stx,
                         const ConfidenceFn &read_conf,
                         std::uint32_t threshold)
{
    sim_assert(self >= 0 && self < numCpus_);
    Unit &unit = units_[static_cast<std::size_t>(self)];
    predictions_.inc();

    PredictResult result;
    result.latency = config_.triggerCost;

    for (int remote = 0; remote < numCpus_; ++remote) {
        if (remote == self)
            continue;
        result.latency += config_.perEntryCost;
        const htm::DTxId running =
            unit.cpuTable[static_cast<std::size_t>(remote)];
        if (running == htm::kNoTx)
            continue;
        // confidx = CPUTable[i] >> shift_value (paper Example 1).
        const htm::STxId confidx = ids_.staticOf(running);
        const bool hit = unit.cache->access(confAddr(self, stx,
                                                     confidx));
        result.latency += hit ? unit.cache->hitLatency()
                              : config_.missLatency;
        const std::uint32_t conf = read_conf(stx, confidx);
        result.maxConfidence = std::max(result.maxConfidence, conf);
        if (conf > threshold) {
            result.conflictPredicted = true;
            result.waitOn = running;
            conflictsPredicted_.inc();
            return result;
        }
    }
    return result;
}

htm::DTxId
PredictorSystem::cpuTableEntry(sim::CpuId viewer, sim::CpuId owner) const
{
    sim_assert(viewer >= 0 && viewer < numCpus_);
    sim_assert(owner >= 0 && owner < numCpus_);
    return units_[static_cast<std::size_t>(viewer)]
        .cpuTable[static_cast<std::size_t>(owner)];
}

void
PredictorSystem::auditCheck(sim::AuditEngine &audit,
                            const std::vector<htm::DTxId> &expected,
                            sim::Tick tick) const
{
    sim_assert(expected.size() == static_cast<std::size_t>(numCpus_));
    for (int owner = 0; owner < numCpus_; ++owner) {
        const htm::DTxId truth =
            expected[static_cast<std::size_t>(owner)];
        for (int viewer = 0; viewer < numCpus_; ++viewer) {
            const htm::DTxId seen =
                units_[static_cast<std::size_t>(viewer)]
                    .cpuTable[static_cast<std::size_t>(owner)];
            audit.check(seen == truth, "predictor.cputable",
                        "CPU Table of cpu "
                            + std::to_string(viewer)
                            + " disagrees with the running dTxID on "
                              "cpu "
                            + std::to_string(owner),
                        tick, static_cast<sim::CpuId>(owner),
                        sim::kNoThread, -1,
                        static_cast<std::int64_t>(truth));
        }
    }
}

const mem::Cache &
PredictorSystem::confCache(sim::CpuId cpu) const
{
    sim_assert(cpu >= 0 && cpu < numCpus_);
    return *units_[static_cast<std::size_t>(cpu)].cache;
}

} // namespace cpu
