/**
 * @file
 * The composed memory hierarchy of Table 2.
 *
 * Per-CPU 64kB 2-way L1s over a shared bus to a 32MB 16-way L2 and
 * 100-cycle main memory. Writes keep the L1s coherent by invalidating
 * remote copies (MSI-style write-invalidate, modeled for timing of
 * subsequent accesses only: the snoop itself rides the existing bus
 * transfer).
 */

#ifndef BFGTS_MEM_MEM_SYSTEM_H
#define BFGTS_MEM_MEM_SYSTEM_H

#include <memory>
#include <vector>

#include "mem/addr.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "sim/types.h"

namespace mem {

/** Latencies and geometry of the full hierarchy (Table 2 defaults). */
struct MemSystemConfig {
    int numCpus = 16;
    CacheConfig l1{.sizeBytes = 64 * 1024,
                   .associativity = 2,
                   .hitLatency = 1,
                   .refetchPolicy = RefetchPolicy::Drop};
    CacheConfig l2{.sizeBytes = 32ULL * 1024 * 1024,
                   .associativity = 16,
                   .hitLatency = 32,
                   .refetchPolicy = RefetchPolicy::Drop};
    sim::Cycles memLatency = 100;
    sim::Cycles busOccupancy = 4;
};

/**
 * Timing model of the cache hierarchy.
 *
 * access() returns the total latency of one load/store issued by a
 * CPU at a given tick, updating cache and bus state.
 */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemConfig &config);

    /**
     * Perform one memory access.
     *
     * @param cpu      Issuing CPU.
     * @param addr     Byte address (line-aligned internally).
     * @param is_write True for stores; invalidates remote L1 copies.
     * @param now      Current tick (for bus arbitration).
     * @return Latency in cycles of this access.
     */
    sim::Cycles access(sim::CpuId cpu, Addr addr, bool is_write,
                       sim::Tick now);

    /** The L1 of @p cpu (stats/tests). */
    const Cache &l1(sim::CpuId cpu) const { return *l1s_[cpu]; }

    /** The shared L2 (stats/tests). */
    const Cache &l2() const { return l2_; }

    /** The shared bus (stats/tests). */
    const Bus &bus() const { return bus_; }

    int numCpus() const { return config_.numCpus; }

    const MemSystemConfig &config() const { return config_; }

  private:
    MemSystemConfig config_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    Cache l2_;
    Bus bus_;
};

} // namespace mem

#endif // BFGTS_MEM_MEM_SYSTEM_H
