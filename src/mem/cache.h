/**
 * @file
 * Set-associative LRU cache timing model.
 *
 * This is a tag-only model: it tracks which lines are resident to
 * decide hit/miss, but holds no data (the simulator is timing-only).
 * It models the three caches in Table 2: 64kB 2-way L1s, the 32MB
 * 16-way L2, and the 2kB 16-way Tx confidence cache of the hardware
 * scheduling accelerator. The confidence cache's special behaviour --
 * "fetch cache lines evicted by an invalidate snoop" -- is supported
 * via RefetchPolicy::OnInvalidate.
 */

#ifndef BFGTS_MEM_CACHE_H
#define BFGTS_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "mem/addr.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace mem {

/** What happens to a line invalidated by a coherence snoop. */
enum class RefetchPolicy {
    /** Line is dropped; the next access misses (normal cache). */
    Drop,
    /**
     * Line is re-fetched in the background and stays resident
     * (the paper's modified Tx confidence cache).
     */
    OnInvalidate,
};

/** Geometry and latency of one cache. */
struct CacheConfig {
    std::uint64_t sizeBytes = 64 * 1024;
    int associativity = 2;
    sim::Cycles hitLatency = 1;
    RefetchPolicy refetchPolicy = RefetchPolicy::Drop;
};

/**
 * A set-associative cache with true-LRU replacement.
 *
 * access() combines lookup and fill: a miss installs the line (the
 * victim is the LRU way). The caller layers miss latency on top.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p addr; install it on a miss.
     *
     * @param addr Any byte address; aligned internally.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** True if the line holding @p addr is resident (no LRU update). */
    bool contains(Addr addr) const;

    /**
     * Coherence invalidation of the line holding @p addr.
     *
     * Under RefetchPolicy::OnInvalidate a resident line stays resident
     * (modeling the background refetch) and the refetch is counted.
     */
    void invalidate(Addr addr);

    /** Drop every line. */
    void flush();

    int numSets() const { return numSets_; }
    int associativity() const { return config_.associativity; }
    sim::Cycles hitLatency() const { return config_.hitLatency; }

    const sim::Counter &hits() const { return hits_; }
    const sim::Counter &misses() const { return misses_; }
    const sim::Counter &invalidations() const { return invalidations_; }
    const sim::Counter &refetches() const { return refetches_; }

  private:
    struct Way {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    int setIndex(Addr line) const;

    CacheConfig config_;
    int numSets_;
    std::vector<Way> ways_; // numSets_ * associativity, row-major
    std::uint64_t useClock_ = 0;

    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter invalidations_;
    sim::Counter refetches_;
};

} // namespace mem

#endif // BFGTS_MEM_CACHE_H
