/**
 * @file
 * Address types and cache-line helpers.
 *
 * Conflict detection in LogTM-style HTMs happens at cache-line
 * granularity, so the whole simulator normalizes addresses to line
 * addresses early. Table 2 fixes the line size at 64 bytes.
 */

#ifndef BFGTS_MEM_ADDR_H
#define BFGTS_MEM_ADDR_H

#include <cstdint>

namespace mem {

/** A physical byte address. */
using Addr = std::uint64_t;

/** Cache line size in bytes (Table 2: 64-byte lines everywhere). */
constexpr std::uint64_t kLineBytes = 64;

/** log2 of the line size. */
constexpr int kLineShift = 6;
static_assert((1ULL << kLineShift) == kLineBytes);

/** The line-aligned address containing @p addr. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~(kLineBytes - 1);
}

/** The line number (address >> log2(line size)). */
constexpr Addr
lineNumber(Addr addr)
{
    return addr >> kLineShift;
}

} // namespace mem

#endif // BFGTS_MEM_ADDR_H
