#include "cache.h"

#include "sim/logging.h"

namespace mem {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    sim_assert(config.associativity >= 1);
    sim_assert(config.sizeBytes >= kLineBytes);
    std::uint64_t lines = config.sizeBytes / kLineBytes;
    sim_assert(lines % config.associativity == 0);
    numSets_ = static_cast<int>(
        lines / static_cast<std::uint64_t>(config.associativity));
    sim_assert(numSets_ >= 1);
    ways_.resize(lines);
}

int
Cache::setIndex(Addr line) const
{
    return static_cast<int>(line % static_cast<Addr>(numSets_));
}

bool
Cache::access(Addr addr)
{
    const Addr line = lineNumber(addr);
    const int set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set)
                       * config_.associativity];
    ++useClock_;
    Way *victim = base;
    for (int w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = useClock_;
            hits_.inc();
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    misses_.inc();
    victim->tag = line;
    victim->valid = true;
    victim->lastUse = useClock_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineNumber(addr);
    const int set = setIndex(line);
    const Way *base = &ways_[static_cast<std::size_t>(set)
                             * config_.associativity];
    for (int w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineNumber(addr);
    const int set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set)
                       * config_.associativity];
    for (int w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            invalidations_.inc();
            if (config_.refetchPolicy == RefetchPolicy::OnInvalidate) {
                // The modified confidence cache fetches the line back
                // as soon as the invalidation lands; it never goes
                // stale-absent. Model: line stays resident.
                refetches_.inc();
            } else {
                way.valid = false;
            }
            return;
        }
    }
}

void
Cache::flush()
{
    for (Way &way : ways_)
        way.valid = false;
}

} // namespace mem
