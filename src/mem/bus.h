/**
 * @file
 * Shared snooping bus occupancy model (Table 2: "Shared bus at 2GHz").
 *
 * The bus serializes L1-miss traffic: each transfer occupies the bus
 * for a fixed number of cycles and later requests queue behind it.
 * The model is a single "free at" horizon, which is exact for a
 * non-pipelined bus with FIFO arbitration.
 */

#ifndef BFGTS_MEM_BUS_H
#define BFGTS_MEM_BUS_H

#include "sim/stats.h"
#include "sim/types.h"

namespace mem {

/** Single shared bus with FIFO arbitration. */
class Bus
{
  public:
    /** @param occupancy Cycles one transfer holds the bus. */
    explicit Bus(sim::Cycles occupancy = 4) : occupancy_(occupancy) {}

    /**
     * Arbitrate for the bus at time @p now.
     *
     * @return Queuing delay before the transfer can start; the
     *         transfer itself then takes occupancy() cycles.
     */
    sim::Cycles
    request(sim::Tick now)
    {
        requests_.inc();
        sim::Cycles wait = 0;
        if (freeAt_ > now) {
            wait = freeAt_ - now;
            queuedCycles_.inc(wait);
        }
        freeAt_ = now + wait + occupancy_;
        return wait;
    }

    sim::Cycles occupancy() const { return occupancy_; }

    /** First tick at which the bus is idle again. */
    sim::Tick freeAt() const { return freeAt_; }

    const sim::Counter &requests() const { return requests_; }
    const sim::Counter &queuedCycles() const { return queuedCycles_; }

  private:
    sim::Cycles occupancy_;
    sim::Tick freeAt_ = 0;
    sim::Counter requests_;
    sim::Counter queuedCycles_;
};

} // namespace mem

#endif // BFGTS_MEM_BUS_H
