#include "mem_system.h"

#include "sim/logging.h"

namespace mem {

MemSystem::MemSystem(const MemSystemConfig &config)
    : config_(config), l2_(config.l2), bus_(config.busOccupancy)
{
    sim_assert(config.numCpus >= 1);
    l1s_.reserve(static_cast<std::size_t>(config.numCpus));
    for (int i = 0; i < config.numCpus; ++i)
        l1s_.push_back(std::make_unique<Cache>(config.l1));
}

sim::Cycles
MemSystem::access(sim::CpuId cpu, Addr addr, bool is_write,
                  sim::Tick now)
{
    sim_assert(cpu >= 0 && cpu < config_.numCpus);
    Cache &l1 = *l1s_[cpu];
    sim::Cycles latency = l1.hitLatency();

    bool l1_hit = l1.access(addr);
    bool need_bus = !l1_hit;

    if (is_write) {
        // Write-invalidate coherence: remote copies are killed. A
        // write to a line shared remotely also needs a bus
        // transaction (upgrade) even when it hits locally.
        for (int other = 0; other < config_.numCpus; ++other) {
            if (other == cpu)
                continue;
            if (l1s_[other]->contains(addr)) {
                l1s_[other]->invalidate(addr);
                need_bus = true;
            }
        }
    }

    if (!l1_hit) {
        sim::Cycles queue = bus_.request(now + latency);
        latency += queue + bus_.occupancy();
        bool l2_hit = l2_.access(addr);
        latency += l2_.hitLatency();
        if (!l2_hit)
            latency += config_.memLatency;
    } else if (need_bus) {
        // Upgrade transaction: arbitration + occupancy, no data read.
        sim::Cycles queue = bus_.request(now + latency);
        latency += queue + bus_.occupancy();
    }

    return latency;
}

} // namespace mem
