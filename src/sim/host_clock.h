/**
 * @file
 * The sanctioned host wall-clock / host-memory shim.
 *
 * The determinism lint bans wall-clock reads everywhere in src/
 * because simulated behavior must be a pure function of (config,
 * seed). Host-performance profiling (sim/profiler.h) still needs the
 * real clock -- wall time is the thing being measured -- so this one
 * header is the single allowed reader (see WALL_CLOCK_POLICY_FILES in
 * tools/lint/determinism_lint.py). Nothing returned from here may
 * ever feed back into model state; callers emit it only through the
 * nondeterministic bfgts-prof-v1 side channel.
 */

#ifndef BFGTS_SIM_HOST_CLOCK_H
#define BFGTS_SIM_HOST_CLOCK_H

#include <chrono>
#include <cstdint>
#include <filesystem>

#include <sys/resource.h>

namespace sim {

/** Monotonic host time in nanoseconds (arbitrary epoch). */
inline std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Current time on the filesystem's file_time_type clock, for
 * comparing against on-disk mtimes (work-stealing lease staleness in
 * runner/farm.cpp). Like hostNowNs(), this never feeds model state --
 * it only gates host-side queue administration.
 */
inline std::filesystem::file_time_type
hostFileTimeNow()
{
    return std::filesystem::file_time_type::clock::now();
}

/** Peak resident-set size of this process in bytes (0 if unknown). */
inline std::uint64_t
hostPeakRssBytes()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ULL;
}

} // namespace sim

#endif // BFGTS_SIM_HOST_CLOCK_H
