#include "json_parse.h"

#include <cstdio>

namespace sim {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &member : members)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

bool
JsonValue::asU64(std::uint64_t *out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false; // sign, fraction, or exponent: not a u64
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false; // overflow
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

namespace {

/** Recursive-descent state over the input buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after root value");
        return true;
    }

  private:
    // Deep enough for any report this repo writes; bounds recursion so
    // adversarial input cannot blow the host stack.
    static constexpr int kMaxDepth = 96;

    bool
    fail(const std::string &what)
    {
        if (error_ && error_->empty()) {
            *error_ = "json parse error at byte "
                      + std::to_string(pos_) + ": " + what;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out->kind = JsonValue::Kind::String;
            return parseString(&out->text);
          case 't':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true", 4);
          case 'f':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false", 5);
          case 'n':
            out->kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->members.emplace_back(std::move(key),
                                      std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->items.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    hexQuad(std::uint32_t *out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<std::size_t>(i)];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        pos_ += 4;
        *out = v;
        return true;
    }

    static void
    appendUtf8(std::string *out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out->push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // opening '"'
        out->clear();
        while (pos_ < text_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out->push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_; // '\\'
            if (pos_ >= text_.size())
                return fail("truncated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out->push_back('"');
                break;
              case '\\':
                out->push_back('\\');
                break;
              case '/':
                out->push_back('/');
                break;
              case 'b':
                out->push_back('\b');
                break;
              case 'f':
                out->push_back('\f');
                break;
              case 'n':
                out->push_back('\n');
                break;
              case 'r':
                out->push_back('\r');
                break;
              case 't':
                out->push_back('\t');
                break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!hexQuad(&cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require a low-surrogate pair.
                    if (pos_ + 2 > text_.size()
                        || text_[pos_] != '\\'
                        || text_[pos_ + 1] != 'u')
                        return fail("lone high surrogate");
                    pos_ += 2;
                    std::uint32_t lo = 0;
                    if (!hexQuad(&lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10)
                         + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const std::size_t int_start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0'
               && text_[pos_] <= '9')
            ++pos_;
        if (pos_ == int_start)
            return fail("invalid value");
        if (text_[int_start] == '0' && pos_ - int_start > 1)
            return fail("leading zero in number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            const std::size_t frac_start = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0'
                   && text_[pos_] <= '9')
                ++pos_;
            if (pos_ == frac_start)
                return fail("missing digits after decimal point");
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            const std::size_t exp_start = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0'
                   && text_[pos_] <= '9')
                ++pos_;
            if (pos_ == exp_start)
                return fail("missing digits in exponent");
        }
        out->kind = JsonValue::Kind::Number;
        out->text = text_.substr(start, pos_ - start);
        return true;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    if (error)
        error->clear();
    *out = JsonValue{};
    Parser parser(text, error);
    return parser.run(out);
}

void
writeJson(JsonWriter &jw, const JsonValue &value)
{
    switch (value.kind) {
      case JsonValue::Kind::Null:
        jw.valueNull();
        break;
      case JsonValue::Kind::Bool:
        jw.value(value.boolean);
        break;
      case JsonValue::Kind::Number:
        jw.valueRaw(value.text);
        break;
      case JsonValue::Kind::String:
        jw.value(value.text);
        break;
      case JsonValue::Kind::Array:
        jw.beginArray();
        for (const JsonValue &item : value.items)
            writeJson(jw, item);
        jw.endArray();
        break;
      case JsonValue::Kind::Object:
        jw.beginObject();
        for (const auto &member : value.members) {
            jw.key(member.first);
            writeJson(jw, member.second);
        }
        jw.endObject();
        break;
    }
}

} // namespace sim
