#include "event_queue.h"

#include <utility>

#include "sim/audit.h"
#include "sim/logging.h"
#include "sim/profiler.h"

namespace sim {

void
EventQueue::heapPush(const HeapNode &node)
{
    heap_.push_back(node);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::heapPop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
        const std::size_t left = 2 * i + 1;
        const std::size_t right = left + 1;
        std::size_t min = i;
        if (left < n && earlier(heap_[left], heap_[min]))
            min = left;
        if (right < n && earlier(heap_[right], heap_[min]))
            min = right;
        if (min == i)
            break;
        std::swap(heap_[i], heap_[min]);
        i = min;
    }
}

std::uint32_t
EventQueue::acquireSlot(EventFn &&fn)
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[slot];
    s.fn = std::move(fn);
    s.live = true;
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    s.fn = nullptr;
    s.live = false;
    ++s.gen; // Invalidates every outstanding handle to this slot.
    freeSlots_.push_back(slot);
}

bool
EventQueue::liveId(EventId id) const
{
    const std::uint32_t slot = slotOf(id);
    if (slot >= slots_.size())
        return false;
    const Slot &s = slots_[slot];
    return s.live && s.gen == static_cast<std::uint32_t>(id >> 32);
}

std::size_t
EventQueue::structBytes() const
{
    return heap_.size() * sizeof(HeapNode)
         + slots_.capacity() * sizeof(Slot)
         + freeSlots_.capacity() * sizeof(std::uint32_t);
}

EventId
EventQueue::schedule(Tick when, EventFn fn)
{
    if (audit_ != nullptr && audit_->shouldCheck()) {
        // Under audit the past-scheduling invariant reports through
        // the engine (so the mutation selftest can observe it in
        // Collect mode) and clamps to now, keeping time monotonic.
        if (!audit_->check(when >= curTick_, "event.monotonic",
                           "event scheduled in the past", curTick_)) {
            when = curTick_;
        }
    } else {
        sim_assert(when >= curTick_);
    }
    const std::uint32_t slot = acquireSlot(std::move(fn));
    const EventId id = encodeId(slot, slots_[slot].gen);
    if (profiler_ != nullptr) {
        ScopedPhase phase(profiler_, Profiler::kEventQueue);
        heapPush(HeapNode{when, nextSeq_++, id});
        profiler_->recordBytes(Profiler::kStructEventQueue,
                               structBytes());
    } else {
        heapPush(HeapNode{when, nextSeq_++, id});
    }
    ++live_;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == kNoEvent || !liveId(id))
        return false;
    // O(1) lazy deletion: bump the slot generation so the heap node
    // is recognized as stale and skipped when it surfaces.
    releaseSlot(slotOf(id));
    if (live_ > 0)
        --live_;
    return true;
}

std::uint64_t
EventQueue::run(Tick max_tick, std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
        if (profiler_ != nullptr)
            profiler_->enter(Profiler::kEventQueue);
        const HeapNode top = heap_.front();
        if (!liveId(top.id)) {
            // Cancelled: the slot generation moved past this node.
            heapPop();
            if (profiler_ != nullptr)
                profiler_->exit();
            continue;
        }
        if (top.when > max_tick) {
            if (profiler_ != nullptr)
                profiler_->exit();
            break;
        }
        if (audit_ != nullptr && audit_->shouldCheck()) {
            // Deterministic order: executed events must be strictly
            // increasing in (tick, insertion seq); equal-tick events
            // fire in the order they were scheduled.
            const bool ordered =
                !anyExecuted_ || top.when > lastExecWhen_
                || (top.when == lastExecWhen_
                    && top.seq > lastExecSeq_);
            audit_->check(ordered, "event.tiebreak",
                          "event executed out of (tick, seq) order",
                          top.when);
            lastExecWhen_ = top.when;
            lastExecSeq_ = top.seq;
            anyExecuted_ = true;
        }
        // Move the callback out and recycle the slot before invoking:
        // the callback may schedule new events (possibly reusing this
        // very slot under a fresh generation).
        EventFn fn = std::move(slots_[slotOf(top.id)].fn);
        releaseSlot(slotOf(top.id));
        heapPop();
        --live_;
        curTick_ = top.when;
        if (profiler_ != nullptr)
            profiler_->exit();
        fn();
        if (profiler_ != nullptr)
            profiler_->onEventExecuted(curTick_);
        if (++executed > max_events) {
            sim_panic("event queue executed more than %llu events; "
                      "likely a livelocked simulation",
                      static_cast<unsigned long long>(max_events));
        }
    }
    return executed;
}

} // namespace sim
