#include "event_queue.h"

#include "sim/audit.h"
#include "sim/logging.h"
#include "sim/profiler.h"

namespace sim {

EventId
EventQueue::schedule(Tick when, EventFn fn)
{
    if (audit_ != nullptr && audit_->shouldCheck()) {
        // Under audit the past-scheduling invariant reports through
        // the engine (so the mutation selftest can observe it in
        // Collect mode) and clamps to now, keeping time monotonic.
        if (!audit_->check(when >= curTick_, "event.monotonic",
                           "event scheduled in the past", curTick_)) {
            when = curTick_;
        }
    } else {
        sim_assert(when >= curTick_);
    }
    EventId id = nextId_++;
    if (profiler_ != nullptr) {
        ScopedPhase phase(profiler_, Profiler::kEventQueue);
        heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
        profiler_->recordBytes(Profiler::kStructEventQueue,
                               heap_.size() * sizeof(Entry));
    } else {
        heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    }
    ++live_;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == kNoEvent)
        return false;
    // Lazy deletion: the entry stays in the heap but is skipped when
    // popped. Track it so size()/empty() stay accurate.
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (inserted && live_ > 0)
        --live_;
    return inserted;
}

std::uint64_t
EventQueue::run(Tick max_tick, std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
        if (profiler_ != nullptr)
            profiler_->enter(Profiler::kEventQueue);
        const Entry &top = heap_.top();
        if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            heap_.pop();
            if (profiler_ != nullptr)
                profiler_->exit();
            continue;
        }
        if (top.when > max_tick) {
            if (profiler_ != nullptr)
                profiler_->exit();
            break;
        }
        // Move the callback out before popping so the entry can be
        // safely destroyed even if the callback schedules new events.
        Entry entry = std::move(const_cast<Entry &>(top));
        heap_.pop();
        --live_;
        if (audit_ != nullptr && audit_->shouldCheck()) {
            // Deterministic order: executed events must be strictly
            // increasing in (tick, insertion seq); equal-tick events
            // fire in the order they were scheduled.
            const bool ordered =
                !anyExecuted_ || entry.when > lastExecWhen_
                || (entry.when == lastExecWhen_
                    && entry.seq > lastExecSeq_);
            audit_->check(ordered, "event.tiebreak",
                          "event executed out of (tick, seq) order",
                          entry.when);
            lastExecWhen_ = entry.when;
            lastExecSeq_ = entry.seq;
            anyExecuted_ = true;
        }
        curTick_ = entry.when;
        if (profiler_ != nullptr)
            profiler_->exit();
        entry.fn();
        if (profiler_ != nullptr)
            profiler_->onEventExecuted(curTick_);
        if (++executed > max_events) {
            sim_panic("event queue executed more than %llu events; "
                      "likely a livelocked simulation",
                      static_cast<unsigned long long>(max_events));
        }
    }
    return executed;
}

} // namespace sim
