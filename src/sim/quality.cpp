#include "quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/json.h"
#include "sim/logging.h"

namespace sim {

namespace {

/** log2 bucket edges shared with Histogram: 0 | 1 | 2-3 | 4-7 ... */
int
log2Bucket(std::uint64_t v, int num_buckets)
{
    if (v < 1)
        return 0;
    const int idx = 1 + std::ilogb(static_cast<double>(v));
    return std::min(idx, num_buckets - 1);
}

double
log2BucketLo(int i)
{
    return i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
}

double
log2BucketHi(int i, int num_buckets)
{
    if (i == num_buckets - 1)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, i);
}

int
linearBucket(double v, double lo, double hi, int num_buckets)
{
    if (v < lo)
        return 0;
    const double width = (hi - lo) / static_cast<double>(num_buckets);
    const double idx = (v - lo) / width;
    if (idx >= static_cast<double>(num_buckets - 1))
        return num_buckets - 1;
    return static_cast<int>(idx);
}

} // namespace

void
QualityRecorder::ErrorStats::sample(double signed_error,
                                    std::uint64_t true_size,
                                    double occupancy)
{
    ++count;
    sumSigned += signed_error;
    const double abs_error = std::abs(signed_error);
    sumAbs += abs_error;
    maxAbs = std::max(maxAbs, abs_error);
    ++buckets[static_cast<std::size_t>(
        linearBucket(signed_error, lo, hi, kBuckets))];
    const auto size_bucket = static_cast<std::size_t>(
        log2Bucket(true_size, kSizeBuckets));
    ++sizeCount[size_bucket];
    sizeSumAbs[size_bucket] += abs_error;
    const auto occ_bucket = static_cast<std::size_t>(
        linearBucket(occupancy, 0.0, 1.0, kOccBuckets));
    ++occCount[occ_bucket];
    occSumAbs[occ_bucket] += abs_error;
}

double
QualityRecorder::ErrorStats::meanSigned() const
{
    if (count == 0)
        return 0.0;
    return sumSigned / static_cast<double>(count);
}

double
QualityRecorder::ErrorStats::meanAbs() const
{
    if (count == 0)
        return 0.0;
    return sumAbs / static_cast<double>(count);
}

double
QualityRecorder::ErrorStats::bucketLo(int i) const
{
    const double width = (hi - lo) / static_cast<double>(kBuckets);
    return lo + width * static_cast<double>(i);
}

double
QualityRecorder::ErrorStats::bucketHi(int i) const
{
    const double width = (hi - lo) / static_cast<double>(kBuckets);
    return i == kBuckets - 1 ? hi
                             : lo + width * static_cast<double>(i + 1);
}

void
QualityRecorder::ErrorStats::writeJson(JsonWriter &jw) const
{
    jw.kv("count", count);
    jw.kv("meanSigned", meanSigned());
    jw.kv("meanAbs", meanAbs());
    jw.kv("maxAbs", maxAbs);
    jw.beginObject("hist");
    jw.kv("count", count);
    jw.kv("mean", meanSigned());
    jw.kv("scale", "linear");
    jw.beginArray("buckets");
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t n = buckets[static_cast<std::size_t>(i)];
        if (n == 0)
            continue;
        jw.beginObject();
        jw.kv("lo", bucketLo(i));
        jw.kv("hi", bucketHi(i));
        jw.kv("n", n);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    jw.beginArray("byTrueSetSize");
    for (int i = 0; i < kSizeBuckets; ++i) {
        const std::uint64_t n =
            sizeCount[static_cast<std::size_t>(i)];
        if (n == 0)
            continue;
        jw.beginObject();
        jw.kv("lo", log2BucketLo(i));
        // +inf in the last bucket's edge serializes as null.
        jw.kv("hi", log2BucketHi(i, kSizeBuckets));
        jw.kv("n", n);
        jw.kv("meanAbs", sizeSumAbs[static_cast<std::size_t>(i)]
                             / static_cast<double>(n));
        jw.endObject();
    }
    jw.endArray();
    jw.beginArray("byOccupancy");
    const double occ_width =
        1.0 / static_cast<double>(kOccBuckets);
    for (int i = 0; i < kOccBuckets; ++i) {
        const std::uint64_t n = occCount[static_cast<std::size_t>(i)];
        if (n == 0)
            continue;
        jw.beginObject();
        jw.kv("lo", occ_width * static_cast<double>(i));
        jw.kv("hi", occ_width * static_cast<double>(i + 1));
        jw.kv("n", n);
        jw.kv("meanAbs", occSumAbs[static_cast<std::size_t>(i)]
                             / static_cast<double>(n));
        jw.endObject();
    }
    jw.endArray();
}

double
QualityRecorder::Data::brierScore() const
{
    if (brierSamples == 0)
        return 0.0;
    return brierSum / static_cast<double>(brierSamples);
}

double
QualityRecorder::Data::calibrationBinLo(int i) const
{
    return static_cast<double>(i)
         / static_cast<double>(kCalibrationBins);
}

double
QualityRecorder::Data::calibrationBinHi(int i) const
{
    return static_cast<double>(i + 1)
         / static_cast<double>(kCalibrationBins);
}

void
QualityRecorder::Data::writeJson(JsonWriter &jw) const
{
    jw.beginObject("estimator");
    jw.kv("samples", estimateSamples);
    jw.beginObject("eq2_set_size");
    eq2SetSize.writeJson(jw);
    jw.endObject();
    jw.beginObject("eq3_intersection");
    eq3Intersection.writeJson(jw);
    jw.endObject();
    jw.beginObject("eq4_similarity");
    eq4Similarity.writeJson(jw);
    jw.endObject();
    jw.endObject();

    jw.beginObject("calibration");
    jw.kv("samples", brierSamples);
    jw.kv("bins", static_cast<std::uint64_t>(kCalibrationBins));
    jw.kv("brierScore", brierScore());
    jw.beginArray("reliability");
    for (int i = 0; i < kCalibrationBins; ++i) {
        const CalibrationBin &bin =
            calibration[static_cast<std::size_t>(i)];
        jw.beginObject();
        jw.kv("lo", calibrationBinLo(i));
        jw.kv("hi", calibrationBinHi(i));
        jw.kv("decisions", bin.decisions);
        jw.kv("stalls", bin.stalls);
        jw.kv("conflicts", bin.conflicts);
        jw.kv("meanConfidence",
              bin.decisions == 0
                  ? 0.0
                  : bin.sumConfidence
                        / static_cast<double>(bin.decisions));
        jw.kv("conflictRate",
              bin.decisions == 0
                  ? 0.0
                  : static_cast<double>(bin.conflicts)
                        / static_cast<double>(bin.decisions));
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    jw.beginObject("ledger");
    jw.kv("maxPairs", static_cast<std::uint64_t>(kMaxPairs));
    jw.kv("droppedEvents", droppedEvents);
    jw.beginObject("totals");
    jw.kv("truePositives", truePositives);
    jw.kv("falsePositives", falsePositives);
    jw.kv("falseNegatives", falseNegatives);
    jw.kv("trueNegatives", trueNegatives);
    jw.kv("predictedAborts", predictedAborts);
    jw.kv("wastedStallCycles", wastedStallCycles);
    jw.kv("savedAbortCycles", savedAbortCycles);
    jw.kv("fnWastedCycles", fnWastedCycles);
    jw.kv("predictedAbortWastedCycles", predictedAbortWastedCycles);
    jw.endObject();
    jw.beginArray("pairs");
    for (const auto &[key, stats] : pairs) {
        jw.beginObject();
        jw.kv("enemy", key.first);
        jw.kv("victim", key.second);
        jw.kv("truePositives", stats.truePositives);
        jw.kv("falsePositives", stats.falsePositives);
        jw.kv("falseNegatives", stats.falseNegatives);
        jw.kv("predictedAborts", stats.predictedAborts);
        jw.kv("wastedStallCycles", stats.wastedStallCycles);
        jw.kv("savedAbortCycles", stats.savedAbortCycles);
        jw.kv("fnWastedCycles", stats.fnWastedCycles);
        jw.kv("predictedAbortWastedCycles",
              stats.predictedAbortWastedCycles);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
}

void
QualityRecorder::recordEstimate(std::int64_t key,
                                const std::vector<mem::Addr> &rw_lines,
                                double est_size, double est_inter,
                                double est_sim, double occupancy,
                                double avg_size)
{
    ++data_.estimateSamples;
    const auto true_size =
        static_cast<std::uint64_t>(rw_lines.size());
    data_.eq2SetSize.sample(
        est_size - static_cast<double>(true_size), true_size,
        occupancy);

    const auto prev = prevSets_.find(key);
    if (prev == prevSets_.end())
        return;

    // Both sets arrive sorted and unique (the runner canonicalizes
    // rw_lines before the CM sees them), so the exact intersection
    // is a linear two-pointer walk.
    std::uint64_t exact_inter = 0;
    auto a = rw_lines.begin();
    auto b = prev->second.begin();
    while (a != rw_lines.end() && b != prev->second.end()) {
        if (*a < *b) {
            ++a;
        } else if (*b < *a) {
            ++b;
        } else {
            ++exact_inter;
            ++a;
            ++b;
        }
    }
    data_.eq3Intersection.sample(
        est_inter - static_cast<double>(exact_inter), true_size,
        occupancy);

    const double exact_sim =
        avg_size <= 0.0
            ? 0.0
            : std::clamp(static_cast<double>(exact_inter) / avg_size,
                         0.0, 1.0);
    data_.eq4Similarity.sample(est_sim - exact_sim, true_size,
                               occupancy);
}

void
QualityRecorder::noteSet(std::int64_t key,
                         const std::vector<mem::Addr> &rw_lines)
{
    prevSets_[key] = rw_lines;
}

void
QualityRecorder::recordOutcome(Tick tick, std::int64_t enemy_stx,
                               std::int64_t victim_stx,
                               double confidence, Outcome outcome,
                               Cycles cycles)
{
    const bool stalled = outcome == Outcome::TruePositive
                      || outcome == Outcome::FalsePositive
                      || outcome == Outcome::PredictedAbort;
    const bool conflict = outcome == Outcome::TruePositive
                       || outcome == Outcome::FalseNegative
                       || outcome == Outcome::PredictedAbort;

    if (confidence >= 0.0) {
        const auto bin = static_cast<std::size_t>(linearBucket(
            confidence, 0.0, 1.0, Data::kCalibrationBins));
        CalibrationBin &b = data_.calibration[bin];
        ++b.decisions;
        if (stalled)
            ++b.stalls;
        if (conflict)
            ++b.conflicts;
        b.sumConfidence += confidence;
        const double err = confidence - (conflict ? 1.0 : 0.0);
        data_.brierSum += err * err;
        ++data_.brierSamples;
    }

    PairStats *slot = nullptr;
    if (enemy_stx >= 0) {
        const std::pair<std::int64_t, std::int64_t> key{enemy_stx,
                                                        victim_stx};
        const auto it = data_.pairs.find(key);
        if (it != data_.pairs.end()) {
            slot = &it->second;
        } else if (data_.pairs.size() < Data::kMaxPairs) {
            slot = &data_.pairs[key];
        } else {
            ++data_.droppedEvents;
        }
    }

    switch (outcome) {
    case Outcome::TruePositive:
        ++data_.truePositives;
        data_.savedAbortCycles += cycles;
        if (slot != nullptr) {
            ++slot->truePositives;
            slot->savedAbortCycles += cycles;
        }
        break;
    case Outcome::FalsePositive:
        ++data_.falsePositives;
        data_.wastedStallCycles += cycles;
        if (slot != nullptr) {
            ++slot->falsePositives;
            slot->wastedStallCycles += cycles;
        }
        break;
    case Outcome::FalseNegative:
        ++data_.falseNegatives;
        data_.fnWastedCycles += cycles;
        if (slot != nullptr) {
            ++slot->falseNegatives;
            slot->fnWastedCycles += cycles;
        }
        break;
    case Outcome::PredictedAbort:
        ++data_.predictedAborts;
        data_.predictedAbortWastedCycles += cycles;
        if (slot != nullptr) {
            ++slot->predictedAborts;
            slot->predictedAbortWastedCycles += cycles;
        }
        break;
    case Outcome::TrueNegative:
        ++data_.trueNegatives;
        break;
    }

    if (jsonl_ != nullptr) {
        JsonWriter jw(*jsonl_, /*indent=*/0);
        jw.beginObject();
        jw.kv("tick", static_cast<std::uint64_t>(tick));
        jw.kv("enemy", enemy_stx);
        jw.kv("victim", victim_stx);
        jw.kv("confidence", confidence);
        jw.kv("outcome", qualityOutcomeName(outcome));
        jw.kv("stalled", stalled);
        jw.kv("conflict", conflict);
        jw.kv("cycles", static_cast<std::uint64_t>(cycles));
        jw.endObject();
        *jsonl_ << '\n';
    }
}

const char *
qualityOutcomeName(QualityRecorder::Outcome outcome)
{
    switch (outcome) {
    case QualityRecorder::Outcome::TruePositive:
        return "tp";
    case QualityRecorder::Outcome::FalsePositive:
        return "fp";
    case QualityRecorder::Outcome::FalseNegative:
        return "fn";
    case QualityRecorder::Outcome::PredictedAbort:
        return "predicted_abort";
    case QualityRecorder::Outcome::TrueNegative:
        return "tn";
    }
    return "?";
}

void
writeQualReport(std::ostream &os, const std::string &name,
                const QualityRecorder::Data &data)
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "bfgts-qual-v1");
    jw.kv("kind", "run");
    jw.kv("name", name);
    jw.kv("git", buildGitDescribe());
    jw.beginObject("run");
    data.writeJson(jw);
    jw.endObject();
    jw.endObject();
    os << "\n";
}

} // namespace sim
