#include "audit.h"

#include <cstdlib>

#include "sim/logging.h"
#include "sim/trace.h"

namespace sim {

bool
AuditEngine::fired(const std::string &check) const
{
    for (const AuditViolation &violation : log_) {
        if (violation.check == check)
            return true;
    }
    return false;
}

void
AuditEngine::report(AuditViolation violation)
{
    ++violationCount_;
    if (sink_ != nullptr) {
        TraceRecord record;
        record.tick = violation.tick;
        record.cpu = violation.cpu;
        record.thread = violation.thread;
        record.sTx = violation.sTx;
        record.dTx = violation.dTx;
        record.category = TraceCategory::Audit;
        record.event = "violation";
        record.details.emplace_back("check", violation.check);
        record.details.emplace_back("msg", violation.message);
        sink_->emit(record);
    }
    if (mode_ == Mode::Panic) {
        sim_panic("audit violation [%s] at tick %llu "
                  "(cpu=%d thread=%d sTx=%lld dTx=%lld): %s",
                  violation.check.c_str(),
                  static_cast<unsigned long long>(violation.tick),
                  violation.cpu, violation.thread,
                  static_cast<long long>(violation.sTx),
                  static_cast<long long>(violation.dTx),
                  violation.message.c_str());
    }
    log_.push_back(std::move(violation));
}

bool
auditEnvEnabled()
{
    // lint:allow(wall-clock): getenv is read once at startup to
    // *enable* checking; the value never feeds simulated behavior
    // (audited runs are asserted byte-identical to unaudited ones).
    static const bool enabled = [] {
        const char *env = std::getenv("BFGTS_AUDIT");
        return env != nullptr && env[0] == '1';
    }();
    return enabled;
}

} // namespace sim
