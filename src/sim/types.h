/**
 * @file
 * Fundamental simulation types: ticks, cycles, identifiers.
 *
 * The simulator models a single clock domain (all CPUs share one 2GHz
 * clock, as in the paper's Table 2), so a Tick and a Cycle are the same
 * unit. Both names are kept for readability: Tick is an absolute point
 * on the simulated timeline, Cycles is a duration.
 */

#ifndef BFGTS_SIM_TYPES_H
#define BFGTS_SIM_TYPES_H

#include <cstdint>
#include <limits>

namespace sim {

/** Absolute simulated time, in cycles of the global clock. */
using Tick = std::uint64_t;

/** A duration, in cycles of the global clock. */
using Cycles = std::uint64_t;

/** Sentinel for "never" / "no deadline". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Identifier of a simulated CPU (core). */
using CpuId = int;

/** Identifier of a simulated software thread. */
using ThreadId = int;

/** Sentinel for "no CPU". */
constexpr CpuId kNoCpu = -1;

/** Sentinel for "no thread". */
constexpr ThreadId kNoThread = -1;

} // namespace sim

#endif // BFGTS_SIM_TYPES_H
