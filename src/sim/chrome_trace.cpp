#include "chrome_trace.h"

#include <cstring>

#include "sim/json.h"

namespace sim {

namespace {

/** Shared event prefix: name, phase, timestamp, track. */
void
eventHead(JsonWriter &jw, const std::string &name, const char *phase,
          Tick ts, int tid)
{
    jw.kv("name", name);
    jw.kv("ph", phase);
    jw.kv("ts", static_cast<std::uint64_t>(ts));
    jw.kv("pid", 0);
    jw.kv("tid", tid);
}

/** Copy a record's details into the open "args" object. */
void
detailArgs(JsonWriter &jw, const TraceRecord &record)
{
    jw.kv("thread", static_cast<int>(record.thread));
    jw.kv("sTx", record.sTx);
    jw.kv("dTx", record.dTx);
    for (const auto &kv : record.details)
        jw.kv(kv.first, kv.second);
}

} // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"traceEvents\":[\n";
    {
        JsonWriter jw(os_, /*indent=*/0);
        jw.beginObject();
        jw.kv("name", "process_name");
        jw.kv("ph", "M");
        jw.kv("pid", 0);
        jw.beginObject("args");
        jw.kv("name", "bfgts-sim");
        jw.endObject();
        jw.endObject();
    }
    first_ = false;
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void
ChromeTraceSink::close()
{
    if (closed_)
        return;
    closed_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

ChromeTraceSink::CpuTrack &
ChromeTraceSink::track(CpuId cpu)
{
    const auto index =
        static_cast<std::size_t>(cpu >= 0 ? cpu : 0);
    if (index >= tracks_.size())
        tracks_.resize(index + 1);
    CpuTrack &t = tracks_[index];
    if (!t.named) {
        t.named = true;
        nameTrack(static_cast<CpuId>(index));
    }
    return t;
}

void
ChromeTraceSink::sep()
{
    if (!first_)
        os_ << ",\n";
    first_ = false;
}

void
ChromeTraceSink::nameTrack(CpuId cpu)
{
    sep();
    JsonWriter jw(os_, /*indent=*/0);
    jw.beginObject();
    jw.kv("name", "thread_name");
    jw.kv("ph", "M");
    jw.kv("pid", 0);
    jw.kv("tid", static_cast<int>(cpu));
    jw.beginObject("args");
    jw.kv("name", "CPU " + std::to_string(cpu));
    jw.endObject();
    jw.endObject();
}

void
ChromeTraceSink::counter(Tick tick, const char *name, double value)
{
    if (closed_)
        return;
    sep();
    JsonWriter jw(os_, /*indent=*/0);
    jw.beginObject();
    eventHead(jw, name, "C", tick, 0);
    jw.beginObject("args");
    jw.kv("value", value);
    jw.endObject();
    jw.endObject();
}

void
ChromeTraceSink::beginSlice(const TraceRecord &record, Slice kind,
                            std::string name)
{
    CpuTrack &t = track(record.cpu);
    sep();
    JsonWriter jw(os_, /*indent=*/0);
    jw.beginObject();
    eventHead(jw, name, "B", record.tick,
              static_cast<int>(record.cpu));
    jw.beginObject("args");
    detailArgs(jw, record);
    jw.endObject();
    jw.endObject();
    t.open = kind;
    t.openName = std::move(name);
}

void
ChromeTraceSink::endSlice(CpuId cpu, Tick tick,
                          const TraceRecord *record,
                          const char *outcome)
{
    CpuTrack &t = track(cpu);
    if (t.open == Slice::None)
        return;
    sep();
    JsonWriter jw(os_, /*indent=*/0);
    jw.beginObject();
    eventHead(jw, t.openName, "E", tick, static_cast<int>(cpu));
    if (record != nullptr) {
        jw.beginObject("args");
        if (outcome != nullptr)
            jw.kv("outcome", outcome);
        detailArgs(jw, *record);
        jw.endObject();
    }
    jw.endObject();
    t.open = Slice::None;
    t.openName.clear();
}

void
ChromeTraceSink::closeOpen(CpuId cpu, Tick tick)
{
    endSlice(cpu, tick);
}

void
ChromeTraceSink::instant(const TraceRecord &record)
{
    track(record.cpu);
    sep();
    JsonWriter jw(os_, /*indent=*/0);
    jw.beginObject();
    eventHead(jw, record.event, "i", record.tick,
              static_cast<int>(record.cpu));
    jw.kv("s", "t");
    jw.beginObject("args");
    detailArgs(jw, record);
    jw.endObject();
    jw.endObject();
}

void
ChromeTraceSink::write(const TraceRecord &record)
{
    if (closed_)
        return;
    const char *event = record.event;
    const CpuId cpu = record.cpu;

    if (std::strcmp(event, "start") == 0) {
        closeOpen(cpu, record.tick);
        beginSlice(record, Slice::Run,
                   "run s" + std::to_string(record.sTx));
        return;
    }
    if (std::strcmp(event, "commit") == 0) {
        if (track(cpu).open == Slice::Run)
            endSlice(cpu, record.tick, &record, "commit");
        else
            instant(record);
        return;
    }
    if (std::strcmp(event, "abort") == 0) {
        if (track(cpu).open == Slice::Run)
            endSlice(cpu, record.tick, &record, "abort");
        else
            instant(record);
        // Rollback + backoff + re-begin shows as a retry window.
        beginSlice(record, Slice::Retry,
                   "retry s" + std::to_string(record.sTx));
        return;
    }
    if (std::strcmp(event, "suspend-stall") == 0) {
        closeOpen(cpu, record.tick);
        beginSlice(record, Slice::Stall,
                   "stall s" + std::to_string(record.sTx));
        return;
    }
    const bool stall_end = std::strcmp(event, "stall-end") == 0;
    if (stall_end || std::strcmp(event, "stall-timeout") == 0) {
        if (track(cpu).open == Slice::Stall) {
            endSlice(cpu, record.tick, &record,
                     stall_end ? "released" : "timeout");
        } else {
            instant(record);
        }
        return;
    }
    if (std::strcmp(event, "suspend-yield") == 0
        || std::strcmp(event, "block") == 0
        || std::strcmp(event, "preempt") == 0) {
        // The thread leaves its CPU; whatever window was open there
        // (a retry backoff or a stall) ends with it.
        closeOpen(cpu, record.tick);
        instant(record);
        return;
    }
    // predict, conflict, rollback, and anything future.
    instant(record);
}

} // namespace sim
