/**
 * @file
 * Host-performance profiler: wall-time attribution per subsystem,
 * event-loop throughput, and memory accounting.
 *
 * Everything here measures the *host* (wall nanoseconds, RSS), never
 * the simulated machine, so none of it may influence model behavior.
 * The profiler hangs off SimConfig like the trace sink and sampler:
 * a borrowed pointer that is null in normal runs, in which case every
 * hook collapses to one branch. Results leave through the separate
 * nondeterministic `bfgts-prof-v1` report (docs/observability.md) --
 * they are excluded from the byte-identity gates and from the sweep
 * cache key by construction.
 *
 * Attribution is self-time: a phase stack charges elapsed wall time
 * to the innermost open phase, so nested scopes (Bloom ops inside the
 * CM commit path) stay disjoint and the per-phase shares plus the
 * synthesized "other" bucket sum to 100% of the run loop.
 *
 * The clock is injectable (a plain function pointer) so unit tests
 * and the overhead gate can run attribution against a scripted fake
 * clock; the default reads sim::hostNowNs() from the sanctioned
 * sim/host_clock.h shim.
 */

#ifndef BFGTS_SIM_PROFILER_H
#define BFGTS_SIM_PROFILER_H

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace sim {

class ChromeTraceSink;
class JsonWriter;

class Profiler
{
  public:
    /** Subsystem wall-time buckets (self-time; see file comment). */
    enum Phase : int {
        /** Event-queue heap pop/push and dispatch bookkeeping. */
        kEventQueue = 0,
        /** Workload generation (next descriptor). */
        kWorkload,
        /** CM begin-time decisions (onTxBegin/arbitrate/conflict). */
        kCmDecide,
        /** CM commit/abort retire paths. */
        kCmCommit,
        /** Bloom signature build/insert/similarity (inside commit). */
        kBloom,
        /** Hardware predictor: predict() + snoop broadcasts. */
        kPredictor,
        /** OS scheduler model. */
        kOsSched,
        /** Memory-system access path. */
        kMem,
        kNumPhases
    };

    /** Per-structure byte gauges (high-water; ROADMAP item 2). */
    enum Structure : int {
        kConfidenceTables = 0,
        kBloomSignatures,
        kPredictorCaches,
        kStructEventQueue,
        kNumStructures
    };

    static const char *phaseName(int phase);
    static const char *structureName(int structure);

    /** Host-clock reader, nanoseconds. Injectable for tests. */
    using ClockFn = std::uint64_t (*)();

    /** Everything one profiled run measured (plain value; the sweep
     *  engine aggregates these across cells). */
    struct Data {
        std::uint64_t wallNs = 0;
        std::uint64_t events = 0;
        std::uint64_t ticks = 0;
        std::uint64_t peakRssBytes = 0;
        std::array<std::uint64_t, kNumPhases> phaseNs{};
        std::array<std::uint64_t, kNumPhases> phaseCalls{};
        std::array<std::uint64_t, kNumStructures> structBytes{};

        double eventsPerSec() const;
        double wallNsPerCycle() const;
        /** Run-loop time not attributed to any phase (>= 0). */
        std::uint64_t otherNs() const;
        /** phase ns / run-loop ns; pass kNumPhases for "other". */
        double share(int phase) const;

        /** Write this run's profile fields into the writer's current
         *  object (throughput, phases array, memory array). */
        void writeJson(JsonWriter &jw) const;
    };

    /** @param clock  Nanosecond clock; null means sim::hostNowNs. */
    explicit Profiler(ClockFn clock = nullptr);

    /** Stamp the start of the simulation run loop. */
    void beginRun();

    /** Stamp the end of the run loop and record throughput inputs:
     *  events executed by the queue and the final simulated tick.
     *  Also samples peak RSS. */
    void endRun(std::uint64_t events_executed, Tick final_tick);

    /** Open @p phase: elapsed time since the last stamp is charged
     *  to the enclosing phase, then @p phase becomes innermost. */
    void enter(Phase phase);

    /** Close the innermost phase, charging it the elapsed time. */
    void exit();

    /** Raise the high-water byte gauge for @p structure. */
    void
    recordBytes(Structure structure, std::uint64_t bytes)
    {
        auto &slot = data_.structBytes[static_cast<std::size_t>(structure)];
        if (bytes > slot)
            slot = bytes;
    }

    /** Re-sample getrusage peak RSS (monotonic high-water). */
    void samplePeakRss();

    /**
     * Render host phase totals as Perfetto counter tracks on the
     * model timeline: every kCounterSampleEvents executed events the
     * event queue calls onEventExecuted() and the cumulative per-
     * phase milliseconds plus RSS land at the current simulated tick,
     * so model activity and host hotspots share one view.
     */
    void setCounterSink(ChromeTraceSink *sink) { counterSink_ = sink; }

    /** Event-queue hook: one event just executed at @p now. */
    void onEventExecuted(Tick now);

    /** Snapshot of everything measured so far. */
    const Data &data() const { return data_; }

    /** Full `bfgts-prof-v1` document of kind "run" for one run. */
    void writeReport(std::ostream &os, const std::string &name) const;

    static constexpr std::uint64_t kCounterSampleEvents = 4096;

  private:
    static constexpr int kMaxDepth = 32;

    ClockFn clock_;
    Data data_;
    std::uint64_t runStart_ = 0;
    std::uint64_t lastStamp_ = 0;
    int depth_ = 0;
    std::array<Phase, kMaxDepth> stack_{};
    std::uint64_t eventsSeen_ = 0;
    ChromeTraceSink *counterSink_ = nullptr;
};

/** RAII phase scope; every hook site null-checks the profiler, so
 *  unprofiled runs pay one predictable branch per site. */
class ScopedPhase
{
  public:
    ScopedPhase(Profiler *profiler, Profiler::Phase phase)
        : profiler_(profiler)
    {
        if (profiler_ != nullptr)
            profiler_->enter(phase);
    }

    ~ScopedPhase()
    {
        if (profiler_ != nullptr)
            profiler_->exit();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Profiler *profiler_;
};

/** Write one profile's fields as a `bfgts-prof-v1` kind-"run"
 *  document (envelope + Data::writeJson body). */
void writeProfReport(std::ostream &os, const std::string &name,
                     const Profiler::Data &data);

/** min / median / max of @p values (median averages the middle pair
 *  for even counts). Used by the sweep profile aggregation. */
struct MinMedMax {
    double min = 0.0;
    double median = 0.0;
    double max = 0.0;
};
MinMedMax minMedianMax(std::vector<double> values);

// ---- process-global host accounting ---------------------------------
// Every Simulation::run() adds one sample (two host-clock reads per
// *run*, not per event), so bench reports can stamp wall_ns_per_cycle
// and events_per_sec into every row without per-bench wiring. Totals
// are atomics: sweep cells add from worker threads.

struct HostRunTotals {
    std::uint64_t wallNs = 0;
    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    std::uint64_t runs = 0;

    double eventsPerSec() const;
    double wallNsPerCycle() const;
};

void addHostRunSample(std::uint64_t wall_ns, std::uint64_t events,
                      std::uint64_t ticks);
HostRunTotals hostRunTotals();

} // namespace sim

#endif // BFGTS_SIM_PROFILER_H
