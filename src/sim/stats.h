/**
 * @file
 * Lightweight statistics framework.
 *
 * Models a small slice of gem5's stats package: named statistics are
 * registered into a StatGroup and can be dumped as a formatted table.
 * Three kinds cover everything the simulator needs:
 *  - Counter: monotonically increasing event count.
 *  - Accumulator: running sum/min/max/mean/stddev of samples.
 *  - Formula-style derived values are computed at dump time by callers.
 */

#ifndef BFGTS_SIM_STATS_H
#define BFGTS_SIM_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace sim {

/** A named, monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running sample statistics: count, sum, min, max, mean, stddev. */
class Accumulator
{
  public:
    Accumulator() = default;

    /** Record one sample. */
    void
    sample(double x)
    {
        ++count_;
        sum_ += x;
        sumSq_ += x * x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample mean (0 if empty). */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Population standard deviation (0 if fewer than 2 samples). */
    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        double n = static_cast<double>(count_);
        double var = (sumSq_ - sum_ * sum_ / n) / n;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /** Reset to empty. */
    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A named collection of statistics for dumping.
 *
 * Values are captured at registration via pointers; dump() reads the
 * live values, so a group can be dumped repeatedly during a run.
 */
class StatGroup
{
  public:
    /** @param name Prefix printed before every stat in this group. */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. */
    void
    addCounter(const std::string &stat_name, const Counter *c)
    {
        counters_.push_back({stat_name, c});
    }

    /** Register an accumulator under @p stat_name. */
    void
    addAccumulator(const std::string &stat_name, const Accumulator *a)
    {
        accumulators_.push_back({stat_name, a});
    }

    /** Write all registered stats to @p os as "group.stat value". */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const Accumulator *>>
        accumulators_;
};

/**
 * Fixed-width text table writer used by benches to print paper-style
 * tables (rows = benchmarks, columns = contention managers, etc.).
 */
class TextTable
{
  public:
    /** @param headers Column headers; first column is the row label. */
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    /** Append one row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimal places. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio as a percentage string, e.g. "73.5%". */
std::string fmtPercent(double ratio, int digits = 1);

} // namespace sim

#endif // BFGTS_SIM_STATS_H
