/**
 * @file
 * Lightweight statistics framework.
 *
 * Models a small slice of gem5's stats package: named statistics are
 * registered into a StatGroup and can be dumped as a formatted table
 * or as JSON (docs/observability.md documents both formats). Four
 * kinds cover everything the simulator needs:
 *  - Counter: monotonically increasing event count.
 *  - Accumulator: running sum/min/max/mean/stddev of samples
 *    (Welford's online algorithm, stable for large means).
 *  - Histogram: log2- or linear-bucketed sample distribution.
 *  - Scalar: a derived value computed by the caller at dump time.
 */

#ifndef BFGTS_SIM_STATS_H
#define BFGTS_SIM_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace sim {

class JsonWriter;

/** A named, monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running sample statistics: count, sum, min, max, mean, stddev.
 *
 * Variance uses Welford's online algorithm rather than the naive
 * sum-of-squares form: cycle samples routinely have means around 1e9
 * with single-digit spread, where (sumSq - sum^2/n) cancels
 * catastrophically in doubles and reports 0 (or garbage) stddev.
 */
class Accumulator
{
  public:
    Accumulator() = default;

    /** Record one sample. */
    void
    sample(double x)
    {
        ++count_;
        sum_ += x;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample mean (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population standard deviation (0 if fewer than 2 samples). */
    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        const double var = m2_ / static_cast<double>(count_);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /** Reset to empty. */
    void
    reset()
    {
        count_ = 0;
        sum_ = mean_ = m2_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Bucketed sample distribution.
 *
 * Two bucketing schemes:
 *  - Log2 (cycle counts, footprints): bucket 0 holds samples < 1,
 *    bucket i holds [2^(i-1), 2^i), and the last bucket absorbs
 *    everything at or above its lower edge.
 *  - Linear (similarities, rates): @p numBuckets equal-width buckets
 *    spanning [lo, hi); samples below lo land in bucket 0, samples at
 *    or above hi in the last bucket.
 *
 * Bucket edges are fixed at construction, so two histograms built
 * from the same config and fed the same samples are bit-identical.
 */
class Histogram
{
  public:
    enum class Scale { Log2, Linear };

    /** Default: log2 buckets covering [0, 2^32) plus overflow. */
    Histogram() : Histogram(Scale::Log2, 0.0, 0.0, 34) {}

    /** Log2 histogram with @p num_buckets buckets (>= 2). */
    static Histogram
    makeLog2(int num_buckets = 34)
    {
        return Histogram(Scale::Log2, 0.0, 0.0, num_buckets);
    }

    /** Linear histogram over [lo, hi) with @p num_buckets buckets. */
    static Histogram
    makeLinear(double lo, double hi, int num_buckets)
    {
        return Histogram(Scale::Linear, lo, hi, num_buckets);
    }

    /** Record @p n occurrences of value @p v. */
    void
    sample(double v, std::uint64_t n = 1)
    {
        count_ += n;
        sum_ += v * static_cast<double>(n);
        counts_[static_cast<std::size_t>(bucketOf(v))] += n;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Sample mean (0 if empty). */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    Scale scale() const { return scale_; }
    int numBuckets() const { return static_cast<int>(counts_.size()); }

    std::uint64_t
    bucketCount(int i) const
    {
        return counts_[static_cast<std::size_t>(i)];
    }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(int i) const;

    /** Exclusive upper edge of bucket @p i (+inf for the last). */
    double bucketHi(int i) const;

    /** Bucket index a value of @p v falls into. */
    int bucketOf(double v) const;

    /** Reset to empty (bucket geometry is retained). */
    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        std::fill(counts_.begin(), counts_.end(), 0);
    }

  private:
    Histogram(Scale scale, double lo, double hi, int num_buckets)
        : scale_(scale), lo_(lo), hi_(hi),
          counts_(static_cast<std::size_t>(std::max(2, num_buckets)),
                  0)
    {
    }

    Scale scale_;
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of statistics for dumping.
 *
 * Values are captured at registration via pointers; dump() reads the
 * live values, so a group can be dumped repeatedly during a run.
 * Scalars are the exception: they are derived values captured by
 * value when registered (groups are typically rebuilt per dump).
 *
 * Both output formats emit stats in registration order (counters,
 * then accumulators, histograms, scalars), so equal data always
 * produces byte-identical dumps.
 */
class StatGroup
{
  public:
    /** @param name Prefix printed before every stat in this group. */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. */
    void
    addCounter(const std::string &stat_name, const Counter *c)
    {
        counters_.push_back({stat_name, c});
    }

    /** Register an accumulator under @p stat_name. */
    void
    addAccumulator(const std::string &stat_name, const Accumulator *a)
    {
        accumulators_.push_back({stat_name, a});
    }

    /** Register a histogram under @p stat_name. */
    void
    addHistogram(const std::string &stat_name, const Histogram *h)
    {
        histograms_.push_back({stat_name, h});
    }

    /** Register a derived value, captured now, under @p stat_name. */
    void
    addScalar(const std::string &stat_name, double value)
    {
        scalars_.push_back({stat_name, value});
    }

    /** Write all registered stats to @p os as "group.stat value". */
    void dump(std::ostream &os) const;

    /** Emit this group as one `"name": {...}` member of @p jw. */
    void dumpJson(JsonWriter &jw) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const Accumulator *>>
        accumulators_;
    std::vector<std::pair<std::string, const Histogram *>>
        histograms_;
    std::vector<std::pair<std::string, double>> scalars_;
};

/**
 * Fixed-width text table writer used by benches to print paper-style
 * tables (rows = benchmarks, columns = contention managers, etc.).
 */
class TextTable
{
  public:
    /** @param headers Column headers; first column is the row label. */
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    /** Append one row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimal places. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio as a percentage string, e.g. "73.5%". */
std::string fmtPercent(double ratio, int digits = 1);

} // namespace sim

#endif // BFGTS_SIM_STATS_H
