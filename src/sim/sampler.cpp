#include "sampler.h"

#include <algorithm>

#include "sim/chrome_trace.h"
#include "sim/event_queue.h"
#include "sim/json.h"
#include "sim/logging.h"

namespace sim {

Sampler::Sampler(const Config &config) : config_(config)
{
    sim_assert(config_.interval >= 1);
}

void
Sampler::start(EventQueue &events, SnapshotFn snapshot,
               ActiveFn active)
{
    sim_assert(!started_);
    started_ = true;
    snapshot_ = std::move(snapshot);
    active_ = std::move(active);
    lastBoundary_ = events.curTick();
    writeHeader();
    events.scheduleIn(config_.interval,
                      [this, &events] { fire(events); });
}

void
Sampler::fire(EventQueue &events)
{
    if (finished_)
        return;
    // A boundary that lands after the last thread finished belongs
    // to the final partial window, which finish() emits with the
    // true end tick; emitting it here would pad the series past the
    // end of the run.
    if (!active_()) {
        finished_ = true;
        return;
    }
    emitWindow(lastBoundary_, events.curTick());
    lastBoundary_ = events.curTick();
    events.scheduleIn(config_.interval,
                      [this, &events] { fire(events); });
}

void
Sampler::finish(Tick end_tick)
{
    if (!started_ || end_tick <= lastBoundary_)
        return;
    finished_ = true;
    emitWindow(lastBoundary_, end_tick);
    lastBoundary_ = end_tick;
}

void
Sampler::emitWindow(Tick start, Tick end)
{
    TimeSeriesWindow w;
    w.window = static_cast<std::uint64_t>(windows_.size());
    w.startTick = start;
    w.endTick = end;

    SampleCounts now;
    snapshot_(now, w.gauges);
    w.delta.commits = now.commits - lastCounts_.commits;
    w.delta.aborts = now.aborts - lastCounts_.aborts;
    w.delta.conflicts = now.conflicts - lastCounts_.conflicts;
    w.delta.predictedStalls =
        now.predictedStalls - lastCounts_.predictedStalls;
    w.delta.stallTimeouts =
        now.stallTimeouts - lastCounts_.stallTimeouts;
    lastCounts_ = now;

    const std::uint64_t attempts = w.delta.commits + w.delta.aborts;
    w.abortRate = attempts == 0
                      ? 0.0
                      : static_cast<double>(w.delta.aborts)
                            / static_cast<double>(attempts);

    windows_.push_back(w);
    writeWindow(w);
    if (counterSink_ != nullptr) {
        counterSink_->counter(end, "commits/win",
                              static_cast<double>(w.delta.commits));
        counterSink_->counter(end, "aborts/win",
                              static_cast<double>(w.delta.aborts));
        counterSink_->counter(end, "abortRate", w.abortRate);
        counterSink_->counter(
            end, "readyQueueDepth",
            static_cast<double>(w.gauges.readyQueueDepth));
        counterSink_->counter(
            end, "cpusStalled",
            static_cast<double>(w.gauges.cpusStalled));
        counterSink_->counter(end, "conflictPressure",
                              w.gauges.conflictPressure);
        counterSink_->counter(end, "bloomOccupancy",
                              w.gauges.bloomOccupancy);
    }
}

void
Sampler::writeHeader()
{
    if (config_.jsonl == nullptr)
        return;
    JsonWriter jw(*config_.jsonl, /*indent=*/0);
    jw.beginObject();
    jw.kv("schema", "bfgts-ts-v1");
    jw.kv("kind", "header");
    jw.kv("interval", static_cast<std::uint64_t>(config_.interval));
    jw.endObject();
    *config_.jsonl << '\n';
}

void
Sampler::writeWindow(const TimeSeriesWindow &w)
{
    if (config_.jsonl == nullptr)
        return;
    JsonWriter jw(*config_.jsonl, /*indent=*/0);
    jw.beginObject();
    jw.kv("window", w.window);
    jw.kv("start", static_cast<std::uint64_t>(w.startTick));
    jw.kv("end", static_cast<std::uint64_t>(w.endTick));
    jw.kv("commits", w.delta.commits);
    jw.kv("aborts", w.delta.aborts);
    jw.kv("conflicts", w.delta.conflicts);
    jw.kv("predictedStalls", w.delta.predictedStalls);
    jw.kv("stallTimeouts", w.delta.stallTimeouts);
    jw.kv("abortRate", w.abortRate);
    jw.kv("cpusRunning", w.gauges.cpusRunning);
    jw.kv("cpusStalled", w.gauges.cpusStalled);
    jw.kv("readyQueueDepth", w.gauges.readyQueueDepth);
    jw.kv("meanConfidence", w.gauges.meanConfidence);
    jw.kv("bloomOccupancy", w.gauges.bloomOccupancy);
    jw.kv("conflictPressure", w.gauges.conflictPressure);
    jw.kv("calibrationBrier", w.gauges.calibrationBrier);
    jw.endObject();
    *config_.jsonl << '\n';
}

void
Sampler::summaryJson(JsonWriter &jw) const
{
    double peak_abort_rate = 0.0;
    double mean_abort_rate = 0.0;
    int peak_ready = 0;
    double peak_pressure = 0.0;
    std::uint64_t peak_commits = 0;
    std::uint64_t peak_aborts = 0;
    for (const TimeSeriesWindow &w : windows_) {
        peak_abort_rate = std::max(peak_abort_rate, w.abortRate);
        mean_abort_rate += w.abortRate;
        peak_ready = std::max(peak_ready, w.gauges.readyQueueDepth);
        peak_pressure =
            std::max(peak_pressure, w.gauges.conflictPressure);
        peak_commits = std::max(peak_commits, w.delta.commits);
        peak_aborts = std::max(peak_aborts, w.delta.aborts);
    }
    if (!windows_.empty())
        mean_abort_rate /= static_cast<double>(windows_.size());

    jw.beginObject("timeseries");
    jw.kv("interval", static_cast<std::uint64_t>(config_.interval));
    jw.kv("windows", static_cast<std::uint64_t>(windows_.size()));
    jw.kv("peakAbortRate", peak_abort_rate);
    jw.kv("meanAbortRate", mean_abort_rate);
    jw.kv("peakReadyQueueDepth", peak_ready);
    jw.kv("peakConflictPressure", peak_pressure);
    jw.kv("peakCommitsPerWindow", peak_commits);
    jw.kv("peakAbortsPerWindow", peak_aborts);
    jw.endObject();
}

} // namespace sim
