/**
 * @file
 * Fixed-size host thread pool for embarrassingly parallel work.
 *
 * This is *host* parallelism, not simulated parallelism: each job is
 * an independent deterministic computation (one sweep cell), so
 * running jobs on N OS threads can change wall-clock only, never any
 * simulated result. The pool makes no ordering promises between
 * jobs; callers that need deterministic aggregation must collect
 * results by job index (runner::SweepRunner does exactly that).
 *
 * Jobs must not throw: an exception escaping a job would terminate
 * the process. Callers wrap their own failure handling inside the
 * job (SweepRunner records a cell's error instead of letting it
 * escape).
 */

#ifndef BFGTS_SIM_THREAD_POOL_H
#define BFGTS_SIM_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sim {

/** Fixed worker count, FIFO job queue, blocking wait(). */
class ThreadPool
{
  public:
    /** Spawn @p num_workers OS threads (clamped to at least 1). */
    explicit ThreadPool(int num_workers);

    /** Finishes every submitted job, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Safe from any thread. */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has finished. */
    void wait();

    /** Number of worker threads. */
    int workerCount() const { return static_cast<int>(threads_.size()); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    /** Jobs submitted but not yet finished (queued + running). */
    std::size_t pending_ = 0;
    bool shutdown_ = false;
};

} // namespace sim

#endif // BFGTS_SIM_THREAD_POOL_H
