/**
 * @file
 * Error and status reporting, following the gem5 convention.
 *
 * - panic():  an internal simulator invariant was violated (a bug in the
 *             simulator itself). Aborts.
 * - fatal():  the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments). Exits with code 1.
 * - warn():   something may be modeled imprecisely; simulation continues.
 * - inform(): purely informational status output.
 */

#ifndef BFGTS_SIM_LOGGING_H
#define BFGTS_SIM_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sim {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on an internal simulator bug. */
#define sim_panic(...)                                                    \
    ::sim::detail::panicImpl(__FILE__, __LINE__,                          \
                             ::sim::detail::format(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define sim_fatal(...)                                                    \
    ::sim::detail::fatalImpl(__FILE__, __LINE__,                          \
                             ::sim::detail::format(__VA_ARGS__))

/** Report a non-fatal modeling concern. */
#define sim_warn(...)                                                     \
    ::sim::detail::warnImpl(::sim::detail::format(__VA_ARGS__))

/** Report simulation status. */
#define sim_inform(...)                                                   \
    ::sim::detail::informImpl(::sim::detail::format(__VA_ARGS__))

/**
 * Panic when a required invariant does not hold. An optional
 * printf-style message after the condition is formatted and appended
 * to the panic, e.g. sim_assert(tid == t, "thread %d misnumbered", t).
 */
#define sim_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            sim_panic(                                                    \
                "assertion failed: %s" __VA_OPT__(": %s"), #cond          \
                    __VA_OPT__(, ::sim::detail::format(__VA_ARGS__)       \
                                     .c_str()));                          \
        }                                                                 \
    } while (0)

} // namespace sim

#endif // BFGTS_SIM_LOGGING_H
