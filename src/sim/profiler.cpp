#include "profiler.h"

#include <algorithm>
#include <atomic>

#include "sim/chrome_trace.h"
#include "sim/host_clock.h"
#include "sim/json.h"

namespace sim {

namespace {

const char *const kPhaseNames[Profiler::kNumPhases + 1] = {
    "event_queue", "workload", "cm_decide", "cm_commit",
    "bloom",       "predictor", "os_sched", "mem",
    "other",
};

const char *const kStructureNames[Profiler::kNumStructures] = {
    "confidence_tables",
    "bloom_signatures",
    "predictor_caches",
    "event_queue",
};

} // namespace

const char *
Profiler::phaseName(int phase)
{
    if (phase < 0 || phase > kNumPhases)
        return "?";
    return kPhaseNames[phase];
}

const char *
Profiler::structureName(int structure)
{
    if (structure < 0 || structure >= kNumStructures)
        return "?";
    return kStructureNames[structure];
}

Profiler::Profiler(ClockFn clock)
    : clock_(clock != nullptr ? clock : &hostNowNs)
{
}

void
Profiler::beginRun()
{
    runStart_ = clock_();
    lastStamp_ = runStart_;
}

void
Profiler::endRun(std::uint64_t events_executed, Tick final_tick)
{
    const std::uint64_t now = clock_();
    if (now > runStart_)
        data_.wallNs = now - runStart_;
    data_.events = events_executed;
    data_.ticks = final_tick;
    samplePeakRss();
}

void
Profiler::enter(Phase phase)
{
    const std::uint64_t now = clock_();
    if (depth_ > 0 && depth_ <= kMaxDepth && now > lastStamp_) {
        data_.phaseNs[static_cast<std::size_t>(stack_[depth_ - 1])] +=
            now - lastStamp_;
    }
    if (depth_ < kMaxDepth)
        stack_[static_cast<std::size_t>(depth_)] = phase;
    ++depth_;
    lastStamp_ = now;
    ++data_.phaseCalls[static_cast<std::size_t>(phase)];
}

void
Profiler::exit()
{
    if (depth_ == 0)
        return;
    const std::uint64_t now = clock_();
    if (depth_ <= kMaxDepth && now > lastStamp_) {
        data_.phaseNs[static_cast<std::size_t>(stack_[depth_ - 1])] +=
            now - lastStamp_;
    }
    --depth_;
    lastStamp_ = now;
}

void
Profiler::samplePeakRss()
{
    const std::uint64_t rss = hostPeakRssBytes();
    if (rss > data_.peakRssBytes)
        data_.peakRssBytes = rss;
}

void
Profiler::onEventExecuted(Tick now)
{
    if (++eventsSeen_ % kCounterSampleEvents != 0
        || counterSink_ == nullptr) {
        return;
    }
    for (int p = 0; p < kNumPhases; ++p) {
        std::string name = "host.";
        name += phaseName(p);
        name += "_ms";
        counterSink_->counter(
            now, name.c_str(),
            static_cast<double>(data_.phaseNs[static_cast<std::size_t>(p)])
                / 1e6);
    }
    counterSink_->counter(
        now, "host.rss_mb",
        static_cast<double>(hostPeakRssBytes()) / (1024.0 * 1024.0));
}

double
Profiler::Data::eventsPerSec() const
{
    if (wallNs == 0)
        return 0.0;
    return static_cast<double>(events) * 1e9
         / static_cast<double>(wallNs);
}

double
Profiler::Data::wallNsPerCycle() const
{
    if (ticks == 0)
        return 0.0;
    return static_cast<double>(wallNs) / static_cast<double>(ticks);
}

std::uint64_t
Profiler::Data::otherNs() const
{
    std::uint64_t attributed = 0;
    for (std::uint64_t ns : phaseNs)
        attributed += ns;
    return attributed >= wallNs ? 0 : wallNs - attributed;
}

double
Profiler::Data::share(int phase) const
{
    if (wallNs == 0)
        return 0.0;
    const std::uint64_t ns =
        phase == kNumPhases ? otherNs()
                            : phaseNs[static_cast<std::size_t>(phase)];
    return static_cast<double>(ns) / static_cast<double>(wallNs);
}

void
Profiler::Data::writeJson(JsonWriter &jw) const
{
    jw.kv("wallNs", wallNs);
    jw.kv("events", events);
    jw.kv("ticks", ticks);
    jw.kv("eventsPerSec", eventsPerSec());
    jw.kv("wallNsPerCycle", wallNsPerCycle());
    jw.kv("peakRssBytes", peakRssBytes);
    jw.beginArray("phases");
    for (int p = 0; p <= kNumPhases; ++p) {
        jw.beginObject();
        jw.kv("name", phaseName(p));
        jw.kv("ns", p == kNumPhases
                        ? otherNs()
                        : phaseNs[static_cast<std::size_t>(p)]);
        jw.kv("calls",
              p == kNumPhases
                  ? std::uint64_t{0}
                  : phaseCalls[static_cast<std::size_t>(p)]);
        jw.kv("share", share(p));
        jw.endObject();
    }
    jw.endArray();
    jw.beginArray("memory");
    for (int s = 0; s < kNumStructures; ++s) {
        jw.beginObject();
        jw.kv("name", structureName(s));
        jw.kv("bytes", structBytes[static_cast<std::size_t>(s)]);
        jw.endObject();
    }
    jw.endArray();
}

void
Profiler::writeReport(std::ostream &os, const std::string &name) const
{
    writeProfReport(os, name, data_);
}

void
writeProfReport(std::ostream &os, const std::string &name,
                const Profiler::Data &data)
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "bfgts-prof-v1");
    jw.kv("kind", "run");
    jw.kv("name", name);
    jw.kv("git", buildGitDescribe());
    jw.beginObject("run");
    data.writeJson(jw);
    jw.endObject();
    jw.endObject();
    os << "\n";
}

MinMedMax
minMedianMax(std::vector<double> values)
{
    MinMedMax out;
    if (values.empty())
        return out;
    std::sort(values.begin(), values.end());
    out.min = values.front();
    out.max = values.back();
    const std::size_t n = values.size();
    if (n % 2 == 1)
        out.median = values[n / 2];
    else
        out.median = (values[n / 2 - 1] + values[n / 2]) / 2.0;
    return out;
}

// ---- process-global host accounting ---------------------------------

namespace {
std::atomic<std::uint64_t> g_hostWallNs{0};
std::atomic<std::uint64_t> g_hostEvents{0};
std::atomic<std::uint64_t> g_hostTicks{0};
std::atomic<std::uint64_t> g_hostRuns{0};
} // namespace

void
addHostRunSample(std::uint64_t wall_ns, std::uint64_t events,
                 std::uint64_t ticks)
{
    g_hostWallNs.fetch_add(wall_ns, std::memory_order_relaxed);
    g_hostEvents.fetch_add(events, std::memory_order_relaxed);
    g_hostTicks.fetch_add(ticks, std::memory_order_relaxed);
    g_hostRuns.fetch_add(1, std::memory_order_relaxed);
}

HostRunTotals
hostRunTotals()
{
    HostRunTotals totals;
    totals.wallNs = g_hostWallNs.load(std::memory_order_relaxed);
    totals.events = g_hostEvents.load(std::memory_order_relaxed);
    totals.ticks = g_hostTicks.load(std::memory_order_relaxed);
    totals.runs = g_hostRuns.load(std::memory_order_relaxed);
    return totals;
}

double
HostRunTotals::eventsPerSec() const
{
    if (wallNs == 0)
        return 0.0;
    return static_cast<double>(events) * 1e9
         / static_cast<double>(wallNs);
}

double
HostRunTotals::wallNsPerCycle() const
{
    if (ticks == 0)
        return 0.0;
    return static_cast<double>(wallNs) / static_cast<double>(ticks);
}

} // namespace sim
