/**
 * @file
 * Dependency-free JSON reader, the dual of json.h's JsonWriter.
 *
 * Built for the sweep-farm merge path (runner/farm.h), where shard
 * reports written by JsonWriter are parsed, validated, and re-emitted
 * into the merged report. Byte-identical re-emission drives two design
 * choices that general-purpose parsers do not make:
 *
 *  - numbers keep their raw source lexeme (no double round trip); a
 *    re-emit via JsonWriter::valueRaw() reproduces the exact bytes;
 *  - object members preserve document order (vector of pairs, not a
 *    map), so key order survives a parse/re-emit round trip.
 *
 * String values are decoded (escapes resolved); re-encoding through
 * jsonEscape() is byte-identical for any string JsonWriter itself
 * produced, since both sides use the same canonical escape set.
 *
 * The parser is strict RFC 8259: no comments, no trailing commas, no
 * trailing garbage after the root value. parseJson() never throws --
 * failures come back as false plus a position-stamped error message.
 */

#ifndef BFGTS_SIM_JSON_PARSE_H
#define BFGTS_SIM_JSON_PARSE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.h"

namespace sim {

/** One parsed JSON value; a tree of these represents the document. */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    /** Kind::Bool payload. */
    bool boolean = false;
    /**
     * Kind::String: the decoded string (escapes resolved).
     * Kind::Number: the raw source lexeme, e.g. "1e+20" or "0.25".
     */
    std::string text;
    /** Kind::Array elements in document order. */
    std::vector<JsonValue> items;
    /** Kind::Object members in document order (duplicates kept). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** First member named @p key, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /**
     * The number lexeme as an unsigned integer. Returns false (and
     * leaves @p out untouched) unless this is a Number whose lexeme is
     * a plain non-negative decimal integer that fits in 64 bits.
     */
    bool asU64(std::uint64_t *out) const;
};

/**
 * Parse @p text as one JSON document into @p out.
 *
 * On failure returns false and, when @p error is non-null, stores a
 * byte-offset-stamped message. @p out is left in an unspecified but
 * valid state on failure.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error);

/**
 * Re-emit @p value through @p jw at the current writer position
 * (root, array element, or pending-key member value). Re-emitting an
 * unmodified tree parsed from JsonWriter output reproduces the
 * original bytes, given the same indent setting.
 */
void writeJson(JsonWriter &jw, const JsonValue &value);

} // namespace sim

#endif // BFGTS_SIM_JSON_PARSE_H
