/**
 * @file
 * Dependency-free JSON writer for machine-readable output.
 *
 * JsonWriter emits syntactically valid, deterministically formatted
 * JSON to an ostream:
 *  - strings are escaped per RFC 8259 (quotes, backslashes, control
 *    characters as \uXXXX; everything else passes through byte-wise,
 *    so UTF-8 payloads survive);
 *  - doubles use the shortest round-trip representation
 *    (std::to_chars), which is bit-deterministic for equal inputs and
 *    locale-independent; non-finite values become null (JSON has no
 *    NaN/Inf);
 *  - keys appear exactly in call order, so callers that emit keys in
 *    a fixed order get byte-identical documents for equal data.
 *
 * The writer tracks the open object/array stack and inserts commas
 * and indentation; misuse (value without a key inside an object,
 * unbalanced end*) panics.
 */

#ifndef BFGTS_SIM_JSON_H
#define BFGTS_SIM_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sim {

/** Escape @p s as a JSON string literal, including the quotes. */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip decimal form of @p v ("null" if not finite). */
std::string jsonNumber(double v);

/**
 * Build identifier baked in at configure time (`git describe`), for
 * stamping machine-readable output. "unknown" outside a git checkout.
 */
const char *buildGitDescribe();

/**
 * True when buildGitDescribe() carries the `-dirty` suffix, i.e. the
 * binary was configured from a tree with uncommitted changes. Cache
 * keys that embed the describe string cannot distinguish successive
 * dirty states, so callers warn before reusing cached results.
 */
bool buildGitDirty();

/** Streaming JSON writer; see file comment. */
class JsonWriter
{
  public:
    /**
     * @param os      Destination stream.
     * @param indent  Spaces per nesting level; 0 = compact one-line
     *                output (used for JSONL records).
     */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    // ---- structure ---------------------------------------------------
    /** Open the root object or an array-element object. */
    void beginObject();
    /** Open an object-valued member @p key. */
    void beginObject(const std::string &key);
    void endObject();

    /** Open the root array or an array-element array. */
    void beginArray();
    /** Open an array-valued member @p key. */
    void beginArray(const std::string &key);
    void endArray();

    // ---- values ------------------------------------------------------
    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v);
    void value(bool v);
    void valueNull();
    /**
     * Emit @p lexeme verbatim in value position (no escaping). Used to
     * re-emit tokens captured by the json_parse.h reader -- e.g. number
     * lexemes that must survive a parse/re-emit round trip byte-for-
     * byte. The caller guarantees @p lexeme is a valid JSON value.
     */
    void valueRaw(const std::string &lexeme);

    // ---- key/value members -------------------------------------------
    void kv(const std::string &key, const std::string &v);
    void kv(const std::string &key, const char *v);
    void kv(const std::string &key, double v);
    void kv(const std::string &key, std::uint64_t v);
    void kv(const std::string &key, std::int64_t v);
    void kv(const std::string &key, int v);
    void kv(const std::string &key, bool v);

    /** Emit the member key; the next value() becomes its value. */
    void key(const std::string &k);

    /** True once the root value is complete (all scopes closed). */
    bool done() const;

  private:
    enum class Scope { Object, Array };

    struct Level {
        Scope scope;
        bool hasItems = false;
    };

    /** Comma/newline/indent before an item; panics on misuse. */
    void preItem(bool is_key);
    void newlineIndent();
    void raw(const std::string &text);

    std::ostream &os_;
    int indent_;
    std::vector<Level> stack_;
    bool keyPending_ = false;
    bool rootDone_ = false;
};

} // namespace sim

#endif // BFGTS_SIM_JSON_H
