#include "json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "sim/logging.h"

namespace sim {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), v);
    sim_assert(result.ec == std::errc());
    // to_chars may emit "1e+20"-style exponents, which JSON accepts.
    return std::string(buf, result.ptr);
}

const char *
buildGitDescribe()
{
#ifdef BFGTS_GIT_DESCRIBE
    return BFGTS_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

bool
buildGitDirty()
{
    return std::string_view(buildGitDescribe()).find("-dirty")
           != std::string_view::npos;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

bool
JsonWriter::done() const
{
    return rootDone_;
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::raw(const std::string &text)
{
    os_ << text;
}

void
JsonWriter::preItem(bool is_key)
{
    sim_assert(!rootDone_, "JsonWriter: root value already complete");
    if (stack_.empty()) {
        sim_assert(!keyPending_);
        return; // root value
    }
    Level &top = stack_.back();
    if (keyPending_) {
        // A value following its key: no comma, key already emitted.
        sim_assert(!is_key,
                   "JsonWriter: key() while a key is pending");
        keyPending_ = false;
        return;
    }
    if (top.scope == Scope::Object)
        sim_assert(is_key,
                   "JsonWriter: object members need key() or kv()");
    if (top.hasItems)
        os_ << ',';
    top.hasItems = true;
    newlineIndent();
}

void
JsonWriter::key(const std::string &k)
{
    sim_assert(!stack_.empty()
                   && stack_.back().scope == Scope::Object,
               "JsonWriter: key() outside an object");
    preItem(true);
    raw(jsonEscape(k));
    os_ << (indent_ > 0 ? ": " : ":");
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    preItem(false);
    os_ << '{';
    stack_.push_back({Scope::Object});
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    beginObject();
}

void
JsonWriter::endObject()
{
    sim_assert(!stack_.empty()
                   && stack_.back().scope == Scope::Object
                   && !keyPending_,
               "JsonWriter: unbalanced endObject()");
    const bool had_items = stack_.back().hasItems;
    stack_.pop_back();
    if (had_items)
        newlineIndent();
    os_ << '}';
    if (stack_.empty()) {
        rootDone_ = true;
        if (indent_ > 0)
            os_ << '\n';
    }
}

void
JsonWriter::beginArray()
{
    preItem(false);
    os_ << '[';
    stack_.push_back({Scope::Array});
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    beginArray();
}

void
JsonWriter::endArray()
{
    sim_assert(!stack_.empty()
                   && stack_.back().scope == Scope::Array
                   && !keyPending_,
               "JsonWriter: unbalanced endArray()");
    const bool had_items = stack_.back().hasItems;
    stack_.pop_back();
    if (had_items)
        newlineIndent();
    os_ << ']';
    if (stack_.empty()) {
        rootDone_ = true;
        if (indent_ > 0)
            os_ << '\n';
    }
}

void
JsonWriter::value(const std::string &v)
{
    preItem(false);
    raw(jsonEscape(v));
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preItem(false);
    raw(jsonNumber(v));
}

void
JsonWriter::value(std::uint64_t v)
{
    preItem(false);
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preItem(false);
    os_ << v;
}

void
JsonWriter::value(int v)
{
    value(static_cast<std::int64_t>(v));
}

void
JsonWriter::value(bool v)
{
    preItem(false);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    preItem(false);
    os_ << "null";
}

void
JsonWriter::valueRaw(const std::string &lexeme)
{
    preItem(false);
    raw(lexeme);
}

void
JsonWriter::kv(const std::string &k, const std::string &v)
{
    key(k);
    value(v);
}

void
JsonWriter::kv(const std::string &k, const char *v)
{
    key(k);
    value(v);
}

void
JsonWriter::kv(const std::string &k, double v)
{
    key(k);
    value(v);
}

void
JsonWriter::kv(const std::string &k, std::uint64_t v)
{
    key(k);
    value(v);
}

void
JsonWriter::kv(const std::string &k, std::int64_t v)
{
    key(k);
    value(v);
}

void
JsonWriter::kv(const std::string &k, int v)
{
    key(k);
    value(v);
}

void
JsonWriter::kv(const std::string &k, bool v)
{
    key(k);
    value(v);
}

} // namespace sim
