#include "trace.h"

#include "sim/json.h"
#include "sim/logging.h"

namespace sim {

const char *
traceCategoryName(TraceCategory category)
{
    switch (category) {
      case TraceCategory::Tx:
        return "tx";
      case TraceCategory::Sched:
        return "sched";
      case TraceCategory::Cm:
        return "cm";
      case TraceCategory::Predictor:
        return "predictor";
      case TraceCategory::Mem:
        return "mem";
      case TraceCategory::Audit:
        return "audit";
    }
    sim_panic("unhandled TraceCategory %u",
              static_cast<unsigned>(category));
}

bool
traceCategoryFromName(const std::string &name, TraceCategory *out)
{
    for (unsigned i = 0; i < kNumTraceCategories; ++i) {
        const auto category = static_cast<TraceCategory>(i);
        if (name == traceCategoryName(category)) {
            *out = category;
            return true;
        }
    }
    return false;
}

void
TextTraceSink::write(const TraceRecord &record)
{
    os_ << "tick=" << record.tick << " cpu=" << record.cpu
        << " thread=" << record.thread << " sTx=" << record.sTx
        << " dTx=" << record.dTx << " cat="
        << traceCategoryName(record.category) << ' ' << record.event;
    for (const auto &[key, value] : record.details)
        os_ << ' ' << key << '=' << value;
    os_ << '\n';
}

void
JsonlTraceSink::write(const TraceRecord &record)
{
    JsonWriter jw(os_, /*indent=*/0);
    jw.beginObject();
    jw.kv("tick", static_cast<std::uint64_t>(record.tick));
    jw.kv("cpu", record.cpu);
    jw.kv("thread", record.thread);
    jw.kv("sTx", static_cast<std::int64_t>(record.sTx));
    jw.kv("dTx", static_cast<std::int64_t>(record.dTx));
    jw.kv("cat", traceCategoryName(record.category));
    jw.kv("event", record.event);
    if (!record.details.empty()) {
        jw.beginObject("detail");
        for (const auto &[key, value] : record.details)
            jw.kv(key, value);
        jw.endObject();
    }
    jw.endObject();
    os_ << '\n';
}

} // namespace sim
