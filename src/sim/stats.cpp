#include "stats.h"

#include <cstdio>
#include <iomanip>

#include "sim/logging.h"

namespace sim {

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, c] : counters_) {
        os << name_ << '.' << stat_name << ' ' << c->value() << '\n';
    }
    for (const auto &[stat_name, a] : accumulators_) {
        os << name_ << '.' << stat_name << ".count " << a->count()
           << '\n';
        os << name_ << '.' << stat_name << ".mean "
           << fmtDouble(a->mean(), 4) << '\n';
        os << name_ << '.' << stat_name << ".stddev "
           << fmtDouble(a->stddev(), 4) << '\n';
    }
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    sim_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : "  ");
            // Left-align the row label, right-align data columns.
            if (i == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[i])) << row[i];
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double ratio, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
    return buf;
}

} // namespace sim
