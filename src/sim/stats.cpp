#include "stats.h"

#include <cstdio>
#include <iomanip>

#include "sim/json.h"
#include "sim/logging.h"

namespace sim {

double
Histogram::bucketLo(int i) const
{
    sim_assert(i >= 0 && i < numBuckets());
    if (scale_ == Scale::Linear) {
        const double width =
            (hi_ - lo_) / static_cast<double>(numBuckets());
        return lo_ + width * static_cast<double>(i);
    }
    return i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
}

double
Histogram::bucketHi(int i) const
{
    sim_assert(i >= 0 && i < numBuckets());
    if (scale_ == Scale::Linear) {
        // Out-of-range samples clamp into the edge buckets, but the
        // nominal edges stay [lo, hi): only log2's last bucket is
        // genuinely unbounded.
        const double width =
            (hi_ - lo_) / static_cast<double>(numBuckets());
        return i == numBuckets() - 1
                   ? hi_
                   : lo_ + width * static_cast<double>(i + 1);
    }
    if (i == numBuckets() - 1)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, i);
}

int
Histogram::bucketOf(double v) const
{
    const int last = numBuckets() - 1;
    if (scale_ == Scale::Linear) {
        if (v < lo_)
            return 0;
        const double width =
            (hi_ - lo_) / static_cast<double>(numBuckets());
        const double idx = (v - lo_) / width;
        if (idx >= static_cast<double>(last))
            return last;
        return static_cast<int>(idx);
    }
    if (v < 1.0)
        return 0;
    // ilogb(v) == floor(log2(v)) exactly for finite positive v.
    const int idx = 1 + std::ilogb(v);
    return std::min(idx, last);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, c] : counters_) {
        os << name_ << '.' << stat_name << ' ' << c->value() << '\n';
    }
    for (const auto &[stat_name, a] : accumulators_) {
        os << name_ << '.' << stat_name << ".count " << a->count()
           << '\n';
        os << name_ << '.' << stat_name << ".mean "
           << fmtDouble(a->mean(), 4) << '\n';
        os << name_ << '.' << stat_name << ".stddev "
           << fmtDouble(a->stddev(), 4) << '\n';
    }
    for (const auto &[stat_name, h] : histograms_) {
        os << name_ << '.' << stat_name << ".count " << h->count()
           << '\n';
        os << name_ << '.' << stat_name << ".mean "
           << fmtDouble(h->mean(), 4) << '\n';
        for (int i = 0; i < h->numBuckets(); ++i) {
            if (h->bucketCount(i) == 0)
                continue;
            os << name_ << '.' << stat_name << ".bucket["
               << jsonNumber(h->bucketLo(i)) << ','
               << jsonNumber(h->bucketHi(i)) << ") "
               << h->bucketCount(i) << '\n';
        }
    }
    for (const auto &[stat_name, v] : scalars_) {
        os << name_ << '.' << stat_name << ' ' << jsonNumber(v)
           << '\n';
    }
}

void
StatGroup::dumpJson(JsonWriter &jw) const
{
    jw.beginObject(name_);
    for (const auto &[stat_name, c] : counters_)
        jw.kv(stat_name, c->value());
    for (const auto &[stat_name, a] : accumulators_) {
        jw.beginObject(stat_name);
        jw.kv("count", a->count());
        jw.kv("sum", a->sum());
        jw.kv("min", a->min());
        jw.kv("max", a->max());
        jw.kv("mean", a->mean());
        jw.kv("stddev", a->stddev());
        jw.endObject();
    }
    for (const auto &[stat_name, h] : histograms_) {
        jw.beginObject(stat_name);
        jw.kv("count", h->count());
        jw.kv("mean", h->mean());
        jw.kv("scale",
              h->scale() == Histogram::Scale::Log2 ? "log2"
                                                   : "linear");
        jw.beginArray("buckets");
        for (int i = 0; i < h->numBuckets(); ++i) {
            if (h->bucketCount(i) == 0)
                continue;
            jw.beginObject();
            jw.kv("lo", h->bucketLo(i));
            // +inf is not valid JSON; the overflow bucket's upper
            // edge is emitted as null by jsonNumber.
            jw.kv("hi", h->bucketHi(i));
            jw.kv("n", h->bucketCount(i));
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    for (const auto &[stat_name, v] : scalars_)
        jw.kv(stat_name, v);
    jw.endObject();
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    sim_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : "  ");
            // Left-align the row label, right-align data columns.
            if (i == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[i])) << row[i];
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double ratio, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
    return buf;
}

} // namespace sim
