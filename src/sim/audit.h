/**
 * @file
 * Model-invariant audit engine ("checked simulation mode").
 *
 * The audit engine is the simulator's machine-checked definition of
 * "still correct": a registry of invariant checks that subsystems run
 * at event boundaries and at end-of-run. It is compiled
 * unconditionally but opt-in at runtime (`--audit` on the CLI or
 * BFGTS_AUDIT=1 in the environment); when disabled every hook site
 * reduces to one branch, so the default simulation path stays within
 * the overhead gate enforced by bench/micro_audit_overhead.cpp.
 *
 * Checks are purely observational: they read simulator state, never
 * mutate it, never draw from an RNG and add no simulated cost, so a
 * run with auditing enabled is byte-identical to the same run with
 * auditing off (the CI audit job asserts exactly that against the
 * committed bench baselines).
 *
 * A violated invariant produces a structured AuditViolation (check
 * id, tick, cpu/thread/sTx/dTx context, message). In the default
 * Panic mode the engine emits the violation through the trace
 * machinery (TraceCategory::Audit) and aborts the run; in Collect
 * mode (the mutation selftest, tests/test_audit.cpp) violations
 * accumulate in a log the test asserts on.
 *
 * Check-id namespaces, one per audited layer:
 *   event.*      event-queue monotonicity and tie-break order
 *   fsm.*        per-thread transaction lifecycle FSM
 *   cycles.*     cycle-accounting conservation laws
 *   htm.*        conflict-detector registry / isolation / wait graph
 *   bloom.*      signature membership and Eq. 2-4 estimate bounds
 *   cm.*         contention-manager table ranges
 *   predictor.*  snooped CPU-table coherence
 *   os.*         thread-affinity and ready-queue exclusivity
 */

#ifndef BFGTS_SIM_AUDIT_H
#define BFGTS_SIM_AUDIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace sim {

class TraceSink;

/** One violated invariant, with full simulation context. */
struct AuditViolation {
    /** Stable check identifier, e.g. "htm.isolation". */
    std::string check;
    /** Simulated tick at which the check ran. */
    Tick tick = 0;
    CpuId cpu = kNoCpu;
    ThreadId thread = kNoThread;
    /** Static transaction ID (site), -1 when not applicable. */
    std::int64_t sTx = -1;
    /** Dynamic transaction ID, -1 when not applicable. */
    std::int64_t dTx = -1;
    /** Human-readable description of the violated invariant. */
    std::string message;
};

/**
 * The audit engine: enablement, violation reporting, counters.
 *
 * Subsystem checkers receive an AuditEngine& and call report() (or
 * the convenience check()) for every invariant they find violated;
 * they bump countCheck() once per invariant evaluated so the
 * selftest can prove every checker actually ran.
 */
class AuditEngine
{
  public:
    /** What report() does with a violation. */
    enum class Mode {
        /** Emit through the trace sink, then sim_panic (default). */
        Panic,
        /** Accumulate in violations() (mutation selftest). */
        Collect,
    };

    AuditEngine() = default;

    /** Master switch; hook sites test this (via shouldCheck()). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /**
     * Dry-run mode: hook sites dispatch into the engine but checker
     * bodies are skipped. Used only by micro_audit_overhead to price
     * the hook dispatch itself.
     */
    void setDryRun(bool dry_run) { dryRun_ = dry_run; }

    /** True when checker bodies should execute at a hook site. */
    bool shouldCheck() const { return enabled_ && !dryRun_; }

    void setMode(Mode mode) { mode_ = mode; }
    Mode mode() const { return mode_; }

    /**
     * Structured reports also flow through this sink as
     * TraceCategory::Audit records (borrowed, may be null).
     */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** Count one evaluated invariant (cheap; for the selftest). */
    void countCheck() { ++checksRun_; }

    /** Invariants evaluated so far. */
    std::uint64_t checksRun() const { return checksRun_; }

    /** Violations reported so far (Collect mode only grows >1). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** Collected violations (Collect mode). */
    const std::vector<AuditViolation> &violations() const
    {
        return log_;
    }

    /** Drop collected violations (between selftest cases). */
    void clearViolations()
    {
        log_.clear();
        violationCount_ = 0;
    }

    /** True if a collected violation carries @p check as its id. */
    bool fired(const std::string &check) const;

    /**
     * Report a violated invariant. Panic mode emits the structured
     * record and aborts; Collect mode appends to violations().
     */
    void report(AuditViolation violation);

    /**
     * Convenience: evaluate one invariant. Counts the check; when
     * @p ok is false, reports a violation built from the arguments.
     * Returns @p ok so callers can chain dependent checks.
     */
    bool
    check(bool ok, const char *check_id, const std::string &message,
          Tick tick = 0, CpuId cpu = kNoCpu,
          ThreadId thread = kNoThread, std::int64_t stx = -1,
          std::int64_t dtx = -1)
    {
        countCheck();
        if (ok)
            return true;
        AuditViolation violation;
        violation.check = check_id;
        violation.tick = tick;
        violation.cpu = cpu;
        violation.thread = thread;
        violation.sTx = stx;
        violation.dTx = dtx;
        violation.message = message;
        report(std::move(violation));
        return false;
    }

  private:
    bool enabled_ = false;
    bool dryRun_ = false;
    Mode mode_ = Mode::Panic;
    TraceSink *sink_ = nullptr;
    std::uint64_t checksRun_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<AuditViolation> log_;
};

/**
 * True when BFGTS_AUDIT=1 in the environment (read once at startup).
 * This is the sanctioned env shim for audit enablement: reading the
 * environment anywhere else in model code is banned by the
 * wall-clock lint rule (tools/lint/determinism_lint.py).
 */
bool auditEnvEnabled();

} // namespace sim

#endif // BFGTS_SIM_AUDIT_H
