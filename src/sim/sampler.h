/**
 * @file
 * Interval time-series sampler.
 *
 * The paper's claims are dynamic -- BFGTS's similarity-weighted
 * confidence reacts to contention phases over time, and the hybrid
 * variant switches behaviour as conflict pressure rises and falls --
 * so end-of-run aggregates are not enough. The Sampler schedules
 * itself on the simulation's event queue every `interval` ticks and
 * snapshots a window of metrics:
 *
 *  - event deltas within the window (commits, aborts, conflicts,
 *    predicted stalls, stall timeouts) and the windowed abort rate;
 *  - instantaneous gauges at the window edge (CPUs running/stalled,
 *    scheduler ready-queue depth, mean prediction confidence, Bloom
 *    filter occupancy, conflict pressure).
 *
 * Windows are aligned to multiples of the interval; the run's tail
 * lands in one final partial window. Windows with no activity are
 * still emitted (zero deltas), so consumers can plot gaps honestly.
 *
 * Output goes three places, all deterministic:
 *  - a `bfgts-ts-v1` JSON Lines stream (one header line, then one
 *    line per window), for offline plotting and trace_analyze.py;
 *  - an in-memory window list summarized into the `--json` run
 *    report (summaryJson());
 *  - optionally, counter tracks in a ChromeTraceSink timeline.
 *
 * Like tracing, sampling is observational only: it adds no simulated
 * cost and cannot perturb results.
 */

#ifndef BFGTS_SIM_SAMPLER_H
#define BFGTS_SIM_SAMPLER_H

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "sim/types.h"

namespace sim {

class ChromeTraceSink;
class EventQueue;
class JsonWriter;

/** Cumulative event counts since the start of the run. */
struct SampleCounts {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t conflicts = 0;
    /** Begin decisions that serialized (StallOn/YieldOn). */
    std::uint64_t predictedStalls = 0;
    std::uint64_t stallTimeouts = 0;
};

/** Instantaneous gauges at the sample tick. */
struct SampleGauges {
    /** CPUs with a dispatched thread (includes stalled ones). */
    int cpusRunning = 0;
    /** CPUs whose running thread is spinning in a begin-stall. */
    int cpusStalled = 0;
    /** Threads waiting in the per-CPU ready queues, summed. */
    int readyQueueDepth = 0;
    /** Mean confidence-table entry (BFGTS managers; 0 otherwise). */
    double meanConfidence = 0.0;
    /** Mean fraction of set bits over live Bloom signatures. */
    double bloomOccupancy = 0.0;
    /** Mean ATS-style conflict pressure over transaction sites. */
    double conflictPressure = 0.0;
    /** Rolling Brier score of stall/go confidence vs conflict
     *  outcome (0 outside --quality runs). */
    double calibrationBrier = 0.0;
};

/** One emitted time-series window. */
struct TimeSeriesWindow {
    std::uint64_t window = 0;
    Tick startTick = 0;
    /** Exclusive; startTick + interval except for the final partial
     *  window, which ends at the run's last finish tick. */
    Tick endTick = 0;
    /** Event deltas within [startTick, endTick). */
    SampleCounts delta;
    /** delta.aborts / (delta.commits + delta.aborts); 0 if idle. */
    double abortRate = 0.0;
    SampleGauges gauges;
};

/** Periodic window sampler; see file comment. */
class Sampler
{
  public:
    struct Config {
        /** Window length in ticks. */
        Tick interval = 10'000;
        /** When set, stream bfgts-ts-v1 JSON Lines here. */
        std::ostream *jsonl = nullptr;
    };

    /** Fills the cumulative counts and current gauges. */
    using SnapshotFn =
        std::function<void(SampleCounts &, SampleGauges &)>;
    /** True while the simulation still has unfinished threads. */
    using ActiveFn = std::function<bool()>;

    explicit Sampler(const Config &config);

    /**
     * Begin sampling: schedules the first window boundary on
     * @p events. Call once, before the event queue runs.
     */
    void start(EventQueue &events, SnapshotFn snapshot,
               ActiveFn active);

    /**
     * Emit the final partial window [last boundary, end_tick) if any
     * activity window remains. Call after the event queue drains,
     * with the run's last finish tick.
     */
    void finish(Tick end_tick);

    /** Also render each window as Chrome counter-track events. */
    void setCounterSink(ChromeTraceSink *sink) { counterSink_ = sink; }

    Tick interval() const { return config_.interval; }

    /** Windows emitted so far (in order). */
    const std::vector<TimeSeriesWindow> &windows() const
    {
        return windows_;
    }

    /**
     * Write the windowed summary as a "timeseries" member of the
     * writer's current object: interval, window count, peak/mean
     * abort rate, peak ready-queue depth and conflict pressure, and
     * peak per-window commit/abort counts. Key order is fixed.
     */
    void summaryJson(JsonWriter &jw) const;

  private:
    /** Window-boundary event body at @p events.curTick(). */
    void fire(EventQueue &events);

    /** Snapshot and emit the window [start, end). */
    void emitWindow(Tick start, Tick end);

    void writeHeader();
    void writeWindow(const TimeSeriesWindow &w);

    Config config_;
    SnapshotFn snapshot_;
    ActiveFn active_;
    ChromeTraceSink *counterSink_ = nullptr;
    std::vector<TimeSeriesWindow> windows_;
    SampleCounts lastCounts_;
    Tick lastBoundary_ = 0;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace sim

#endif // BFGTS_SIM_SAMPLER_H
