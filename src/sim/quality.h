/**
 * @file
 * Decision-quality recorder: estimator error, confidence
 * calibration, and stall cost-benefit attribution (bfgts-qual-v1).
 *
 * The paper's mechanism rests on two estimated quantities -- the
 * Eq. 2-4 Bloom similarity estimate and the similarity-weighted
 * conflict confidence -- and this recorder measures both against
 * ground truth:
 *
 *  1. Estimator error. At each similarity computation the CM also
 *     hands over the transaction's true RW-line set; the recorder
 *     keeps the previous exact set per static transaction and
 *     records the signed error of the Eq. 2 set-size estimate, the
 *     Eq. 3 intersection estimate, and the Eq. 4 similarity against
 *     the exact values, bucketed by true set size and by Bloom
 *     occupancy at estimation time.
 *
 *  2. Confidence calibration. Every classified begin decision
 *     (stall or go) carries the conflict confidence the CM consulted,
 *     normalized to [0, 1]. The recorder bins decisions by predicted
 *     confidence and counts empirical conflicts per bin (reliability
 *     table) plus the Brier score over all samples.
 *
 *  3. Cost-benefit attribution. Each outcome is rolled up per
 *     (enemy sTxID, victim sTxID) pair in a bounded deterministic
 *     ledger: wasted-stall cycles (stalled, but the enemy would not
 *     have conflicted) vs saved-abort cycles (stalled and the enemy
 *     did conflict), alongside the TP/FP/FN/predicted-abort counts
 *     the obs-v1 report aggregates globally.
 *
 * Like the audit engine and the profiler, the recorder hangs off
 * SimConfig as a borrowed pointer: every hook site null-checks it,
 * so a run without --quality pays one branch per site, and an
 * attached recorder is purely observational -- it never adds
 * simulated cycles and never perturbs results. All state lives in
 * ordered containers keyed by static transaction IDs, so reports
 * are byte-identical across BFGTS_HASH_SEED values and, in sweep
 * mode, across --jobs counts.
 */

#ifndef BFGTS_SIM_QUALITY_H
#define BFGTS_SIM_QUALITY_H

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "mem/addr.h"
#include "sim/types.h"

namespace sim {

class JsonWriter;

/**
 * Collects decision-quality telemetry for one simulation run.
 *
 * The nested Data struct is a plain value so sweep cells can snapshot
 * it into their result rows (same side-channel pattern as
 * Profiler::Data).
 */
class QualityRecorder {
public:
    /** How a classified begin decision turned out. */
    enum class Outcome {
        /** Stalled, and the enemy's write set did overlap. */
        TruePositive,
        /** Stalled, but no conflict would have occurred. */
        FalsePositive,
        /** Did not stall, and a conflict aborted the attempt. */
        FalseNegative,
        /** Stalled, yet the attempt still aborted afterwards. */
        PredictedAbort,
        /** Did not stall, and the attempt committed cleanly. */
        TrueNegative,
    };

    /** Signed-error statistics for one estimator (Eq. 2, 3, or 4). */
    struct ErrorStats {
        /** Signed-error histogram resolution. */
        static constexpr int kBuckets = 16;
        /** log2 buckets over the true (exact) set size. */
        static constexpr int kSizeBuckets = 8;
        /** Linear buckets over Bloom occupancy in [0, 1]. */
        static constexpr int kOccBuckets = 8;

        ErrorStats(double histogram_lo, double histogram_hi)
            : lo(histogram_lo), hi(histogram_hi)
        {
        }

        /** Nominal signed-error histogram range [lo, hi). */
        double lo;
        double hi;

        std::uint64_t count = 0;
        double sumSigned = 0.0;
        double sumAbs = 0.0;
        double maxAbs = 0.0;
        /** Signed error clamped into [lo, hi). */
        std::array<std::uint64_t, kBuckets> buckets{};
        /** |error| totals bucketed by true set size (log2). */
        std::array<std::uint64_t, kSizeBuckets> sizeCount{};
        std::array<double, kSizeBuckets> sizeSumAbs{};
        /** |error| totals bucketed by Bloom occupancy (linear). */
        std::array<std::uint64_t, kOccBuckets> occCount{};
        std::array<double, kOccBuckets> occSumAbs{};

        void sample(double signed_error, std::uint64_t true_size,
                    double occupancy);
        double meanSigned() const;
        double meanAbs() const;
        double bucketLo(int i) const;
        double bucketHi(int i) const;
        void writeJson(JsonWriter &jw) const;
    };

    /** One row of the confidence reliability table. */
    struct CalibrationBin {
        std::uint64_t decisions = 0;
        std::uint64_t stalls = 0;
        std::uint64_t conflicts = 0;
        double sumConfidence = 0.0;
    };

    /** Per-(enemy, victim) outcome and cycle attribution. */
    struct PairStats {
        std::uint64_t truePositives = 0;
        std::uint64_t falsePositives = 0;
        std::uint64_t falseNegatives = 0;
        std::uint64_t predictedAborts = 0;
        /** Stall cycles spent on attempts that had no conflict. */
        Cycles wastedStallCycles = 0;
        /** Attempt cycles an abort would have thrown away (TP). */
        Cycles savedAbortCycles = 0;
        /** Attempt cycles actually thrown away unpredicted (FN). */
        Cycles fnWastedCycles = 0;
        /** Attempt cycles thrown away despite stalling. */
        Cycles predictedAbortWastedCycles = 0;
    };

    /** Plain-value snapshot of everything the recorder measured. */
    struct Data {
        /** Confidence reliability-table resolution (>= 8 per spec). */
        static constexpr int kCalibrationBins = 10;
        /** Pair-ledger bound: deterministic first-seen insertion. */
        static constexpr std::size_t kMaxPairs = 4096;

        /** Eq. 2 set-size estimate, signed lines of error. */
        ErrorStats eq2SetSize{-16.0, 16.0};
        /** Eq. 3 intersection estimate, signed lines of error. */
        ErrorStats eq3Intersection{-16.0, 16.0};
        /** Eq. 4 similarity estimate, signed error in [-1, 1]. */
        ErrorStats eq4Similarity{-1.0, 1.0};
        /** Similarity computations sampled (one per Eq. 2-4 trio). */
        std::uint64_t estimateSamples = 0;

        std::array<CalibrationBin, kCalibrationBins> calibration{};
        double brierSum = 0.0;
        std::uint64_t brierSamples = 0;

        /** Ordered by (enemy sTx, victim sTx); bounded by kMaxPairs. */
        std::map<std::pair<std::int64_t, std::int64_t>, PairStats>
            pairs;
        /** Outcomes not attributed to a pair (ledger full). */
        std::uint64_t droppedEvents = 0;

        /** Global outcome totals (pair-attributed or not). */
        std::uint64_t truePositives = 0;
        std::uint64_t falsePositives = 0;
        std::uint64_t falseNegatives = 0;
        std::uint64_t trueNegatives = 0;
        std::uint64_t predictedAborts = 0;
        Cycles wastedStallCycles = 0;
        Cycles savedAbortCycles = 0;
        Cycles fnWastedCycles = 0;
        Cycles predictedAbortWastedCycles = 0;

        /** Mean squared error of confidence vs conflict outcome. */
        double brierScore() const;
        double calibrationBinLo(int i) const;
        double calibrationBinHi(int i) const;
        /** Body of the bfgts-qual-v1 report (no envelope). */
        void writeJson(JsonWriter &jw) const;
    };

    QualityRecorder() = default;

    /**
     * Optional per-decision JSONL ledger sink (one line per
     * classified outcome). Borrowed; must outlive the recorder.
     */
    void setJsonlSink(std::ostream *jsonl) { jsonl_ = jsonl; }

    /**
     * Record one similarity computation for static transaction
     * @p key. @p rw_lines is the committing attempt's exact RW-line
     * set (sorted, unique); the previous exact set stored via
     * noteSet() is the ground truth for Eq. 3/4. Estimates are the
     * values the CM actually used; @p occupancy is the committing
     * signature's fill fraction and @p avg_size the Eq. 4
     * denominator. Eq. 2 is recorded even when no previous set
     * exists yet.
     */
    void recordEstimate(std::int64_t key,
                        const std::vector<mem::Addr> &rw_lines,
                        double est_size, double est_inter,
                        double est_sim, double occupancy,
                        double avg_size);

    /**
     * Remember @p rw_lines as the exact set behind the signature the
     * CM just stored for @p key (call exactly when the CM refreshes
     * its stored lastBloom, so ground truth tracks the estimate).
     */
    void noteSet(std::int64_t key,
                 const std::vector<mem::Addr> &rw_lines);

    /**
     * Record one classified begin decision. @p confidence is the
     * predicted conflict probability in [0, 1], or negative when the
     * CM consulted no confidence (the sample then skips calibration
     * but still feeds the ledger). @p enemy_stx is negative for
     * outcomes with no enemy (true negatives). @p cycles carries the
     * outcome's cycle attribution: stall cycles for FP, attempt
     * cycles for TP/FN/predicted-abort, zero for TN.
     */
    void recordOutcome(Tick tick, std::int64_t enemy_stx,
                       std::int64_t victim_stx, double confidence,
                       Outcome outcome, Cycles cycles);

    const Data &data() const { return data_; }

private:
    Data data_;
    std::ostream *jsonl_ = nullptr;
    /** Exact RW-line set behind each stored signature. */
    std::map<std::int64_t, std::vector<mem::Addr>> prevSets_;
};

/** Name of an outcome as emitted in the JSONL ledger. */
const char *qualityOutcomeName(QualityRecorder::Outcome outcome);

/**
 * Write a complete single-run bfgts-qual-v1 report: envelope
 * (schema/kind/name/git) around Data::writeJson.
 */
void writeQualReport(std::ostream &os, const std::string &name,
                     const QualityRecorder::Data &data);

} // namespace sim

#endif // BFGTS_SIM_QUALITY_H
