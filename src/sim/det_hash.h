/**
 * @file
 * Seed-perturbable hashing for the simulator's unordered containers.
 *
 * Simulation results must never depend on the iteration order of a
 * hash container: that order is unspecified, varies across standard
 * library versions, and silently couples results to memory layout.
 * Every unordered container holding simulation-affecting state uses
 * sim::HashSet / sim::HashMap, whose hash mixes in a process-wide
 * seed taken from the BFGTS_HASH_SEED environment variable (default
 * 0). Changing the seed scrambles bucket order without changing set
 * contents, so a test can run the same simulation under two seeds and
 * assert bit-identical results -- proving no code path reads hash
 * order (see tests/test_determinism.cpp and the lint rule
 * `unordered-iteration` in tools/lint/determinism_lint.py).
 *
 * The seed must only change while no seeded container holds elements
 * (existing buckets are not rehashed); tests set it between
 * Simulation instances.
 */

#ifndef BFGTS_SIM_DET_HASH_H
#define BFGTS_SIM_DET_HASH_H

#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "sim/random.h"

namespace sim {

namespace detail {

inline std::uint64_t
initialHashSeed()
{
    // lint:allow(wall-clock): getenv is read once at startup to
    // *select* the hash seed; the value itself never feeds simulated
    // behavior (results are asserted identical across seeds).
    const char *env = std::getenv("BFGTS_HASH_SEED");
    if (env == nullptr)
        return 0;
    return std::strtoull(env, nullptr, 0);
}

inline std::uint64_t &
hashSeedState()
{
    static std::uint64_t seed = initialHashSeed();
    return seed;
}

} // namespace detail

/** The process-wide hash perturbation seed (from BFGTS_HASH_SEED). */
inline std::uint64_t
hashSeed()
{
    return detail::hashSeedState();
}

/**
 * Override the hash seed (tests only). @pre no sim::HashSet /
 * sim::HashMap instance currently holds elements.
 */
inline void
setHashSeed(std::uint64_t seed)
{
    detail::hashSeedState() = seed;
}

/** Seed-perturbed strong hash for integral keys. */
template <typename T>
struct SeededHash {
    std::size_t
    operator()(const T &value) const
    {
        return static_cast<std::size_t>(
            mix64(static_cast<std::uint64_t>(value) ^ hashSeed()));
    }
};

/** Pointer keys hash by address (membership/lookup use only --
 *  iterating a pointer-keyed container is still order-hazardous and
 *  must be sorted before use; the linter enforces this). */
template <typename T>
struct SeededHash<T *> {
    std::size_t
    operator()(T *value) const
    {
        return static_cast<std::size_t>(
            mix64(reinterpret_cast<std::uintptr_t>(value)
                  ^ hashSeed()));
    }
};

/** Hash set whose bucket order is scrambled by BFGTS_HASH_SEED. */
template <typename T>
using HashSet = std::unordered_set<T, SeededHash<T>>;

/** Hash map whose bucket order is scrambled by BFGTS_HASH_SEED. */
template <typename K, typename V>
using HashMap = std::unordered_map<K, V, SeededHash<K>>;

} // namespace sim

#endif // BFGTS_SIM_DET_HASH_H
