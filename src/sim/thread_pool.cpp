#include "thread_pool.h"

namespace sim {

ThreadPool::ThreadPool(int num_workers)
{
    if (num_workers < 1)
        num_workers = 1;
    threads_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++pending_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown, queue drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace sim
