/**
 * @file
 * Deterministic discrete-event simulation core.
 *
 * The EventQueue orders events by (tick, insertion sequence): two events
 * scheduled for the same tick fire in the order they were scheduled.
 * This makes the whole simulation reproducible regardless of heap
 * internals or container iteration order.
 *
 * Layout: the heap itself holds only 24-byte POD nodes (tick, seq,
 * handle), so sift operations move three words and stay in cache; the
 * std::function callbacks live in a slot slab addressed by the handle.
 * Handles encode (generation << 32 | slot + 1), so cancellation is an
 * O(1) generation bump -- a stale heap node is recognized and skipped
 * when it surfaces -- and kNoEvent (0) can never collide with a live
 * handle. Slots are recycled through a free list, so a steady-state
 * simulation allocates no memory per event.
 */

#ifndef BFGTS_SIM_EVENT_QUEUE_H
#define BFGTS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace sim {

class AuditEngine;
class Profiler;

/** Callback type for scheduled events. */
using EventFn = std::function<void()>;

/** Handle used to cancel a scheduled event (generation | slot + 1). */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
constexpr EventId kNoEvent = 0;

/**
 * A deterministic event queue driving simulated time forward.
 *
 * Usage: schedule() callbacks at absolute ticks or schedule relative to
 * now with scheduleIn(), then run() until the queue drains (or a bound
 * is hit). Event callbacks may schedule further events.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when  Absolute tick; must be >= curTick().
     * @param fn    Callback to invoke.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, EventFn fn);

    /** Schedule a callback @p delay cycles from now. */
    EventId
    scheduleIn(Cycles delay, EventFn fn)
    {
        return schedule(curTick_ + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an already-fired or already-cancelled event is a no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /**
     * Run events until the queue is empty or limits are reached.
     *
     * @param max_tick    Stop before executing events after this tick.
     * @param max_events  Safety bound on number of events executed;
     *                    exceeding it is a panic (runaway simulation).
     * @return Number of events executed.
     */
    std::uint64_t run(Tick max_tick = kMaxTick,
                      std::uint64_t max_events = kDefaultMaxEvents);

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Safety bound: panic if a run exceeds this many events. */
    static constexpr std::uint64_t kDefaultMaxEvents = 50'000'000'000ULL;

    /**
     * Attach the invariant auditor (borrowed, may be null). When
     * checking is active, schedule() reports past-scheduling through
     * the engine ("event.monotonic") instead of asserting, and run()
     * verifies the executed (tick, seq) order is strictly increasing
     * ("event.tiebreak").
     */
    void setAudit(AuditEngine *audit) { audit_ = audit; }

    /**
     * Attach the host-performance profiler (borrowed, may be null).
     * When set, schedule() and run() charge heap work to the
     * event-queue wall-time phase, track the byte high-water of the
     * heap plus the callback slab, and report each executed event for
     * Perfetto counter sampling. Purely observational: simulated
     * behavior is unchanged.
     */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Test hook for the audit mutation selftest: rewind the insertion
     * sequence counter so a later-scheduled same-tick event executes
     * out of insertion order, which the tie-break check must catch.
     * Never call outside tests.
     */
    void testSetNextSeq(std::uint64_t seq) { nextSeq_ = seq; }

  private:
    /** Heap node: plain data only, three words per sift move. */
    struct HeapNode {
        Tick when;
        std::uint64_t seq;
        EventId id;
    };

    /** Slab slot owning a callback; gen invalidates stale handles. */
    struct Slot {
        EventFn fn;
        std::uint32_t gen = 0;
        bool live = false;
    };

    static bool
    earlier(const HeapNode &a, const HeapNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void heapPush(const HeapNode &node);
    void heapPop();

    /** Take a free (or new) slot and move @p fn into it. */
    std::uint32_t acquireSlot(EventFn &&fn);
    /** Invalidate a slot's handle and recycle it. */
    void releaseSlot(std::uint32_t slot);

    static EventId
    encodeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32)
             | (static_cast<EventId>(slot) + 1);
    }

    /** Slot index of @p id, or a value >= slots_.size() if invalid. */
    std::uint32_t
    slotOf(EventId id) const
    {
        return static_cast<std::uint32_t>(id & 0xffffffffULL) - 1;
    }

    /** True if @p id names the live scheduled event in its slot. */
    bool liveId(EventId id) const;

    /** Bytes held by the heap and the slab, for the profiler gauge. */
    std::size_t structBytes() const;

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    AuditEngine *audit_ = nullptr;
    Profiler *profiler_ = nullptr;
    /** Last executed (tick, seq), for the tie-break order check. */
    Tick lastExecWhen_ = 0;
    std::uint64_t lastExecSeq_ = 0;
    bool anyExecuted_ = false;
    /** Binary min-heap over (when, seq). */
    std::vector<HeapNode> heap_;
    /** Callback slab; HeapNode.id points into it. */
    std::vector<Slot> slots_;
    /** Recycled slot indices. */
    std::vector<std::uint32_t> freeSlots_;
};

} // namespace sim

#endif // BFGTS_SIM_EVENT_QUEUE_H
