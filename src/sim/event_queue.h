/**
 * @file
 * Deterministic discrete-event simulation core.
 *
 * The EventQueue orders events by (tick, insertion sequence): two events
 * scheduled for the same tick fire in the order they were scheduled.
 * This makes the whole simulation reproducible regardless of heap
 * internals or container iteration order.
 */

#ifndef BFGTS_SIM_EVENT_QUEUE_H
#define BFGTS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/det_hash.h"
#include "sim/types.h"

namespace sim {

class AuditEngine;
class Profiler;

/** Callback type for scheduled events. */
using EventFn = std::function<void()>;

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
constexpr EventId kNoEvent = 0;

/**
 * A deterministic event queue driving simulated time forward.
 *
 * Usage: schedule() callbacks at absolute ticks or schedule relative to
 * now with scheduleIn(), then run() until the queue drains (or a bound
 * is hit). Event callbacks may schedule further events.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when  Absolute tick; must be >= curTick().
     * @param fn    Callback to invoke.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, EventFn fn);

    /** Schedule a callback @p delay cycles from now. */
    EventId
    scheduleIn(Cycles delay, EventFn fn)
    {
        return schedule(curTick_ + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an already-fired or already-cancelled event is a no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /**
     * Run events until the queue is empty or limits are reached.
     *
     * @param max_tick    Stop before executing events after this tick.
     * @param max_events  Safety bound on number of events executed;
     *                    exceeding it is a panic (runaway simulation).
     * @return Number of events executed.
     */
    std::uint64_t run(Tick max_tick = kMaxTick,
                      std::uint64_t max_events = kDefaultMaxEvents);

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Safety bound: panic if a run exceeds this many events. */
    static constexpr std::uint64_t kDefaultMaxEvents = 50'000'000'000ULL;

    /**
     * Attach the invariant auditor (borrowed, may be null). When
     * checking is active, schedule() reports past-scheduling through
     * the engine ("event.monotonic") instead of asserting, and run()
     * verifies the executed (tick, seq) order is strictly increasing
     * ("event.tiebreak").
     */
    void setAudit(AuditEngine *audit) { audit_ = audit; }

    /**
     * Attach the host-performance profiler (borrowed, may be null).
     * When set, schedule() and run() charge heap work to the
     * event-queue wall-time phase, track the heap's byte high-water,
     * and report each executed event for Perfetto counter sampling.
     * Purely observational: simulated behavior is unchanged.
     */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Test hook for the audit mutation selftest: rewind the insertion
     * sequence counter so a later-scheduled same-tick event executes
     * out of insertion order, which the tie-break check must catch.
     * Never call outside tests.
     */
    void testSetNextSeq(std::uint64_t seq) { nextSeq_ = seq; }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::size_t live_ = 0;
    AuditEngine *audit_ = nullptr;
    Profiler *profiler_ = nullptr;
    /** Last executed (tick, seq), for the tie-break order check. */
    Tick lastExecWhen_ = 0;
    std::uint64_t lastExecSeq_ = 0;
    bool anyExecuted_ = false;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    sim::HashSet<EventId> cancelled_;
};

} // namespace sim

#endif // BFGTS_SIM_EVENT_QUEUE_H
