/**
 * @file
 * Chrome trace_event timeline export.
 *
 * ChromeTraceSink renders the structured TraceRecord stream into the
 * Chrome trace-event JSON format, loadable directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing. Conventions
 * (docs/observability.md):
 *
 *  - one track per CPU (pid 0, tid = CPU id), named "CPU <n>";
 *  - duration slices (B/E pairs) for transaction attempts ("run
 *    sTx<k>", closed by commit or abort with the outcome in args)
 *    and begin-stall windows ("stall", closed by stall-end,
 *    stall-timeout, preemption, or the next start);
 *  - instant events for predictions ("predict"), conflicts
 *    ("conflict"), yields, blocks, and rollbacks;
 *  - counter tracks ("commits/win", "abortRate", ...) fed per window
 *    by sim::Sampler via counter().
 *
 * Simulated ticks map 1:1 onto trace microseconds (the format's time
 * unit); absolute times are meaningless, only spans and order are.
 *
 * The sink keeps at most one open run slice and one open stall slice
 * per CPU and closes them defensively when records interleave (e.g.
 * a preempted begin-staller whose CPU runs someone else), so the
 * emitted B/E pairs always balance and nest per track.
 *
 * The document is written incrementally; close() (or the destructor)
 * terminates the JSON. Output is deterministic: equal record streams
 * produce byte-identical documents.
 */

#ifndef BFGTS_SIM_CHROME_TRACE_H
#define BFGTS_SIM_CHROME_TRACE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace sim {

/** Streams TraceRecords as Chrome trace-event JSON. */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os);

    /** Closes the document if close() was not called. */
    ~ChromeTraceSink() override;

    ChromeTraceSink(const ChromeTraceSink &) = delete;
    ChromeTraceSink &operator=(const ChromeTraceSink &) = delete;

    /** Terminate the JSON document. Idempotent. */
    void close();

    /**
     * Emit one sample of counter track @p name at @p tick. Counter
     * events live on the process track, independent of CPUs.
     */
    void counter(Tick tick, const char *name, double value);

  protected:
    void write(const TraceRecord &record) override;

  private:
    /** What duration slice, if any, is open on a CPU track. A CPU
     *  runs at most one of these at a time (threads never leave
     *  their CPU mid-transaction), so one slot suffices. */
    enum class Slice { None, Run, Stall, Retry };

    struct CpuTrack {
        bool named = false;
        Slice open = Slice::None;
        /** Name the open slice was begun with (E must match B). */
        std::string openName;
    };

    CpuTrack &track(CpuId cpu);

    /** Comma/newline separator between array elements. */
    void sep();

    /** Emit a thread_name metadata event once per CPU track. */
    void nameTrack(CpuId cpu);

    /** Begin a duration slice of @p kind named @p name. */
    void beginSlice(const TraceRecord &record, Slice kind,
                    std::string name);

    /**
     * End the open slice on @p cpu at @p tick. When @p record is
     * non-null its details (plus @p outcome) become the E event's
     * args, which trace viewers merge into the slice.
     */
    void endSlice(CpuId cpu, Tick tick,
                  const TraceRecord *record = nullptr,
                  const char *outcome = nullptr);

    /** End the open slice if any (defensive; never emits E alone). */
    void closeOpen(CpuId cpu, Tick tick);

    void instant(const TraceRecord &record);

    std::ostream &os_;
    std::vector<CpuTrack> tracks_;
    bool first_ = true;
    bool closed_ = false;
};

} // namespace sim

#endif // BFGTS_SIM_CHROME_TRACE_H
