/**
 * @file
 * Structured transaction-lifecycle tracing.
 *
 * The simulator emits one TraceRecord per lifecycle event (begin
 * decisions, starts, conflicts, aborts, commits, rollbacks). A
 * TraceSink receives the records, filters them by category, and
 * renders them; two implementations ship:
 *  - TextTraceSink: one human-readable "key=value" line per record;
 *  - JsonlTraceSink: one JSON object per line (JSON Lines), for
 *    offline reconstruction of full lifecycle timelines.
 *
 * Categories (docs/observability.md):
 *  - tx:        transaction lifecycle (start/commit/abort)
 *  - sched:     scheduling actions (suspend, yield, block, timeout)
 *  - cm:        contention-manager arbitration (conflicts)
 *  - predictor: begin-time conflict predictions
 *  - mem:       memory/versioning events (undo-log rollback)
 *  - audit:     invariant-audit violations (sim/audit.h)
 *
 * Tracing is observational only: sinks add no simulated cost, and a
 * filtered-out record costs one mask test.
 */

#ifndef BFGTS_SIM_TRACE_H
#define BFGTS_SIM_TRACE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace sim {

/** Event categories a sink can filter on. */
enum class TraceCategory : unsigned {
    Tx = 0,
    Sched,
    Cm,
    Predictor,
    Mem,
    Audit,
};

/** Number of trace categories (mask width). */
constexpr unsigned kNumTraceCategories = 6;

/** Short lowercase category name ("tx", "sched", ...). */
const char *traceCategoryName(TraceCategory category);

/**
 * Parse a category name; returns false (and leaves @p out alone) for
 * unknown names.
 */
bool traceCategoryFromName(const std::string &name,
                           TraceCategory *out);

/** One structured lifecycle event. */
struct TraceRecord {
    Tick tick = 0;
    CpuId cpu = kNoCpu;
    ThreadId thread = kNoThread;
    /** Static transaction ID (site), -1 when not applicable. */
    std::int64_t sTx = -1;
    /** Dynamic transaction ID, -1 when not applicable. */
    std::int64_t dTx = -1;
    TraceCategory category = TraceCategory::Tx;
    /** Event name ("start", "commit", "abort", "predict", ...). */
    const char *event = "";
    /** Event-specific key/value details, in emission order. */
    std::vector<std::pair<std::string, std::string>> details;
};

/**
 * Receives trace records; subclasses render them.
 *
 * The category mask defaults to everything enabled. wants() is
 * exposed so emitters can skip building detail strings for records
 * that would be dropped anyway.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Render @p record if its category is enabled. */
    void
    emit(const TraceRecord &record)
    {
        if (wants(record.category))
            write(record);
    }

    /** Is @p category currently enabled? Virtual so composite sinks
     *  (FanoutTraceSink) can answer for their children; emitters use
     *  it to skip building detail strings nobody will render. */
    virtual bool
    wants(TraceCategory category) const
    {
        return (mask_ & bit(category)) != 0;
    }

    /** Enable every category (the default). */
    void enableAll() { mask_ = allMask(); }

    /** Enable exactly the given categories. */
    void
    enableOnly(const std::vector<TraceCategory> &categories)
    {
        mask_ = 0;
        for (TraceCategory category : categories)
            mask_ |= bit(category);
    }

  protected:
    /** Render one record; only called for enabled categories. */
    virtual void write(const TraceRecord &record) = 0;

  private:
    static unsigned
    bit(TraceCategory category)
    {
        return 1u << static_cast<unsigned>(category);
    }

    static unsigned allMask() { return (1u << kNumTraceCategories) - 1; }

    unsigned mask_ = allMask();
};

/** "tick=N cpu=C thread=T sTx=S dTx=D cat=x event k=v..." lines. */
class TextTraceSink : public TraceSink
{
  public:
    explicit TextTraceSink(std::ostream &os) : os_(os) {}

  protected:
    void write(const TraceRecord &record) override;

  private:
    std::ostream &os_;
};

/** One compact JSON object per record (JSON Lines). */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : os_(os) {}

  protected:
    void write(const TraceRecord &record) override;

  private:
    std::ostream &os_;
};

/**
 * Forwards every record to several child sinks, so one run can feed
 * e.g. a JSONL trace and a Chrome timeline at once. Each child still
 * applies its own category mask; wants() answers true if any child
 * does, so emitters build details exactly when someone renders them.
 * Children are borrowed, not owned.
 */
class FanoutTraceSink : public TraceSink
{
  public:
    void addSink(TraceSink *sink) { sinks_.push_back(sink); }

    bool
    wants(TraceCategory category) const override
    {
        for (const TraceSink *sink : sinks_) {
            if (sink->wants(category))
                return true;
        }
        return false;
    }

  protected:
    void
    write(const TraceRecord &record) override
    {
        for (TraceSink *sink : sinks_)
            sink->emit(record);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace sim

#endif // BFGTS_SIM_TRACE_H
