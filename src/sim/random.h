/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every source of randomness in the simulator draws from an explicitly
 * seeded Rng so that a simulation is a pure function of its
 * configuration: identical config + seed => identical results. The
 * generator is xoshiro256**, seeded through splitmix64, which is fast,
 * has a 2^256-1 period, and passes BigCrush.
 */

#ifndef BFGTS_SIM_RANDOM_H
#define BFGTS_SIM_RANDOM_H

#include <cstdint>

#include "sim/logging.h"

namespace sim {

/** splitmix64 step; used for seeding and as a cheap stateless mixer. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a value (finalizer of splitmix64). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** pseudo-random generator.
 *
 * Cheap to copy; each simulated thread owns an independently seeded
 * instance so event ordering can never perturb a thread's stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        sim_assert(bound > 0);
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        sim_assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sim

#endif // BFGTS_SIM_RANDOM_H
