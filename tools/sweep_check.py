#!/usr/bin/env python3
"""Sweep-engine differential gate (the `sweep_identical` ctest).

Drives `bfgts_cli --sweep` over a small quick-mode matrix and asserts
the properties the sweep engine guarantees (src/runner/sweep.h):

* **Worker-count invariance** -- the bfgts-sweep-v1 report of an
  8-worker sweep is byte-identical to the 1-worker report, and that
  holds under two different BFGTS_HASH_SEED values (host parallelism
  and hash-container bucket order are both invisible).
* **Cache equivalence** -- rerunning a sweep against a warm on-disk
  cache reproduces the report byte-for-byte while executing zero
  simulations (checked against the "sweep: N cells, X executed,
  Y cached, Z errors" summary line on stderr).

Usage
-----
  sweep_check.py --cli path/to/bfgts_cli [--jobs 8]
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# Two hash seeds chosen to maximally scramble bucket orders (the same
# pair tests/test_determinism.cpp uses).
HASH_SEEDS = ["0", "18364758544493064720"]

SWEEP_ARGS = [
    "--sweep",
    "--workloads", "Intruder,Genome,Kmeans",
    "--cms", "Backoff,PTS,BFGTS-HW",
    "--seeds", "1,2",
    "--baselines",
]

SUMMARY_RE = re.compile(
    r"sweep: (\d+) cells, (\d+) executed, (\d+) cached, (\d+) errors")


def run_sweep(cli, json_path, jobs, hash_seed, cache_dir=None):
    """Run one sweep; returns (report bytes, summary tuple)."""
    env = dict(os.environ, BFGTS_QUICK="1", BFGTS_HASH_SEED=hash_seed)
    env.pop("BFGTS_SWEEP_CACHE", None)
    cmd = [cli] + SWEEP_ARGS + ["--jobs", str(jobs),
                                "--json", json_path]
    if cache_dir:
        cmd += ["--cache", cache_dir]
    proc = subprocess.run(cmd, env=env, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True,
                          check=True)
    match = SUMMARY_RE.search(proc.stderr)
    if not match:
        raise AssertionError("no sweep summary line on stderr:\n"
                             + proc.stderr)
    with open(json_path, "rb") as fh:
        report = fh.read()
    return report, tuple(int(g) for g in match.groups())


def main():
    parser = argparse.ArgumentParser(
        description="Differential check of bfgts_cli --sweep")
    parser.add_argument("--cli", required=True,
                        help="path to the bfgts_cli binary")
    parser.add_argument("--jobs", type=int, default=8,
                        help="parallel worker count to compare "
                             "against serial (default 8)")
    args = parser.parse_args()

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        reports = {}
        for seed in HASH_SEEDS:
            for jobs in (1, args.jobs):
                path = os.path.join(
                    tmp, "sweep_s%s_j%d.json" % (seed, jobs))
                report, summary = run_sweep(args.cli, path, jobs,
                                            seed)
                reports[(seed, jobs)] = report
                cells, executed, cached, errors = summary
                if executed != cells or cached != 0 or errors != 0:
                    print("FAIL: cold sweep (seed %s, jobs %d) "
                          "summary %s: expected all %d cells "
                          "executed" % (seed, jobs, summary, cells))
                    failures += 1

        baseline = reports[(HASH_SEEDS[0], 1)]
        for key, report in reports.items():
            if report != baseline:
                print("FAIL: report for (hash seed %s, jobs %d) "
                      "differs from (seed %s, jobs 1)"
                      % (key[0], key[1], HASH_SEEDS[0]))
                failures += 1
        if failures == 0:
            print("sweep_check: %d-worker report byte-identical to "
                  "serial under %d hash seeds"
                  % (args.jobs, len(HASH_SEEDS)))

        # Cache equivalence: cold run populates, warm run must answer
        # everything from disk and still produce identical bytes.
        cache_dir = os.path.join(tmp, "cache")
        cold_path = os.path.join(tmp, "sweep_cold.json")
        warm_path = os.path.join(tmp, "sweep_warm.json")
        cold, cold_summary = run_sweep(args.cli, cold_path, args.jobs,
                                       HASH_SEEDS[0], cache_dir)
        warm, warm_summary = run_sweep(args.cli, warm_path, args.jobs,
                                       HASH_SEEDS[0], cache_dir)
        cells = cold_summary[0]
        if warm_summary != (cells, 0, cells, 0):
            print("FAIL: warm sweep summary %s: expected all %d "
                  "cells cached, none executed"
                  % (warm_summary, cells))
            failures += 1
        if warm != cold:
            print("FAIL: warm-cache report differs from cold run")
            failures += 1
        if cold != baseline:
            print("FAIL: cached sweep report differs from uncached")
            failures += 1
        if failures == 0:
            print("sweep_check: warm cache reproduced the report "
                  "with 0 of %d cells executed" % cells)

    if failures:
        print("sweep_check: %d failure(s)" % failures)
        return 1
    print("sweep_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
