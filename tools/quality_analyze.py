#!/usr/bin/env python3
"""Analyze and cross-check a bfgts-qual-v1 decision-quality report.

Given the quality report and the bfgts-obs-v1 report of the *same*
run, verifies the invariants that tie the two together:

  - ledger totals (TP/FP/FN/TN/predicted-abort) equal the obs-v1
    predictor_quality counters -- the recorder and the runner classify
    every begin decision identically;
  - fnWastedCycles + predictedAbortWastedCycles equals the sum of
    wastedCycles over every obs-v1 conflict edge -- abort attribution
    in the quality ledger mirrors the conflict-graph accounting
    exactly (both charge the attempt's cycles to the same
    (winner, victim) edge);
  - the per-pair rows sum to the totals (exactly when no events were
    dropped from the bounded ledger, as a lower bound otherwise);
  - the calibration table is consistent: per-bin decisions sum to the
    Brier sample count, and no bin has more conflicts or stalls than
    decisions.

With --jsonl, also replays the per-decision ledger stream and checks
that its outcome counts and cycle sums reproduce the report totals.

Prints a human summary (estimator error, reliability table, the top
pairs by wasted-stall and saved-abort cycles) and exits non-zero on
the first violated invariant. Stdlib only.

Usage:
  quality_analyze.py QUAL.json --obs OBS.json [--jsonl LEDGER.jsonl]
  quality_analyze.py QUAL.json            # summary only, no checks
"""

import argparse
import json
import sys

CHECKED = {"truePositives", "falsePositives", "falseNegatives",
           "trueNegatives", "predictedAborts"}
CYCLE_FIELDS = {"tp": "savedAbortCycles", "fp": "wastedStallCycles",
                "fn": "fnWastedCycles",
                "predicted_abort": "predictedAbortWastedCycles"}
OUTCOME_FIELDS = {"tp": "truePositives", "fp": "falsePositives",
                  "fn": "falseNegatives", "tn": "trueNegatives",
                  "predicted_abort": "predictedAborts"}


def fail(msg):
    print(f"quality_analyze: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: cannot load ({exc})")


def quality_body(doc, path):
    check(doc.get("schema") == "bfgts-qual-v1",
          f"{path}: schema is {doc.get('schema')!r}, "
          "want 'bfgts-qual-v1'")
    check(doc.get("kind") == "run",
          f"{path}: kind is {doc.get('kind')!r}; cross-checking "
          "needs a single-run report (sweep reports aggregate many "
          "runs)")
    return doc["run"]


def cross_check_obs(qual, obs, qual_path, obs_path):
    pq = obs.get("predictor_quality")
    check(pq is not None, f"{obs_path}: no predictor_quality")
    totals = qual["ledger"]["totals"]
    for field in sorted(CHECKED):
        check(totals[field] == pq[field],
              f"ledger totals.{field} {totals[field]} != obs-v1 "
              f"predictor_quality {field} {pq[field]}")

    edges = obs.get("conflict_edges")
    check(edges is not None, f"{obs_path}: no conflict_edges")
    edge_wasted = sum(e["wastedCycles"] for e in edges["edges"])
    abort_wasted = (totals["fnWastedCycles"]
                    + totals["predictedAbortWastedCycles"])
    check(abort_wasted == edge_wasted,
          f"abort-attributed cycles {abort_wasted} (fn "
          f"{totals['fnWastedCycles']} + predicted-abort "
          f"{totals['predictedAbortWastedCycles']}) != conflict-edge "
          f"wastedCycles sum {edge_wasted}")

    print(f"quality_analyze: {qual_path} consistent with {obs_path} "
          f"(outcome totals match; {abort_wasted} abort cycles "
          "reconciled against the conflict graph)")


def self_check(qual):
    ledger = qual["ledger"]
    totals = ledger["totals"]
    dropped = ledger["droppedEvents"]
    for field in sorted(set(OUTCOME_FIELDS.values())
                        | set(CYCLE_FIELDS.values())):
        if field == "trueNegatives":
            continue  # never pair-attributed (no enemy)
        pair_sum = sum(p[field] for p in ledger["pairs"])
        check(pair_sum <= totals[field],
              f"pair {field} sum {pair_sum} exceeds total "
              f"{totals[field]}")
        if dropped == 0:
            check(pair_sum == totals[field],
                  f"pair {field} sum {pair_sum} != total "
                  f"{totals[field]} with no dropped events")

    cal = qual["calibration"]
    decisions = 0
    for i, row in enumerate(cal["reliability"]):
        check(row["stalls"] <= row["decisions"],
              f"reliability[{i}]: more stalls than decisions")
        check(row["conflicts"] <= row["decisions"],
              f"reliability[{i}]: more conflicts than decisions")
        decisions += row["decisions"]
    check(decisions == cal["samples"],
          f"reliability decisions {decisions} != calibration "
          f"samples {cal['samples']}")
    classified = sum(totals[f] for f in sorted(CHECKED))
    check(cal["samples"] <= classified,
          f"calibration samples {cal['samples']} exceed classified "
          f"outcomes {classified}")


def replay_jsonl(path, qual):
    totals = qual["ledger"]["totals"]
    counts = {name: 0 for name in OUTCOME_FIELDS}
    cycles = {name: 0 for name in CYCLE_FIELDS}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(f"{path}:{lineno}: invalid JSON ({exc})")
            outcome = record["outcome"]
            check(outcome in OUTCOME_FIELDS,
                  f"{path}:{lineno}: bad outcome {outcome!r}")
            counts[outcome] += 1
            if outcome in cycles:
                cycles[outcome] += record["cycles"]
    for outcome, field in sorted(OUTCOME_FIELDS.items()):
        check(counts[outcome] == totals[field],
              f"{path}: {counts[outcome]} '{outcome}' lines != "
              f"totals.{field} {totals[field]}")
    for outcome, field in sorted(CYCLE_FIELDS.items()):
        check(cycles[outcome] == totals[field],
              f"{path}: '{outcome}' cycles {cycles[outcome]} != "
              f"totals.{field} {totals[field]}")
    print(f"quality_analyze: {path} replays to the report totals "
          f"({sum(counts.values())} decisions)")


def summarize(qual):
    est = qual["estimator"]
    print(f"estimator ({est['samples']} samples):")
    for eq in ("eq2_set_size", "eq3_intersection", "eq4_similarity"):
        s = est[eq]
        print(f"  {eq:<16} n={s['count']:<6} "
              f"meanSigned={s['meanSigned']:+.4f} "
              f"meanAbs={s['meanAbs']:.4f} maxAbs={s['maxAbs']:.4f}")
    cal = qual["calibration"]
    print(f"calibration ({cal['samples']} samples, "
          f"Brier {cal['brierScore']:.4f}):")
    print("  bin          decisions  stalls  conflictRate")
    for row in cal["reliability"]:
        if row["decisions"] == 0:
            continue
        print(f"  [{row['lo']:.1f},{row['hi']:.1f})"
              f"   {row['decisions']:>9}  {row['stalls']:>6}"
              f"  {row['conflictRate']:>12.3f}")
    ledger = qual["ledger"]
    totals = ledger["totals"]
    print("ledger totals: "
          f"TP={totals['truePositives']} "
          f"FP={totals['falsePositives']} "
          f"FN={totals['falseNegatives']} "
          f"TN={totals['trueNegatives']} "
          f"PA={totals['predictedAborts']}")
    print(f"  wasted stall   {totals['wastedStallCycles']:>10} cycles")
    print(f"  saved abort    {totals['savedAbortCycles']:>10} cycles")
    print(f"  fn wasted      {totals['fnWastedCycles']:>10} cycles")
    print("  pa wasted      "
          f"{totals['predictedAbortWastedCycles']:>10} cycles")
    pairs = ledger["pairs"]
    if pairs:
        worst = sorted(pairs, key=lambda p: (-p["wastedStallCycles"],
                                             p["enemy"], p["victim"]))
        best = sorted(pairs, key=lambda p: (-p["savedAbortCycles"],
                                            p["enemy"], p["victim"]))
        print("top pairs by wasted stall / saved abort cycles:")
        for p in worst[:3]:
            print(f"  ({p['enemy']},{p['victim']}) wastedStall="
                  f"{p['wastedStallCycles']} FP={p['falsePositives']}")
        for p in best[:3]:
            print(f"  ({p['enemy']},{p['victim']}) savedAbort="
                  f"{p['savedAbortCycles']} TP={p['truePositives']}")
    if ledger["droppedEvents"]:
        print(f"  NOTE: {ledger['droppedEvents']} events dropped "
              f"(ledger bounded at {ledger['maxPairs']} pairs)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("qual", help="bfgts-qual-v1 run report")
    parser.add_argument("--obs",
                        help="bfgts-obs-v1 report of the same run "
                             "to cross-check against")
    parser.add_argument("--jsonl",
                        help="--quality-jsonl ledger of the same run "
                             "to replay against the totals")
    parser.add_argument("--quiet", action="store_true",
                        help="checks only, no summary")
    args = parser.parse_args()

    qual = quality_body(load(args.qual), args.qual)
    self_check(qual)
    if args.obs:
        cross_check_obs(qual, load(args.obs), args.qual, args.obs)
    if args.jsonl:
        replay_jsonl(args.jsonl, qual)
    if not args.quiet:
        summarize(qual)
    print("quality_analyze: OK")


if __name__ == "__main__":
    main()
