#!/usr/bin/env python3
"""Exact comparison of two bfgts-obs-v1 documents, host keys aside.

The byte-identity gates (CI "audit" job, profile-on/off checks) used
to literally ``diff`` two bench JSON files. Since every bench row now
carries the host-throughput keys ``wall_ns_per_cycle`` and
``events_per_sec`` (bench/bench_util.h), two otherwise-identical
runs differ in exactly those values, so the gates compare structure
instead: this tool asserts the documents are *exactly* equal after
dropping the host keys (and ``git``, which can differ across
checkouts). No tolerance -- any other divergence is a determinism
bug, which is precisely what those gates exist to catch.

Usage
-----
  compare_reports.py A.json B.json [more.json...]

With more than two files, every file is compared against the first.
Exit 0 when all match, 1 otherwise.
"""

import json
import sys

IGNORED_KEYS = {"git", "wall_ns_per_cycle", "events_per_sec"}


def strip(value):
    if isinstance(value, dict):
        return {k: strip(v) for k, v in sorted(value.items())
                if k not in IGNORED_KEYS}
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def diff_paths(path, a, b, out):
    """Collect the paths where stripped values differ (for the error
    message; equality was already decided on the whole documents)."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                out.append("%s.%s: present on one side only"
                           % (path, key))
            else:
                diff_paths("%s.%s" % (path, key), a[key], b[key],
                           out)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append("%s: %d vs %d entries"
                       % (path, len(a), len(b)))
            return
        for i, (x, y) in enumerate(zip(a, b)):
            diff_paths("%s[%d]" % (path, i), x, y, out)
    elif a != b:
        out.append("%s: %r vs %r" % (path, a, b))


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    paths = argv[1:]
    docs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            docs.append(strip(json.load(fh)))
    status = 0
    for path, doc in zip(paths[1:], docs[1:]):
        if doc == docs[0]:
            continue
        status = 1
        details = []
        diff_paths("$", docs[0], doc, details)
        print("compare_reports: %s differs from %s (beyond the "
              "ignored host keys):" % (path, paths[0]))
        for detail in details[:20]:
            print("  " + detail)
        if len(details) > 20:
            print("  ... and %d more" % (len(details) - 20))
    if status == 0:
        print("compare_reports: OK (%d file(s) identical modulo %s)"
              % (len(paths), ", ".join(sorted(IGNORED_KEYS))))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
