/**
 * @file
 * Workload calibration sweep driver.
 *
 * This is the tool that fitted the synthetic STAMP presets (see
 * docs/calibration.md): it grids over the knobs of a candidate
 * workload shape and prints, per configuration, the Backoff baseline
 * contention and the speedups of the key managers, so a preset can
 * be tuned to the paper's published shape.
 *
 * The shipped grid sweeps the "hot queue + parallel body" shape that
 * fits Intruder; edit intruderLike() / the loops to fit other
 * benchmarks. Not part of the shipped library -- a maintainer tool.
 */

#include <cstdio>
#include <memory>

#include "runner/experiment.h"
#include "runner/simulation.h"
#include "workloads/generator.h"

using workloads::SiteParams;
using workloads::SyntheticParams;

namespace {

/** Queue-plus-body shape: see docs/calibration.md. */
SyntheticParams
intruderLike(double queue_weight, double body_frac, double body_wf,
             int queue_pool, sim::Cycles nontx, sim::Cycles body_work)
{
    SyntheticParams params;
    params.name = "cal";
    params.txPerThread = 200;
    params.hotGroupLines = {64, 256};

    SiteParams queue;
    queue.weight = queue_weight;
    queue.meanAccesses = 4;
    queue.accessJitter = 1;
    queue.similarity = 0.67;
    queue.workPerAccess = 10;
    queue.nonTxWork = nontx;
    queue.hotGroups = {
        {.group = 0,
         .frac = 0.8,
         .writeFraction = 0.9,
         .stickyFrac = 0.9,
         .stickyPoolLines = static_cast<std::uint64_t>(queue_pool)}};

    auto body = [&](double sim, double sticky) {
        SiteParams site;
        site.weight = 1.5;
        site.meanAccesses = 8;
        site.accessJitter = 2;
        site.similarity = sim;
        site.workPerAccess = body_work;
        site.nonTxWork = nontx;
        site.hotGroups = {{.group = 1,
                           .frac = body_frac,
                           .writeFraction = body_wf,
                           .stickyFrac = sticky,
                           .stickyPoolLines = 96}};
        return site;
    };
    params.sites = {queue, body(0.40, 0.35), body(0.66, 0.65)};
    return params;
}

runner::SimResults
run(const SyntheticParams &params, cm::CmKind kind, int cpus, int tpc,
    int tx_per_thread)
{
    runner::SimConfig config;
    config.cm = kind;
    config.numCpus = cpus;
    config.threadsPerCpu = tpc;
    config.txPerThreadOverride = tx_per_thread;
    SyntheticParams copy = params;
    config.workloadFactory = [copy](int threads) {
        return std::make_unique<workloads::SyntheticWorkload>(
            copy, threads);
    };
    runner::Simulation simulation(config);
    return simulation.run();
}

} // namespace

int
main()
{
    std::printf("%4s %5s %4s %5s %5s | %6s %6s | %6s %6s %6s\n", "qw",
                "bfrac", "pool", "nontx", "work", "bkCont", "bkSp",
                "bfSp", "bfCont", "bf/bk");
    for (double qw : {2.0, 3.0}) {
        for (double frac : {0.35}) {
            for (int pool : {2, 3}) {
                for (int nontx : {200, 350}) {
                    for (int work : {30}) {
                        const auto params = intruderLike(
                            qw, frac, 0.6, pool, nontx, work);
                        const auto base =
                            run(params, cm::CmKind::Backoff, 1, 1,
                                200 * 64);
                        const auto bk = run(
                            params, cm::CmKind::Backoff, 16, 4, 200);
                        const auto bf = run(
                            params, cm::CmKind::BfgtsHw, 16, 4, 200);
                        const double b =
                            static_cast<double>(base.runtime);
                        std::printf(
                            "%4.1f %5.2f %4d %5d %5d | %5.1f%% %6.2f "
                            "| %6.2f %5.1f%% %6.2f\n",
                            qw, frac, pool, nontx, work,
                            100 * bk.contentionRate, b / bk.runtime,
                            b / bf.runtime, 100 * bf.contentionRate,
                            static_cast<double>(bk.runtime)
                                / bf.runtime);
                        std::fflush(stdout);
                    }
                }
            }
        }
    }
    return 0;
}
