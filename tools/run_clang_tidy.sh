#!/usr/bin/env bash
# Run clang-tidy (config: repo-root .clang-tidy) over every source
# file in the compile database.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir  Directory containing compile_commands.json
#              (default: build). Configure with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON -- the top-level
#              CMakeLists forces this on.
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: clang-tidy).
#
# Exit status: 0 clean, 1 findings, 77 clang-tidy or the compile
# database is unavailable (ctest treats 77 as SKIP, so machines
# without LLVM never fail the suite -- CI installs it and does).
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
    echo "run_clang_tidy: ${CLANG_TIDY} not found; skipping" >&2
    exit 77
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile_commands.json in ${BUILD_DIR};" \
         "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 77
fi

# Every first-party translation unit in the database (skip
# gtest/benchmark glue that cmake may add).
mapfile -t FILES < <(
    python3 - "$BUILD_DIR/compile_commands.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as handle:
    db = json.load(handle)
seen = []
for entry in db:
    path = entry["file"]
    if "/src/" in path and path not in seen:
        seen.append(path)
print("\n".join(seen))
PY
)

if [ "${#FILES[@]}" -eq 0 ]; then
    echo "run_clang_tidy: compile database lists no src/ files" >&2
    exit 77
fi

echo "run_clang_tidy: checking ${#FILES[@]} translation units"
STATUS=0
for file in "${FILES[@]}"; do
    if ! "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${file}"; then
        STATUS=1
    fi
done
exit "${STATUS}"
