/**
 * @file
 * Command-line driver: run any (workload, contention manager) cell
 * of the evaluation with custom machine parameters and print the
 * full results.
 *
 *   bfgts_cli --workload Intruder --cm BFGTS-HW
 *   bfgts_cli --workload Barnes --cm Backoff --cpus 8 --tpc 2
 *   bfgts_cli --list
 *
 * Options:
 *   --workload NAME   STAMP or SPLASH2-like benchmark (default Intruder)
 *   --cm NAME         contention manager display name (default BFGTS-HW)
 *   --cpus N          number of CPUs (default 16)
 *   --tpc N           threads per CPU (default 4)
 *   --tx N            transactions per thread (0 = workload default)
 *   --seed N          RNG seed (default 1)
 *   --bloom-bits N    BFGTS Bloom filter size
 *   --interval N      BFGTS small-tx similarity update interval
 *   --slots N         BFGTS confidence-table aliasing slots (0 = exact)
 *   --audit           checked simulation mode: run the invariant audit
 *                     engine (docs/static-analysis.md); results stay
 *                     byte-identical, violations abort with a report.
 *                     BFGTS_AUDIT=1 in the environment does the same.
 *   --baseline        also run the single-core baseline and print speedup
 *   --stats           dump per-component statistics after the run
 *   --json FILE       write the full machine-readable report
 *                     (schema bfgts-obs-v1; docs/observability.md)
 *   --trace FILE      write a lifecycle trace (text; "-" = stderr)
 *   --trace-jsonl     render the trace as JSON Lines instead of text
 *   --trace-cats LIST comma-separated trace categories
 *                     (tx,sched,cm,predictor,mem,audit; default all)
 *   --trace-chrome F  write a Chrome trace_event timeline (open in
 *                     Perfetto / chrome://tracing); composes with
 *                     --trace via a fanout sink
 *   --ts FILE         write the bfgts-ts-v1 interval time-series
 *                     (JSON Lines; docs/observability.md)
 *   --ts-interval N   sampling window in ticks (default 10000)
 *   --conflict-dot F  write the conflict graph as Graphviz DOT
 *                     (abort edges solid, serializations dashed)
 *   --profile FILE    write the bfgts-prof-v1 host-performance
 *                     profile (wall-time attribution per subsystem,
 *                     events/sec, wall-ns-per-cycle, memory gauges;
 *                     docs/observability.md). Wall-clock data, so the
 *                     report is nondeterministic -- every *other*
 *                     artifact stays byte-identical with or without
 *                     it. With --trace-chrome, host phase totals also
 *                     land as counter tracks on the timeline.
 *   --quality FILE    write the bfgts-qual-v1 decision-quality report
 *                     (Eq. 2-4 estimator-error histograms, confidence
 *                     reliability table with Brier score, per-pair
 *                     stall cost-benefit ledger;
 *                     docs/observability.md). Purely observational:
 *                     results stay byte-identical with or without it,
 *                     and the report itself is deterministic.
 *   --quality-jsonl F write the per-decision quality ledger as JSON
 *                     Lines (one line per classified begin outcome);
 *                     implies quality recording
 *   --list            list workloads and managers, then exit
 *
 * Sweep mode (runner::SweepRunner; docs/architecture.md):
 *   bfgts_cli --sweep --workloads Intruder,Genome --cms BFGTS-HW,PTS \
 *             --seeds 1,2 --jobs 8 --json sweep.json
 *
 *   --sweep           run the (workloads x cms x seeds) matrix instead
 *                     of a single cell; per-cell progress on stderr
 *   --workloads LIST  comma-separated STAMP benchmarks (default: all)
 *   --cms LIST        comma-separated manager names (default: the
 *                     paper's evaluation set)
 *   --seeds LIST      comma-separated RNG seeds (default: 1)
 *   --jobs N          worker threads (default 1)
 *   --cache DIR       on-disk result cache (also BFGTS_SWEEP_CACHE)
 *   --baselines       add one single-core baseline cell per workload
 *   --json FILE       write the bfgts-sweep-v1 report
 *   --profile FILE    write the bfgts-prof-v1 sweep profile: per-cell
 *                     host-performance rows (executed cells only) and
 *                     min/median/max aggregates. Never part of the
 *                     cache key; the bfgts-sweep-v1 report stays
 *                     byte-identical with or without it.
 *   --quality FILE    write the bfgts-qual-v1 sweep report: per-cell
 *                     decision-quality rows plus min/median/max
 *                     aggregates. Never part of the cache key; cache
 *                     reads are skipped so every cell carries data
 *                     and the report is byte-identical across --jobs
 *                     counts. (--quality-jsonl is single-run only.)
 *   (--cpus/--tpc/--tx/--bloom-bits/--interval/--slots set the base
 *    configuration of every cell)
 *
 * Farm mode (runner::Farm; docs/architecture.md "Distributed sweep
 * farm"): shard a sweep across processes/machines and merge the
 * partial reports back into the byte-identical single-machine report.
 *   bfgts_cli --sweep ... --shard 0/3 --cache CACHE --json s0.json
 *   bfgts_cli --sweep ... --steal QUEUE --cache CACHE --json w0.json
 *   bfgts_cli --merge-reports s0.json s1.json s2.json --json full.json
 *
 *   --shard I/N       static mode: run only shard I of N (disjoint,
 *                     order-preserving, covering for any N); the
 *                     report gains a shard manifest
 *   --steal DIR       work-stealing mode: claim cells one at a time
 *                     from the shared queue directory DIR (per-cell
 *                     lease files, atomic O_EXCL claim); workers of
 *                     one farm must share DIR and --cache
 *   --steal-stale N   reclaim leases older than N seconds, the claims
 *                     of crashed workers (default 900; must exceed
 *                     the worst-case single-cell runtime)
 *   --merge-reports   merge the listed partial reports into the full
 *                     bfgts-sweep-v1 report at --json FILE; validates
 *                     matrix digest agreement, range disjointness,
 *                     and full coverage, and reproduces the direct
 *                     `--sweep --jobs N` report byte-for-byte
 *   (--profile/--quality are not supported in farm runs; killed
 *    workers are resumed by re-running them with the shared --cache,
 *    which re-executes only the cells missing from the cache)
 */

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/farm.h"
#include "runner/simulation.h"
#include "runner/sweep.h"
#include "sim/chrome_trace.h"
#include "sim/json.h"
#include "sim/profiler.h"
#include "sim/quality.h"
#include "sim/sampler.h"
#include "sim/trace.h"
#include "workloads/splash2.h"
#include "workloads/stamp.h"

namespace {

bool
isSplash2(const std::string &name)
{
    for (const std::string &candidate :
         workloads::splash2BenchmarkNames()) {
        if (candidate == name)
            return true;
    }
    return false;
}

void
listEverything()
{
    std::printf("workloads (STAMP):   ");
    for (const auto &name : workloads::stampBenchmarkNames())
        std::printf("%s ", name.c_str());
    std::printf("\nworkloads (SPLASH2): ");
    for (const auto &name : workloads::splash2BenchmarkNames())
        std::printf("%s ", name.c_str());
    std::printf("\nmanagers:            ");
    for (cm::CmKind kind : cm::extendedCmKinds())
        std::printf("'%s' ", cm::cmKindName(kind));
    std::printf("\n");
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--cm NAME] [--cpus N] "
                 "[--tpc N] [--tx N]\n          [--seed N] "
                 "[--bloom-bits N] [--interval N] [--slots N]\n"
                 "          [--audit] [--baseline] [--stats] "
                 "[--json FILE]\n"
                 "          [--trace FILE] [--trace-jsonl] "
                 "[--trace-cats tx,sched,cm,predictor,mem,audit]\n"
                 "          [--trace-chrome FILE] [--ts FILE] "
                 "[--ts-interval N] [--conflict-dot FILE]\n"
                 "          [--profile FILE] [--quality FILE] "
                 "[--quality-jsonl FILE] [--list]\n"
                 "   sweep: %s --sweep [--workloads A,B] [--cms X,Y] "
                 "[--seeds 1,2]\n"
                 "          [--jobs N] [--cache DIR] [--baselines] "
                 "[--json FILE] [--profile FILE]\n"
                 "          [--quality FILE]\n"
                 "    farm: %s --sweep ... [--shard I/N | --steal DIR "
                 "[--steal-stale SEC]]\n"
                 "          %s --merge-reports PARTIAL... --json FILE\n",
                 argv0, argv0, argv0, argv0);
    std::exit(1);
}

/** Split "a,b,c" into its non-empty comma-separated pieces. */
std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> pieces;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            pieces.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return pieces;
}

/** Parse "tx,cm,..." into categories; exits on unknown names. */
std::vector<sim::TraceCategory>
parseTraceCats(const std::string &list, const char *argv0)
{
    std::vector<sim::TraceCategory> cats;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(start, comma - start);
        sim::TraceCategory category;
        if (!sim::traceCategoryFromName(name, &category)) {
            std::fprintf(stderr, "unknown trace category '%s'\n",
                         name.c_str());
            usage(argv0);
        }
        cats.push_back(category);
        start = comma + 1;
    }
    return cats;
}

/** "queue" for the ATS token pseudo-node, "s<N>" for real sites. */
std::string
siteLabel(int stx)
{
    return stx < 0 ? std::string("queue")
                   : "s" + std::to_string(stx);
}

/**
 * Conflict-edge attribution: every (winner, victim) abort edge in
 * key order, the top-K by wasted victim cycles, and the begin-time
 * serialization edges. Key order and a deterministic top-K sort keep
 * the report byte-identical across runs of equal simulations.
 */
void
writeEdgeReport(sim::JsonWriter &jw, const runner::SimResults &r)
{
    using Edge = std::pair<std::pair<int, int>,
                           runner::ConflictEdgeStats>;
    std::vector<Edge> top(r.abortEdges.begin(), r.abortEdges.end());
    std::sort(top.begin(), top.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.second.wastedCycles != b.second.wastedCycles)
                      return a.second.wastedCycles
                           > b.second.wastedCycles;
                  if (a.second.aborts != b.second.aborts)
                      return a.second.aborts > b.second.aborts;
                  return a.first < b.first;
              });
    constexpr std::size_t kTopK = 10;
    if (top.size() > kTopK)
        top.resize(kTopK);

    const auto edge_object = [&jw](const Edge &edge) {
        jw.beginObject();
        jw.kv("winner", edge.first.first);
        jw.kv("victim", edge.first.second);
        jw.kv("aborts", edge.second.aborts);
        jw.kv("wastedCycles",
              static_cast<std::uint64_t>(edge.second.wastedCycles));
        jw.endObject();
    };

    jw.beginObject("conflict_edges");
    jw.kv("totalEdges",
          static_cast<std::uint64_t>(r.abortEdges.size()));
    jw.beginArray("topByWastedCycles");
    for (const Edge &edge : top)
        edge_object(edge);
    jw.endArray();
    jw.beginArray("edges");
    for (const auto &edge : r.abortEdges)
        edge_object(edge);
    jw.endArray();
    jw.endObject();

    jw.beginArray("serialization_edges");
    for (const auto &[key, count] : r.serializationEdges) {
        jw.beginObject();
        jw.kv("winner", key.first);
        jw.kv("victim", key.second);
        jw.kv("count", count);
        jw.endObject();
    }
    jw.endArray();
}

/**
 * Graphviz DOT rendering of the attributed conflict graph: solid
 * edges are aborts (winner -> victim, labeled with counts and wasted
 * cycles), dashed gray edges are begin-time serializations. Node
 * "queue" stands for token-based serialization with no named enemy.
 */
void
writeConflictDot(std::ostream &os, const runner::SimResults &r)
{
    os << "// who-aborts-whom, " << r.workload << " under " << r.cm
       << "\n";
    os << "digraph conflicts {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=circle];\n";
    std::set<int> nodes;
    for (const auto &[key, stats] : r.abortEdges) {
        (void)stats;
        nodes.insert(key.first);
        nodes.insert(key.second);
    }
    for (const auto &[key, count] : r.serializationEdges) {
        (void)count;
        nodes.insert(key.first);
        nodes.insert(key.second);
    }
    for (int node : nodes) {
        if (node < 0)
            os << "  queue [shape=box,label=\"token queue\"];\n";
        else
            os << "  " << siteLabel(node) << ";\n";
    }
    for (const auto &[key, stats] : r.abortEdges) {
        os << "  " << siteLabel(key.first) << " -> "
           << siteLabel(key.second) << " [label=\"" << stats.aborts
           << " ab / " << stats.wastedCycles << " cyc\"];\n";
    }
    for (const auto &[key, count] : r.serializationEdges) {
        os << "  " << siteLabel(key.first) << " -> "
           << siteLabel(key.second) << " [style=dashed,color=gray,"
           << "label=\"" << count << " ser\"];\n";
    }
    os << "}\n";
}

/** Farm-mode selections from the command line (--shard / --steal). */
struct FarmCliOptions {
    bool enabled = false;
    int shardIndex = 0;
    int shardCount = 1;
    std::string stealDir;
    int stealStaleSec = 900;
};

/**
 * --sweep mode: run the (workloads x cms x seeds) matrix through
 * runner::SweepRunner with per-cell progress on stderr, optionally
 * prefixed by one single-core baseline cell per workload. Exits
 * nonzero when any cell failed; a summary line
 * "sweep: N cells, X executed, Y cached, Z errors" always goes to
 * stderr (tools/sweep_check.py and tools/farm_check.py parse it).
 * With --shard/--steal the matrix runs through runner::Farm instead,
 * the summary counts only this worker's claimed cells, and an extra
 * "farm: ..." line reports the claim.
 */
int
runSweep(const std::vector<std::string> &workload_names,
         const std::vector<std::string> &cm_names,
         const std::vector<std::string> &seed_names,
         const runner::RunOptions &base, bool with_baselines,
         int jobs, const std::string &cache_dir,
         const std::string &json_path,
         const std::string &profile_path,
         const std::string &quality_path,
         const FarmCliOptions &farm_cli, const char *argv0)
{
    std::vector<std::string> workload_list = workload_names;
    if (workload_list.empty())
        workload_list = workloads::stampBenchmarkNames();
    for (const std::string &name : workload_list) {
        const auto known = workloads::stampBenchmarkNames();
        if (std::find(known.begin(), known.end(), name)
            == known.end()) {
            std::fprintf(stderr,
                         "unknown sweep workload '%s' (sweep mode "
                         "runs STAMP benchmarks)\n",
                         name.c_str());
            usage(argv0);
        }
    }

    std::vector<cm::CmKind> managers;
    if (cm_names.empty()) {
        managers = cm::allCmKinds();
    } else {
        for (const std::string &name : cm_names)
            managers.push_back(cm::cmKindFromName(name));
    }

    std::vector<std::uint64_t> seeds;
    for (const std::string &name : seed_names)
        seeds.push_back(std::strtoull(name.c_str(), nullptr, 10));
    if (seeds.empty())
        seeds.push_back(base.seed);

    std::vector<runner::SweepCell> cells;
    if (with_baselines) {
        for (const std::string &name : workload_list) {
            runner::SweepCell cell;
            cell.workload = name;
            cell.options = base;
            cell.baseline = true;
            cells.push_back(cell);
        }
    }
    for (const std::string &name : workload_list) {
        for (cm::CmKind kind : managers) {
            for (std::uint64_t seed : seeds) {
                runner::SweepCell cell;
                cell.workload = name;
                cell.cm = kind;
                cell.options = base;
                cell.options.seed = seed;
                cells.push_back(cell);
            }
        }
    }

    runner::SweepOptions sweep_options;
    sweep_options.jobs = jobs;
    sweep_options.cacheDir = cache_dir;
    sweep_options.progress = &std::cerr;
    sweep_options.profile = !profile_path.empty();
    sweep_options.quality = !quality_path.empty();

    if (farm_cli.enabled) {
        if (sweep_options.profile || sweep_options.quality) {
            std::fprintf(stderr,
                         "--profile/--quality are not supported "
                         "with --shard/--steal\n");
            usage(argv0);
        }
        runner::FarmOptions farm_options;
        farm_options.sweep = sweep_options;
        farm_options.shardIndex = farm_cli.shardIndex;
        farm_options.shardCount = farm_cli.shardCount;
        farm_options.stealDir = farm_cli.stealDir;
        farm_options.stealStaleSec = farm_cli.stealStaleSec;
        runner::Farm farm(farm_options);
        try {
            farm.run(cells);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "farm: %s\n", e.what());
            return 1;
        }
        const runner::SweepStats &stats = farm.stats();
        std::fprintf(stderr,
                     "sweep: %zu cells, %d executed, %d cached, "
                     "%d errors\n",
                     farm.claimed().size(), stats.executed,
                     stats.cacheHits, stats.errors);
        if (farm_cli.stealDir.empty()) {
            std::fprintf(stderr,
                         "farm: static shard %d/%d claimed %zu of "
                         "%zu cells\n",
                         farm_cli.shardIndex, farm_cli.shardCount,
                         farm.claimed().size(), cells.size());
        } else {
            std::fprintf(stderr,
                         "farm: steal worker claimed %zu of %zu "
                         "cells from %s\n",
                         farm.claimed().size(), cells.size(),
                         farm_cli.stealDir.c_str());
        }
        if (!json_path.empty()) {
            std::ofstream json_file(json_path);
            if (!json_file) {
                std::fprintf(stderr, "cannot open %s\n",
                             json_path.c_str());
                return 1;
            }
            farm.writeReport(json_file, "cli-sweep");
        }
        return stats.errors == 0 ? 0 : 1;
    }

    runner::SweepRunner sweep(sweep_options);
    sweep.run(cells);

    const runner::SweepStats &stats = sweep.stats();
    std::fprintf(stderr,
                 "sweep: %zu cells, %d executed, %d cached, "
                 "%d errors\n",
                 cells.size(), stats.executed, stats.cacheHits,
                 stats.errors);

    if (!json_path.empty()) {
        std::ofstream json_file(json_path);
        if (!json_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         json_path.c_str());
            return 1;
        }
        sweep.writeReport(json_file, "cli-sweep");
    }
    if (!profile_path.empty()) {
        std::ofstream profile_file(profile_path);
        if (!profile_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         profile_path.c_str());
            return 1;
        }
        sweep.writeProfileReport(profile_file, "cli-sweep");
    }
    if (!quality_path.empty()) {
        std::ofstream quality_file(quality_path);
        if (!quality_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         quality_path.c_str());
            return 1;
        }
        sweep.writeQualityReport(quality_file, "cli-sweep");
    }
    return stats.errors == 0 ? 0 : 1;
}

/** The bfgts-obs-v1 "run" report (docs/observability.md). */
void
writeJsonReport(std::ostream &os, const std::string &name,
                const runner::SimConfig &config,
                const runner::SimResults &r,
                const runner::Simulation &simulation,
                const sim::Sampler *sampler)
{
    sim::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "bfgts-obs-v1");
    jw.kv("kind", "run");
    jw.kv("name", name);
    jw.kv("git", sim::buildGitDescribe());

    jw.beginObject("config");
    jw.kv("workload", r.workload);
    jw.kv("cm", r.cm);
    jw.kv("cpus", config.numCpus);
    jw.kv("threadsPerCpu", config.threadsPerCpu);
    jw.kv("seed", config.seed);
    jw.kv("txPerThreadOverride", config.txPerThreadOverride);
    jw.kv("bloomBits",
          static_cast<std::uint64_t>(
              config.tuning.bfgts.bloom.numBits));
    jw.kv("smallTxInterval", config.tuning.bfgts.smallTxInterval);
    jw.kv("confTableSlots", config.tuning.bfgts.confTableSlots);
    jw.endObject();

    jw.beginObject("results");
    jw.kv("runtime", static_cast<std::uint64_t>(r.runtime));
    jw.kv("commits", r.commits);
    jw.kv("aborts", r.aborts);
    jw.kv("conflicts", r.conflicts);
    jw.kv("serializations", r.serializations);
    jw.kv("stallTimeouts", r.stallTimeouts);
    jw.kv("contentionRate", r.contentionRate);
    const runner::Breakdown &b = r.breakdown;
    jw.beginObject("breakdown");
    jw.kv("nonTx", static_cast<std::uint64_t>(b.nonTx));
    jw.kv("kernel", static_cast<std::uint64_t>(b.kernel));
    jw.kv("tx", static_cast<std::uint64_t>(b.tx));
    jw.kv("aborted", static_cast<std::uint64_t>(b.aborted));
    jw.kv("sched", static_cast<std::uint64_t>(b.sched));
    jw.kv("idle", static_cast<std::uint64_t>(b.idle));
    jw.kv("nonTxFrac", b.frac(b.nonTx));
    jw.kv("kernelFrac", b.frac(b.kernel));
    jw.kv("txFrac", b.frac(b.tx));
    jw.kv("abortedFrac", b.frac(b.aborted));
    jw.kv("schedFrac", b.frac(b.sched));
    jw.kv("idleFrac", b.frac(b.idle));
    jw.endObject();
    jw.endObject();

    if (sampler != nullptr)
        sampler->summaryJson(jw);
    writeEdgeReport(jw, r);

    simulation.dumpStatsJson(jw);
    jw.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "Intruder";
    std::string manager = "BFGTS-HW";
    runner::SimConfig config;
    bool with_baseline = false;
    bool with_stats = false;
    std::string json_path;
    std::string trace_path;
    bool trace_jsonl = false;
    std::string trace_cats;
    std::string chrome_path;
    std::string ts_path;
    sim::Tick ts_interval = 10'000;
    std::string dot_path;
    std::string profile_path;
    std::string quality_path;
    std::string quality_jsonl_path;

    bool sweep_mode = false;
    bool sweep_baselines = false;
    std::vector<std::string> sweep_workloads;
    std::vector<std::string> sweep_cms;
    std::vector<std::string> sweep_seeds;
    int sweep_jobs = 1;
    std::string sweep_cache;
    if (const char *env = std::getenv("BFGTS_SWEEP_CACHE");
        env != nullptr && env[0] != '\0') {
        sweep_cache = env;
    }
    FarmCliOptions farm_cli;
    bool merge_mode = false;
    std::vector<std::string> merge_inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--cm") {
            manager = next();
        } else if (arg == "--cpus") {
            config.numCpus = std::atoi(next());
        } else if (arg == "--tpc") {
            config.threadsPerCpu = std::atoi(next());
        } else if (arg == "--tx") {
            config.txPerThreadOverride = std::atoi(next());
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--bloom-bits") {
            config.tuning.bfgts.bloom.numBits =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--interval") {
            config.tuning.bfgts.smallTxInterval = std::atoi(next());
        } else if (arg == "--slots") {
            config.tuning.bfgts.confTableSlots = std::atoi(next());
        } else if (arg == "--audit") {
            config.audit = true;
        } else if (arg == "--baseline") {
            with_baseline = true;
        } else if (arg == "--stats") {
            with_stats = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--trace-jsonl") {
            trace_jsonl = true;
        } else if (arg == "--trace-cats") {
            trace_cats = next();
        } else if (arg == "--trace-chrome") {
            chrome_path = next();
        } else if (arg == "--ts") {
            ts_path = next();
        } else if (arg == "--ts-interval") {
            ts_interval = std::strtoull(next(), nullptr, 10);
            if (ts_interval == 0)
                usage(argv[0]);
        } else if (arg == "--conflict-dot") {
            dot_path = next();
        } else if (arg == "--profile") {
            profile_path = next();
        } else if (arg == "--quality") {
            quality_path = next();
        } else if (arg == "--quality-jsonl") {
            quality_jsonl_path = next();
        } else if (arg == "--sweep") {
            sweep_mode = true;
        } else if (arg == "--workloads") {
            sweep_workloads = splitList(next());
        } else if (arg == "--cms") {
            sweep_cms = splitList(next());
        } else if (arg == "--seeds") {
            sweep_seeds = splitList(next());
        } else if (arg == "--jobs") {
            sweep_jobs = std::atoi(next());
        } else if (arg == "--cache") {
            sweep_cache = next();
        } else if (arg == "--baselines") {
            sweep_baselines = true;
        } else if (arg == "--shard") {
            const char *spec = next();
            if (std::sscanf(spec, "%d/%d", &farm_cli.shardIndex,
                            &farm_cli.shardCount)
                    != 2
                || farm_cli.shardCount < 1 || farm_cli.shardIndex < 0
                || farm_cli.shardIndex >= farm_cli.shardCount) {
                std::fprintf(stderr, "bad --shard spec '%s' "
                                     "(want I/N, 0 <= I < N)\n",
                             spec);
                usage(argv[0]);
            }
            farm_cli.enabled = true;
        } else if (arg == "--steal") {
            farm_cli.stealDir = next();
            farm_cli.enabled = true;
        } else if (arg == "--steal-stale") {
            farm_cli.stealStaleSec = std::atoi(next());
            if (farm_cli.stealStaleSec < 1)
                usage(argv[0]);
        } else if (arg == "--merge-reports") {
            merge_mode = true;
        } else if (merge_mode && !arg.empty() && arg[0] != '-') {
            merge_inputs.push_back(arg);
        } else {
            usage(argv[0]);
        }
    }

    if (merge_mode) {
        if (merge_inputs.empty() || json_path.empty()) {
            std::fprintf(stderr, "--merge-reports needs partial "
                                 "reports and --json FILE\n");
            usage(argv[0]);
        }
        // Validate-then-emit into memory so a failed merge leaves no
        // truncated output file behind.
        std::ostringstream merged;
        std::string error;
        if (!runner::mergeSweepReports(merge_inputs, merged,
                                       &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n",
                         json_path.c_str());
            return 1;
        }
        out << merged.str();
        std::fprintf(stderr,
                     "merge-reports: %zu partial reports -> %s\n",
                     merge_inputs.size(), json_path.c_str());
        return 0;
    }

    if (farm_cli.enabled) {
        if (!sweep_mode) {
            std::fprintf(stderr,
                         "--shard/--steal need --sweep mode\n");
            usage(argv[0]);
        }
        if (farm_cli.shardCount > 1 && !farm_cli.stealDir.empty()) {
            std::fprintf(stderr, "--shard and --steal are mutually "
                                 "exclusive\n");
            usage(argv[0]);
        }
    }

    if (sweep_mode) {
        runner::RunOptions base;
        base.numCpus = config.numCpus;
        base.threadsPerCpu = config.threadsPerCpu;
        base.seed = config.seed;
        base.txPerThread = config.txPerThreadOverride;
        base.tuning = config.tuning;
        base.audit = config.audit;
        return runSweep(sweep_workloads, sweep_cms, sweep_seeds, base,
                        sweep_baselines, sweep_jobs, sweep_cache,
                        json_path, profile_path, quality_path,
                        farm_cli, argv[0]);
    }

    config.cm = cm::cmKindFromName(manager);
    if (isSplash2(workload)) {
        config.workloadFactory = [workload](int threads) {
            return workloads::makeSplash2Workload(workload, threads);
        };
    } else {
        config.workload = workload; // validated by the factory
    }

    std::ofstream trace_file;
    std::unique_ptr<sim::TraceSink> trace_sink;
    if (!trace_path.empty()) {
        std::ostream *trace_os = &std::cerr;
        if (trace_path != "-") {
            trace_file.open(trace_path);
            if (!trace_file) {
                std::fprintf(stderr, "cannot open %s\n",
                             trace_path.c_str());
                return 1;
            }
            trace_os = &trace_file;
        }
        if (trace_jsonl)
            trace_sink =
                std::make_unique<sim::JsonlTraceSink>(*trace_os);
        else
            trace_sink =
                std::make_unique<sim::TextTraceSink>(*trace_os);
        if (!trace_cats.empty())
            trace_sink->enableOnly(
                parseTraceCats(trace_cats, argv[0]));
        config.traceSink = trace_sink.get();
    }

    std::ofstream chrome_file;
    std::unique_ptr<sim::ChromeTraceSink> chrome_sink;
    sim::FanoutTraceSink fanout;
    if (!chrome_path.empty()) {
        chrome_file.open(chrome_path);
        if (!chrome_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         chrome_path.c_str());
            return 1;
        }
        chrome_sink =
            std::make_unique<sim::ChromeTraceSink>(chrome_file);
        if (trace_sink != nullptr) {
            fanout.addSink(trace_sink.get());
            fanout.addSink(chrome_sink.get());
            config.traceSink = &fanout;
        } else {
            config.traceSink = chrome_sink.get();
        }
    }

    std::ofstream ts_file;
    std::unique_ptr<sim::Sampler> sampler;
    if (!ts_path.empty() || chrome_sink != nullptr
        || !json_path.empty()) {
        sim::Sampler::Config sampler_config;
        sampler_config.interval = ts_interval;
        if (!ts_path.empty()) {
            ts_file.open(ts_path);
            if (!ts_file) {
                std::fprintf(stderr, "cannot open %s\n",
                             ts_path.c_str());
                return 1;
            }
            sampler_config.jsonl = &ts_file;
        }
        sampler = std::make_unique<sim::Sampler>(sampler_config);
        if (chrome_sink != nullptr)
            sampler->setCounterSink(chrome_sink.get());
        config.sampler = sampler.get();
    }

    // Host-performance profiling (--profile). The profiler hangs off
    // SimConfig like the other observers; the counter sink is only
    // attached under --profile so plain --trace-chrome timelines stay
    // byte-identical across hosts.
    sim::Profiler profiler;
    if (!profile_path.empty()) {
        config.profiler = &profiler;
        if (chrome_sink != nullptr)
            profiler.setCounterSink(chrome_sink.get());
    }

    // Decision-quality recording (--quality / --quality-jsonl).
    // Deterministic observer; --quality-jsonl alone still attaches
    // the recorder so the ledger lines get written.
    sim::QualityRecorder quality;
    std::ofstream quality_jsonl_file;
    if (!quality_path.empty() || !quality_jsonl_path.empty()) {
        config.quality = &quality;
        if (!quality_jsonl_path.empty()) {
            quality_jsonl_file.open(quality_jsonl_path);
            if (!quality_jsonl_file) {
                std::fprintf(stderr, "cannot open %s\n",
                             quality_jsonl_path.c_str());
                return 1;
            }
            quality.setJsonlSink(&quality_jsonl_file);
        }
    }

    runner::Simulation simulation(config);
    const runner::SimResults r = simulation.run();

    if (chrome_sink != nullptr)
        chrome_sink->close();

    std::printf("workload          %s\n", r.workload.c_str());
    std::printf("manager           %s\n", r.cm.c_str());
    std::printf("machine           %d CPUs x %d threads\n",
                config.numCpus, config.threadsPerCpu);
    std::printf("runtime           %llu cycles\n",
                static_cast<unsigned long long>(r.runtime));
    std::printf("commits / aborts  %llu / %llu  (contention %.1f%%)\n",
                static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.aborts),
                100.0 * r.contentionRate);
    std::printf("serializations    %llu\n",
                static_cast<unsigned long long>(r.serializations));
    const runner::Breakdown &b = r.breakdown;
    std::printf("breakdown         nonTx %.1f%%  kernel %.1f%%  tx "
                "%.1f%%  abort %.1f%%  sched %.1f%%  idle %.1f%%\n",
                100.0 * b.frac(b.nonTx), 100.0 * b.frac(b.kernel),
                100.0 * b.frac(b.tx), 100.0 * b.frac(b.aborted),
                100.0 * b.frac(b.sched), 100.0 * b.frac(b.idle));

    const runner::PredictionQuality &pq = r.prediction;
    std::printf("prediction        stalls %llu  TP %llu  FP %llu  "
                "FN %llu  (precision %.2f recall %.2f)\n",
                static_cast<unsigned long long>(pq.predictedStalls),
                static_cast<unsigned long long>(pq.truePositives),
                static_cast<unsigned long long>(pq.falsePositives),
                static_cast<unsigned long long>(pq.falseNegatives),
                pq.precision(), pq.recall());

    if (with_stats) {
        std::printf("\n-- component statistics --\n");
        simulation.dumpStats(std::cout);
    }

    if (!json_path.empty()) {
        std::ofstream json_file(json_path);
        if (!json_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         json_path.c_str());
            return 1;
        }
        const std::string name = r.workload + "-" + r.cm;
        writeJsonReport(json_file, name, config, r, simulation,
                        sampler.get());
    }

    if (!dot_path.empty()) {
        std::ofstream dot_file(dot_path);
        if (!dot_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         dot_path.c_str());
            return 1;
        }
        writeConflictDot(dot_file, r);
    }

    if (!profile_path.empty()) {
        std::ofstream profile_file(profile_path);
        if (!profile_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         profile_path.c_str());
            return 1;
        }
        profiler.writeReport(profile_file, r.workload + "-" + r.cm);
    }

    if (!quality_path.empty()) {
        std::ofstream quality_file(quality_path);
        if (!quality_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         quality_path.c_str());
            return 1;
        }
        sim::writeQualReport(quality_file, r.workload + "-" + r.cm,
                             quality.data());
    }

    if (with_baseline) {
        runner::SimConfig base_config = config;
        base_config.numCpus = 1;
        base_config.threadsPerCpu = 1;
        base_config.cm = cm::CmKind::Backoff;
        const int per_thread =
            config.txPerThreadOverride > 0
                ? config.txPerThreadOverride
                : [&] {
                      runner::Simulation probe(config);
                      return probe.workload().txPerThread();
                  }();
        base_config.txPerThreadOverride =
            per_thread * config.numThreads();
        runner::Simulation baseline(base_config);
        const runner::SimResults base = baseline.run();
        std::printf("baseline          %llu cycles -> speedup %.2fx\n",
                    static_cast<unsigned long long>(base.runtime),
                    static_cast<double>(base.runtime)
                        / static_cast<double>(r.runtime));
    }
    return 0;
}
