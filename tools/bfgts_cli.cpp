/**
 * @file
 * Command-line driver: run any (workload, contention manager) cell
 * of the evaluation with custom machine parameters and print the
 * full results.
 *
 *   bfgts_cli --workload Intruder --cm BFGTS-HW
 *   bfgts_cli --workload Barnes --cm Backoff --cpus 8 --tpc 2
 *   bfgts_cli --list
 *
 * Options:
 *   --workload NAME   STAMP or SPLASH2-like benchmark (default Intruder)
 *   --cm NAME         contention manager display name (default BFGTS-HW)
 *   --cpus N          number of CPUs (default 16)
 *   --tpc N           threads per CPU (default 4)
 *   --tx N            transactions per thread (0 = workload default)
 *   --seed N          RNG seed (default 1)
 *   --bloom-bits N    BFGTS Bloom filter size
 *   --interval N      BFGTS small-tx similarity update interval
 *   --slots N         BFGTS confidence-table aliasing slots (0 = exact)
 *   --baseline        also run the single-core baseline and print speedup
 *   --stats           dump per-component statistics after the run
 *   --json FILE       write the full machine-readable report
 *                     (schema bfgts-obs-v1; docs/observability.md)
 *   --trace FILE      write a lifecycle trace (text; "-" = stderr)
 *   --trace-jsonl     render the trace as JSON Lines instead of text
 *   --trace-cats LIST comma-separated trace categories
 *                     (tx,sched,cm,predictor,mem; default all)
 *   --list            list workloads and managers, then exit
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/simulation.h"
#include "sim/json.h"
#include "sim/trace.h"
#include "workloads/splash2.h"
#include "workloads/stamp.h"

namespace {

bool
isSplash2(const std::string &name)
{
    for (const std::string &candidate :
         workloads::splash2BenchmarkNames()) {
        if (candidate == name)
            return true;
    }
    return false;
}

void
listEverything()
{
    std::printf("workloads (STAMP):   ");
    for (const auto &name : workloads::stampBenchmarkNames())
        std::printf("%s ", name.c_str());
    std::printf("\nworkloads (SPLASH2): ");
    for (const auto &name : workloads::splash2BenchmarkNames())
        std::printf("%s ", name.c_str());
    std::printf("\nmanagers:            ");
    for (cm::CmKind kind : cm::extendedCmKinds())
        std::printf("'%s' ", cm::cmKindName(kind));
    std::printf("\n");
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--cm NAME] [--cpus N] "
                 "[--tpc N] [--tx N]\n          [--seed N] "
                 "[--bloom-bits N] [--interval N] [--slots N]\n"
                 "          [--baseline] [--stats] [--json FILE]\n"
                 "          [--trace FILE] [--trace-jsonl] "
                 "[--trace-cats tx,sched,cm,predictor,mem]\n"
                 "          [--list]\n",
                 argv0);
    std::exit(1);
}

/** Parse "tx,cm,..." into categories; exits on unknown names. */
std::vector<sim::TraceCategory>
parseTraceCats(const std::string &list, const char *argv0)
{
    std::vector<sim::TraceCategory> cats;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(start, comma - start);
        sim::TraceCategory category;
        if (!sim::traceCategoryFromName(name, &category)) {
            std::fprintf(stderr, "unknown trace category '%s'\n",
                         name.c_str());
            usage(argv0);
        }
        cats.push_back(category);
        start = comma + 1;
    }
    return cats;
}

/** The bfgts-obs-v1 "run" report (docs/observability.md). */
void
writeJsonReport(std::ostream &os, const std::string &name,
                const runner::SimConfig &config,
                const runner::SimResults &r,
                const runner::Simulation &simulation)
{
    sim::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "bfgts-obs-v1");
    jw.kv("kind", "run");
    jw.kv("name", name);
    jw.kv("git", sim::buildGitDescribe());

    jw.beginObject("config");
    jw.kv("workload", r.workload);
    jw.kv("cm", r.cm);
    jw.kv("cpus", config.numCpus);
    jw.kv("threadsPerCpu", config.threadsPerCpu);
    jw.kv("seed", config.seed);
    jw.kv("txPerThreadOverride", config.txPerThreadOverride);
    jw.kv("bloomBits",
          static_cast<std::uint64_t>(
              config.tuning.bfgts.bloom.numBits));
    jw.kv("smallTxInterval", config.tuning.bfgts.smallTxInterval);
    jw.kv("confTableSlots", config.tuning.bfgts.confTableSlots);
    jw.endObject();

    jw.beginObject("results");
    jw.kv("runtime", static_cast<std::uint64_t>(r.runtime));
    jw.kv("commits", r.commits);
    jw.kv("aborts", r.aborts);
    jw.kv("conflicts", r.conflicts);
    jw.kv("serializations", r.serializations);
    jw.kv("stallTimeouts", r.stallTimeouts);
    jw.kv("contentionRate", r.contentionRate);
    const runner::Breakdown &b = r.breakdown;
    jw.beginObject("breakdown");
    jw.kv("nonTx", static_cast<std::uint64_t>(b.nonTx));
    jw.kv("kernel", static_cast<std::uint64_t>(b.kernel));
    jw.kv("tx", static_cast<std::uint64_t>(b.tx));
    jw.kv("aborted", static_cast<std::uint64_t>(b.aborted));
    jw.kv("sched", static_cast<std::uint64_t>(b.sched));
    jw.kv("idle", static_cast<std::uint64_t>(b.idle));
    jw.kv("nonTxFrac", b.frac(b.nonTx));
    jw.kv("kernelFrac", b.frac(b.kernel));
    jw.kv("txFrac", b.frac(b.tx));
    jw.kv("abortedFrac", b.frac(b.aborted));
    jw.kv("schedFrac", b.frac(b.sched));
    jw.kv("idleFrac", b.frac(b.idle));
    jw.endObject();
    jw.endObject();

    simulation.dumpStatsJson(jw);
    jw.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "Intruder";
    std::string manager = "BFGTS-HW";
    runner::SimConfig config;
    bool with_baseline = false;
    bool with_stats = false;
    std::string json_path;
    std::string trace_path;
    bool trace_jsonl = false;
    std::string trace_cats;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--cm") {
            manager = next();
        } else if (arg == "--cpus") {
            config.numCpus = std::atoi(next());
        } else if (arg == "--tpc") {
            config.threadsPerCpu = std::atoi(next());
        } else if (arg == "--tx") {
            config.txPerThreadOverride = std::atoi(next());
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--bloom-bits") {
            config.tuning.bfgts.bloom.numBits =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--interval") {
            config.tuning.bfgts.smallTxInterval = std::atoi(next());
        } else if (arg == "--slots") {
            config.tuning.bfgts.confTableSlots = std::atoi(next());
        } else if (arg == "--baseline") {
            with_baseline = true;
        } else if (arg == "--stats") {
            with_stats = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--trace-jsonl") {
            trace_jsonl = true;
        } else if (arg == "--trace-cats") {
            trace_cats = next();
        } else {
            usage(argv[0]);
        }
    }

    config.cm = cm::cmKindFromName(manager);
    if (isSplash2(workload)) {
        config.workloadFactory = [workload](int threads) {
            return workloads::makeSplash2Workload(workload, threads);
        };
    } else {
        config.workload = workload; // validated by the factory
    }

    std::ofstream trace_file;
    std::unique_ptr<sim::TraceSink> trace_sink;
    if (!trace_path.empty()) {
        std::ostream *trace_os = &std::cerr;
        if (trace_path != "-") {
            trace_file.open(trace_path);
            if (!trace_file) {
                std::fprintf(stderr, "cannot open %s\n",
                             trace_path.c_str());
                return 1;
            }
            trace_os = &trace_file;
        }
        if (trace_jsonl)
            trace_sink =
                std::make_unique<sim::JsonlTraceSink>(*trace_os);
        else
            trace_sink =
                std::make_unique<sim::TextTraceSink>(*trace_os);
        if (!trace_cats.empty())
            trace_sink->enableOnly(
                parseTraceCats(trace_cats, argv[0]));
        config.traceSink = trace_sink.get();
    }

    runner::Simulation simulation(config);
    const runner::SimResults r = simulation.run();

    std::printf("workload          %s\n", r.workload.c_str());
    std::printf("manager           %s\n", r.cm.c_str());
    std::printf("machine           %d CPUs x %d threads\n",
                config.numCpus, config.threadsPerCpu);
    std::printf("runtime           %llu cycles\n",
                static_cast<unsigned long long>(r.runtime));
    std::printf("commits / aborts  %llu / %llu  (contention %.1f%%)\n",
                static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.aborts),
                100.0 * r.contentionRate);
    std::printf("serializations    %llu\n",
                static_cast<unsigned long long>(r.serializations));
    const runner::Breakdown &b = r.breakdown;
    std::printf("breakdown         nonTx %.1f%%  kernel %.1f%%  tx "
                "%.1f%%  abort %.1f%%  sched %.1f%%  idle %.1f%%\n",
                100.0 * b.frac(b.nonTx), 100.0 * b.frac(b.kernel),
                100.0 * b.frac(b.tx), 100.0 * b.frac(b.aborted),
                100.0 * b.frac(b.sched), 100.0 * b.frac(b.idle));

    const runner::PredictionQuality &pq = r.prediction;
    std::printf("prediction        stalls %llu  TP %llu  FP %llu  "
                "FN %llu  (precision %.2f recall %.2f)\n",
                static_cast<unsigned long long>(pq.predictedStalls),
                static_cast<unsigned long long>(pq.truePositives),
                static_cast<unsigned long long>(pq.falsePositives),
                static_cast<unsigned long long>(pq.falseNegatives),
                pq.precision(), pq.recall());

    if (with_stats) {
        std::printf("\n-- component statistics --\n");
        simulation.dumpStats(std::cout);
    }

    if (!json_path.empty()) {
        std::ofstream json_file(json_path);
        if (!json_file) {
            std::fprintf(stderr, "cannot open %s\n",
                         json_path.c_str());
            return 1;
        }
        const std::string name = r.workload + "-" + r.cm;
        writeJsonReport(json_file, name, config, r, simulation);
    }

    if (with_baseline) {
        runner::SimConfig base_config = config;
        base_config.numCpus = 1;
        base_config.threadsPerCpu = 1;
        base_config.cm = cm::CmKind::Backoff;
        const int per_thread =
            config.txPerThreadOverride > 0
                ? config.txPerThreadOverride
                : [&] {
                      runner::Simulation probe(config);
                      return probe.workload().txPerThread();
                  }();
        base_config.txPerThreadOverride =
            per_thread * config.numThreads();
        runner::Simulation baseline(base_config);
        const runner::SimResults base = baseline.run();
        std::printf("baseline          %llu cycles -> speedup %.2fx\n",
                    static_cast<unsigned long long>(base.runtime),
                    static_cast<double>(base.runtime)
                        / static_cast<double>(r.runtime));
    }
    return 0;
}
