/**
 * @file
 * Command-line driver: run any (workload, contention manager) cell
 * of the evaluation with custom machine parameters and print the
 * full results.
 *
 *   bfgts_cli --workload Intruder --cm BFGTS-HW
 *   bfgts_cli --workload Barnes --cm Backoff --cpus 8 --tpc 2
 *   bfgts_cli --list
 *
 * Options:
 *   --workload NAME   STAMP or SPLASH2-like benchmark (default Intruder)
 *   --cm NAME         contention manager display name (default BFGTS-HW)
 *   --cpus N          number of CPUs (default 16)
 *   --tpc N           threads per CPU (default 4)
 *   --tx N            transactions per thread (0 = workload default)
 *   --seed N          RNG seed (default 1)
 *   --bloom-bits N    BFGTS Bloom filter size
 *   --interval N      BFGTS small-tx similarity update interval
 *   --slots N         BFGTS confidence-table aliasing slots (0 = exact)
 *   --baseline        also run the single-core baseline and print speedup
 *   --stats           dump per-component statistics after the run
 *   --list            list workloads and managers, then exit
 */

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/experiment.h"
#include "runner/simulation.h"
#include "workloads/splash2.h"
#include "workloads/stamp.h"

namespace {

bool
isSplash2(const std::string &name)
{
    for (const std::string &candidate :
         workloads::splash2BenchmarkNames()) {
        if (candidate == name)
            return true;
    }
    return false;
}

void
listEverything()
{
    std::printf("workloads (STAMP):   ");
    for (const auto &name : workloads::stampBenchmarkNames())
        std::printf("%s ", name.c_str());
    std::printf("\nworkloads (SPLASH2): ");
    for (const auto &name : workloads::splash2BenchmarkNames())
        std::printf("%s ", name.c_str());
    std::printf("\nmanagers:            ");
    for (cm::CmKind kind : cm::extendedCmKinds())
        std::printf("'%s' ", cm::cmKindName(kind));
    std::printf("\n");
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--cm NAME] [--cpus N] "
                 "[--tpc N] [--tx N]\n          [--seed N] "
                 "[--bloom-bits N] [--interval N] [--slots N]\n"
                 "          [--baseline] [--list]\n",
                 argv0);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "Intruder";
    std::string manager = "BFGTS-HW";
    runner::SimConfig config;
    bool with_baseline = false;
    bool with_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--cm") {
            manager = next();
        } else if (arg == "--cpus") {
            config.numCpus = std::atoi(next());
        } else if (arg == "--tpc") {
            config.threadsPerCpu = std::atoi(next());
        } else if (arg == "--tx") {
            config.txPerThreadOverride = std::atoi(next());
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--bloom-bits") {
            config.tuning.bfgts.bloom.numBits =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--interval") {
            config.tuning.bfgts.smallTxInterval = std::atoi(next());
        } else if (arg == "--slots") {
            config.tuning.bfgts.confTableSlots = std::atoi(next());
        } else if (arg == "--baseline") {
            with_baseline = true;
        } else if (arg == "--stats") {
            with_stats = true;
        } else {
            usage(argv[0]);
        }
    }

    config.cm = cm::cmKindFromName(manager);
    if (isSplash2(workload)) {
        config.workloadFactory = [workload](int threads) {
            return workloads::makeSplash2Workload(workload, threads);
        };
    } else {
        config.workload = workload; // validated by the factory
    }

    runner::Simulation simulation(config);
    const runner::SimResults r = simulation.run();

    std::printf("workload          %s\n", r.workload.c_str());
    std::printf("manager           %s\n", r.cm.c_str());
    std::printf("machine           %d CPUs x %d threads\n",
                config.numCpus, config.threadsPerCpu);
    std::printf("runtime           %llu cycles\n",
                static_cast<unsigned long long>(r.runtime));
    std::printf("commits / aborts  %llu / %llu  (contention %.1f%%)\n",
                static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.aborts),
                100.0 * r.contentionRate);
    std::printf("serializations    %llu\n",
                static_cast<unsigned long long>(r.serializations));
    const runner::Breakdown &b = r.breakdown;
    std::printf("breakdown         nonTx %.1f%%  kernel %.1f%%  tx "
                "%.1f%%  abort %.1f%%  sched %.1f%%  idle %.1f%%\n",
                100.0 * b.frac(b.nonTx), 100.0 * b.frac(b.kernel),
                100.0 * b.frac(b.tx), 100.0 * b.frac(b.aborted),
                100.0 * b.frac(b.sched), 100.0 * b.frac(b.idle));

    if (with_stats) {
        std::printf("\n-- component statistics --\n");
        simulation.dumpStats(std::cout);
    }

    if (with_baseline) {
        runner::SimConfig base_config = config;
        base_config.numCpus = 1;
        base_config.threadsPerCpu = 1;
        base_config.cm = cm::CmKind::Backoff;
        const int per_thread =
            config.txPerThreadOverride > 0
                ? config.txPerThreadOverride
                : [&] {
                      runner::Simulation probe(config);
                      return probe.workload().txPerThread();
                  }();
        base_config.txPerThreadOverride =
            per_thread * config.numThreads();
        runner::Simulation baseline(base_config);
        const runner::SimResults base = baseline.run();
        std::printf("baseline          %llu cycles -> speedup %.2fx\n",
                    static_cast<unsigned long long>(base.runtime),
                    static_cast<double>(base.runtime)
                        / static_cast<double>(r.runtime));
    }
    return 0;
}
