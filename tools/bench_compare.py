#!/usr/bin/env python3
"""Bench-baseline comparison gate.

Compares a freshly generated bfgts-obs-v1 bench document against a
committed baseline (bench/baselines/BENCH_*.json) and fails when any
numeric cell drifts beyond a relative tolerance. The simulator is
deterministic, so on an unchanged model the comparison is exact; the
tolerance exists so intentional model tweaks elsewhere in the stack
don't force a baseline refresh for sub-percent ripples.

The ``git`` field is ignored (it differs across commits by design),
as are the host-throughput keys ``wall_ns_per_cycle`` and
``events_per_sec`` (wall-clock data, nondeterministic by design;
tools/perf_compare.py gates those with wide bands instead).
String cells must match exactly. Row sets are matched positionally --
the benches emit rows in a fixed deterministic order.

Usage
-----
  bench_compare.py --baseline BENCH_x.json --candidate fresh.json
  bench_compare.py --baseline BENCH_x.json --bench path/to/bench_bin

The ``--bench`` form runs the binary itself (BFGTS_QUICK=1, --json
into a temp file) and then compares; this is how the ctest uses it.
To refresh a baseline after an intentional change, rerun the bench
with BFGTS_QUICK=1 and ``--json <baseline path>`` and commit the
result.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# git differs across commits by design; the wall-clock throughput
# keys (bench_util.h JsonReporter) are host-dependent by design and
# gated separately -- with wide bands -- by tools/perf_compare.py.
IGNORED_KEYS = {"git", "wall_ns_per_cycle", "events_per_sec"}


def numbers_close(a, b, rel_tol, abs_tol=1e-9):
    return abs(a - b) <= abs_tol + rel_tol * max(abs(a), abs(b))


def compare_value(path, base, cand, rel_tol, failures):
    if isinstance(base, bool) or isinstance(cand, bool):
        # bool is an int subclass; compare exactly and first.
        if base != cand:
            failures.append("%s: baseline %r, candidate %r"
                            % (path, base, cand))
    elif isinstance(base, (int, float)) and isinstance(cand,
                                                       (int, float)):
        if not numbers_close(float(base), float(cand), rel_tol):
            drift = (float(cand) - float(base))
            rel = drift / abs(float(base)) if base else float("inf")
            failures.append(
                "%s: baseline %s, candidate %s (drift %+.2f%%)"
                % (path, base, cand, 100.0 * rel))
    elif isinstance(base, dict) and isinstance(cand, dict):
        for key in sorted(set(base) | set(cand)):
            if key in IGNORED_KEYS:
                continue
            if key not in base or key not in cand:
                failures.append("%s.%s: present on one side only"
                                % (path, key))
                continue
            compare_value("%s.%s" % (path, key), base[key],
                          cand[key], rel_tol, failures)
    elif isinstance(base, list) and isinstance(cand, list):
        if len(base) != len(cand):
            failures.append("%s: baseline has %d entries, candidate "
                            "%d" % (path, len(base), len(cand)))
            return
        for i, (b, c) in enumerate(zip(base, cand)):
            compare_value("%s[%d]" % (path, i), b, c, rel_tol,
                          failures)
    elif base != cand:
        failures.append("%s: baseline %r, candidate %r"
                        % (path, base, cand))


def compare_files(baseline_path, candidate_path, rel_tol):
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(candidate_path, "r", encoding="utf-8") as fh:
        candidate = json.load(fh)
    failures = []
    compare_value("$", baseline, candidate, rel_tol, failures)
    if failures:
        print("bench_compare: %d divergence(s) from %s "
              "(tolerance %.1f%%)"
              % (len(failures), baseline_path, 100.0 * rel_tol))
        for failure in failures:
            print("  FAIL " + failure)
        print("If the change is intentional, regenerate the baseline "
              "(see tools/bench_compare.py docstring).")
        return 1
    print("bench_compare: OK (%s matches %s within %.1f%%)"
          % (candidate_path, baseline_path, 100.0 * rel_tol))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare a bench --json document to a baseline")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate",
                        help="existing bench JSON to compare")
    parser.add_argument("--bench",
                        help="bench binary to run (BFGTS_QUICK=1) "
                             "before comparing")
    parser.add_argument("--bench-arg", action="append", default=[],
                        help="extra argument for --bench (repeatable;"
                             " e.g. --bench-arg=--jobs "
                             "--bench-arg=8)")
    parser.add_argument("--tol", type=float,
                        default=float(os.environ.get(
                            "BFGTS_BENCH_TOL", "0.05")),
                        help="relative tolerance (default 0.05, or "
                             "env BFGTS_BENCH_TOL)")
    args = parser.parse_args()
    if args.bench:
        with tempfile.TemporaryDirectory() as tmp:
            candidate = os.path.join(tmp, "candidate.json")
            env = dict(os.environ, BFGTS_QUICK="1")
            subprocess.run([args.bench, "--json", candidate]
                           + args.bench_arg,
                           check=True, env=env,
                           stdout=subprocess.DEVNULL)
            return compare_files(args.baseline, candidate, args.tol)
    if not args.candidate:
        parser.error("need --candidate or --bench")
    return compare_files(args.baseline, args.candidate, args.tol)


if __name__ == "__main__":
    sys.exit(main())
