#!/usr/bin/env python3
"""Wall-clock gate for the sweep engine's host parallelism.

Times a quick-mode sweep bench serially (``--jobs 1``) and in
parallel (``--jobs N``) and fails unless the parallel run is at least
``--min-speedup`` times faster. The sweep cells are independent
CPU-bound simulations, so anything far below linear scaling points at
a serialization bug (a lock held across a simulation, a worker pool
that never fans out).

Each configuration is timed twice and the best time kept, which
filters scheduler hiccups on shared CI runners. Machines with fewer
than ``--min-cores`` physical slots cannot exhibit the speedup at
all; the gate then reports a skip and exits 0 (CI provides the
cores; laptops and constrained containers stay green).

Usage
-----
  sweep_speedup_gate.py --bench path/to/fig4_speedup \\
      [--jobs 8] [--min-speedup 3.0] [--min-cores 4]
"""

import argparse
import os
import subprocess
import sys
import time


def timed_run(bench, jobs):
    env = dict(os.environ, BFGTS_QUICK="1")
    env.pop("BFGTS_SWEEP_CACHE", None)
    best = None
    for _ in range(2):
        start = time.monotonic()
        subprocess.run([bench, "--jobs", str(jobs)], env=env,
                       stdout=subprocess.DEVNULL, check=True)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main():
    parser = argparse.ArgumentParser(
        description="Assert parallel sweep wall-clock speedup")
    parser.add_argument("--bench", required=True,
                        help="sweep-migrated bench binary to time")
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--min-cores", type=int, default=4,
                        help="skip (exit 0) below this many CPUs")
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    if cores < args.min_cores:
        print("sweep_speedup_gate: SKIP (%d CPU(s) < %d; the "
              "speedup is not physically reachable here)"
              % (cores, args.min_cores))
        return 0

    serial = timed_run(args.bench, 1)
    parallel = timed_run(args.bench, args.jobs)
    speedup = serial / parallel if parallel > 0 else float("inf")
    print("sweep_speedup_gate: serial %.2fs, %d-worker %.2fs "
          "-> speedup %.2fx (%d CPUs)"
          % (serial, args.jobs, parallel, speedup, cores))
    if speedup < args.min_speedup:
        print("sweep_speedup_gate: FAIL (below %.2fx)"
              % args.min_speedup)
        return 1
    print("sweep_speedup_gate: OK (>= %.2fx)" % args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
