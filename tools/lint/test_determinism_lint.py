#!/usr/bin/env python3
"""Self-test for determinism_lint.py.

Runs the linter over tools/lint/testdata/src -- fixture files with a
known set of violations and suppressions -- and asserts the exact
findings (file, line, rule). Any drift in the rule engine (missed
finding, new false positive, broken suppression parsing) fails this
test. Run via ``ctest -R lint_selftest`` or directly.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "determinism_lint.py")
TESTDATA = os.path.join(HERE, "testdata", "src")

# Every finding the fixtures must produce: (path, line, rule).
EXPECTED = [
    ("cm/bad_iter.h", 20, "unordered-iteration"),
    ("cm/bad_iter.h", 28, "unordered-iteration"),
    ("cm/bad_iter.h", 35, "bad-suppression"),
    ("cm/bad_iter.h", 36, "unordered-iteration"),
    ("cm/bad_iter.h", 44, "bad-suppression"),
    ("cm/bad_iter.h", 45, "unordered-iteration"),
    ("cm/float_accum.h", 24, "unordered-float-accumulation"),
    ("cm/float_accum.h", 35, "unordered-float-accumulation"),
    ("htm/ptr_key.h", 13, "pointer-keyed-ordered"),
    ("htm/ptr_key.h", 14, "pointer-keyed-ordered"),
    ("mem/raw_out.cpp", 11, "raw-output"),
    ("mem/raw_out.cpp", 12, "raw-output"),
    ("mem/raw_out.cpp", 13, "raw-output"),
    ("mem/raw_out.cpp", 14, "raw-output"),
    ("runner/bad_random.cpp", 15, "banned-random"),
    ("runner/bad_random.cpp", 16, "banned-random"),
    ("runner/bad_random.cpp", 18, "wall-clock"),
    ("runner/bad_random.cpp", 20, "wall-clock"),
    ("runner/bad_random.cpp", 23, "banned-random"),
    ("runner/bad_random.cpp", 25, "wall-clock"),
    ("runner/wall_clock.cpp", 17, "wall-clock"),
    ("runner/wall_clock.cpp", 18, "wall-clock"),
    ("runner/wall_clock.cpp", 22, "wall-clock"),
    ("runner/wall_clock.cpp", 25, "wall-clock"),
    ("runner/wall_clock.cpp", 28, "wall-clock"),
]

FINDING_RE = re.compile(r"^(.*?):(\d+): \[([\w-]+)\]")


def run_linter(root):
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", root],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.append((match.group(1).replace(os.sep, "/"),
                             int(match.group(2)), match.group(3)))
    return proc.returncode, findings


def fail(message):
    print("FAIL: %s" % message)
    sys.exit(1)


def main():
    code, findings = run_linter(TESTDATA)
    if code != 1:
        fail("expected exit code 1 on fixtures with findings, got %d"
             % code)

    expected = sorted(EXPECTED)
    actual = sorted(findings)
    if expected != actual:
        missing = [f for f in expected if f not in actual]
        extra = [f for f in actual if f not in expected]
        for item in missing:
            print("  missing: %s:%d [%s]" % item)
        for item in extra:
            print("  unexpected: %s:%d [%s]" % item)
        fail("fixture findings diverge (%d expected, %d actual)"
             % (len(expected), len(actual)))

    # A clean subtree must exit 0 with no findings: point the linter
    # at the fixture directory that is entirely violation-free.
    clean_root = os.path.join(TESTDATA, "bloom")
    code, findings = run_linter(clean_root)
    if code != 0 or findings:
        fail("clean subtree should exit 0 with no findings, got "
             "exit=%d findings=%r" % (code, findings))

    # --list-rules must advertise every rule the fixtures exercise.
    proc = subprocess.run(
        [sys.executable, LINTER, "--list-rules"],
        stdout=subprocess.PIPE, text=True)
    rules = set(proc.stdout.split())
    needed = {rule for _, _, rule in EXPECTED}
    if not needed.issubset(rules):
        fail("--list-rules is missing %r" % (needed - rules))

    print("PASS: %d fixture findings matched exactly" % len(expected))
    sys.exit(0)


if __name__ == "__main__":
    main()
