// Fixture: floating-point accumulation over unordered containers.
// Expected findings: 2x unordered-float-accumulation, reported at
// the loop heads of the "total +=" brace body and the
// single-statement "scale *=". Integer accumulation over the same
// containers, float accumulation over a vector, and the justified
// suppression must NOT be flagged.

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct FloatAccum {
    std::unordered_set<unsigned long> lines;
    std::unordered_map<int, double> weights;
    std::vector<double> ordered;

    double
    orderDependentSum() const
    {
        double total = 0.0;
        // lint:allow(unordered-iteration): fixture isolates the
        // float-accumulation rule from the iteration rule.
        for (unsigned long line : lines) { // finding (loop head)
            total += static_cast<double>(line);
        }
        return total;
    }

    double
    orderDependentProduct() const
    {
        double scale = 1.0;
        // lint:allow(unordered-iteration): same isolation as above.
        for (const auto &entry : weights) // finding (loop head)
            scale *= entry.second;
        return scale;
    }

    std::size_t
    integerSumIsFine() const
    {
        std::size_t count = 0;
        // lint:allow(unordered-iteration): integer accumulation is
        // commutative and associative; order cannot matter.
        for (unsigned long line : lines)
            count += line % 7;
        return count;
    }

    double
    orderedSumIsFine() const
    {
        double total = 0.0;
        for (double value : ordered)
            total += value;
        return total;
    }

    double
    suppressedSum() const
    {
        double total = 0.0;
        // lint:allow(unordered-iteration): fixture needs the loop.
        // lint:allow(unordered-float-accumulation): fixture for a
        // justified suppression; pretend the values are exact
        // powers of two.
        for (unsigned long line : lines)
            total += static_cast<double>(line);
        return total;
    }
};
