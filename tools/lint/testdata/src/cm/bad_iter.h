// Fixture: unordered iteration hazards in a simulation-affecting
// directory. Expected findings: 4x unordered-iteration,
// 2x bad-suppression (an allow without a justification and an allow
// naming an unknown rule; neither counts as a suppression nor hides
// the loop it precedes).

#ifndef LINT_TESTDATA_BAD_ITER_H
#define LINT_TESTDATA_BAD_ITER_H

#include <unordered_map>
#include <unordered_set>

struct VictimTable {
    std::unordered_set<int> enemies;
    std::unordered_map<int, double> weights;

    int
    firstEnemy() const
    {
        for (int enemy : enemies) // finding: range-for, hash order
            return enemy;
        return -1;
    }

    double
    firstWeight() const
    {
        auto it = weights.begin(); // finding: iterator, hash order
        return it == weights.end() ? 0.0 : it->second;
    }

    int
    badlySuppressed() const
    {
        // lint:allow(unordered-iteration)
        for (int enemy : enemies) // finding survives: no justification
            return enemy + 1;
        return -1;
    }

    int
    typoSuppressed() const
    {
        // lint:allow(unordered-itration): rule name is misspelled
        for (int enemy : enemies) // finding survives: unknown rule
            return enemy + 2;
        return -1;
    }
};

#endif // LINT_TESTDATA_BAD_ITER_H
