// Fixture: unordered iteration in a directory that is NOT
// simulation-affecting (bloom/ is a pure data-structure library).
// The unordered-iteration rule is scoped to sim-affecting dirs, so
// expected findings: 0.

#ifndef LINT_TESTDATA_ITER_OUTSIDE_SCOPE_H
#define LINT_TESTDATA_ITER_OUTSIDE_SCOPE_H

#include <unordered_set>

struct ExactSet {
    std::unordered_set<unsigned long> keys;

    unsigned long
    count() const
    {
        unsigned long n = 0;
        for (unsigned long key : keys)
            n += key != 0 ? 1 : 0;
        return n;
    }
};

#endif // LINT_TESTDATA_ITER_OUTSIDE_SCOPE_H
