// Fixture: correctly suppressed findings and out-of-scope patterns.
// Expected findings: 0.

#ifndef LINT_TESTDATA_SUPPRESSED_OK_H
#define LINT_TESTDATA_SUPPRESSED_OK_H

#include <unordered_set>
#include <vector>

struct Footprint {
    std::unordered_set<unsigned long> lines;
    std::vector<int> order;

    unsigned long
    checksum() const
    {
        unsigned long sum = 0;
        // lint:allow(unordered-iteration): commutative sum; the
        // result cannot depend on visit order.
        for (unsigned long line : lines)
            sum += line;
        return sum;
    }

    int
    firstOrdered() const
    {
        // A vector sharing a hazard-free name must not be flagged.
        for (int v : order)
            return v;
        return -1;
    }
};

#endif // LINT_TESTDATA_SUPPRESSED_OK_H
