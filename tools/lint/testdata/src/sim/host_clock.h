// Fixture: the sanctioned host-clock shim path. sim/host_clock.h is
// on the wall-clock exemption list, so the direct steady_clock and
// clock_gettime reads below must produce NO findings -- while the
// byte-identical code in runner/wall_clock.cpp keeps failing the
// rule. Expected findings: 0.

#ifndef LINT_TESTDATA_HOST_CLOCK_H
#define LINT_TESTDATA_HOST_CLOCK_H

#include <chrono>
#include <cstdint>
#include <ctime>

inline std::uint64_t
fixtureHostNowNs()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

inline std::uint64_t
fixtureHostCoarseNs()
{
    struct timespec ts {};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL
         + static_cast<std::uint64_t>(ts.tv_nsec);
}

#endif // LINT_TESTDATA_HOST_CLOCK_H
