// Fixture: pointer-keyed ordered containers. Expected findings:
// 2x pointer-keyed-ordered. The int-keyed set is fine.

#ifndef LINT_TESTDATA_PTR_KEY_H
#define LINT_TESTDATA_PTR_KEY_H

#include <map>
#include <set>

struct TxRecord;

struct Registry {
    std::set<TxRecord *> live;             // finding: address order
    std::map<TxRecord *, int> priorities;  // finding: address order
    std::set<int> byId;                    // ok: stable key
};

#endif // LINT_TESTDATA_PTR_KEY_H
