// Fixture: every wall-clock/environment read the wall-clock rule
// bans beyond the classics covered in bad_random.cpp. Expected
// findings: 5x wall-clock (clock, system_clock typedef use,
// localtime, gettimeofday, clock_gettime); the suppressed
// clock_gettime at the end must NOT be flagged, and neither must the
// user-defined my_clock() call.

#include <chrono>
#include <ctime>
#include <sys/time.h>

long my_clock();

long
hostTimeSoup()
{
    long x = static_cast<long>(clock()); // finding
    using wall = std::chrono::system_clock; // finding
    x += static_cast<long>(
        wall::to_time_t(wall::time_point{}));
    std::time_t stamp = 0;
    std::tm *parts = std::localtime(&stamp); // finding
    x += parts != nullptr ? parts->tm_sec : 0;
    struct timeval tv {};
    gettimeofday(&tv, nullptr); // finding
    x += tv.tv_sec;
    struct timespec ts {};
    clock_gettime(CLOCK_MONOTONIC, &ts); // finding
    x += ts.tv_sec;
    // lint:allow(wall-clock): fixture for a justified suppression;
    // pretend this is a sanctioned host-profiling shim.
    clock_gettime(CLOCK_MONOTONIC, &ts);
    x += my_clock(); // a user-defined function, not the libc clock()
    return x;
}
