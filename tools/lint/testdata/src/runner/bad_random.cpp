// Fixture: banned ambient entropy plus the wall-clock reads that
// used to ride along with it. Expected findings: 3x banned-random
// (rand, random_device, mt19937) and 3x wall-clock (time,
// clock::now, getenv). The srand call inside the string literal and
// the "time (" in this comment must NOT be flagged.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long
entropySoup()
{
    unsigned long x = static_cast<unsigned long>(rand()); // finding
    std::random_device dev;                               // finding
    x += dev();
    x += static_cast<unsigned long>(time(nullptr)); // finding
    x += static_cast<unsigned long>(
        std::chrono::steady_clock::now() // finding
            .time_since_epoch()
            .count());
    std::mt19937 gen(12345); // finding: ad-hoc seeding
    x += gen();
    const char *home = std::getenv("HOME"); // finding
    x += home != nullptr ? 1u : 0u;
    const char *decoy = "srand(42) inside a string is fine";
    x += decoy[0] != '\0' ? 1u : 0u;
    return x;
}
