// Fixture: raw output in a model directory. std::cout and the printf
// family must be flagged; snprintf (buffer formatting) and suppressed
// occurrences must not.

#include <cstdio>
#include <iostream>

void
report(int hits, double rate)
{
    std::cout << "hits " << hits << "\n";
    std::printf("rate %.2f\n", rate);
    fprintf(stderr, "debug rate %.2f\n", rate);
    puts("done");

    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", rate); // fine: no stream

    // lint:allow(raw-output): temporary bring-up print, removed once
    // the stat group lands.
    std::printf("bring-up %d\n", hits);
}
