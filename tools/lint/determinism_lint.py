#!/usr/bin/env python3
"""Determinism linter for the BFGTS simulator sources.

The simulator must be a pure function of (config, seed): identical
inputs produce bit-identical results. This linter statically flags the
code patterns that most often break that property in C++ codebases:

  unordered-iteration   Range-for / iterator loops over
                        std::unordered_set / std::unordered_map /
                        sim::HashSet / sim::HashMap state in
                        simulation-affecting directories (sim/, cm/,
                        htm/, runner/, os/, cpu/). Hash-table
                        iteration order is unspecified; any decision
                        or statistic derived from it is
                        irreproducible.

  banned-random         Uses of ambient entropy: rand(), srand(),
                        std::random_device, std::mt19937 /
                        std::default_random_engine construction --
                        anywhere under src/ except src/sim/random.h
                        and src/sim/det_hash.h, the sanctioned homes
                        of seeding policy. All simulated randomness
                        must flow through sim::Rng.

  wall-clock            Reads of wall-clock time or the process
                        environment: time(), clock(),
                        std::chrono::*_clock::now(),
                        std::chrono::system_clock, localtime()/
                        gmtime(), gettimeofday(), clock_gettime(),
                        and getenv(). Simulated time is the event
                        queue's tick and configuration arrives
                        through SimConfig; host time or env reads in
                        model code make runs irreproducible. The only
                        exemptions are the sanctioned read-once env
                        shims (src/sim/det_hash.h for BFGTS_HASH_SEED,
                        src/sim/audit.cpp for BFGTS_AUDIT,
                        src/bloom/signature_ops.cpp for
                        BFGTS_SIG_IMPL -- both signature kernel
                        implementations are bit-identical, so the knob
                        only moves wall-clock metrics),
                        src/sim/random.h, and src/sim/host_clock.h --
                        the single sanctioned host-clock shim through
                        which the host-performance profiler
                        (sim/profiler.h) reads steady_clock and
                        getrusage; its output is segregated into the
                        separate nondeterministic bfgts-prof-v1
                        report. Every other model file still fails
                        this rule on any direct clock or env read.

  unordered-float-accumulation
                        Floating-point accumulation (+=, -=, *=, /=
                        into a float/double) inside a range-for over
                        an unordered container. FP addition is not
                        associative, so even a "commutative" sum
                        changes with iteration order; integer sums
                        are safe, float sums are not. Iterate a
                        sorted copy or accumulate integers instead.

  pointer-keyed-ordered Ordered containers keyed by pointers
                        (std::set<T*>, std::map<T*, ...>): address
                        order varies run to run (ASLR, allocator
                        state), so "ordered" iteration is still
                        nondeterministic.

  raw-output            Raw std::cout / printf / fprintf in the model
                        directories (sim/, cm/, cpu/, htm/, mem/,
                        os/) outside the sanctioned output layers
                        (sim/logging.*, sim/stats.*, sim/trace.*,
                        sim/json.*). Model code must report through
                        counters, histograms, and trace sinks so
                        every observable is machine-readable and
                        byte-reproducible; ad-hoc prints are neither.

Suppressions
------------
A finding is suppressed by a comment on the same line, or on a
comment line (block) directly above the offending line:

    // lint:allow(unordered-iteration): commutative sum; order
    // cannot affect the result.
    for (mem::Addr line : writeSet)

The justification after the colon is mandatory; a bare
``lint:allow(rule)`` is itself reported (rule ``bad-suppression``)
and does not suppress anything.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors.
"""

import argparse
import os
import re
import sys

SIM_AFFECTING_DIRS = ("sim", "cm", "htm", "runner", "os", "cpu")

# Files allowed to define randomness/seeding policy.
RANDOM_POLICY_FILES = ("sim/random.h", "sim/det_hash.h")

# Files allowed to read the environment (read-once startup shims) or
# -- for sim/host_clock.h only -- the host clock: the sanctioned shim
# the profiler's nondeterministic bfgts-prof-v1 report flows through.
WALL_CLOCK_POLICY_FILES = ("sim/random.h", "sim/det_hash.h",
                           "sim/audit.cpp", "sim/host_clock.h",
                           "bloom/signature_ops.cpp")

UNORDERED_TYPES = (
    "std::unordered_set",
    "std::unordered_map",
    "std::unordered_multiset",
    "std::unordered_multimap",
    "sim::HashSet",
    "sim::HashMap",
)

BANNED_RANDOM = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device|(?<![\w:])random_device\s"),
     "std::random_device"),
    (re.compile(r"std::mt19937|(?<![\w:])mt19937(?:_64)?\s*[({ ]"),
     "std::mt19937"),
    (re.compile(r"default_random_engine"), "std::default_random_engine"),
]

WALL_CLOCK = [
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|\))"),
     "time()"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b\w*_clock::now\s*\("),
     "std::chrono::*_clock::now()"),
    (re.compile(r"\bsystem_clock\b(?!\s*::\s*now)"),
     "std::chrono::system_clock"),
    (re.compile(r"(?<![\w:])(?:std::)?(?:localtime|gmtime)(?:_r|_s)?"
                r"\s*\("),
     "localtime()/gmtime()"),
    (re.compile(r"(?<![\w:])(?:gettimeofday|clock_gettime)\s*\("),
     "gettimeofday()/clock_gettime()"),
    (re.compile(r"(?<![\w:])(?:std::)?getenv\s*\("), "getenv()"),
]

POINTER_KEYED = re.compile(
    r"std::(?:multi)?(?:set|map)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?"
    r"\s*\*"
)

# Directories whose code must not print directly (model code).
RAW_OUTPUT_DIRS = ("sim", "cm", "cpu", "htm", "mem", "os")

# The sanctioned output layers themselves.
RAW_OUTPUT_FILES = (
    "sim/logging.h", "sim/logging.cpp",
    "sim/stats.h", "sim/stats.cpp",
    "sim/trace.h", "sim/trace.cpp",
    "sim/json.h", "sim/json.cpp",
)

RAW_OUTPUT = [
    (re.compile(r"std\s*::\s*cout"), "std::cout"),
    # Matches printf/fprintf (with or without std::) but not
    # snprintf/vsnprintf, whose buffer writes are fine.
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?f?printf\s*\("),
     "printf()/fprintf()"),
    (re.compile(r"(?<![\w:])(?:std\s*::\s*)?puts\s*\("), "puts()"),
]

ALLOW_RE = re.compile(r"lint:allow\(([\w-]+)\)(:?)\s*(\S?)")

KNOWN_RULES = ("unordered-iteration", "banned-random", "wall-clock",
               "unordered-float-accumulation", "pointer-keyed-ordered",
               "raw-output")

IDENT = r"[A-Za-z_]\w*"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving the
    byte offsets and line structure of everything else."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def match_angle_brackets(text, start):
    """Given text[start] == '<', return the index one past the
    matching '>', or -1."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif ch in ";{}":
            return -1  # malformed / not a template argument list
        i += 1
    return -1


def collect_unordered_names(stripped):
    """Names of variables/members declared with an unordered container
    type in this file. Function declarations (identifier followed by
    '(') are skipped."""
    names = set()
    for utype in UNORDERED_TYPES:
        for match in re.finditer(re.escape(utype) + r"\s*<", stripped):
            open_idx = match.end() - 1
            close = match_angle_brackets(stripped, open_idx)
            if close < 0:
                continue
            tail = stripped[close:close + 160]
            decl = re.match(
                r"\s*&?\s*(" + IDENT + r")\s*([;={(,)])", tail)
            if decl and decl.group(2) != "(":
                names.add(decl.group(1))
    return names


def match_parens(text, start):
    """Given text[start] == '(', return index one past matching ')'."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def trailing_identifier(expr):
    """Last identifier of an lvalue expression like worker.tx.readSet
    or holder->writeSet (ignoring trailing whitespace)."""
    match = re.search(r"(" + IDENT + r")\s*$", expr)
    return match.group(1) if match else None


def is_unordered_ref(expr, local_names, shared_names):
    """Does @p expr denote an unordered container? Bare identifiers
    resolve against the declarations of this file and its paired
    header only (a name like ``stats_`` may be a hash map in one class
    and a vector in another); member accesses (``worker.tx.readSet``)
    additionally resolve against names declared unordered anywhere."""
    name = trailing_identifier(expr)
    if name is None:
        return None
    if name in local_names:
        return name
    has_member_prefix = re.search(
        r"(?:\.|->)\s*" + re.escape(name) + r"\s*$", expr)
    if has_member_prefix and name in shared_names:
        return name
    return None


def find_unordered_iteration(path, stripped, local_names, shared_names):
    findings = []
    # Range-based for over an unordered container.
    for match in re.finditer(r"\bfor\s*\(", stripped):
        open_idx = match.end() - 1
        close = match_parens(stripped, open_idx)
        if close < 0:
            continue
        head = stripped[open_idx + 1:close - 1]
        # Range-for: a single top-level ':' that is not part of '::'.
        parts = re.split(r"(?<!:):(?!:)", head)
        if len(parts) != 2:
            continue
        name = is_unordered_ref(parts[1], local_names, shared_names)
        if name:
            findings.append(Finding(
                path, line_of(stripped, match.start()),
                "unordered-iteration",
                "range-for over unordered container '%s'; iteration "
                "order is unspecified" % name))
    # Explicit iterator loops: container.begin() and friends.
    for match in re.finditer(
            r"((?:[\w\]\)]\s*(?:\.|->)\s*)*)(" + IDENT
            + r")\s*\.\s*(?:c?r?begin)\s*\(", stripped):
        expr = match.group(1) + match.group(2)
        name = is_unordered_ref(expr, local_names, shared_names)
        if name:
            findings.append(Finding(
                path, line_of(stripped, match.start()),
                "unordered-iteration",
                "iterator over unordered container '%s'; iteration "
                "order is unspecified" % name))
    return findings


def find_banned_random(path, stripped):
    findings = []
    for pattern, label in BANNED_RANDOM:
        for match in pattern.finditer(stripped):
            findings.append(Finding(
                path, line_of(stripped, match.start()), "banned-random",
                "%s is nondeterministic; draw from sim::Rng "
                "(src/sim/random.h) instead" % label))
    return findings


def find_wall_clock(path, stripped):
    findings = []
    for pattern, label in WALL_CLOCK:
        for match in pattern.finditer(stripped):
            findings.append(Finding(
                path, line_of(stripped, match.start()), "wall-clock",
                "%s reads host time or the environment; use the event "
                "queue's tick for time and SimConfig for "
                "configuration" % label))
    return findings


def match_braces(text, start):
    """Given text[start] == '{', return index one past matching '}'."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


FLOAT_DECL = re.compile(
    r"\b(?:double|float)\s+(" + IDENT + r")\s*[=;,)]")

FLOAT_ACCUM = re.compile(r"(" + IDENT + r")\s*[+\-*/]=")


def collect_float_names(stripped):
    """Names of variables/members declared float or double."""
    return {m.group(1) for m in FLOAT_DECL.finditer(stripped)}


def find_unordered_float_accumulation(path, stripped, local_names,
                                      shared_names, float_names):
    """Float accumulation inside a range-for over an unordered
    container: the sum's value depends on iteration order because FP
    addition is not associative."""
    findings = []
    for match in re.finditer(r"\bfor\s*\(", stripped):
        open_idx = match.end() - 1
        close = match_parens(stripped, open_idx)
        if close < 0:
            continue
        head = stripped[open_idx + 1:close - 1]
        parts = re.split(r"(?<!:):(?!:)", head)
        if len(parts) != 2:
            continue
        if not is_unordered_ref(parts[1], local_names, shared_names):
            continue
        # Loop body: a brace block or a single statement.
        body_start = close
        while body_start < len(stripped) \
                and stripped[body_start].isspace():
            body_start += 1
        if body_start >= len(stripped):
            continue
        if stripped[body_start] == "{":
            body_end = match_braces(stripped, body_start)
            if body_end < 0:
                continue
        else:
            body_end = stripped.find(";", body_start)
            if body_end < 0:
                continue
        body = stripped[body_start:body_end]
        for accum in FLOAT_ACCUM.finditer(body):
            if accum.group(1) in float_names:
                # Reported at the loop head so one suppression
                # comment can cover the loop, as with
                # unordered-iteration.
                findings.append(Finding(
                    path, line_of(stripped, match.start()),
                    "unordered-float-accumulation",
                    "float accumulation into '%s' over an unordered "
                    "container; FP addition is not associative, so "
                    "the result depends on iteration order"
                    % accum.group(1)))
                break
    return findings


def find_raw_output(path, stripped):
    findings = []
    for pattern, label in RAW_OUTPUT:
        for match in pattern.finditer(stripped):
            findings.append(Finding(
                path, line_of(stripped, match.start()), "raw-output",
                "%s bypasses the logging/stats/trace layers; report "
                "through sim::StatGroup, sim::TraceSink, or "
                "sim/logging.h instead" % label))
    return findings


def find_pointer_keyed(path, stripped):
    findings = []
    for match in POINTER_KEYED.finditer(stripped):
        findings.append(Finding(
            path, line_of(stripped, match.start()),
            "pointer-keyed-ordered",
            "ordered container keyed by a pointer; address order "
            "varies across runs -- key by a stable id (e.g. dTxID)"))
    return findings


def parse_suppressions(raw_lines):
    """Map line number -> set of suppressed rules, honoring same-line
    and preceding-comment-block placement. Returns (suppression map,
    bad-suppression findings-as-(line, rule) list)."""
    allowed = {}
    bad = []
    pending = {}  # rules waiting for the next code line
    for lineno, line in enumerate(raw_lines, start=1):
        text = line.strip()
        is_comment = text.startswith("//") or text.startswith("*") \
            or text.startswith("/*")
        for match in ALLOW_RE.finditer(line):
            rule, colon, just = match.group(1), match.group(2), \
                match.group(3)
            if colon != ":" or not just:
                bad.append((lineno, rule,
                            "without a ': <justification>'; "
                            "suppressions must say why the pattern "
                            "is safe"))
                continue
            if rule not in KNOWN_RULES:
                bad.append((lineno, rule,
                            "names an unknown rule (typo?); it "
                            "suppresses nothing"))
                continue
            if is_comment:
                pending.setdefault(rule, None)
            else:
                allowed.setdefault(lineno, set()).add(rule)
        if not is_comment and text:
            if pending:
                allowed.setdefault(lineno, set()).update(pending)
                pending = {}
    return allowed, bad


def paired_header(path):
    """conflict_detector.cpp -> conflict_detector.h, if it exists."""
    stem, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp", ".cxx"):
        for hext in (".h", ".hpp"):
            if os.path.isfile(stem + hext):
                return stem + hext
    return None


def lint_file(path, rel, src_root):
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        raw = handle.read()
    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw)

    findings = []
    top_dir = rel.split(os.sep, 1)[0] if os.sep in rel else ""
    if top_dir in SIM_AFFECTING_DIRS:
        local = collect_unordered_names(stripped)
        header = paired_header(path)
        if header:
            with open(header, "r", encoding="utf-8",
                      errors="replace") as handle:
                local |= collect_unordered_names(
                    strip_comments_and_strings(handle.read()))
        findings += find_unordered_iteration(
            rel, stripped, local, lint_file.shared_unordered_names)
        floats = collect_float_names(stripped)
        if header:
            with open(header, "r", encoding="utf-8",
                      errors="replace") as handle:
                floats |= collect_float_names(
                    strip_comments_and_strings(handle.read()))
        findings += find_unordered_float_accumulation(
            rel, stripped, local, lint_file.shared_unordered_names,
            floats)
    if rel.replace(os.sep, "/") not in RANDOM_POLICY_FILES:
        findings += find_banned_random(rel, stripped)
    if rel.replace(os.sep, "/") not in WALL_CLOCK_POLICY_FILES:
        findings += find_wall_clock(rel, stripped)
    if top_dir in RAW_OUTPUT_DIRS \
            and rel.replace(os.sep, "/") not in RAW_OUTPUT_FILES:
        findings += find_raw_output(rel, stripped)
    findings += find_pointer_keyed(rel, stripped)

    allowed, bad = parse_suppressions(raw_lines)
    kept = []
    for finding in findings:
        if finding.rule in allowed.get(finding.line, ()):
            continue
        kept.append(finding)
    for lineno, rule, why in bad:
        kept.append(Finding(
            rel, lineno, "bad-suppression",
            "lint:allow(%s) %s" % (rule, why)))
    return kept


# Unordered member names declared in headers, shared across all files
# so iteration over e.g. tx.readSet is caught in any translation unit.
lint_file.shared_unordered_names = set()


def gather_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".h", ".hpp", ".cc", ".cpp", ".cxx")):
                out.append(os.path.join(dirpath, name))
    return out


def main(argv):
    parser = argparse.ArgumentParser(
        description="Determinism lint for BFGTS simulator sources.")
    parser.add_argument(
        "--root", default=None,
        help="Source root to scan (default: <repo>/src).")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="Print rule names and exit.")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in KNOWN_RULES + ("bad-suppression",):
            print(rule)
        return 0

    root = args.root
    if root is None:
        root = os.path.join(
            os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))), "src")
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        print("determinism_lint: no such directory: %s" % root,
              file=sys.stderr)
        return 2

    files = gather_files(root)

    # Pass 1: harvest unordered member/variable names from every file
    # so cross-file member iteration resolves.
    for path in files:
        with open(path, "r", encoding="utf-8",
                  errors="replace") as handle:
            stripped = strip_comments_and_strings(handle.read())
        lint_file.shared_unordered_names |= \
            collect_unordered_names(stripped)

    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        findings += lint_file(path, rel, root)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    print("determinism_lint: %d file(s) scanned, %d finding(s)"
          % (len(files), len(findings)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
