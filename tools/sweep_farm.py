#!/usr/bin/env python3
"""Local multi-process sweep farm driver.

Spawns N `bfgts_cli --sweep` worker *processes* over one sweep matrix
-- either as static `--shard i/N` partitions or as `--steal` workers
racing a shared filesystem queue -- sharing one content-addressed
cell cache, then recombines the partial reports with
`bfgts_cli --merge-reports` and (optionally) cross-checks the merge
with tools/farm_merge.py. The merged report is byte-identical to what
a single `bfgts_cli --sweep` run would have produced (src/runner/
farm.h explains why), so this driver is a drop-in way to spread a
large matrix across local cores -- or, pointed at a network
filesystem, across machines.

Usage
-----
  sweep_farm.py --cli build/tools/bfgts_cli --workers 3 \\
      --out merged.json -- --workloads Intruder,Genome \\
      --cms Backoff,BFGTS-HW --seeds 1,2,3 --baselines

Everything after `--` is passed to every worker verbatim (the sweep
matrix selection). Other flags:

  --mode static|steal   partitioning strategy (default static)
  --cache DIR           shared cell cache (default: <workdir>/cache);
                        rerunning after a crash resumes from it
  --workdir DIR         keep partials/queue here instead of a tempdir
  --jobs N              in-process threads per worker (default 1)
  --cross-check         also merge with farm_merge.py and require
                        byte-identity with the CLI merge
"""

import argparse
import os
import subprocess
import sys
import tempfile


def worker_command(args, index, workdir, json_path):
    cmd = [args.cli, "--sweep", "--jobs", str(args.jobs),
           "--cache", args.cache, "--json", json_path]
    if args.mode == "static":
        cmd += ["--shard", "%d/%d" % (index, args.workers)]
    else:
        cmd += ["--steal", os.path.join(workdir, "queue")]
    return cmd + args.sweep_args


def main():
    parser = argparse.ArgumentParser(
        description="Run a sweep matrix across N bfgts_cli worker "
                    "processes and merge the partial reports")
    parser.add_argument("--cli", required=True,
                        help="path to the bfgts_cli binary")
    parser.add_argument("--workers", type=int, default=3,
                        help="worker process count (default 3)")
    parser.add_argument("--mode", choices=("static", "steal"),
                        default="static")
    parser.add_argument("--jobs", type=int, default=1,
                        help="threads per worker process (default 1)")
    parser.add_argument("--cache",
                        help="shared cell cache directory")
    parser.add_argument("--workdir",
                        help="directory for partials and the steal "
                             "queue (default: a fresh tempdir)")
    parser.add_argument("--out", required=True,
                        help="merged report destination")
    parser.add_argument("--cross-check", action="store_true",
                        help="also merge via farm_merge.py and "
                             "require byte-identity")
    parser.add_argument("sweep_args", nargs=argparse.REMAINDER,
                        help="-- followed by sweep matrix flags "
                             "passed to every worker")
    args = parser.parse_args()
    if args.sweep_args and args.sweep_args[0] == "--":
        args.sweep_args = args.sweep_args[1:]
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    own_tempdir = None
    if args.workdir:
        workdir = args.workdir
        os.makedirs(workdir, exist_ok=True)
    else:
        own_tempdir = tempfile.TemporaryDirectory(prefix="sweep_farm.")
        workdir = own_tempdir.name
    if not args.cache:
        args.cache = os.path.join(workdir, "cache")

    partials = []
    procs = []
    for index in range(args.workers):
        json_path = os.path.join(workdir, "partial%d.json" % index)
        partials.append(json_path)
        cmd = worker_command(args, index, workdir, json_path)
        procs.append(subprocess.Popen(cmd))
    status = 0
    for index, proc in enumerate(procs):
        if proc.wait() != 0:
            print("sweep_farm: worker %d exited with %d"
                  % (index, proc.returncode), file=sys.stderr)
            status = 1
    if status:
        return status

    merge_cmd = [args.cli, "--merge-reports"] + partials \
        + ["--json", args.out]
    if subprocess.run(merge_cmd).returncode != 0:
        print("sweep_farm: merge failed", file=sys.stderr)
        return 1

    if args.cross_check:
        here = os.path.dirname(os.path.abspath(__file__))
        check = subprocess.run(
            [sys.executable, os.path.join(here, "farm_merge.py")]
            + partials
            + ["-o", os.path.join(workdir, "merged.pycheck.json"),
               "--reference", args.out])
        if check.returncode != 0:
            print("sweep_farm: farm_merge.py cross-check failed",
                  file=sys.stderr)
            return 1

    print("sweep_farm: %d %s worker(s) -> %s"
          % (args.workers, args.mode, args.out))
    if own_tempdir:
        own_tempdir.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
