#!/usr/bin/env python3
"""Independent re-implementation of `bfgts_cli --merge-reports`.

Recombines per-shard bfgts-sweep-v1 partial reports (src/runner/farm.h)
into the single-machine report -- byte for byte. The point is
*cross-checking*: this script shares no code with the C++ merger, so
when both produce identical bytes (the `farm_identical` ctest gate)
the merge format and the validator are pinned from two directions.

Byte-identity is achieved the same way as in C++: cell objects are
never re-serialized. Each partial's raw text is spliced -- the cell
objects are cut out verbatim with a string-aware brace matcher and
re-emitted in global cell order under a reconstructed header.

Validation mirrors runner::mergeSweepReports: every partial must agree
on matrix digest, total cell count, report name, git describe, and
dirty flag; the claimed cell ranges must be disjoint and cover
[0, totalCells) exactly.

Usage
-----
  farm_merge.py partial0.json partial1.json ... -o merged.json
                [--reference direct.json]

With --reference, the merged bytes are additionally compared against a
direct single-machine report and any difference is an error.
Exit 0 on success, 1 on validation or comparison failure.
"""

import argparse
import json
import sys


class MergeError(Exception):
    pass


def json_escape(text):
    """Clone of sim::jsonEscape (json.cpp): the canonical escape set."""
    out = ['"']
    for ch in text:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\b":
            out.append("\\b")
        elif ch == "\f":
            out.append("\\f")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\t":
            out.append("\\t")
        elif ord(ch) < 0x20:
            out.append("\\u%04x" % ord(ch))
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def splice_cells(text, path):
    """Return the raw text of each top-level object in the "cells"
    array, exactly as it appears in the file."""
    marker = '"cells": ['
    start = text.find(marker)
    if start < 0:
        raise MergeError("%s: no cells array" % path)
    pos = start + len(marker)
    cells = []
    depth = 0
    in_string = False
    escaped = False
    cell_start = None
    while pos < len(text):
        ch = text[pos]
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch == "{":
            if depth == 0:
                cell_start = pos
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                cells.append(text[cell_start:pos + 1])
        elif ch == "]" and depth == 0:
            return cells
        pos += 1
    raise MergeError("%s: unterminated cells array" % path)


def load_partial(path):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise MergeError("%s: %s" % (path, exc))
    if doc.get("schema") != "bfgts-sweep-v1":
        raise MergeError("%s: not a bfgts-sweep-v1 report" % path)
    if doc.get("kind") != "sweep":
        raise MergeError("%s: kind is not 'sweep'" % path)
    shard = doc.get("shard")
    if not isinstance(shard, dict):
        raise MergeError("%s: no shard manifest (not a partial "
                         "report?)" % path)
    ranges = shard.get("cellRanges")
    if not isinstance(ranges, list):
        raise MergeError("%s: shard manifest has no cellRanges"
                         % path)
    indices = []
    last_end = 0
    for pair in ranges:
        if (not isinstance(pair, list) or len(pair) != 2
                or not all(isinstance(v, int) for v in pair)):
            raise MergeError("%s: malformed cell range %r"
                             % (path, pair))
        begin, end = pair
        if begin < last_end or end <= begin:
            raise MergeError("%s: cell ranges not ascending and "
                             "disjoint" % path)
        if end > shard.get("totalCells", 0):
            raise MergeError("%s: cell range %r exceeds totalCells"
                             % (path, pair))
        indices.extend(range(begin, end))
        last_end = end
    cells = splice_cells(text, path)
    if len(cells) != len(indices) or doc.get("cellCount") != len(cells):
        raise MergeError("%s: cellCount, cells array, and cellRanges "
                         "disagree" % path)
    return {
        "path": path,
        "digest": shard.get("matrixDigest"),
        "total": shard.get("totalCells"),
        "name": doc.get("name"),
        "git": doc.get("git"),
        "git_dirty": doc.get("gitDirty"),
        "indices": indices,
        "cells": cells,
    }


def merge(paths):
    if not paths:
        raise MergeError("no partial reports given")
    partials = [load_partial(path) for path in paths]
    first = partials[0]
    for part in partials[1:]:
        for key, label in (("digest", "matrix digest"),
                           ("total", "totalCells"),
                           ("name", "report name"),
                           ("git", "git describe"),
                           ("git_dirty", "gitDirty")):
            if part[key] != first[key]:
                raise MergeError(
                    "%s: %s %r does not match %s's %r"
                    % (part["path"], label, part[key],
                       first["path"], first[key]))
    total = first["total"]
    slots = [None] * total
    for part in partials:
        for index, cell in zip(part["indices"], part["cells"]):
            if slots[index] is not None:
                raise MergeError(
                    "%s: cell %d already covered by another shard"
                    % (part["path"], index))
            slots[index] = cell
    for index, cell in enumerate(slots):
        if cell is None:
            raise MergeError("cell %d covered by no shard "
                             "(incomplete farm run?)" % index)

    header = [
        "{",
        '  "schema": "bfgts-sweep-v1",',
        '  "kind": "sweep",',
        '  "name": %s,' % json_escape(first["name"]),
        '  "git": %s,' % json_escape(first["git"]),
        '  "gitDirty": %s,' % ("true" if first["git_dirty"]
                               else "false"),
        '  "cellCount": %d,' % total,
        '  "cells": [',
    ]
    return ("\n".join(header) + "\n"
            + ",\n".join("    " + cell for cell in slots)
            + "\n  ]\n}\n")


def main():
    parser = argparse.ArgumentParser(
        description="Merge bfgts-sweep-v1 partial reports "
                    "(independent cross-check of bfgts_cli "
                    "--merge-reports)")
    parser.add_argument("partials", nargs="+",
                        help="per-shard partial report files")
    parser.add_argument("-o", "--output", required=True,
                        help="merged report destination")
    parser.add_argument("--reference",
                        help="byte-compare the merged report against "
                             "this single-machine report")
    args = parser.parse_args()

    try:
        merged = merge(args.partials)
    except MergeError as exc:
        print("farm_merge: %s" % exc, file=sys.stderr)
        return 1
    with open(args.output, "w", encoding="utf-8", newline="") as fh:
        fh.write(merged)
    if args.reference:
        with open(args.reference, "r", encoding="utf-8",
                  newline="") as fh:
            reference = fh.read()
        if merged != reference:
            print("farm_merge: merged report differs from %s"
                  % args.reference, file=sys.stderr)
            return 1
        print("farm_merge: merged %d partial(s) -> %s "
              "(byte-identical to %s)"
              % (len(args.partials), args.output, args.reference))
    else:
        print("farm_merge: merged %d partial(s) -> %s"
              % (len(args.partials), args.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
