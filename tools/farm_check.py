#!/usr/bin/env python3
"""Distributed-farm differential gate (the `farm_identical` ctest).

Exercises the sweep farm (src/runner/farm.h) end to end with real
separate worker *processes* and asserts its headline guarantees:

* **Static sharding** -- three `bfgts_cli --sweep --shard i/3`
  processes sharing one cell cache produce partial reports whose
  `--merge-reports` recombination is byte-identical to the direct
  single-machine `--sweep --jobs N` report.
* **Work stealing** -- three concurrent `--steal` workers racing one
  filesystem queue drain every cell exactly once and merge to the
  same bytes.
* **Hash-seed invariance** -- all of the above holds under two
  BFGTS_HASH_SEED values, and the reports agree across seeds.
* **Cross-checked merge** -- tools/farm_merge.py (an independent
  Python re-implementation) reproduces the CLI merge byte for byte.
* **Crash resume** -- a worker SIGKILLed mid-sweep leaves N completed
  cells in the cache; the rerun answers exactly those N from cache and
  executes only the remainder (checked against the "sweep: ..."
  summary line).

Usage
-----
  farm_check.py --cli path/to/bfgts_cli [--jobs 8]
"""

import argparse
import glob
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

# The same bucket-scrambling pair sweep_check.py uses.
HASH_SEEDS = ["0", "18364758544493064720"]

MATRIX = [
    "--workloads", "Intruder,Genome,Kmeans",
    "--cms", "Backoff,PTS,BFGTS-HW",
    "--seeds", "1,2",
    "--baselines",
]

SUMMARY_RE = re.compile(
    r"sweep: (\d+) cells, (\d+) executed, (\d+) cached, (\d+) errors")


def env_for(hash_seed):
    env = dict(os.environ, BFGTS_QUICK="1",
               BFGTS_HASH_SEED=hash_seed)
    env.pop("BFGTS_SWEEP_CACHE", None)
    return env


def parse_summary(stderr):
    match = SUMMARY_RE.search(stderr)
    if not match:
        raise AssertionError("no sweep summary line on stderr:\n"
                             + stderr)
    return tuple(int(g) for g in match.groups())


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


def run_worker(cli, hash_seed, json_path, cache_dir, extra):
    proc = subprocess.run(
        [cli, "--sweep"] + MATRIX
        + ["--cache", cache_dir, "--json", json_path] + extra,
        env=env_for(hash_seed), stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True, check=True)
    return parse_summary(proc.stderr)


def merge(cli, hash_seed, partials, out_path):
    subprocess.run([cli, "--merge-reports"] + partials
                   + ["--json", out_path],
                   env=env_for(hash_seed),
                   stdout=subprocess.DEVNULL,
                   stderr=subprocess.DEVNULL, check=True)
    return read_bytes(out_path)


def cross_check(partials, out_path, reference):
    here = os.path.dirname(os.path.abspath(__file__))
    return subprocess.run(
        [sys.executable, os.path.join(here, "farm_merge.py")]
        + partials + ["-o", out_path, "--reference", reference],
        stdout=subprocess.DEVNULL).returncode == 0


def cache_cells(cache_dir):
    return sorted(glob.glob(os.path.join(cache_dir, "*.cell")))


def static_leg(cli, hash_seed, tmp, direct, failures):
    cache = os.path.join(tmp, "static_cache_%s" % hash_seed)
    partials = []
    executed_total = 0
    for shard in range(3):
        path = os.path.join(tmp, "static_%s_%d.json"
                            % (hash_seed, shard))
        partials.append(path)
        summary = run_worker(cli, hash_seed, path, cache,
                             ["--shard", "%d/3" % shard])
        cells, executed, cached, errors = summary
        if executed != cells or cached != 0 or errors != 0:
            print("FAIL: static shard %d/3 (seed %s) summary %s: "
                  "expected every claimed cell executed"
                  % (shard, hash_seed, summary))
            failures.append("static summary")
        executed_total += executed
    merged_path = os.path.join(tmp, "static_%s.json" % hash_seed)
    merged = merge(cli, hash_seed, partials, merged_path)
    if merged != direct:
        print("FAIL: static 3-shard merge (seed %s) differs from "
              "the direct report" % hash_seed)
        failures.append("static merge")
    if not cross_check(partials,
                       os.path.join(tmp, "static_%s.py.json"
                                    % hash_seed), merged_path):
        print("FAIL: farm_merge.py cross-check (static, seed %s)"
              % hash_seed)
        failures.append("static cross-check")
    return executed_total


def steal_leg(cli, hash_seed, tmp, direct, total_cells, failures):
    cache = os.path.join(tmp, "steal_cache_%s" % hash_seed)
    queue = os.path.join(tmp, "steal_queue_%s" % hash_seed)
    partials = []
    procs = []
    for worker in range(3):
        path = os.path.join(tmp, "steal_%s_%d.json"
                            % (hash_seed, worker))
        partials.append(path)
        procs.append(subprocess.Popen(
            [cli, "--sweep"] + MATRIX
            + ["--cache", cache, "--json", path, "--steal", queue],
            env=env_for(hash_seed), stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True))
    claimed_total = 0
    for worker, proc in enumerate(procs):
        _, stderr = proc.communicate()
        if proc.returncode != 0:
            print("FAIL: steal worker %d (seed %s) exited with %d:\n%s"
                  % (worker, hash_seed, proc.returncode, stderr))
            failures.append("steal exit")
            continue
        claimed_total += parse_summary(stderr)[0]
    if claimed_total != total_cells:
        print("FAIL: steal workers (seed %s) claimed %d cells in "
              "total, expected %d"
              % (hash_seed, claimed_total, total_cells))
        failures.append("steal coverage")
    merged_path = os.path.join(tmp, "steal_%s.json" % hash_seed)
    merged = merge(cli, hash_seed, partials, merged_path)
    if merged != direct:
        print("FAIL: 3-worker steal merge (seed %s) differs from "
              "the direct report" % hash_seed)
        failures.append("steal merge")
    if not cross_check(partials,
                       os.path.join(tmp, "steal_%s.py.json"
                                    % hash_seed), merged_path):
        print("FAIL: farm_merge.py cross-check (steal, seed %s)"
              % hash_seed)
        failures.append("steal cross-check")


def resume_leg(cli, tmp, total_cells, failures):
    """SIGKILL a serial worker mid-sweep, then resume it and require
    the rerun to execute exactly the cache-missing cells."""
    cache = os.path.join(tmp, "resume_cache")
    json_path = os.path.join(tmp, "resume.json")
    cmd = [cli, "--sweep"] + MATRIX + ["--jobs", "1",
                                       "--cache", cache,
                                       "--json", json_path,
                                       "--shard", "0/1"]
    proc = subprocess.Popen(cmd, env=env_for(HASH_SEEDS[0]),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 120
    while (len(cache_cells(cache)) < 2 and proc.poll() is None
           and time.monotonic() < deadline):
        time.sleep(0.005)
    if proc.poll() is not None:
        print("FAIL: resume leg: worker finished before it could be "
              "killed (matrix too small for this host?)")
        failures.append("resume kill")
        return
    proc.send_signal(signal.SIGKILL)
    proc.wait()

    completed = len(cache_cells(cache))
    if not 0 < completed < total_cells:
        print("FAIL: resume leg: %d of %d cells cached after the "
              "kill; expected a strict subset"
              % (completed, total_cells))
        failures.append("resume subset")
        return
    rerun = subprocess.run(cmd, env=env_for(HASH_SEEDS[0]),
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.PIPE, text=True,
                           check=True)
    summary = parse_summary(rerun.stderr)
    expected = (total_cells, total_cells - completed, completed, 0)
    if summary != expected:
        print("FAIL: resume rerun summary %s: expected %s (only the "
              "%d cache-missing cells re-executed)"
              % (summary, expected, total_cells - completed))
        failures.append("resume summary")
    else:
        print("farm_check: resume re-executed %d of %d cells after "
              "the kill left %d in cache"
              % (total_cells - completed, total_cells, completed))


def main():
    parser = argparse.ArgumentParser(
        description="Differential check of the bfgts_cli sweep farm")
    parser.add_argument("--cli", required=True,
                        help="path to the bfgts_cli binary")
    parser.add_argument("--jobs", type=int, default=8,
                        help="worker threads for the direct report "
                             "(default 8)")
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        directs = {}
        total_cells = 0
        for seed in HASH_SEEDS:
            path = os.path.join(tmp, "direct_%s.json" % seed)
            summary = run_worker(
                args.cli, seed, path,
                os.path.join(tmp, "direct_cache_%s" % seed),
                ["--jobs", str(args.jobs)])
            total_cells = summary[0]
            directs[seed] = read_bytes(path)
        if directs[HASH_SEEDS[0]] != directs[HASH_SEEDS[1]]:
            print("FAIL: direct reports differ across hash seeds")
            failures.append("direct seeds")

        for seed in HASH_SEEDS:
            executed = static_leg(args.cli, seed, tmp, directs[seed],
                                  failures)
            if executed != total_cells:
                print("FAIL: static shards (seed %s) executed %d "
                      "cells in total, expected %d"
                      % (seed, executed, total_cells))
                failures.append("static coverage")
            steal_leg(args.cli, seed, tmp, directs[seed],
                      total_cells, failures)
        if not failures:
            print("farm_check: static and steal farms byte-identical "
                  "to the direct report under %d hash seeds"
                  % len(HASH_SEEDS))

        resume_leg(args.cli, tmp, total_cells, failures)

    if failures:
        print("farm_check: %d failure(s): %s"
              % (len(failures), ", ".join(failures)))
        return 1
    print("farm_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
