#!/usr/bin/env python3
"""Offline trace analyzer / instrumentation-drift detector.

Reads a bfgts-trace-v1 JSONL trace, reconstructs per-thread
transaction lifecycles, and independently recomputes the headline
counters and the conflict-edge attribution. It then compares those
against the ``--json`` run report produced by the same simulation and
exits nonzero on any divergence -- if a future change moves an
emission site without moving the counter (or vice versa), this is the
test that goes red.

Checks
------
* record shape: every line has tick/cpu/thread/sTx/dTx/cat/event,
  ticks are monotone non-decreasing, categories are known.
* lifecycle: per thread, ``start`` opens an attempt, ``commit`` /
  ``abort`` close it; closing without an open attempt or re-opening
  an open one is a structural error.
* counters: commits, aborts, stall timeouts (``results``), predicted
  stalls (``predictor_quality``), and starts == commits + aborts.
* conflict edges: (winner sTx from the abort record's ``enemySTx``
  detail, victim sTx) abort counts and wasted cycles must equal the
  report's ``conflict_edges.edges`` table.

Usage
-----
  trace_analyze.py --trace trace.jsonl --json run.json
  trace_analyze.py --cli path/to/bfgts_cli      # self-driving (ctest)

The ``--cli`` mode runs a nontrivial workload into a temp directory
first, then analyzes its artifacts; this is how the ``trace_crosscheck``
ctest uses it.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

KNOWN_CATEGORIES = {"tx", "sched", "cm", "predictor", "mem", "audit"}

RECORD_KEYS = {"tick", "cpu", "thread", "sTx", "dTx", "cat", "event"}

# Workload used by --cli mode: enough contention for a few thousand
# records and a nontrivial edge table, still sub-second to simulate.
CLI_ARGS = ["--workload", "Intruder", "--cm", "BFGTS-HW", "--tx", "10"]


class Analysis:
    """Counters and edges recomputed from the raw trace stream."""

    def __init__(self):
        self.records = 0
        self.starts = 0
        self.commits = 0
        self.aborts = 0
        self.rollbacks = 0
        self.predicted_stalls = 0
        self.stall_timeouts = 0
        self.edges = {}  # (winner sTx, victim sTx) -> [aborts, wasted]
        self.errors = []

    def error(self, message):
        self.errors.append(message)


def analyze_trace(path):
    """Replay the JSONL trace and rebuild lifecycles and counters."""
    out = Analysis()
    open_attempt = {}  # thread -> dTx of the in-flight attempt
    last_tick = -1
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                out.error("line %d: invalid JSON (%s)" % (lineno, exc))
                continue
            missing = RECORD_KEYS - rec.keys()
            if missing:
                out.error("line %d: missing keys %s"
                          % (lineno, sorted(missing)))
                continue
            out.records += 1
            if rec["cat"] not in KNOWN_CATEGORIES:
                out.error("line %d: unknown category %r"
                          % (lineno, rec["cat"]))
            if rec["tick"] < last_tick:
                out.error("line %d: tick %d < previous %d "
                          "(trace not time-ordered)"
                          % (lineno, rec["tick"], last_tick))
            last_tick = rec["tick"]

            thread = rec["thread"]
            event = rec["event"]
            detail = rec.get("detail", {})
            if event == "start":
                if thread in open_attempt:
                    out.error("line %d: thread %d starts dTx %d with "
                              "attempt dTx %d still open"
                              % (lineno, thread, rec["dTx"],
                                 open_attempt[thread]))
                open_attempt[thread] = rec["dTx"]
                out.starts += 1
            elif event == "commit":
                if thread not in open_attempt:
                    out.error("line %d: thread %d commits without an "
                              "open attempt" % (lineno, thread))
                open_attempt.pop(thread, None)
                out.commits += 1
            elif event == "abort":
                if thread not in open_attempt:
                    out.error("line %d: thread %d aborts without an "
                              "open attempt" % (lineno, thread))
                open_attempt.pop(thread, None)
                out.aborts += 1
                try:
                    winner = int(detail["enemySTx"])
                    wasted = int(detail["wasted"])
                except (KeyError, ValueError):
                    out.error("line %d: abort record lacks integer "
                              "enemySTx/wasted details" % lineno)
                    continue
                edge = out.edges.setdefault((winner, rec["sTx"]),
                                            [0, 0])
                edge[0] += 1
                edge[1] += wasted
            elif event == "rollback":
                out.rollbacks += 1
            elif event == "predict":
                out.predicted_stalls += 1
            elif event == "stall-timeout":
                out.stall_timeouts += 1
    if open_attempt:
        out.error("attempts still open at end of trace: %s"
                  % sorted(open_attempt.items()))
    return out


def compare(analysis, report):
    """Diff the recomputed values against the run report."""
    failures = list(analysis.errors)

    def check(label, got, want):
        if got != want:
            failures.append("%s: trace says %s, report says %s"
                            % (label, got, want))

    results = report["results"]
    check("commits", analysis.commits, results["commits"])
    check("aborts", analysis.aborts, results["aborts"])
    check("stallTimeouts", analysis.stall_timeouts,
          results["stallTimeouts"])
    check("predictedStalls", analysis.predicted_stalls,
          report["predictor_quality"]["predictedStalls"])
    # Lifecycle balance: every attempt that started ended exactly once.
    check("starts == commits + aborts", analysis.starts,
          analysis.commits + analysis.aborts)
    check("rollbacks == aborts", analysis.rollbacks, analysis.aborts)

    reported = {
        (edge["winner"], edge["victim"]):
            [edge["aborts"], edge["wastedCycles"]]
        for edge in report["conflict_edges"]["edges"]
    }
    for key in sorted(set(analysis.edges) | set(reported)):
        got = analysis.edges.get(key)
        want = reported.get(key)
        if got != want:
            failures.append(
                "edge winner=s%d victim=s%d: trace %s, report %s"
                % (key[0], key[1],
                   got and "aborts=%d wasted=%d" % tuple(got),
                   want and "aborts=%d wasted=%d" % tuple(want)))
    return failures


def run_pair(trace_path, json_path):
    analysis = analyze_trace(trace_path)
    with open(json_path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    failures = compare(analysis, report)
    if failures:
        print("trace_analyze: %d divergence(s) between %s and %s"
              % (len(failures), trace_path, json_path))
        for failure in failures:
            print("  FAIL " + failure)
        return 1
    print("trace_analyze: OK (%d records; %d commits, %d aborts, "
          "%d predicted stalls, %d edges match the report)"
          % (analysis.records, analysis.commits, analysis.aborts,
             analysis.predicted_stalls, len(analysis.edges)))
    return 0


def run_cli_mode(cli):
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        json_path = os.path.join(tmp, "run.json")
        cmd = ([cli] + CLI_ARGS
               + ["--json", json_path, "--trace-jsonl",
                  "--trace", trace_path])
        print("trace_analyze: running " + " ".join(cmd))
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        return run_pair(trace_path, json_path)


def main():
    parser = argparse.ArgumentParser(
        description="Cross-check a JSONL trace against the --json "
                    "run report")
    parser.add_argument("--trace", help="bfgts-trace-v1 JSONL file")
    parser.add_argument("--json", dest="json_path",
                        help="bfgts-obs-v1 run report")
    parser.add_argument("--cli",
                        help="run this bfgts_cli first, then analyze "
                             "its artifacts")
    args = parser.parse_args()
    if args.cli:
        return run_cli_mode(args.cli)
    if not args.trace or not args.json_path:
        parser.error("need --trace and --json (or --cli)")
    return run_pair(args.trace, args.json_path)


if __name__ == "__main__":
    sys.exit(main())
