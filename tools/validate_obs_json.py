#!/usr/bin/env python3
"""Validate bfgts-obs-v1 JSON output (docs/observability.md).

Every document is validated twice: first against the formal JSON
Schema checked in under docs/schemas/ (bfgts-obs-v1, bfgts-ts-v1,
bfgts-sweep-v1, bfgts-prof-v1, bfgts-qual-v1), then by the
hand-written semantic checks below that a schema cannot express
(fraction sums, cross-line window chaining, sorted top-N lists,
balanced trace slices, profile shares summing to the run loop,
quality histogram totals and reliability-table consistency).

Three modes:

  validate_obs_json.py FILE [FILE...]
      Check existing documents (run, bench, sweep, or prof) against
      the schemas.

  validate_obs_json.py --cli PATH_TO_BFGTS_CLI
      Run the CLI twice under different BFGTS_HASH_SEED values,
      require byte-identical JSON reports, JSONL traces, time-series
      streams, Chrome timelines, and conflict DOT files, and
      schema-check everything (report members incl. timeseries and
      conflict edges, bfgts-ts-v1 stream shape, Chrome trace_event
      shape with balanced begin/end slices per track). Also runs a
      small --sweep matrix and schema-checks the bfgts-sweep-v1
      report. A further run adds --profile and asserts that every
      deterministic artifact (report, trace, time series, DOT, and
      the sweep report) comes out byte-identical with profiling on
      -- the bfgts-prof-v1 documents themselves are only schema- and
      semantics-checked, being wall-clock data.

  validate_obs_json.py --bench PATH_TO_BENCH_BINARY
      Run the bench with BFGTS_QUICK=1 and --json and schema-check
      the emitted document.

Exits non-zero on the first failure. Stdlib only: the JSON Schema
subset the three schemas use (type/const/enum/required/properties/
items/oneOf/$ref into $defs/bounds) is interpreted right here rather
than depending on the jsonschema package.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "bfgts-obs-v1"
SCHEMA_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs", "schemas")

CLI_ARGS = ["--workload", "Intruder", "--cm", "BFGTS-HW", "--tx", "10"]

TRACE_KEYS = {"tick", "cpu", "thread", "sTx", "dTx", "cat", "event"}
TRACE_CATS = {"tx", "sched", "cm", "predictor", "mem", "audit"}
BREAKDOWN_KEYS = {"nonTx", "kernel", "tx", "aborted", "sched", "idle"}

TS_SCHEMA = "bfgts-ts-v1"
TS_WINDOW_KEYS = {
    "window", "start", "end", "commits", "aborts", "conflicts",
    "predictedStalls", "stallTimeouts", "abortRate", "cpusRunning",
    "cpusStalled", "readyQueueDepth", "meanConfidence",
    "bloomOccupancy", "conflictPressure", "calibrationBrier",
}
TIMESERIES_KEYS = {
    "interval", "windows", "peakAbortRate", "meanAbortRate",
    "peakReadyQueueDepth", "peakConflictPressure",
    "peakCommitsPerWindow", "peakAbortsPerWindow",
}
EDGE_KEYS = {"winner", "victim", "aborts", "wastedCycles"}


def fail(msg):
    print(f"validate_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


# --------------------------------------------------------------------
# Minimal JSON Schema interpreter (the subset docs/schemas/ uses).

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref, root):
    check(ref.startswith("#/"), f"unsupported $ref {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        check(isinstance(node, dict) and part in node,
              f"dangling $ref {ref!r}")
        node = node[part]
    return node


def _schema_errors(value, schema, root, path):
    """Return a list of 'path: problem' strings (empty = valid)."""
    if "$ref" in schema:
        return _schema_errors(value, _resolve_ref(schema["$ref"], root),
                              root, path)
    errors = []
    if "const" in schema and value != schema["const"]:
        return [f"{path}: is {value!r}, want {schema['const']!r}"]
    if "enum" in schema and value not in schema["enum"]:
        return [f"{path}: {value!r} not one of {schema['enum']!r}"]
    if "type" in schema:
        types = schema["type"]
        if isinstance(types, str):
            types = [types]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            return [f"{path}: not of type {types!r}"]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum "
                          f"{schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum "
                          f"{schema['maximum']}")
    if isinstance(value, str) and "minLength" in schema:
        if len(value) < schema["minLength"]:
            errors.append(f"{path}: shorter than minLength "
                          f"{schema['minLength']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(_schema_errors(value[key], sub, root,
                                             f"{path}.{key}"))
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} "
                          "items")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: more than {schema['maxItems']} "
                          "items")
        if "items" in schema:
            for i, item in enumerate(value):
                errors.extend(_schema_errors(item, schema["items"],
                                             root, f"{path}[{i}]"))
    if "oneOf" in schema:
        branch_errors = [_schema_errors(value, branch, root, path)
                         for branch in schema["oneOf"]]
        matches = sum(1 for errs in branch_errors if not errs)
        if matches != 1:
            flat = "; ".join(errs[0] for errs in branch_errors if errs)
            errors.append(f"{path}: matched {matches} oneOf branches "
                          f"(want exactly 1): {flat}")
    return errors


_SCHEMA_CACHE = {}


def validate_schema(value, schema_name, where):
    """Validate against docs/schemas/<schema_name>.schema.json."""
    if schema_name not in _SCHEMA_CACHE:
        path = os.path.join(SCHEMA_DIR,
                            schema_name + ".schema.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                _SCHEMA_CACHE[schema_name] = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            fail(f"cannot load schema {path}: {exc}")
    schema = _SCHEMA_CACHE[schema_name]
    errors = _schema_errors(value, schema, schema, "$")
    if errors:
        listing = "\n  ".join(errors[:10])
        fail(f"{where}: violates {schema_name} schema:\n  {listing}")


def check_histogram(hist, where):
    check(isinstance(hist, dict), f"{where}: histogram is not an object")
    for key in ("count", "mean", "scale", "buckets"):
        check(key in hist, f"{where}: histogram lacks '{key}'")
    check(hist["scale"] in ("log2", "linear"),
          f"{where}: bad scale {hist['scale']!r}")
    total = 0
    for bucket in hist["buckets"]:
        for key in ("lo", "hi", "n"):
            check(key in bucket, f"{where}: bucket lacks '{key}'")
        check(bucket["n"] > 0, f"{where}: zero bucket was emitted")
        if bucket["hi"] is not None:
            check(bucket["lo"] < bucket["hi"],
                  f"{where}: bucket edges out of order")
        total += bucket["n"]
    check(total == hist["count"],
          f"{where}: bucket counts {total} != count {hist['count']}")


def check_envelope(doc, where):
    check(isinstance(doc, dict), f"{where}: root is not an object")
    check(doc.get("schema") == SCHEMA,
          f"{where}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    check(doc.get("kind") in ("run", "bench"),
          f"{where}: bad kind {doc.get('kind')!r}")
    check(isinstance(doc.get("name"), str) and doc["name"],
          f"{where}: missing name")
    check(isinstance(doc.get("git"), str) and doc["git"],
          f"{where}: missing git describe")


def check_run(doc, where):
    validate_schema(doc, SCHEMA, where)
    check_envelope(doc, where)
    check(doc["kind"] == "run", f"{where}: kind is not 'run'")
    for key in ("config", "results", "stats", "predictor_quality",
                "similarity_per_site"):
        check(key in doc, f"{where}: missing top-level '{key}'")
    config = doc["config"]
    for key in ("workload", "cm", "cpus", "threadsPerCpu", "seed"):
        check(key in config, f"{where}: config lacks '{key}'")
    results = doc["results"]
    for key in ("runtime", "commits", "aborts", "contentionRate",
                "breakdown"):
        check(key in results, f"{where}: results lacks '{key}'")
    missing = BREAKDOWN_KEYS - results["breakdown"].keys()
    check(not missing, f"{where}: breakdown lacks {sorted(missing)}")
    frac_sum = sum(results["breakdown"][k + "Frac"]
                   for k in sorted(BREAKDOWN_KEYS))
    check(abs(frac_sum - 1.0) < 1e-9,
          f"{where}: breakdown fractions sum to {frac_sum}")

    timeseries = doc.get("timeseries")
    if timeseries is not None:
        missing = TIMESERIES_KEYS - timeseries.keys()
        check(not missing, f"{where}: timeseries lacks {sorted(missing)}")
        check(timeseries["interval"] > 0, f"{where}: bad ts interval")
        check(0.0 <= timeseries["peakAbortRate"] <= 1.0,
              f"{where}: peakAbortRate out of [0,1]")
        check(timeseries["meanAbortRate"]
              <= timeseries["peakAbortRate"] + 1e-12,
              f"{where}: mean abort rate exceeds peak")

    edges = doc.get("conflict_edges")
    if edges is not None:
        for key in ("totalEdges", "topByWastedCycles", "edges"):
            check(key in edges, f"{where}: conflict_edges lacks '{key}'")
        check(edges["totalEdges"] == len(edges["edges"]),
              f"{where}: totalEdges != len(edges)")
        check(len(edges["topByWastedCycles"]) <= 10,
              f"{where}: topByWastedCycles longer than 10")
        for i, edge in enumerate(edges["edges"]
                                 + edges["topByWastedCycles"]):
            missing = EDGE_KEYS - edge.keys()
            check(not missing,
                  f"{where}: conflict edge {i} lacks {sorted(missing)}")
        top = edges["topByWastedCycles"]
        for a, b in zip(top, top[1:]):
            check(a["wastedCycles"] >= b["wastedCycles"],
                  f"{where}: topByWastedCycles not sorted")
    if "serialization_edges" in doc:
        for i, edge in enumerate(doc["serialization_edges"]):
            missing = {"winner", "victim", "count"} - edge.keys()
            check(not missing,
                  f"{where}: serialization edge {i} lacks "
                  f"{sorted(missing)}")

    quality = doc["predictor_quality"]
    for key in ("predictedStalls", "truePositives", "falsePositives",
                "falseNegatives", "trueNegatives", "predictedAborts",
                "precision", "recall", "f1", "accuracy", "perSite"):
        check(key in quality, f"{where}: predictor_quality lacks '{key}'")
    for metric in ("precision", "recall", "f1", "accuracy"):
        check(0.0 <= quality[metric] <= 1.0,
              f"{where}: {metric} {quality[metric]} out of [0,1]")
    check(isinstance(quality["perSite"], list),
          f"{where}: perSite is not an array")

    stats = doc["stats"]
    for group in ("mem", "htm", "predictor", "predictor.quality", "os",
                  "runner"):
        check(group in stats, f"{where}: stats lacks group '{group}'")
    check_histogram(stats["runner"]["abortCycles"],
                    f"{where}: runner.abortCycles")
    check_histogram(stats["runner"]["stallCycles"],
                    f"{where}: runner.stallCycles")
    if "bfgts" in stats:
        check_histogram(stats["bfgts"]["similarity"],
                        f"{where}: bfgts.similarity")
        check_histogram(stats["bfgts"]["confidence"],
                        f"{where}: bfgts.confidence")
    check(isinstance(doc["similarity_per_site"], list),
          f"{where}: similarity_per_site is not an array")


def check_bench(doc, where):
    validate_schema(doc, SCHEMA, where)
    check_envelope(doc, where)
    check(doc["kind"] == "bench", f"{where}: kind is not 'bench'")
    check("options" in doc, f"{where}: missing options")
    check(isinstance(doc.get("rows"), list) and doc["rows"],
          f"{where}: rows missing or empty")
    keys = list(doc["rows"][0].keys())
    for i, row in enumerate(doc["rows"]):
        check(isinstance(row, dict), f"{where}: row {i} not an object")
        check(list(row.keys()) == keys,
              f"{where}: row {i} keys differ from row 0")


def check_sweep(doc, where):
    validate_schema(doc, "bfgts-sweep-v1", where)
    check(doc["cellCount"] == len(doc["cells"]),
          f"{where}: cellCount {doc['cellCount']} != "
          f"{len(doc['cells'])} cells")
    labels = [cell["label"] for cell in doc["cells"]]
    check(len(labels) == len(set(labels)),
          f"{where}: duplicate cell labels")
    shard = doc.get("shard")
    if shard is not None:
        # Farm partial report (src/runner/farm.h): the claimed ranges
        # must be ascending, disjoint, inside the matrix, and account
        # for exactly the cells present.
        covered = 0
        prev_end = 0
        for i, (begin, end) in enumerate(shard["cellRanges"]):
            check(begin >= prev_end,
                  f"{where}: shard.cellRanges[{i}] overlaps or is "
                  "out of order")
            check(begin < end,
                  f"{where}: shard.cellRanges[{i}] is empty")
            check(end <= shard["totalCells"],
                  f"{where}: shard.cellRanges[{i}] exceeds "
                  "totalCells")
            covered += end - begin
            prev_end = end
        check(covered == doc["cellCount"],
              f"{where}: shard ranges cover {covered} cells, "
              f"cellCount is {doc['cellCount']}")
        check(doc["cellCount"] <= shard["totalCells"],
              f"{where}: partial report larger than the matrix")
        if shard["mode"] == "static":
            check(0 <= shard["shardIndex"] < shard["shardCount"],
                  f"{where}: static shard coordinates "
                  f"{shard['shardIndex']}/{shard['shardCount']} "
                  "out of range")
        else:
            check(shard["shardIndex"] == -1
                  and shard["shardCount"] == 0,
                  f"{where}: steal partial must use shardIndex -1, "
                  "shardCount 0")


PROF_PHASES = ["event_queue", "workload", "cm_decide", "cm_commit",
               "bloom", "predictor", "os_sched", "mem", "other"]
PROF_STRUCTURES = ["confidence_tables", "bloom_signatures",
                   "predictor_caches", "event_queue"]


def check_prof_run(prof, where):
    """Semantic checks of one bfgts-prof-v1 profile object."""
    names = [phase["name"] for phase in prof["phases"]]
    check(names == PROF_PHASES,
          f"{where}: phases are {names}, want {PROF_PHASES}")
    check([m["name"] for m in prof["memory"]] == PROF_STRUCTURES,
          f"{where}: memory gauges are not {PROF_STRUCTURES}")
    if prof["wallNs"] > 0:
        # The synthesized 'other' bucket absorbs unattributed run-loop
        # time, so the shares account for (essentially) the whole
        # loop; clock jitter can push attributed time slightly past
        # wallNs, hence >= rather than ==.
        share_sum = sum(phase["share"] for phase in prof["phases"])
        check(share_sum >= 1.0 - 1e-6,
              f"{where}: phase shares sum to {share_sum}, want ~1")
        check(prof["peakRssBytes"] > 0,
              f"{where}: peak RSS missing on a timed run")


def check_prof(doc, where):
    validate_schema(doc, "bfgts-prof-v1", where)
    if doc["kind"] == "run":
        check_prof_run(doc["run"], f"{where}: run")
        return
    check(doc["profiledCells"] == len(doc["cells"]),
          f"{where}: profiledCells {doc['profiledCells']} != "
          f"{len(doc['cells'])} cells")
    check(doc["profiledCells"] <= doc["cellCount"],
          f"{where}: more profiled cells than cells")
    for cell in doc["cells"]:
        check_prof_run(cell["run"], f"{where}: {cell['label']}")
    for metric, agg in doc["aggregate"].items():
        check(agg["min"] <= agg["median"] <= agg["max"],
              f"{where}: aggregate.{metric} not ordered "
              f"min<=median<=max")


def check_qual_run(qual, where):
    """Semantic checks of one bfgts-qual-v1 quality object."""
    est = qual["estimator"]
    for eq in ("eq2_set_size", "eq3_intersection", "eq4_similarity"):
        stats = est[eq]
        w = f"{where}: {eq}"
        check_histogram(stats["hist"], w)
        check(stats["meanAbs"] <= stats["maxAbs"] + 1e-12,
              f"{w}: meanAbs exceeds maxAbs")
        check(abs(stats["meanSigned"]) <= stats["meanAbs"] + 1e-12,
              f"{w}: |meanSigned| exceeds meanAbs")
        for axis in ("byTrueSetSize", "byOccupancy"):
            total = sum(bucket["n"] for bucket in stats[axis])
            check(total == stats["count"],
                  f"{w}: {axis} counts {total} != count "
                  f"{stats['count']}")
    check(est["eq2_set_size"]["count"] == est["samples"],
          f"{where}: eq2 count != estimator samples")
    check(est["eq3_intersection"]["count"] <= est["samples"],
          f"{where}: eq3 count exceeds estimator samples")
    check(est["eq3_intersection"]["count"]
          == est["eq4_similarity"]["count"],
          f"{where}: eq3 and eq4 sample counts differ")

    cal = qual["calibration"]
    check(cal["bins"] >= 8, f"{where}: fewer than 8 calibration bins")
    check(len(cal["reliability"]) == cal["bins"],
          f"{where}: reliability table length != bins")
    decisions = 0
    for i, row in enumerate(cal["reliability"]):
        w = f"{where}: reliability[{i}]"
        check(row["lo"] < row["hi"], f"{w}: bin edges out of order")
        check(row["stalls"] <= row["decisions"],
              f"{w}: more stalls than decisions")
        check(row["conflicts"] <= row["decisions"],
              f"{w}: more conflicts than decisions")
        if row["decisions"] > 0:
            # Samples land in a bin by predicted confidence, so the
            # bin mean must fall inside (the last bin is closed).
            hi = row["hi"] + (1e-12 if i == cal["bins"] - 1 else 0)
            check(row["lo"] - 1e-12 <= row["meanConfidence"] <= hi,
                  f"{w}: meanConfidence outside the bin")
        decisions += row["decisions"]
    check(decisions == cal["samples"],
          f"{where}: reliability decisions {decisions} != samples "
          f"{cal['samples']}")

    ledger = qual["ledger"]
    totals = ledger["totals"]
    check(len(ledger["pairs"]) <= ledger["maxPairs"],
          f"{where}: more pairs than maxPairs")
    keys = [(p["enemy"], p["victim"]) for p in ledger["pairs"]]
    check(keys == sorted(keys), f"{where}: pairs not in key order")
    check(len(keys) == len(set(keys)), f"{where}: duplicate pairs")
    for field in ("truePositives", "falsePositives", "falseNegatives",
                  "predictedAborts", "wastedStallCycles",
                  "savedAbortCycles", "fnWastedCycles",
                  "predictedAbortWastedCycles"):
        pair_sum = sum(p[field] for p in ledger["pairs"])
        check(pair_sum <= totals[field],
              f"{where}: pair {field} sum {pair_sum} exceeds total "
              f"{totals[field]}")
        if ledger["droppedEvents"] == 0 \
                and field in ("truePositives", "falsePositives"):
            # TP/FP always name an enemy, so with no drops the pairs
            # account for every one of them.
            check(pair_sum == totals[field],
                  f"{where}: pair {field} sum {pair_sum} != total "
                  f"{totals[field]} with no dropped events")


def check_qual(doc, where):
    validate_schema(doc, "bfgts-qual-v1", where)
    if doc["kind"] == "run":
        check_qual_run(doc["run"], f"{where}: run")
        return
    check(doc["qualityCells"] == len(doc["cells"]),
          f"{where}: qualityCells {doc['qualityCells']} != "
          f"{len(doc['cells'])} cells")
    check(doc["qualityCells"] <= doc["cellCount"],
          f"{where}: more quality cells than cells")
    for cell in doc["cells"]:
        check_qual_run(cell["run"], f"{where}: {cell['label']}")
    for metric, agg in doc["aggregate"].items():
        check(agg["min"] <= agg["median"] <= agg["max"],
              f"{where}: aggregate.{metric} not ordered "
              f"min<=median<=max")


QUAL_LEDGER_KEYS = {"tick", "enemy", "victim", "confidence",
                    "outcome", "stalled", "conflict", "cycles"}
QUAL_OUTCOMES = {"tp", "fp", "fn", "predicted_abort", "tn"}


def check_qual_jsonl(path):
    """Shape-check a --quality-jsonl per-decision ledger stream."""
    with open(path, "rb") as fh:
        lines = fh.read().splitlines()
    check(lines, f"{path}: empty quality ledger")
    prev_tick = 0
    for i, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i}: invalid JSON ({exc})")
        missing = QUAL_LEDGER_KEYS - record.keys()
        check(not missing, f"{path}:{i}: lacks {sorted(missing)}")
        check(record["outcome"] in QUAL_OUTCOMES,
              f"{path}:{i}: bad outcome {record['outcome']!r}")
        check(record["tick"] >= prev_tick,
              f"{path}:{i}: ticks not monotonic")
        check(record["confidence"] <= 1.0,
              f"{path}:{i}: confidence above 1")
        prev_tick = record["tick"]


def check_trace_jsonl(path):
    with open(path, "rb") as fh:
        lines = fh.read().splitlines()
    check(lines, f"{path}: empty trace")
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i + 1}: invalid JSON ({exc})")
        missing = TRACE_KEYS - record.keys()
        check(not missing, f"{path}:{i + 1}: lacks {sorted(missing)}")
        check(record["cat"] in TRACE_CATS,
              f"{path}:{i + 1}: bad category {record['cat']!r}")
        check(isinstance(record["tick"], int) and record["tick"] >= 0,
              f"{path}:{i + 1}: bad tick")


def check_ts_jsonl(path):
    """Shape-check a bfgts-ts-v1 time-series stream."""
    with open(path, "rb") as fh:
        lines = fh.read().splitlines()
    check(lines, f"{path}: empty time series")
    header = json.loads(lines[0])
    validate_schema(header, TS_SCHEMA, f"{path}:1")
    check(header.get("schema") == TS_SCHEMA,
          f"{path}: header schema is {header.get('schema')!r}")
    check(header.get("kind") == "header", f"{path}: bad header kind")
    check(header.get("interval", 0) > 0, f"{path}: bad interval")
    prev_end = 0
    for i, line in enumerate(lines[1:], start=2):
        try:
            window = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i}: invalid JSON ({exc})")
        validate_schema(window, TS_SCHEMA, f"{path}:{i}")
        missing = TS_WINDOW_KEYS - window.keys()
        check(not missing, f"{path}:{i}: lacks {sorted(missing)}")
        check(window["window"] == i - 2,
              f"{path}:{i}: window index not consecutive")
        check(window["start"] == prev_end,
              f"{path}:{i}: window start {window['start']} != "
              f"previous end {prev_end}")
        check(window["start"] < window["end"],
              f"{path}:{i}: empty window span")
        check(0.0 <= window["abortRate"] <= 1.0,
              f"{path}:{i}: abortRate out of [0,1]")
        prev_end = window["end"]


def check_chrome_trace(path):
    """Shape-check a Chrome trace_event file: valid JSON, the
    traceEvents array, and balanced B/E slices on every track."""
    doc = load(path)
    check(isinstance(doc, dict) and "traceEvents" in doc,
          f"{path}: no traceEvents member")
    events = doc["traceEvents"]
    check(isinstance(events, list) and events,
          f"{path}: traceEvents missing or empty")
    depth = {}
    phases = set()
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid"):
            check(key in event, f"{path}: event {i} lacks '{key}'")
        phases.add(event["ph"])
        if event["ph"] == "B":
            depth[event["tid"]] = depth.get(event["tid"], 0) + 1
        elif event["ph"] == "E":
            depth[event["tid"]] = depth.get(event["tid"], 0) - 1
            check(depth[event["tid"]] >= 0,
                  f"{path}: event {i}: E without B on tid "
                  f"{event['tid']}")
    open_tracks = {tid: d for tid, d in depth.items() if d != 0}
    check(not open_tracks,
          f"{path}: unbalanced slices on tids {sorted(open_tracks)}")
    check("M" in phases, f"{path}: no metadata events")


def check_conflict_dot(path):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    body = "\n".join(line for line in text.splitlines()
                     if not line.startswith("//"))
    check(body.lstrip().startswith("digraph"),
          f"{path}: not a digraph")
    check(text.rstrip().endswith("}"), f"{path}: unterminated graph")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: cannot load ({exc})")


def run(cmd, env_extra=None, cwd=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    result = subprocess.run(cmd, env=env, cwd=cwd,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    if result.returncode != 0:
        fail(f"{' '.join(cmd)} exited {result.returncode}:\n"
             f"{result.stdout.decode(errors='replace')}")


def mode_cli(cli, workdir):
    artifacts = {
        "json": ("run-{}.json", check_run),
        "trace": ("run-{}.jsonl", check_trace_jsonl),
        "ts": ("ts-{}.jsonl", check_ts_jsonl),
        "chrome": ("chrome-{}.json", check_chrome_trace),
        "dot": ("conf-{}.dot", check_conflict_dot),
    }
    outputs = []
    for seed in ("0x0123456789abcdef", "0xfedcba9876543210"):
        paths = {kind: os.path.join(workdir, pattern.format(seed))
                 for kind, (pattern, _) in artifacts.items()}
        run([cli, *CLI_ARGS,
             "--json", paths["json"],
             "--trace", paths["trace"], "--trace-jsonl",
             "--ts", paths["ts"],
             "--trace-chrome", paths["chrome"],
             "--conflict-dot", paths["dot"]],
            env_extra={"BFGTS_HASH_SEED": seed})
        blobs = {}
        for kind, (_, checker) in artifacts.items():
            if checker is check_run:
                checker(load(paths[kind]), paths[kind])
            else:
                checker(paths[kind])
            with open(paths[kind], "rb") as fh:
                blobs[kind] = fh.read()
        outputs.append(blobs)
    for kind in artifacts:
        check(outputs[0][kind] == outputs[1][kind],
              f"{kind} output differs across BFGTS_HASH_SEED values")

    # --profile must be purely additive: every deterministic artifact
    # byte-identical to the unprofiled run, the bfgts-prof-v1 report
    # schema-valid. The Chrome timeline is exempt from the byte check
    # (profiling adds host counter tracks) but must stay well-formed.
    prof_paths = {kind: os.path.join(workdir, "prof-" + pattern
                                     .format("x"))
                  for kind, (pattern, _) in artifacts.items()}
    prof_report = os.path.join(workdir, "prof.json")
    run([cli, *CLI_ARGS,
         "--json", prof_paths["json"],
         "--trace", prof_paths["trace"], "--trace-jsonl",
         "--ts", prof_paths["ts"],
         "--trace-chrome", prof_paths["chrome"],
         "--conflict-dot", prof_paths["dot"],
         "--profile", prof_report],
        env_extra={"BFGTS_HASH_SEED": "0x0123456789abcdef"})
    check_prof(load(prof_report), prof_report)
    check_chrome_trace(prof_paths["chrome"])
    for kind in ("json", "trace", "ts", "dot"):
        with open(prof_paths[kind], "rb") as fh:
            check(fh.read() == outputs[0][kind],
                  f"{kind} output changed under --profile")

    # --quality must be equally additive, and unlike --profile its
    # own artifacts are deterministic: two hash seeds must produce
    # byte-identical bfgts-qual-v1 reports and JSONL ledgers.
    qual_blobs = []
    for seed in ("0x0123456789abcdef", "0xfedcba9876543210"):
        qual_json = os.path.join(workdir, f"qual-{seed}.json")
        qual_jsonl = os.path.join(workdir, f"qual-{seed}.jsonl")
        obs_json = os.path.join(workdir, f"qual-obs-{seed}.json")
        run([cli, *CLI_ARGS,
             "--json", obs_json,
             "--quality", qual_json,
             "--quality-jsonl", qual_jsonl],
            env_extra={"BFGTS_HASH_SEED": seed})
        check_qual(load(qual_json), qual_json)
        check_qual_jsonl(qual_jsonl)
        with open(obs_json, "rb") as fh:
            check(fh.read() == outputs[0]["json"],
                  "obs report changed under --quality")
        with open(qual_json, "rb") as fh_a, \
                open(qual_jsonl, "rb") as fh_b:
            qual_blobs.append((fh_a.read(), fh_b.read()))
    check(qual_blobs[0] == qual_blobs[1],
          "quality artifacts differ across BFGTS_HASH_SEED values")

    # A small sweep matrix exercises the third schema end to end;
    # rerun it with --profile and require the bfgts-sweep-v1 report
    # byte-identical (the profile is a separate side channel).
    sweep_args = [cli, "--sweep", "--workloads", "Intruder",
                  "--cms", "BFGTS-HW,Backoff", "--tx", "10",
                  "--cpus", "4", "--tpc", "2"]
    sweep_path = os.path.join(workdir, "sweep.json")
    run(sweep_args + ["--json", sweep_path])
    check_sweep(load(sweep_path), sweep_path)
    sweep_prof_path = os.path.join(workdir, "sweep-prof.json")
    sweep_profile = os.path.join(workdir, "sweep-profile.json")
    run(sweep_args + ["--json", sweep_prof_path,
                      "--profile", sweep_profile])
    check_prof(load(sweep_profile), sweep_profile)
    with open(sweep_path, "rb") as fh_a, \
            open(sweep_prof_path, "rb") as fh_b:
        check(fh_a.read() == fh_b.read(),
              "sweep report changed under --profile")

    # Farm leg: split the same matrix across two static shards, merge
    # the partials with --merge-reports, and require the merged
    # document byte-identical to the direct sweep report. Partials
    # must schema-validate (incl. the shard manifest); the merged
    # report must be shard-free.
    shard_paths = []
    for shard in range(2):
        shard_path = os.path.join(workdir, f"sweep-shard{shard}.json")
        shard_paths.append(shard_path)
        run(sweep_args + ["--json", shard_path,
                          "--shard", f"{shard}/2"])
        partial = load(shard_path)
        check_sweep(partial, shard_path)
        check("shard" in partial,
              f"{shard_path}: partial report lacks a shard manifest")
    merged_path = os.path.join(workdir, "sweep-merged.json")
    run([cli, "--merge-reports", *shard_paths, "--json", merged_path])
    merged = load(merged_path)
    check_sweep(merged, merged_path)
    check("shard" not in merged,
          f"{merged_path}: merged report still carries a shard "
          "manifest")
    with open(merged_path, "rb") as fh_a, \
            open(sweep_path, "rb") as fh_b:
        check(fh_a.read() == fh_b.read(),
              "merged 2-shard report differs from the direct sweep "
              "report")

    # Same for --quality, plus --jobs independence: the bfgts-qual-v1
    # sweep report is deterministic, so 1 worker and 4 workers must
    # produce it byte-for-byte.
    sweep_qual_blobs = []
    for jobs in ("1", "4"):
        sweep_qual_path = os.path.join(workdir,
                                       f"sweep-qual-{jobs}.json")
        sweep_quality = os.path.join(workdir,
                                     f"sweep-quality-{jobs}.json")
        run(sweep_args + ["--jobs", jobs,
                          "--json", sweep_qual_path,
                          "--quality", sweep_quality])
        check_qual(load(sweep_quality), sweep_quality)
        with open(sweep_qual_path, "rb") as fh_a, \
                open(sweep_path, "rb") as fh_b:
            check(fh_a.read() == fh_b.read(),
                  "sweep report changed under --quality")
        with open(sweep_quality, "rb") as fh:
            sweep_qual_blobs.append(fh.read())
    check(sweep_qual_blobs[0] == sweep_qual_blobs[1],
          "sweep quality report differs across --jobs counts")

    print("validate_obs_json: cli OK (report, trace, time series, "
          "chrome timeline, and conflict DOT all byte-identical "
          "across hash seeds and under --profile/--quality; sweep, "
          "prof, and qual reports schema-valid; 2-shard farm merge "
          "byte-identical to the direct sweep)")


def mode_bench(bench, workdir):
    json_path = os.path.join(
        workdir, f"BENCH_{os.path.basename(bench)}.json")
    run([bench, "--json", json_path], cwd=workdir,
        env_extra={"BFGTS_QUICK": "1"})
    check_bench(load(json_path), json_path)
    print(f"validate_obs_json: bench OK ({os.path.basename(bench)})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="documents to check")
    parser.add_argument("--cli", help="bfgts_cli binary to exercise")
    parser.add_argument("--bench", help="bench binary to exercise")
    args = parser.parse_args()

    if not args.files and not args.cli and not args.bench:
        parser.error("nothing to do")

    for path in args.files:
        doc = load(path)
        if doc.get("schema") == "bfgts-prof-v1":
            check_prof(doc, path)
        elif doc.get("schema") == "bfgts-qual-v1":
            check_qual(doc, path)
        elif doc.get("kind") == "sweep":
            check_sweep(doc, path)
        else:
            check_envelope(doc, path)
            if doc["kind"] == "run":
                check_run(doc, path)
            else:
                check_bench(doc, path)
        print(f"validate_obs_json: {path} OK")

    with tempfile.TemporaryDirectory() as workdir:
        if args.cli:
            mode_cli(args.cli, workdir)
        if args.bench:
            mode_bench(args.bench, workdir)


if __name__ == "__main__":
    main()
