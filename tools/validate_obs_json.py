#!/usr/bin/env python3
"""Validate bfgts-obs-v1 JSON output (docs/observability.md).

Three modes:

  validate_obs_json.py FILE [FILE...]
      Check existing documents against the schema.

  validate_obs_json.py --cli PATH_TO_BFGTS_CLI
      Run the CLI twice under different BFGTS_HASH_SEED values,
      require byte-identical JSON reports and JSONL traces, and
      schema-check the report (including predictor precision/recall,
      histograms, and the Fig. 5 breakdown).

  validate_obs_json.py --bench PATH_TO_BENCH_BINARY
      Run the bench with BFGTS_QUICK=1 and --json and schema-check
      the emitted document.

Exits non-zero on the first failure. Stdlib only.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "bfgts-obs-v1"

CLI_ARGS = ["--workload", "Intruder", "--cm", "BFGTS-HW", "--tx", "10"]

TRACE_KEYS = {"tick", "cpu", "thread", "sTx", "dTx", "cat", "event"}
TRACE_CATS = {"tx", "sched", "cm", "predictor", "mem"}
BREAKDOWN_KEYS = {"nonTx", "kernel", "tx", "aborted", "sched", "idle"}


def fail(msg):
    print(f"validate_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def check_histogram(hist, where):
    check(isinstance(hist, dict), f"{where}: histogram is not an object")
    for key in ("count", "mean", "scale", "buckets"):
        check(key in hist, f"{where}: histogram lacks '{key}'")
    check(hist["scale"] in ("log2", "linear"),
          f"{where}: bad scale {hist['scale']!r}")
    total = 0
    for bucket in hist["buckets"]:
        for key in ("lo", "hi", "n"):
            check(key in bucket, f"{where}: bucket lacks '{key}'")
        check(bucket["n"] > 0, f"{where}: zero bucket was emitted")
        if bucket["hi"] is not None:
            check(bucket["lo"] < bucket["hi"],
                  f"{where}: bucket edges out of order")
        total += bucket["n"]
    check(total == hist["count"],
          f"{where}: bucket counts {total} != count {hist['count']}")


def check_envelope(doc, where):
    check(isinstance(doc, dict), f"{where}: root is not an object")
    check(doc.get("schema") == SCHEMA,
          f"{where}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    check(doc.get("kind") in ("run", "bench"),
          f"{where}: bad kind {doc.get('kind')!r}")
    check(isinstance(doc.get("name"), str) and doc["name"],
          f"{where}: missing name")
    check(isinstance(doc.get("git"), str) and doc["git"],
          f"{where}: missing git describe")


def check_run(doc, where):
    check_envelope(doc, where)
    check(doc["kind"] == "run", f"{where}: kind is not 'run'")
    for key in ("config", "results", "stats", "predictor_quality",
                "similarity_per_site"):
        check(key in doc, f"{where}: missing top-level '{key}'")
    config = doc["config"]
    for key in ("workload", "cm", "cpus", "threadsPerCpu", "seed"):
        check(key in config, f"{where}: config lacks '{key}'")
    results = doc["results"]
    for key in ("runtime", "commits", "aborts", "contentionRate",
                "breakdown"):
        check(key in results, f"{where}: results lacks '{key}'")
    missing = BREAKDOWN_KEYS - results["breakdown"].keys()
    check(not missing, f"{where}: breakdown lacks {sorted(missing)}")
    frac_sum = sum(results["breakdown"][k + "Frac"]
                   for k in sorted(BREAKDOWN_KEYS))
    check(abs(frac_sum - 1.0) < 1e-9,
          f"{where}: breakdown fractions sum to {frac_sum}")

    quality = doc["predictor_quality"]
    for key in ("predictedStalls", "truePositives", "falsePositives",
                "falseNegatives", "predictedAborts", "precision",
                "recall", "perSite"):
        check(key in quality, f"{where}: predictor_quality lacks '{key}'")
    for metric in ("precision", "recall"):
        check(0.0 <= quality[metric] <= 1.0,
              f"{where}: {metric} {quality[metric]} out of [0,1]")
    check(isinstance(quality["perSite"], list),
          f"{where}: perSite is not an array")

    stats = doc["stats"]
    for group in ("mem", "htm", "predictor", "predictor.quality", "os",
                  "runner"):
        check(group in stats, f"{where}: stats lacks group '{group}'")
    check_histogram(stats["runner"]["abortCycles"],
                    f"{where}: runner.abortCycles")
    check_histogram(stats["runner"]["stallCycles"],
                    f"{where}: runner.stallCycles")
    if "bfgts" in stats:
        check_histogram(stats["bfgts"]["similarity"],
                        f"{where}: bfgts.similarity")
        check_histogram(stats["bfgts"]["confidence"],
                        f"{where}: bfgts.confidence")
    check(isinstance(doc["similarity_per_site"], list),
          f"{where}: similarity_per_site is not an array")


def check_bench(doc, where):
    check_envelope(doc, where)
    check(doc["kind"] == "bench", f"{where}: kind is not 'bench'")
    check("options" in doc, f"{where}: missing options")
    check(isinstance(doc.get("rows"), list) and doc["rows"],
          f"{where}: rows missing or empty")
    keys = list(doc["rows"][0].keys())
    for i, row in enumerate(doc["rows"]):
        check(isinstance(row, dict), f"{where}: row {i} not an object")
        check(list(row.keys()) == keys,
              f"{where}: row {i} keys differ from row 0")


def check_trace_jsonl(path):
    with open(path, "rb") as fh:
        lines = fh.read().splitlines()
    check(lines, f"{path}: empty trace")
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i + 1}: invalid JSON ({exc})")
        missing = TRACE_KEYS - record.keys()
        check(not missing, f"{path}:{i + 1}: lacks {sorted(missing)}")
        check(record["cat"] in TRACE_CATS,
              f"{path}:{i + 1}: bad category {record['cat']!r}")
        check(isinstance(record["tick"], int) and record["tick"] >= 0,
              f"{path}:{i + 1}: bad tick")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: cannot load ({exc})")


def run(cmd, env_extra=None, cwd=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    result = subprocess.run(cmd, env=env, cwd=cwd,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    if result.returncode != 0:
        fail(f"{' '.join(cmd)} exited {result.returncode}:\n"
             f"{result.stdout.decode(errors='replace')}")


def mode_cli(cli, workdir):
    outputs = []
    for seed in ("0x0123456789abcdef", "0xfedcba9876543210"):
        json_path = os.path.join(workdir, f"run-{seed}.json")
        trace_path = os.path.join(workdir, f"run-{seed}.jsonl")
        run([cli, *CLI_ARGS, "--json", json_path, "--trace",
             trace_path, "--trace-jsonl"],
            env_extra={"BFGTS_HASH_SEED": seed})
        with open(json_path, "rb") as fh:
            report = fh.read()
        with open(trace_path, "rb") as fh:
            trace = fh.read()
        outputs.append((report, trace))
        check_run(load(json_path), json_path)
        check_trace_jsonl(trace_path)
    check(outputs[0][0] == outputs[1][0],
          "JSON report differs across BFGTS_HASH_SEED values")
    check(outputs[0][1] == outputs[1][1],
          "JSONL trace differs across BFGTS_HASH_SEED values")
    print("validate_obs_json: cli OK (report + trace byte-identical "
          "across hash seeds)")


def mode_bench(bench, workdir):
    json_path = os.path.join(
        workdir, f"BENCH_{os.path.basename(bench)}.json")
    run([bench, "--json", json_path], cwd=workdir,
        env_extra={"BFGTS_QUICK": "1"})
    check_bench(load(json_path), json_path)
    print(f"validate_obs_json: bench OK ({os.path.basename(bench)})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="documents to check")
    parser.add_argument("--cli", help="bfgts_cli binary to exercise")
    parser.add_argument("--bench", help="bench binary to exercise")
    args = parser.parse_args()

    if not args.files and not args.cli and not args.bench:
        parser.error("nothing to do")

    for path in args.files:
        doc = load(path)
        check_envelope(doc, path)
        if doc["kind"] == "run":
            check_run(doc, path)
        else:
            check_bench(doc, path)
        print(f"validate_obs_json: {path} OK")

    with tempfile.TemporaryDirectory() as workdir:
        if args.cli:
            mode_cli(args.cli, workdir)
        if args.bench:
            mode_bench(args.bench, workdir)


if __name__ == "__main__":
    main()
