#!/usr/bin/env python3
"""Host-performance regression gate (advisory by default in CI).

The determinism gate (tools/bench_compare.py) deliberately ignores
the two wall-clock keys every bench row carries --
``wall_ns_per_cycle`` and ``events_per_sec`` (bench/bench_util.h).
This tool is their counterpart: it compares *only* those keys
between a committed baseline and a fresh run, with deliberately wide
multiplicative tolerance bands, and flags order-of-magnitude
regressions (an accidental O(n^2) in a hook path, a debug build
shipped as a baseline) without ever failing on ordinary host noise.

A candidate FAILS when, for any row present in both documents,

    wall_ns_per_cycle > baseline * factor     (slower per cycle), or
    events_per_sec    < baseline / factor     (less throughput),

with ``factor`` defaulting to 8.0 (override with ``--factor`` or
``BFGTS_PERF_FACTOR``). Baselines are quick-mode runs from CI-class
machines; anything inside an 8x band is treated as machine variance.
Rows are matched positionally, like bench_compare.py. Baselines
written before the wall keys existed (or candidates without them)
are skipped with a note -- absence is never an error, so old
baselines and deterministic-only documents stay valid.

Ratio gates
-----------
Benches that *compute* a host-performance ratio themselves (e.g.
bench/micro_bloom's ``sig_speedup``, the scalar/SIMD signature-kernel
geomean) publish it as a named cell in one of their rows. The
``--gate KEY:MIN`` mode checks that cell directly: the candidate
FAILS when any row carrying KEY has a value below MIN, or when no row
carries KEY at all (a silently vanished gate must not pass). Ratios
of two timings taken on the same machine in the same process divide
out host speed, so gates use hard thresholds, not tolerance bands.

Usage
-----
  perf_compare.py --baseline BENCH_x.json --candidate fresh.json
  perf_compare.py --baseline BENCH_x.json --bench path/to/bench_bin
  perf_compare.py --gate sig_speedup:3.0 --bench path/to/micro_bloom

The ``--bench`` form runs the binary (BFGTS_QUICK=1, --json into a
temp file) before comparing, mirroring bench_compare.py. ``--gate``
is repeatable and composes with ``--baseline`` (both checks run).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

WALL_KEYS = ("wall_ns_per_cycle", "events_per_sec")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "bfgts-obs-v1":
        raise SystemExit("%s: not a bfgts-obs-v1 document" % path)
    return doc.get("rows", [])


def compare_rows(baseline_path, candidate_path, factor):
    base_rows = load_rows(baseline_path)
    cand_rows = load_rows(candidate_path)
    failures = []
    compared = 0
    skipped = 0
    for i, (base, cand) in enumerate(zip(base_rows, cand_rows)):
        if not all(k in base and k in cand for k in WALL_KEYS):
            skipped += 1
            continue
        # A zero baseline carries no signal (e.g. a run too short
        # for the clock): skip rather than divide by it.
        if base["wall_ns_per_cycle"] <= 0 or base["events_per_sec"] <= 0:
            skipped += 1
            continue
        compared += 1
        wall = cand["wall_ns_per_cycle"]
        rate = cand["events_per_sec"]
        if wall > base["wall_ns_per_cycle"] * factor:
            failures.append(
                "row %d: wall_ns_per_cycle %.1f vs baseline %.1f "
                "(> %.0fx slower)"
                % (i, wall, base["wall_ns_per_cycle"], factor))
        if rate < base["events_per_sec"] / factor:
            failures.append(
                "row %d: events_per_sec %.0f vs baseline %.0f "
                "(> %.0fx less throughput)"
                % (i, rate, base["events_per_sec"], factor))
    if failures:
        print("perf_compare: %d regression(s) vs %s (factor %.1fx)"
              % (len(failures), baseline_path, factor))
        for failure in failures:
            print("  FAIL " + failure)
        return 1
    print("perf_compare: OK (%s within %.1fx of %s; %d row(s) "
          "compared, %d skipped)"
          % (candidate_path, factor, baseline_path, compared,
             skipped))
    return 0


def parse_gate(spec):
    key, sep, minimum = spec.partition(":")
    if not sep or not key:
        raise SystemExit("--gate expects KEY:MIN, got %r" % spec)
    try:
        return key, float(minimum)
    except ValueError:
        raise SystemExit("--gate %r: MIN is not a number" % spec)


def check_gates(candidate_path, gates):
    rows = load_rows(candidate_path)
    failures = []
    for key, minimum in gates:
        values = [row[key] for row in rows if key in row]
        if not values:
            failures.append("no row in %s carries %r"
                            % (candidate_path, key))
            continue
        for value in values:
            if value < minimum:
                failures.append("%s = %.2f, below the %.2f gate"
                                % (key, value, minimum))
            else:
                print("perf_compare: gate OK (%s = %.2f >= %.2f)"
                      % (key, value, minimum))
    for failure in failures:
        print("  FAIL " + failure)
    return 1 if failures else 0


def run_checks(candidate, args):
    status = 0
    if args.baseline:
        status |= compare_rows(args.baseline, candidate, args.factor)
    if args.gate:
        status |= check_gates(candidate,
                              [parse_gate(g) for g in args.gate])
    return status


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench wall-clock keys to a baseline "
                    "with wide tolerance bands, and/or check "
                    "bench-computed ratio gates")
    parser.add_argument("--baseline",
                        help="committed bench JSON to compare "
                             "wall-clock keys against")
    parser.add_argument("--candidate",
                        help="existing bench JSON to compare")
    parser.add_argument("--bench",
                        help="bench binary to run (BFGTS_QUICK=1) "
                             "before comparing")
    parser.add_argument("--bench-arg", action="append", default=[],
                        help="extra argument for --bench "
                             "(repeatable)")
    parser.add_argument("--gate", action="append", default=[],
                        help="KEY:MIN hard ratio gate on the "
                             "candidate rows (repeatable)")
    parser.add_argument("--factor", type=float,
                        default=float(os.environ.get(
                            "BFGTS_PERF_FACTOR", "8.0")),
                        help="multiplicative tolerance band "
                             "(default 8.0, or env "
                             "BFGTS_PERF_FACTOR)")
    args = parser.parse_args()
    if not args.baseline and not args.gate:
        parser.error("need --baseline and/or --gate")
    if args.bench:
        with tempfile.TemporaryDirectory() as tmp:
            candidate = os.path.join(tmp, "candidate.json")
            env = dict(os.environ, BFGTS_QUICK="1")
            subprocess.run([args.bench, "--json", candidate]
                           + args.bench_arg,
                           check=True, env=env,
                           stdout=subprocess.DEVNULL)
            return run_checks(candidate, args)
    if not args.candidate:
        parser.error("need --candidate or --bench")
    return run_checks(args.candidate, args)


if __name__ == "__main__":
    sys.exit(main())
