/**
 * @file
 * Unit and property tests for the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workloads/generator.h"

namespace {

using workloads::HotGroupRef;
using workloads::SiteParams;
using workloads::SyntheticParams;
using workloads::SyntheticWorkload;
using workloads::TxDescriptor;

SyntheticParams
simpleParams()
{
    SyntheticParams params;
    params.name = "test";
    params.hotGroupLines = {64};
    SiteParams site;
    site.meanAccesses = 20;
    site.accessJitter = 4;
    site.similarity = 0.5;
    site.nonTxWork = 1000;
    params.sites = {site};
    params.txPerThread = 10;
    return params;
}

/** Unique line addresses of a descriptor. */
std::unordered_set<mem::Addr>
lineSet(const TxDescriptor &desc)
{
    std::unordered_set<mem::Addr> lines;
    for (const auto &access : desc.accesses)
        lines.insert(mem::lineNumber(access.addr));
    return lines;
}

TEST(Generator, BasicDescriptorShape)
{
    SyntheticWorkload workload(simpleParams(), 4);
    sim::Rng rng(1);
    TxDescriptor desc = workload.next(0, rng);
    EXPECT_EQ(desc.sTx, 0);
    EXPECT_GE(static_cast<int>(desc.accesses.size()), 16);
    EXPECT_LE(static_cast<int>(desc.accesses.size()), 24);
    EXPECT_GE(desc.nonTxWork, 500u);
    EXPECT_LE(desc.nonTxWork, 1500u);
}

TEST(Generator, DeterministicGivenSeed)
{
    SyntheticWorkload a(simpleParams(), 4), b(simpleParams(), 4);
    sim::Rng rng_a(7), rng_b(7);
    for (int i = 0; i < 20; ++i) {
        TxDescriptor da = a.next(1, rng_a);
        TxDescriptor db = b.next(1, rng_b);
        ASSERT_EQ(da.accesses.size(), db.accesses.size());
        for (std::size_t j = 0; j < da.accesses.size(); ++j) {
            ASSERT_EQ(da.accesses[j].addr, db.accesses[j].addr);
            ASSERT_EQ(da.accesses[j].write, db.accesses[j].write);
        }
    }
}

TEST(Generator, PrivateRegionsOfThreadsAreDisjoint)
{
    SyntheticParams params = simpleParams();
    params.sites[0].hotGroups.clear(); // private only
    SyntheticWorkload workload(params, 8);
    sim::Rng rng0(1), rng1(2);
    std::unordered_set<mem::Addr> thread0_lines;
    for (int i = 0; i < 20; ++i)
        for (mem::Addr line : lineSet(workload.next(0, rng0)))
            thread0_lines.insert(line);
    for (int i = 0; i < 20; ++i) {
        for (mem::Addr line : lineSet(workload.next(1, rng1)))
            ASSERT_EQ(thread0_lines.count(line), 0u);
    }
}

TEST(Generator, HotRegionIsSharedAcrossThreads)
{
    SyntheticParams params = simpleParams();
    params.sites[0].hotGroups = {
        {.group = 0, .frac = 0.5, .writeFraction = 0.5,
         .stickyFrac = 1.0, .stickyPoolLines = 4}};
    SyntheticWorkload workload(params, 4);
    sim::Rng rng0(1), rng1(2);
    std::unordered_set<mem::Addr> thread0_lines;
    for (int i = 0; i < 10; ++i)
        for (mem::Addr line : lineSet(workload.next(0, rng0)))
            thread0_lines.insert(line);
    int shared = 0;
    for (int i = 0; i < 10; ++i)
        for (mem::Addr line : lineSet(workload.next(1, rng1)))
            shared += thread0_lines.count(line) ? 1 : 0;
    EXPECT_GT(shared, 0);
}

TEST(Generator, SimilarityTargetIsApproximatelyMet)
{
    for (double target : {0.1, 0.5, 0.9}) {
        SyntheticParams params = simpleParams();
        params.sites[0].similarity = target;
        params.sites[0].hotGroups.clear();
        params.sites[0].meanAccesses = 40;
        params.sites[0].accessJitter = 2;
        SyntheticWorkload workload(params, 1);
        sim::Rng rng(static_cast<std::uint64_t>(target * 100));
        auto prev = lineSet(workload.next(0, rng));
        double sim_sum = 0.0;
        int samples = 0;
        double avg_size = static_cast<double>(prev.size());
        for (int i = 0; i < 200; ++i) {
            auto cur = lineSet(workload.next(0, rng));
            avg_size = 0.5 * (avg_size
                              + static_cast<double>(cur.size()));
            std::size_t inter = 0;
            for (mem::Addr line : cur)
                inter += prev.count(line);
            sim_sum += static_cast<double>(inter) / avg_size;
            ++samples;
            prev = std::move(cur);
        }
        const double measured = sim_sum / samples;
        EXPECT_NEAR(measured, target, 0.15) << "target " << target;
    }
}

TEST(Generator, HotWritesComeAfterHotReads)
{
    SyntheticParams params = simpleParams();
    params.sites[0].hotGroups = {
        {.group = 0, .frac = 0.4, .writeFraction = 1.0}};
    SyntheticWorkload workload(params, 1);
    sim::Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        TxDescriptor desc = workload.next(0, rng);
        // Every written hot line must appear as a read earlier
        // (read-early / write-late).
        std::unordered_set<mem::Addr> seen_reads;
        for (const auto &access : desc.accesses) {
            if (!access.write) {
                seen_reads.insert(access.addr);
            } else if (access.addr >= 0x1000'0000'0000ULL) {
                ASSERT_TRUE(seen_reads.count(access.addr))
                    << "hot write before its read";
            }
        }
        // And writes must be positioned after all hot reads: the
        // last access of a fully-written hot transaction is a write.
        ASSERT_TRUE(desc.accesses.back().write);
    }
}

TEST(Generator, ReadOnlyGroupMembersNeverWriteHotLines)
{
    SyntheticParams params = simpleParams();
    params.sites[0].hotGroups = {
        {.group = 0, .frac = 0.5, .writeFraction = 0.0}};
    params.sites[0].writeFraction = 0.0;
    SyntheticWorkload workload(params, 2);
    sim::Rng rng(6);
    for (int i = 0; i < 30; ++i) {
        TxDescriptor desc = workload.next(0, rng);
        for (const auto &access : desc.accesses)
            ASSERT_FALSE(access.write);
    }
}

TEST(Generator, StickySlotsDrawFromPool)
{
    SyntheticParams params = simpleParams();
    params.hotGroupLines = {1024};
    params.sites[0].hotGroups = {
        {.group = 0, .frac = 1.0, .writeFraction = 0.0,
         .stickyFrac = 1.0, .stickyPoolLines = 8}};
    SyntheticWorkload workload(params, 1);
    sim::Rng rng(7);
    std::set<mem::Addr> distinct;
    for (int i = 0; i < 50; ++i)
        for (mem::Addr line : lineSet(workload.next(0, rng)))
            distinct.insert(line);
    // All sticky accesses stay within the 8-line pool.
    EXPECT_LE(distinct.size(), 8u);
}

TEST(Generator, WeightsSteerSiteSelection)
{
    SyntheticParams params = simpleParams();
    SiteParams rare = params.sites[0];
    params.sites[0].weight = 9.0;
    rare.weight = 1.0;
    params.sites.push_back(rare);
    SyntheticWorkload workload(params, 1);
    sim::Rng rng(8);
    int counts[2] = {0, 0};
    for (int i = 0; i < 2000; ++i)
        ++counts[workload.next(0, rng).sTx];
    EXPECT_NEAR(static_cast<double>(counts[0]) / 2000.0, 0.9, 0.03);
}

TEST(Generator, MultipleHotGroupsRespectFractions)
{
    SyntheticParams params = simpleParams();
    params.hotGroupLines = {64, 64};
    params.sites[0].meanAccesses = 40;
    params.sites[0].similarity = 0.0;
    params.sites[0].hotGroups = {
        {.group = 0, .frac = 0.25, .writeFraction = 0.0},
        {.group = 1, .frac = 0.25, .writeFraction = 0.0}};
    SyntheticWorkload workload(params, 1);
    sim::Rng rng(9);
    int group0 = 0, group1 = 0, total = 0;
    for (int i = 0; i < 100; ++i) {
        TxDescriptor desc = workload.next(0, rng);
        total += static_cast<int>(desc.accesses.size());
        for (const auto &access : desc.accesses) {
            if (access.addr >= 0x1000'0100'0000ULL)
                ++group1;
            else if (access.addr >= 0x1000'0000'0000ULL)
                ++group0;
        }
    }
    EXPECT_NEAR(static_cast<double>(group0) / total, 0.25, 0.05);
    EXPECT_NEAR(static_cast<double>(group1) / total, 0.25, 0.05);
}

TEST(GeneratorDeath, BadSiteParamsAreRejected)
{
    SyntheticParams params = simpleParams();
    params.sites[0].hotGroups = {
        {.group = 3, .frac = 0.5, .writeFraction = 0.5}};
    EXPECT_DEATH(SyntheticWorkload(params, 2), "assertion");

    SyntheticParams overfull = simpleParams();
    overfull.sites[0].hotGroups = {
        {.group = 0, .frac = 0.7, .writeFraction = 0.5},
        {.group = 0, .frac = 0.7, .writeFraction = 0.5}};
    EXPECT_DEATH(SyntheticWorkload(overfull, 2), "assertion");
}

} // namespace
