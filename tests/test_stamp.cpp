/**
 * @file
 * Calibration tests for the synthetic STAMP suite: every benchmark
 * must reproduce its paper-published conflict graph and per-site
 * similarity (Table 1) when actually run, and the factory/targets
 * plumbing must be consistent.
 */

#include <gtest/gtest.h>

#include "runner/experiment.h"
#include "workloads/stamp.h"

namespace {

TEST(Stamp, SevenBenchmarksInPaperOrder)
{
    const auto names = workloads::stampBenchmarkNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "Delaunay");
    EXPECT_EQ(names.back(), "Labyrinth");
}

TEST(Stamp, FactoryBuildsEveryBenchmark)
{
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        auto workload = workloads::makeStampWorkload(name, 64);
        ASSERT_NE(workload, nullptr);
        EXPECT_EQ(workload->name(), name);
        EXPECT_GE(workload->numStaticTx(), 1);
        EXPECT_GT(workload->txPerThread(), 0);
    }
}

TEST(Stamp, TargetsMatchSiteCounts)
{
    for (const std::string &name : workloads::stampBenchmarkNames()) {
        auto workload = workloads::makeStampWorkload(name, 4);
        auto targets = workloads::stampTargets(name);
        EXPECT_EQ(static_cast<int>(targets.similarity.size()),
                  workload->numStaticTx())
            << name;
        for (const auto &[a, b] : targets.conflictEdges) {
            EXPECT_LE(a, b);
            EXPECT_LT(b, workload->numStaticTx()) << name;
        }
    }
}

TEST(Stamp, Table1SiteCountsMatchPaper)
{
    EXPECT_EQ(workloads::stampTargets("Delaunay").similarity.size(),
              4u);
    EXPECT_EQ(workloads::stampTargets("Genome").similarity.size(),
              5u);
    EXPECT_EQ(workloads::stampTargets("Kmeans").similarity.size(),
              3u);
    EXPECT_EQ(workloads::stampTargets("Vacation").similarity.size(),
              1u);
    EXPECT_EQ(workloads::stampTargets("Intruder").similarity.size(),
              3u);
    EXPECT_EQ(workloads::stampTargets("Ssca2").similarity.size(), 3u);
    EXPECT_EQ(workloads::stampTargets("Labyrinth").similarity.size(),
              3u);
}

TEST(StampDeath, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH((void)workloads::makeStampWorkload("Bayes", 4),
                 "unknown");
    EXPECT_DEATH((void)workloads::stampTargets("Bayes"), "unknown");
}

/**
 * The Table 1 reproduction property, per benchmark: running under
 * Backoff, the measured conflict graph must contain every paper edge
 * and no extra edges, and measured per-site similarity must be close
 * to the published value.
 */
class Table1Reproduction
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Table1Reproduction, ConflictGraphAndSimilarity)
{
    const std::string name = GetParam();
    runner::RunOptions options;
    options.txPerThread = 60; // keep the test fast but significant
    const runner::SimResults results =
        runner::runStamp(name, cm::CmKind::Backoff, options);
    const workloads::StampTargets targets =
        workloads::stampTargets(name);

    // Similarity within a calibrated tolerance.
    ASSERT_EQ(results.similarityPerSite.size(),
              targets.similarity.size());
    for (std::size_t site = 0; site < targets.similarity.size();
         ++site) {
        EXPECT_NEAR(results.similarityPerSite[site],
                    targets.similarity[site], 0.2)
            << name << " site " << site;
    }

    // No conflict edge outside the paper's graph.
    for (const auto &edge : results.conflictGraph) {
        EXPECT_TRUE(targets.conflictEdges.count(edge))
            << name << " spurious edge (" << edge.first << ","
            << edge.second << ")";
    }

    // Every substantial paper edge is observed. Ssca2's edges are
    // borderline-never by design (0.1% contention), so skip there.
    if (name != "Ssca2") {
        for (const auto &edge : targets.conflictEdges) {
            EXPECT_TRUE(results.conflictGraph.count(edge))
                << name << " missing edge (" << edge.first << ","
                << edge.second << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table1Reproduction,
    ::testing::ValuesIn(workloads::stampBenchmarkNames()),
    [](const auto &info) { return info.param; });

} // namespace
