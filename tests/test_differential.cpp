/**
 * @file
 * Differential harness: the scalar signature kernels are the oracle
 * for the fast (fused / AVX2) kernels, at three levels.
 *
 *  1. Op level: randomized word-range sequences through both
 *     SignatureOps tables must produce exactly equal integers, bits
 *     and booleans -- no tolerance, no epsilon.
 *  2. Filter level: the Eq. 2-4 estimators consume only popcounts, so
 *     identical integer counts must yield bit-identical doubles.
 *  3. End to end: a contended simulation run under
 *     BFGTS_SIG_IMPL=scalar and under the fast path must emit
 *     byte-identical machine-readable reports (the bfgts-obs-v1 stats
 *     body and the complete bfgts-qual-v1 document), across every
 *     signature-using contention manager and across BFGTS_HASH_SEED
 *     values. A single differing byte fails the suite.
 *
 * This is what licenses the SIMD path to exist at all: the fast
 * kernels are an implementation detail that is provably invisible to
 * every simulated outcome.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/estimate.h"
#include "bloom/signature.h"
#include "bloom/signature_ops.h"
#include "cm/factory.h"
#include "runner/simulation.h"
#include "sim/det_hash.h"
#include "sim/json.h"
#include "sim/quality.h"
#include "sim/random.h"

namespace {

using bloom::SigImpl;

class DifferentialTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = bloom::activeSignatureImpl(); }

    void
    TearDown() override
    {
        bloom::setSignatureImpl(saved_);
        sim::setHashSeed(0);
    }

  private:
    SigImpl saved_ = SigImpl::Simd;
};

/** Random word range with a controllable fill density. */
std::vector<std::uint64_t>
randomWords(sim::Rng &rng, std::size_t n, int density_pct)
{
    std::vector<std::uint64_t> words(n, 0);
    for (auto &word : words) {
        if (density_pct >= 100) {
            word = ~0ULL;
            continue;
        }
        for (int bit = 0; bit < 64; ++bit) {
            if (rng.below(100) < static_cast<std::uint64_t>(density_pct))
                word |= 1ULL << bit;
        }
    }
    return words;
}

TEST_F(DifferentialTest, OpsAgreeOnRandomSequences)
{
    const bloom::SignatureOps &scalar = bloom::scalarSignatureOps();
    const bloom::SignatureOps &simd = bloom::simdSignatureOps();
    sim::Rng rng(0xd1ffe7e57ULL);

    // Sweep lengths around the vector width (4 words per AVX2 lane)
    // so every tail length is exercised, plus larger ranges.
    for (std::size_t n = 1; n <= 40; ++n) {
        for (int density : {0, 1, 10, 50, 90, 100}) {
            const std::vector<std::uint64_t> a =
                randomWords(rng, n, density);
            const std::vector<std::uint64_t> b =
                randomWords(rng, n, 100 - density);

            EXPECT_EQ(scalar.popcountWords(a.data(), n),
                      simd.popcountWords(a.data(), n))
                << "popcount n=" << n << " density=" << density;
            EXPECT_EQ(scalar.andAny(a.data(), b.data(), n),
                      simd.andAny(a.data(), b.data(), n))
                << "andAny n=" << n;
            EXPECT_EQ(scalar.andPopcount(a.data(), b.data(), n),
                      simd.andPopcount(a.data(), b.data(), n))
                << "andPopcount n=" << n;

            const bloom::UnionCounts sc =
                scalar.unionCounts(a.data(), b.data(), n);
            const bloom::UnionCounts sv =
                simd.unionCounts(a.data(), b.data(), n);
            EXPECT_EQ(sc.popA, sv.popA) << "unionCounts.popA n=" << n;
            EXPECT_EQ(sc.popB, sv.popB) << "unionCounts.popB n=" << n;
            EXPECT_EQ(sc.popUnion, sv.popUnion)
                << "unionCounts.popUnion n=" << n;

            std::vector<std::uint64_t> or_scalar = a;
            std::vector<std::uint64_t> or_simd = a;
            scalar.orWords(or_scalar.data(), b.data(), n);
            simd.orWords(or_simd.data(), b.data(), n);
            EXPECT_EQ(or_scalar, or_simd) << "orWords n=" << n;

            std::vector<std::uint64_t> and_scalar = a;
            std::vector<std::uint64_t> and_simd = a;
            scalar.andWords(and_scalar.data(), b.data(), n);
            simd.andWords(and_simd.data(), b.data(), n);
            EXPECT_EQ(and_scalar, and_simd) << "andWords n=" << n;
        }
    }
}

TEST_F(DifferentialTest, EstimatorsAreBitIdenticalAcrossImpls)
{
    // Eq. 2-4 consume integer popcounts; with identical integers the
    // double-precision formulas are the same instruction sequence, so
    // the doubles must compare exactly equal (==, not near).
    sim::Rng rng(0xe57137a7e5ULL);
    for (const auto &[bits, hashes, partitioned] :
         std::vector<std::tuple<std::uint64_t, int, bool>>{
             {512, 2, false},
             {2048, 4, false},
             {2048, 4, true},
             {8192, 8, true}}) {
        bloom::BloomConfig config;
        config.numBits = bits;
        config.numHashes = hashes;
        config.partitioned = partitioned;

        bloom::BloomFilter a_scalar(config), b_scalar(config);
        for (int i = 0; i < 200; ++i) {
            const std::uint64_t key = rng.next();
            if (i % 3 != 0)
                a_scalar.insert(key);
            if (i % 2 == 0)
                b_scalar.insert(key);
        }
        bloom::BloomFilter a_simd = a_scalar;
        bloom::BloomFilter b_simd = b_scalar;

        bloom::setSignatureImpl(SigImpl::Scalar);
        const std::uint64_t pop_scalar = a_scalar.popCount();
        const double est_scalar = bloom::estimateSetSize(
            pop_scalar, a_scalar.numBits(), a_scalar.numHashes());
        const double inter_scalar =
            bloom::estimateIntersectionSize(a_scalar, b_scalar);
        const bool any_scalar =
            a_scalar.intersectionNonEmpty(b_scalar);

        bloom::setSignatureImpl(SigImpl::Simd);
        const std::uint64_t pop_simd = a_simd.popCount();
        const double est_simd = bloom::estimateSetSize(
            pop_simd, a_simd.numBits(), a_simd.numHashes());
        const double inter_simd =
            bloom::estimateIntersectionSize(a_simd, b_simd);
        const bool any_simd = a_simd.intersectionNonEmpty(b_simd);

        EXPECT_EQ(pop_scalar, pop_simd);
        EXPECT_EQ(est_scalar, est_simd); // bit-exact, not EXPECT_NEAR
        EXPECT_EQ(inter_scalar, inter_simd);
        EXPECT_EQ(any_scalar, any_simd);
        EXPECT_EQ(a_scalar.words(), a_simd.words());
    }
}

runner::SimConfig
contendedConfig(cm::CmKind kind)
{
    runner::SimConfig config;
    // Intruder is the paper's most contended benchmark: plenty of
    // aborts, stalls, and CM arbitration on every signature path.
    config.workload = "Intruder";
    config.cm = kind;
    config.numCpus = 8;
    config.threadsPerCpu = 2;
    config.txPerThreadOverride = 15;
    config.seed = 7;
    return config;
}

/**
 * Run one simulation under (@p impl, @p hash_seed) and capture every
 * machine-readable report: the bfgts-obs-v1 stats body (dumpStatsJson
 * plus the SimResults scalars it envelopes) and the complete
 * bfgts-qual-v1 document.
 */
std::string
reportsFor(const runner::SimConfig &base, SigImpl impl,
           std::uint64_t hash_seed)
{
    bloom::setSignatureImpl(impl);
    sim::setHashSeed(hash_seed);

    sim::QualityRecorder quality;
    runner::SimConfig config = base;
    config.quality = &quality;

    runner::Simulation sim(config);
    const runner::SimResults results = sim.run();

    std::ostringstream out;
    {
        sim::JsonWriter jw(out);
        jw.beginObject();
        sim.dumpStatsJson(jw);
        jw.endObject();
    }
    out << "\nruntime=" << results.runtime
        << " commits=" << results.commits
        << " aborts=" << results.aborts
        << " conflicts=" << results.conflicts
        << " serializations=" << results.serializations
        << " stallTimeouts=" << results.stallTimeouts
        << " contentionRate=" << results.contentionRate << '\n';
    sim.dumpStats(out);
    sim::writeQualReport(out, "differential", quality.data());
    return out.str();
}

TEST_F(DifferentialTest, ReportsAreByteIdenticalAcrossImpls)
{
    // All four signature-consuming CM families: exponential backoff
    // (no signatures -- control), ATS and PTS (software predictor
    // tables), and the hardware BFGTS design point (Bloom signature
    // exchange on every commit).
    for (cm::CmKind kind : {cm::CmKind::Backoff, cm::CmKind::Ats,
                            cm::CmKind::Pts, cm::CmKind::BfgtsHw}) {
        const std::uint64_t hash_seeds[] = {0,
                                            0x9e3779b97f4a7c15ULL};
        for (std::uint64_t hash_seed : hash_seeds) {
            const runner::SimConfig config = contendedConfig(kind);
            const std::string scalar =
                reportsFor(config, SigImpl::Scalar, hash_seed);
            const std::string simd =
                reportsFor(config, SigImpl::Simd, hash_seed);
            EXPECT_EQ(scalar, simd)
                << "fast signature kernels perturbed simulated "
                   "behavior (cm kind "
                << static_cast<int>(kind) << ", hash seed "
                << hash_seed << ")";
            EXPECT_FALSE(scalar.empty());
        }
    }
}

TEST_F(DifferentialTest, SignatureDetectionModeIsImplInvariant)
{
    // Signature-based conflict detection probes Bloom filters on
    // every coherence request -- the densest signature traffic in the
    // model, worth its own leg on top of the CM sweep above.
    runner::SimConfig config = contendedConfig(cm::CmKind::BfgtsHw);
    config.conflict.detectionMode = htm::DetectionMode::Signature;
    const std::string scalar = reportsFor(config, SigImpl::Scalar, 1);
    const std::string simd = reportsFor(config, SigImpl::Simd, 1);
    EXPECT_EQ(scalar, simd);
}

} // namespace
