/**
 * @file
 * Shared fixture pieces for contention-manager unit tests: a minimal
 * simulated machine (event queue, scheduler, RNG, predictor system)
 * and helpers to fabricate TxInfo values.
 */

#ifndef BFGTS_TESTS_CM_TEST_UTIL_H
#define BFGTS_TESTS_CM_TEST_UTIL_H

#include <gtest/gtest.h>

#include "cm/base.h"
#include "cpu/predictor.h"
#include "htm/tx_id.h"
#include "os/scheduler.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace cmtest {

/** A machine stub with 4 CPUs, 8 threads, 4 static transactions. */
class Machine
{
  public:
    Machine()
        : ids(4, 8), scheduler(events, schedConfig()),
          predictors(4, ids), rng(1234)
    {
        // 2 threads per CPU; dispatch parks the thread (tests drive
        // the CM hooks directly, not a full simulation).
        scheduler.setDispatchFn([](sim::ThreadId) {});
        for (int t = 0; t < 8; ++t)
            scheduler.addThread(t % 4);
        scheduler.start();
        events.run();
    }

    static os::SchedulerConfig
    schedConfig()
    {
        os::SchedulerConfig config;
        config.numCpus = 4;
        return config;
    }

    cm::Services
    services(bool with_predictors = false)
    {
        cm::Services s;
        s.scheduler = &scheduler;
        s.rng = &rng;
        if (with_predictors)
            s.predictors = &predictors;
        return s;
    }

    /** TxInfo for (thread, site); cpu = thread % 4. */
    cm::TxInfo
    tx(sim::ThreadId thread, htm::STxId stx) const
    {
        cm::TxInfo info;
        info.thread = thread;
        info.cpu = thread % 4;
        info.sTx = stx;
        info.dTx = ids.make(thread, stx);
        return info;
    }

    sim::EventQueue events;
    htm::TxIdSpace ids;
    os::OsScheduler scheduler;
    cpu::PredictorSystem predictors;
    sim::Rng rng;
};

} // namespace cmtest

#endif // BFGTS_TESTS_CM_TEST_UTIL_H
