/**
 * @file
 * Paper-shape regression tests: the qualitative results of the
 * evaluation (who beats whom, where) must hold. These guard the
 * workload calibration and cost model against regressions; exact
 * magnitudes are checked in EXPERIMENTS.md, not here.
 */

#include <gtest/gtest.h>

#include <map>

#include "runner/experiment.h"

namespace {

/** Cache runs: the fixture executes each cell at most once. */
class ShapeTest : public ::testing::Test
{
  protected:
    static runner::SimResults &
    cell(const std::string &workload, cm::CmKind kind)
    {
        static std::map<std::pair<std::string, int>,
                        runner::SimResults>
            cache;
        auto key = std::make_pair(workload, static_cast<int>(kind));
        auto it = cache.find(key);
        if (it == cache.end()) {
            runner::RunOptions options;
            options.txPerThread = 60;
            it = cache
                     .emplace(key,
                              runner::runStamp(workload, kind,
                                               options))
                     .first;
        }
        return it->second;
    }

    static double
    speedupRatio(const std::string &workload, cm::CmKind faster,
                 cm::CmKind slower)
    {
        return static_cast<double>(cell(workload, slower).runtime)
             / static_cast<double>(cell(workload, faster).runtime);
    }
};

TEST_F(ShapeTest, BfgtsHwBeatsEveryoneOnIntruder)
{
    // The paper's flagship: up to 1.75x over PTS on Intruder.
    EXPECT_GT(speedupRatio("Intruder", cm::CmKind::BfgtsHw,
                           cm::CmKind::Pts),
              1.3);
    EXPECT_GT(speedupRatio("Intruder", cm::CmKind::BfgtsHw,
                           cm::CmKind::Backoff),
              1.15);
    EXPECT_GT(speedupRatio("Intruder", cm::CmKind::BfgtsHw,
                           cm::CmKind::Ats),
              1.3);
}

TEST_F(ShapeTest, BfgtsHwBeatsBackoffAndPtsOnGenome)
{
    EXPECT_GT(speedupRatio("Genome", cm::CmKind::BfgtsHw,
                           cm::CmKind::Backoff),
              1.1);
    EXPECT_GT(speedupRatio("Genome", cm::CmKind::BfgtsHw,
                           cm::CmKind::Pts),
              1.05);
}

TEST_F(ShapeTest, BfgtsHwBeatsBackoffAndPtsOnKmeans)
{
    EXPECT_GT(speedupRatio("Kmeans", cm::CmKind::BfgtsHw,
                           cm::CmKind::Backoff),
              1.05);
    EXPECT_GT(speedupRatio("Kmeans", cm::CmKind::BfgtsHw,
                           cm::CmKind::Pts),
              1.05);
}

TEST_F(ShapeTest, BackoffWinsLowContentionSsca2)
{
    // Ssca2 favors the lowest-overhead manager (paper Section 5.2).
    EXPECT_GT(speedupRatio("Ssca2", cm::CmKind::Backoff,
                           cm::CmKind::BfgtsHw),
              1.0);
    EXPECT_GT(speedupRatio("Ssca2", cm::CmKind::Backoff,
                           cm::CmKind::Pts),
              1.5);
}

TEST_F(ShapeTest, AtsCollapsesOnDenseConflictDelaunay)
{
    // The paper's 4.6x headline is BFGTS-HW over ATS on Delaunay.
    EXPECT_GT(speedupRatio("Delaunay", cm::CmKind::BfgtsHw,
                           cm::CmKind::Ats),
              1.5);
}

TEST_F(ShapeTest, HardwareBeatsSoftwareOnOverheadSensitive)
{
    // BFGTS-HW eliminates the begin-scan overhead of BFGTS-SW.
    for (const char *workload : {"Intruder", "Ssca2", "Kmeans"}) {
        EXPECT_GT(speedupRatio(workload, cm::CmKind::BfgtsHw,
                               cm::CmKind::BfgtsSw),
                  1.0)
            << workload;
    }
}

TEST_F(ShapeTest, NoOverheadIsTheUpperBoundOnAverage)
{
    double ratio_product = 1.0;
    int count = 0;
    for (const char *workload :
         {"Delaunay", "Genome", "Kmeans", "Intruder", "Ssca2"}) {
        ratio_product *= speedupRatio(
            workload, cm::CmKind::BfgtsNoOverhead,
            cm::CmKind::BfgtsHw);
        ++count;
    }
    EXPECT_GT(std::pow(ratio_product, 1.0 / count), 1.0);
}

TEST_F(ShapeTest, SchedulersReduceContentionBelowBackoff)
{
    for (const char *workload :
         {"Delaunay", "Genome", "Intruder", "Kmeans"}) {
        const double backoff =
            cell(workload, cm::CmKind::Backoff).contentionRate;
        EXPECT_LT(cell(workload, cm::CmKind::BfgtsHw).contentionRate,
                  backoff)
            << workload;
        EXPECT_LT(cell(workload, cm::CmKind::Ats).contentionRate,
                  backoff)
            << workload;
    }
}

TEST_F(ShapeTest, AtsIdlesCpusOnHighContention)
{
    const runner::Breakdown &b =
        cell("Delaunay", cm::CmKind::Ats).breakdown;
    // Central-queue blocking leaves most of the machine idle.
    EXPECT_GT(b.frac(b.idle), 0.4);
}

TEST_F(ShapeTest, BackoffBurnsCyclesInAbortsOnHighContention)
{
    const runner::Breakdown &b =
        cell("Intruder", cm::CmKind::Backoff).breakdown;
    EXPECT_GT(b.frac(b.aborted), 0.3);
}

} // namespace
