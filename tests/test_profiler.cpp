/**
 * @file
 * Tests of the host-performance profiler (src/sim/profiler.h).
 *
 * The wall-clock parts run against a scripted fake clock, so nesting
 * and self-time attribution are checked exactly; the integration
 * tests assert the observational contract -- attaching a profiler
 * (real clock) never changes deterministic results, and a profiled
 * sweep neither perturbs the cache key nor re-executes warm cells.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/sweep.h"
#include "sim/profiler.h"

namespace {

/** Scripted clock: tests advance g_fake_now between profiler calls
 *  (ClockFn is a plain function pointer, hence the global). */
std::uint64_t g_fake_now = 0;

std::uint64_t
fakeClock()
{
    return g_fake_now;
}

TEST(ProfilerTest, SelfTimeAttributionAcrossNestedPhases)
{
    g_fake_now = 1000;
    sim::Profiler prof(&fakeClock);
    prof.beginRun();

    // 100 ns in cm_commit before Bloom work starts...
    prof.enter(sim::Profiler::kCmCommit);
    g_fake_now += 100;
    // ...300 ns of nested Bloom work...
    prof.enter(sim::Profiler::kBloom);
    g_fake_now += 300;
    prof.exit();
    // ...and 50 more ns of commit tail after the Bloom scope.
    g_fake_now += 50;
    prof.exit();

    // 200 ns of unattributed run loop, then the run ends.
    g_fake_now += 200;
    prof.endRun(/*events_executed=*/10, /*final_tick=*/650);

    const sim::Profiler::Data &data = prof.data();
    EXPECT_EQ(data.wallNs, 650u);
    EXPECT_EQ(data.phaseNs[sim::Profiler::kCmCommit], 150u);
    EXPECT_EQ(data.phaseNs[sim::Profiler::kBloom], 300u);
    EXPECT_EQ(data.phaseCalls[sim::Profiler::kCmCommit], 1u);
    EXPECT_EQ(data.phaseCalls[sim::Profiler::kBloom], 1u);
    EXPECT_EQ(data.otherNs(), 200u);
    EXPECT_EQ(data.events, 10u);
    EXPECT_EQ(data.ticks, 650u);
    EXPECT_DOUBLE_EQ(data.wallNsPerCycle(), 1.0);

    // Self-time shares plus "other" cover the whole run loop.
    double share_sum = 0.0;
    for (int p = 0; p <= sim::Profiler::kNumPhases; ++p)
        share_sum += data.share(p);
    EXPECT_DOUBLE_EQ(share_sum, 1.0);
}

TEST(ProfilerTest, ScopedPhaseIsNullSafe)
{
    // The hook pattern used at every site: a null profiler must be a
    // no-op, not a crash.
    sim::ScopedPhase phase(nullptr, sim::Profiler::kMem);
}

TEST(ProfilerTest, UnbalancedExitIsIgnored)
{
    g_fake_now = 0;
    sim::Profiler prof(&fakeClock);
    prof.beginRun();
    prof.exit(); // stray exit at depth 0
    g_fake_now = 100;
    prof.endRun(1, 100);
    for (std::uint64_t ns : prof.data().phaseNs)
        EXPECT_EQ(ns, 0u);
    EXPECT_EQ(prof.data().otherNs(), 100u);
}

TEST(ProfilerTest, RecordBytesKeepsHighWater)
{
    sim::Profiler prof(&fakeClock);
    prof.recordBytes(sim::Profiler::kStructEventQueue, 100);
    prof.recordBytes(sim::Profiler::kStructEventQueue, 50);
    EXPECT_EQ(
        prof.data().structBytes[sim::Profiler::kStructEventQueue],
        100u);
    prof.recordBytes(sim::Profiler::kStructEventQueue, 200);
    EXPECT_EQ(
        prof.data().structBytes[sim::Profiler::kStructEventQueue],
        200u);
}

TEST(ProfilerTest, PeakRssIsPositiveAndMonotonic)
{
    sim::Profiler prof(&fakeClock);
    prof.samplePeakRss();
    const std::uint64_t first = prof.data().peakRssBytes;
    EXPECT_GT(first, 0u) << "getrusage should report a peak RSS";
    // Touch some memory, re-sample: the gauge may grow, never shrink.
    std::vector<char> ballast(4 * 1024 * 1024, 1);
    prof.samplePeakRss();
    EXPECT_GE(prof.data().peakRssBytes, first);
    EXPECT_GT(ballast.size(), 0u);
}

TEST(ProfilerTest, MinMedianMax)
{
    const sim::MinMedMax odd = sim::minMedianMax({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(odd.min, 1.0);
    EXPECT_DOUBLE_EQ(odd.median, 2.0);
    EXPECT_DOUBLE_EQ(odd.max, 3.0);

    const sim::MinMedMax even =
        sim::minMedianMax({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(even.min, 1.0);
    EXPECT_DOUBLE_EQ(even.median, 2.5);
    EXPECT_DOUBLE_EQ(even.max, 4.0);

    const sim::MinMedMax empty = sim::minMedianMax({});
    EXPECT_DOUBLE_EQ(empty.min, 0.0);
    EXPECT_DOUBLE_EQ(empty.median, 0.0);
    EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(ProfilerTest, RunReportIsSchemaShaped)
{
    g_fake_now = 0;
    sim::Profiler prof(&fakeClock);
    prof.beginRun();
    prof.enter(sim::Profiler::kEventQueue);
    g_fake_now = 500;
    prof.exit();
    prof.endRun(4, 1000);

    std::ostringstream os;
    prof.writeReport(os, "unit");
    const std::string report = os.str();
    EXPECT_NE(report.find("\"schema\": \"bfgts-prof-v1\""),
              std::string::npos);
    EXPECT_NE(report.find("\"kind\": \"run\""), std::string::npos);
    EXPECT_NE(report.find("\"event_queue\""), std::string::npos);
    EXPECT_NE(report.find("\"other\""), std::string::npos);
    EXPECT_NE(report.find("\"peakRssBytes\""), std::string::npos);
}

// ---- integration: profiling is observational --------------------------

runner::RunOptions
smallOptions()
{
    runner::RunOptions options;
    options.numCpus = 4;
    options.threadsPerCpu = 2;
    options.txPerThread = 6;
    return options;
}

std::string
resultsString(const runner::SimResults &results)
{
    std::ostringstream os;
    runner::writeSweepResults(os, results);
    return os.str();
}

TEST(ProfilerIntegrationTest, ProfiledRunLeavesResultsIdentical)
{
    const runner::RunOptions options = smallOptions();
    const runner::SimResults plain =
        runner::runStamp("Intruder", cm::CmKind::BfgtsHw, options);

    sim::Profiler prof;
    const runner::SimResults profiled = runner::runStamp(
        "Intruder", cm::CmKind::BfgtsHw, options, &prof);

    EXPECT_EQ(resultsString(plain), resultsString(profiled));

    // The profiler actually measured the run it rode along on.
    const sim::Profiler::Data &data = prof.data();
    EXPECT_GT(data.wallNs, 0u);
    EXPECT_GT(data.events, 0u);
    EXPECT_EQ(data.ticks,
              static_cast<std::uint64_t>(profiled.runtime));
    EXPECT_GT(data.phaseCalls[sim::Profiler::kEventQueue], 0u);
    EXPECT_GT(data.phaseCalls[sim::Profiler::kCmDecide], 0u);
    EXPECT_GT(data.peakRssBytes, 0u);
    EXPECT_GT(data.structBytes[sim::Profiler::kStructEventQueue], 0u);
    EXPECT_GT(data.structBytes[sim::Profiler::kPredictorCaches], 0u);
}

class ProfilerSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cacheDir_ = std::filesystem::temp_directory_path()
                  / "bfgts_profiler_cache_test";
        std::filesystem::remove_all(cacheDir_);
    }

    void TearDown() override { std::filesystem::remove_all(cacheDir_); }

    std::vector<runner::SweepCell>
    matrix() const
    {
        std::vector<runner::SweepCell> cells;
        for (const char *workload : {"Intruder", "Genome"}) {
            runner::SweepCell cell;
            cell.workload = workload;
            cell.cm = cm::CmKind::BfgtsHw;
            cell.options = smallOptions();
            cells.push_back(cell);
        }
        return cells;
    }

    std::filesystem::path cacheDir_;
};

TEST_F(ProfilerSweepTest, ProfileDoesNotPerturbCacheKeyOrResults)
{
    // Cold pass without profiling fills the cache.
    runner::SweepOptions cold;
    cold.cacheDir = cacheDir_.string();
    runner::SweepRunner first(cold);
    const auto plain = first.run(matrix());
    ASSERT_EQ(first.stats().executed, 2);

    // Warm profiled pass: same cache keys, so every cell is a hit,
    // nothing executes, results match byte for byte, and no profile
    // is recorded (there was no execution to measure).
    runner::SweepOptions warm = cold;
    warm.profile = true;
    runner::SweepRunner second(warm);
    const auto cached = second.run(matrix());
    EXPECT_EQ(second.stats().executed, 0);
    EXPECT_EQ(second.stats().cacheHits, 2);
    ASSERT_EQ(cached.size(), plain.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
        EXPECT_TRUE(cached[i].fromCache);
        EXPECT_EQ(resultsString(cached[i].results),
                  resultsString(plain[i].results));
        EXPECT_FALSE(cached[i].profile.has_value());
    }
}

TEST_F(ProfilerSweepTest, ProfiledCellsCarryDataAndAggregate)
{
    runner::SweepOptions options;
    options.profile = true;
    options.jobs = 2;
    runner::SweepRunner sweep(options);
    const auto results = sweep.run(matrix());
    ASSERT_EQ(results.size(), 2u);
    for (const runner::SweepCellResult &result : results) {
        ASSERT_TRUE(result.ok);
        ASSERT_TRUE(result.profile.has_value());
        EXPECT_GT(result.profile->wallNs, 0u);
        EXPECT_GT(result.profile->events, 0u);
    }

    std::ostringstream os;
    sweep.writeProfileReport(os, "unit-sweep");
    const std::string report = os.str();
    EXPECT_NE(report.find("\"schema\": \"bfgts-prof-v1\""),
              std::string::npos);
    EXPECT_NE(report.find("\"kind\": \"sweep\""), std::string::npos);
    EXPECT_NE(report.find("\"profiledCells\": 2"), std::string::npos);
    EXPECT_NE(report.find("\"aggregate\""), std::string::npos);
    EXPECT_NE(report.find("\"median\""), std::string::npos);
}

TEST_F(ProfilerSweepTest, SweepReportIdenticalWithAndWithoutProfile)
{
    runner::SweepOptions plain_options;
    runner::SweepRunner plain(plain_options);
    plain.run(matrix());
    std::ostringstream plain_report;
    plain.writeReport(plain_report, "unit-sweep");

    runner::SweepOptions prof_options;
    prof_options.profile = true;
    runner::SweepRunner profiled(prof_options);
    profiled.run(matrix());
    std::ostringstream prof_report;
    profiled.writeReport(prof_report, "unit-sweep");

    EXPECT_EQ(plain_report.str(), prof_report.str());
}

} // namespace
