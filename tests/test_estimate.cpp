/**
 * @file
 * Property tests for the paper's Eqs. 2-4: set-size estimation,
 * intersection estimation and similarity from Bloom filters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bloom/estimate.h"
#include "sim/random.h"

namespace {

using bloom::BloomConfig;
using bloom::BloomFilter;

TEST(Estimate, EmptyFilterEstimatesZero)
{
    BloomFilter filter{};
    EXPECT_DOUBLE_EQ(bloom::estimateSetSize(filter), 0.0);
}

TEST(Estimate, SaturatedFilterReturnsCeiling)
{
    EXPECT_DOUBLE_EQ(bloom::estimateSetSize(512, 512, 4), 512.0);
}

TEST(Estimate, RawOverloadWithNoBitsSetEstimatesZero)
{
    EXPECT_DOUBLE_EQ(bloom::estimateSetSize(0, 1024, 4), 0.0);
}

TEST(Estimate, SaturatedLiveFilterReturnsCeiling)
{
    // Drive a real filter to full saturation: the live-filter path
    // must hit the same t == m ceiling as the raw overload instead of
    // evaluating ln(0).
    BloomFilter filter(BloomConfig{.numBits = 64, .numHashes = 4,
                                   .seed = 13});
    sim::Rng rng(14);
    while (filter.popCount() < filter.numBits())
        filter.insert(rng.next());
    const double est = bloom::estimateSetSize(filter);
    EXPECT_DOUBLE_EQ(est, static_cast<double>(filter.numBits()));
    EXPECT_TRUE(std::isfinite(est));
}

TEST(Estimate, NearlySaturatedFilterIsFiniteAndLarge)
{
    // One bit shy of saturation is the worst-conditioned finite input
    // to Eq. 2: the estimate must stay finite, positive, and can
    // legitimately exceed the t == m ceiling of m (the ceiling is a
    // saturation convention, not an upper bound of the estimator).
    const double almost = bloom::estimateSetSize(511, 512, 4);
    EXPECT_TRUE(std::isfinite(almost));
    EXPECT_GT(almost, bloom::estimateSetSize(510, 512, 4));
}

TEST(Estimate, IntersectionOfSaturatedFiltersIsNonNegativeAndFinite)
{
    BloomConfig config{.numBits = 64, .numHashes = 4, .seed = 15};
    BloomFilter a(config), b(config);
    sim::Rng rng(16);
    while (a.popCount() < a.numBits())
        a.insert(rng.next());
    while (b.popCount() < b.numBits())
        b.insert(rng.next());
    const double inter = bloom::estimateIntersectionSize(a, b);
    EXPECT_TRUE(std::isfinite(inter));
    EXPECT_GE(inter, 0.0);
    // Saturated similarity still clamps to the unit interval even
    // with a tiny Eq. 4 denominator.
    const double sim = bloom::similarity(a, b, 1.0);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
}

TEST(Estimate, SingleKeyEstimatesAboutOne)
{
    BloomFilter filter(BloomConfig{.numBits = 1024, .numHashes = 4,
                                   .seed = 1});
    filter.insert(1234567);
    EXPECT_NEAR(bloom::estimateSetSize(filter), 1.0, 0.1);
}

TEST(Estimate, MonotonicInBitsSet)
{
    double prev = 0.0;
    for (std::uint64_t t = 0; t <= 1000; t += 50) {
        double est = bloom::estimateSetSize(t, 1024, 4);
        EXPECT_GE(est, prev);
        prev = est;
    }
}

/** Eq. 2 accuracy across (set size, filter size) combinations. */
class SetSizeAccuracy
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(SetSizeAccuracy, EstimateWithinTenPercent)
{
    const int n = std::get<0>(GetParam());
    const std::uint64_t bits = std::get<1>(GetParam());
    BloomFilter filter(BloomConfig{.numBits = bits, .numHashes = 4,
                                   .seed = 17});
    sim::Rng rng(static_cast<std::uint64_t>(n) * bits);
    for (int i = 0; i < n; ++i)
        filter.insert(rng.next());
    const double est = bloom::estimateSetSize(filter);
    // 10% relative + small absolute slack for tiny sets.
    EXPECT_NEAR(est, n, 0.10 * n + 2.0)
        << "n=" << n << " bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetSizeAccuracy,
    ::testing::Combine(::testing::Values(4, 16, 64, 128, 256),
                       ::testing::Values(512, 2048, 8192)));

TEST(Estimate, IntersectionOfIdenticalSetsIsSetSize)
{
    BloomConfig config{.numBits = 2048, .numHashes = 4, .seed = 2};
    BloomFilter a(config), b(config);
    sim::Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        std::uint64_t key = rng.next();
        a.insert(key);
        b.insert(key);
    }
    EXPECT_NEAR(bloom::estimateIntersectionSize(a, b), 50.0, 7.0);
}

TEST(Estimate, IntersectionOfDisjointSetsIsNearZero)
{
    BloomConfig config{.numBits = 4096, .numHashes = 4, .seed = 3};
    BloomFilter a(config), b(config);
    for (std::uint64_t key = 0; key < 60; ++key) {
        a.insert(0x100000 + key);
        b.insert(0x900000 + key);
    }
    EXPECT_NEAR(bloom::estimateIntersectionSize(a, b), 0.0, 5.0);
}

TEST(Estimate, IntersectionIsNeverNegative)
{
    BloomConfig config{.numBits = 512, .numHashes = 2, .seed = 4};
    sim::Rng rng(6);
    for (int trial = 0; trial < 20; ++trial) {
        BloomFilter a(config), b(config);
        for (int i = 0; i < 10; ++i) {
            a.insert(rng.next());
            b.insert(rng.next());
        }
        EXPECT_GE(bloom::estimateIntersectionSize(a, b), 0.0);
    }
}

/** Eq. 3 accuracy for partially overlapping sets. */
class IntersectionAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(IntersectionAccuracy, TracksTrueOverlap)
{
    const int overlap = GetParam();
    constexpr int kSetSize = 64;
    BloomConfig config{.numBits = 4096, .numHashes = 4, .seed = 7};
    BloomFilter a(config), b(config);
    sim::Rng rng(static_cast<std::uint64_t>(overlap) + 100);
    std::vector<std::uint64_t> shared;
    for (int i = 0; i < overlap; ++i)
        shared.push_back(rng.next());
    for (std::uint64_t key : shared) {
        a.insert(key);
        b.insert(key);
    }
    for (int i = overlap; i < kSetSize; ++i) {
        a.insert(rng.next());
        b.insert(rng.next());
    }
    EXPECT_NEAR(bloom::estimateIntersectionSize(a, b), overlap,
                0.2 * kSetSize);
}

INSTANTIATE_TEST_SUITE_P(OverlapSweep, IntersectionAccuracy,
                         ::testing::Values(0, 8, 16, 32, 48, 64));

TEST(Similarity, IdenticalSetsHaveSimilarityNearOne)
{
    BloomConfig config{.numBits = 2048, .numHashes = 4, .seed = 8};
    BloomFilter a(config), b(config);
    for (std::uint64_t key = 0; key < 40; ++key) {
        a.insert(key * 31 + 7);
        b.insert(key * 31 + 7);
    }
    EXPECT_NEAR(bloom::similarity(a, b, 40.0), 1.0, 0.15);
}

TEST(Similarity, DisjointSetsHaveSimilarityNearZero)
{
    BloomConfig config{.numBits = 4096, .numHashes = 4, .seed = 9};
    BloomFilter a(config), b(config);
    for (std::uint64_t key = 0; key < 40; ++key) {
        a.insert(0x1111000 + key);
        b.insert(0x9999000 + key);
    }
    EXPECT_NEAR(bloom::similarity(a, b, 40.0), 0.0, 0.1);
}

TEST(Similarity, AlwaysClampedToUnitInterval)
{
    BloomConfig config{.numBits = 512, .numHashes = 2, .seed = 10};
    sim::Rng rng(11);
    for (int trial = 0; trial < 30; ++trial) {
        BloomFilter a(config), b(config);
        int n = static_cast<int>(rng.below(100)) + 1;
        for (int i = 0; i < n; ++i) {
            std::uint64_t key = rng.next();
            a.insert(key);
            if (rng.chance(0.5))
                b.insert(key);
            else
                b.insert(rng.next());
        }
        double sim = bloom::similarity(a, b, static_cast<double>(n));
        EXPECT_GE(sim, 0.0);
        EXPECT_LE(sim, 1.0);
    }
}

TEST(Similarity, ZeroAvgSizeGivesZero)
{
    BloomFilter a{}, b{};
    a.insert(1);
    b.insert(1);
    EXPECT_DOUBLE_EQ(bloom::similarity(a, b, 0.0), 0.0);
}

TEST(Similarity, ExactSimilarityClamps)
{
    EXPECT_DOUBLE_EQ(bloom::exactSimilarity(5.0, 10.0), 0.5);
    EXPECT_DOUBLE_EQ(bloom::exactSimilarity(15.0, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(bloom::exactSimilarity(-1.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(bloom::exactSimilarity(1.0, 0.0), 0.0);
}

/**
 * The headline property of Section 3.2: half-overlapping consecutive
 * executions measure similarity ~0.5 across every paper filter size.
 */
class SimilaritySizeSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimilaritySizeSweep, HalfOverlapMeasuresAboutHalf)
{
    BloomConfig config{.numBits = GetParam(), .numHashes = 4,
                       .seed = 12};
    BloomFilter a(config), b(config);
    constexpr int kSetSize = 48;
    sim::Rng rng(GetParam());
    for (int i = 0; i < kSetSize / 2; ++i) {
        std::uint64_t key = rng.next();
        a.insert(key);
        b.insert(key);
    }
    for (int i = kSetSize / 2; i < kSetSize; ++i) {
        a.insert(rng.next());
        b.insert(rng.next());
    }
    EXPECT_NEAR(bloom::similarity(a, b, kSetSize), 0.5, 0.2);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, SimilaritySizeSweep,
                         ::testing::Values(512, 1024, 2048, 4096,
                                           8192));

} // namespace
