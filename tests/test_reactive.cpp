/**
 * @file
 * Unit tests for the reactive managers (Timestamp, Polka) and the
 * conflict-arbitration hook they are built on.
 */

#include <gtest/gtest.h>

#include "cm/reactive.h"
#include "cm_test_util.h"
#include "runner/experiment.h"

namespace {

using cm::ArbitrationContext;
using cm::ConflictArbitration;
using cm::PolkaManager;
using cm::TimestampManager;

class ReactiveTest : public ::testing::Test
{
  protected:
    ReactiveTest()
        : timestamp_(4, machine_.services()),
          polka_(4, machine_.services())
    {
    }

    ArbitrationContext
    context(std::int64_t age_delta, int req_karma, int holder_karma,
            int retries)
    {
        ArbitrationContext ctx;
        ctx.requester = machine_.tx(0, 0);
        ctx.holder = machine_.tx(1, 1);
        ctx.holderAgeDelta = age_delta;
        ctx.requesterAccesses = req_karma;
        ctx.holderAccesses = holder_karma;
        ctx.stallRetries = retries;
        return ctx;
    }

    cmtest::Machine machine_;
    TimestampManager timestamp_;
    PolkaManager polka_;
};

TEST_F(ReactiveTest, DefaultArbitrationDefersToSubstrate)
{
    cm::BackoffManager backoff(4, machine_.services());
    EXPECT_EQ(backoff.arbitrate(context(1, 0, 0, 0)),
              ConflictArbitration::UseSubstrate);
}

TEST_F(ReactiveTest, TimestampOlderRequesterKillsHolder)
{
    // holderAgeDelta > 0: holder is younger than the requester.
    EXPECT_EQ(timestamp_.arbitrate(context(+5, 0, 0, 0)),
              ConflictArbitration::AbortHolders);
}

TEST_F(ReactiveTest, TimestampYoungerRequesterStallsThenDies)
{
    EXPECT_EQ(timestamp_.arbitrate(context(-5, 0, 0, 0)),
              ConflictArbitration::StallRequester);
    EXPECT_EQ(timestamp_.arbitrate(context(-5, 0, 0, 1)),
              ConflictArbitration::StallRequester);
    EXPECT_EQ(timestamp_.arbitrate(context(-5, 0, 0, 2)),
              ConflictArbitration::AbortRequester);
}

TEST_F(ReactiveTest, PolkaRichRequesterWinsImmediately)
{
    EXPECT_EQ(polka_.arbitrate(context(0, 20, 5, 0)),
              ConflictArbitration::AbortHolders);
}

TEST_F(ReactiveTest, PolkaPoorRequesterWaitsOutTheDeficit)
{
    // Deficit of 3: stall three times, then win.
    for (int retries = 0; retries < 3; ++retries) {
        EXPECT_EQ(polka_.arbitrate(context(0, 2, 5, retries)),
                  ConflictArbitration::StallRequester)
            << retries;
    }
    EXPECT_EQ(polka_.arbitrate(context(0, 2, 5, 3)),
              ConflictArbitration::AbortHolders);
}

TEST_F(ReactiveTest, PolkaPatienceIsBounded)
{
    // Huge deficit: after the cap the requester gives up instead.
    EXPECT_EQ(polka_.arbitrate(context(0, 0, 1000, 32)),
              ConflictArbitration::AbortRequester);
}

TEST_F(ReactiveTest, BothProceedFreelyAtBegin)
{
    EXPECT_EQ(timestamp_.onTxBegin(machine_.tx(0, 0)).action,
              cm::BeginAction::Proceed);
    EXPECT_EQ(polka_.onTxBegin(machine_.tx(0, 0)).action,
              cm::BeginAction::Proceed);
}

TEST(ReactiveIntegration, FullRunsCompleteAndConserveWork)
{
    runner::RunOptions options;
    options.txPerThread = 8;
    for (cm::CmKind kind :
         {cm::CmKind::Timestamp, cm::CmKind::Polka}) {
        const runner::SimResults r =
            runner::runStamp("Intruder", kind, options);
        EXPECT_EQ(r.commits, 64u * 8u) << cm::cmKindName(kind);
        EXPECT_EQ(r.stallTimeouts, 0u);
    }
}

TEST(ReactiveIntegration, VictimSelectionBeatsPlainBackoff)
{
    // Heuristic victim selection should not be worse than blind
    // randomized backoff on a high-contention benchmark.
    runner::RunOptions options;
    options.txPerThread = 40;
    const runner::SimResults backoff =
        runner::runStamp("Genome", cm::CmKind::Backoff, options);
    const runner::SimResults polka =
        runner::runStamp("Genome", cm::CmKind::Polka, options);
    EXPECT_LT(polka.runtime, backoff.runtime);
}

TEST(ReactiveIntegration, ExtendedKindsRoundTrip)
{
    EXPECT_EQ(cm::cmKindFromName("Timestamp"), cm::CmKind::Timestamp);
    EXPECT_EQ(cm::cmKindFromName("Polka"), cm::CmKind::Polka);
    EXPECT_EQ(cm::extendedCmKinds().size(),
              cm::allCmKinds().size() + 2);
    EXPECT_FALSE(cm::isBfgts(cm::CmKind::Polka));
}

} // namespace
