/**
 * @file
 * Unit tests for address helpers and the logging formatter.
 */

#include <gtest/gtest.h>

#include "mem/addr.h"
#include "sim/logging.h"

namespace {

TEST(Addr, LineAlignMasksOffset)
{
    EXPECT_EQ(mem::lineAlign(0), 0u);
    EXPECT_EQ(mem::lineAlign(63), 0u);
    EXPECT_EQ(mem::lineAlign(64), 64u);
    EXPECT_EQ(mem::lineAlign(0x12345), 0x12340u);
}

TEST(Addr, LineNumberShifts)
{
    EXPECT_EQ(mem::lineNumber(0), 0u);
    EXPECT_EQ(mem::lineNumber(63), 0u);
    EXPECT_EQ(mem::lineNumber(64), 1u);
    EXPECT_EQ(mem::lineNumber(640), 10u);
}

TEST(Addr, LineConstantsConsistent)
{
    EXPECT_EQ(mem::kLineBytes, 64u);
    EXPECT_EQ(1u << mem::kLineShift, mem::kLineBytes);
}

TEST(Logging, FormatProducesPrintfOutput)
{
    EXPECT_EQ(sim::detail::format("x=%d y=%s", 3, "abc"),
              "x=3 y=abc");
    EXPECT_EQ(sim::detail::format("plain"), "plain");
    // Long output is not truncated.
    std::string long_arg(500, 'a');
    EXPECT_EQ(sim::detail::format("%s", long_arg.c_str()).size(),
              500u);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(sim_panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(sim_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(LoggingDeath, AssertMentionsCondition)
{
    EXPECT_DEATH(sim_assert(1 == 2), "1 == 2");
}

} // namespace
