/**
 * @file
 * Integration tests: full simulations across every benchmark and
 * contention manager must complete, conserve work, account time
 * sanely, and be bit-reproducible.
 */

#include <gtest/gtest.h>

#include "cm/factory.h"
#include "runner/experiment.h"
#include "workloads/stamp.h"

namespace {

runner::RunOptions
quick()
{
    runner::RunOptions options;
    options.txPerThread = 12;
    return options;
}

TEST(Simulation, CompletesAndConservesCommits)
{
    const runner::SimResults results =
        runner::runStamp("Intruder", cm::CmKind::BfgtsHw, quick());
    // Every thread commits exactly its quota.
    EXPECT_EQ(results.commits, 64u * 12u);
    EXPECT_GT(results.runtime, 0u);
}

TEST(Simulation, BreakdownCoversMachineCapacity)
{
    const runner::SimResults results =
        runner::runStamp("Delaunay", cm::CmKind::BfgtsSw, quick());
    const sim::Cycles capacity = 16u * results.runtime;
    const runner::Breakdown &b = results.breakdown;
    // idle is defined as capacity - busy, so the total matches
    // exactly unless busy accounting overshoots capacity.
    EXPECT_EQ(b.total(), capacity);
    // And busy work must be a sane share of the machine.
    EXPECT_GT(b.frac(b.tx) + b.frac(b.nonTx), 0.02);
}

TEST(Simulation, ContentionRateIsConsistent)
{
    const runner::SimResults results =
        runner::runStamp("Genome", cm::CmKind::Backoff, quick());
    const double expected =
        static_cast<double>(results.aborts)
        / static_cast<double>(results.aborts + results.commits);
    EXPECT_DOUBLE_EQ(results.contentionRate, expected);
}

TEST(Simulation, DeterministicAcrossRuns)
{
    const runner::SimResults a =
        runner::runStamp("Kmeans", cm::CmKind::BfgtsHw, quick());
    const runner::SimResults b =
        runner::runStamp("Kmeans", cm::CmKind::BfgtsHw, quick());
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.aborts, b.aborts);
    EXPECT_EQ(a.conflicts, b.conflicts);
    EXPECT_EQ(a.breakdown.kernel, b.breakdown.kernel);
}

TEST(Simulation, SeedChangesOutcome)
{
    runner::RunOptions opt_a = quick();
    runner::RunOptions opt_b = quick();
    opt_b.seed = 999;
    const runner::SimResults a =
        runner::runStamp("Vacation", cm::CmKind::Backoff, opt_a);
    const runner::SimResults b =
        runner::runStamp("Vacation", cm::CmKind::Backoff, opt_b);
    EXPECT_NE(a.runtime, b.runtime);
}

TEST(Simulation, NoStallTimeoutsInNormalRuns)
{
    for (cm::CmKind kind :
         {cm::CmKind::BfgtsHw, cm::CmKind::Pts}) {
        const runner::SimResults results =
            runner::runStamp("Intruder", kind, quick());
        EXPECT_EQ(results.stallTimeouts, 0u)
            << cm::cmKindName(kind);
    }
}

TEST(Simulation, SingleCpuSingleThreadHasNoContention)
{
    runner::RunOptions options;
    options.numCpus = 1;
    options.threadsPerCpu = 1;
    options.txPerThread = 40;
    const runner::SimResults results =
        runner::runStamp("Delaunay", cm::CmKind::Backoff, options);
    EXPECT_EQ(results.aborts, 0u);
    EXPECT_EQ(results.conflicts, 0u);
    EXPECT_DOUBLE_EQ(results.contentionRate, 0.0);
    EXPECT_EQ(results.breakdown.kernel, 0u);
}

TEST(Simulation, ParallelBeatsSerial)
{
    runner::RunOptions options;
    options.txPerThread = 12;
    const runner::SimResults baseline =
        runner::runSingleCoreBaseline("Vacation", options);
    const runner::SimResults parallel =
        runner::runStamp("Vacation", cm::CmKind::Backoff, options);
    EXPECT_GT(runner::speedupOverOneCore(parallel, baseline), 2.0);
}

TEST(Simulation, BaselineRunsAllTheWork)
{
    runner::RunOptions options;
    options.txPerThread = 5;
    const runner::SimResults baseline =
        runner::runSingleCoreBaseline("Ssca2", options);
    EXPECT_EQ(baseline.commits, 64u * 5u);
}

TEST(Simulation, BaselineCacheMemoizes)
{
    runner::BaselineCache cache;
    runner::RunOptions options;
    options.txPerThread = 5;
    const sim::Tick first = cache.runtime("Kmeans", options);
    const sim::Tick second = cache.runtime("Kmeans", options);
    EXPECT_EQ(first, second);
    EXPECT_GT(first, 0u);
}

TEST(Simulation, MoreCpusRunFaster)
{
    runner::RunOptions small = quick();
    small.numCpus = 4;
    runner::RunOptions large = quick();
    large.numCpus = 16;
    // Same per-thread work; 16 CPUs host 64 threads vs 16 threads on
    // 4 CPUs -- compare total throughput instead: fix total threads.
    small.threadsPerCpu = 16; // 64 threads on 4 CPUs
    large.threadsPerCpu = 4;  // 64 threads on 16 CPUs
    const runner::SimResults s =
        runner::runStamp("Ssca2", cm::CmKind::Backoff, small);
    const runner::SimResults l =
        runner::runStamp("Ssca2", cm::CmKind::Backoff, large);
    EXPECT_LT(l.runtime, s.runtime);
}

TEST(Simulation, BloomBitsOptionReachesBfgts)
{
    runner::SimConfig config =
        runner::makeConfig("Genome", cm::CmKind::BfgtsHw, quick());
    EXPECT_EQ(config.tuning.bfgts.bloom.numBits, 2048u);
    runner::RunOptions options = quick();
    options.bloomBits = 512;
    config = runner::makeConfig("Genome", cm::CmKind::BfgtsHw,
                                options);
    EXPECT_EQ(config.tuning.bfgts.bloom.numBits, 512u);
}

TEST(Simulation, IntervalOptionReachesBfgts)
{
    runner::RunOptions options = quick();
    options.smallTxInterval = 10;
    runner::SimConfig config =
        runner::makeConfig("Genome", cm::CmKind::BfgtsHw, options);
    EXPECT_EQ(config.tuning.bfgts.smallTxInterval, 10);
}

TEST(Simulation, CustomWorkloadFactoryIsUsed)
{
    runner::SimConfig config;
    config.cm = cm::CmKind::Backoff;
    config.numCpus = 4;
    config.threadsPerCpu = 2;
    config.workloadFactory = [](int num_threads) {
        workloads::SyntheticParams params;
        params.name = "custom";
        params.txPerThread = 5;
        params.hotGroupLines = {32};
        workloads::SiteParams site;
        site.meanAccesses = 6;
        site.accessJitter = 1;
        site.nonTxWork = 200;
        params.sites = {site};
        return std::make_unique<workloads::SyntheticWorkload>(
            params, num_threads);
    };
    runner::Simulation simulation(config);
    const runner::SimResults results = simulation.run();
    EXPECT_EQ(results.workload, "custom");
    EXPECT_EQ(results.commits, 8u * 5u);
}

/** Every (benchmark, manager) cell completes without livelock. */
class FullMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, cm::CmKind>>
{
};

TEST_P(FullMatrix, RunsToCompletion)
{
    const auto &[workload, kind] = GetParam();
    runner::RunOptions options;
    options.txPerThread = 6;
    const runner::SimResults results =
        runner::runStamp(workload, kind, options);
    EXPECT_EQ(results.commits, 64u * 6u);
    EXPECT_EQ(results.cm, cm::cmKindName(kind));
    EXPECT_EQ(results.workload, workload);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullMatrix,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::stampBenchmarkNames()),
        ::testing::ValuesIn(cm::allCmKinds())),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        name += "_";
        std::string cm_name = cm::cmKindName(std::get<1>(info.param));
        for (char &c : cm_name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + cm_name;
    });

TEST(CmFactory, NamesRoundTrip)
{
    for (cm::CmKind kind : cm::allCmKinds())
        EXPECT_EQ(cm::cmKindFromName(cm::cmKindName(kind)), kind);
}

TEST(CmFactory, IsBfgtsClassifiesCorrectly)
{
    EXPECT_FALSE(cm::isBfgts(cm::CmKind::Backoff));
    EXPECT_FALSE(cm::isBfgts(cm::CmKind::Ats));
    EXPECT_FALSE(cm::isBfgts(cm::CmKind::Pts));
    EXPECT_TRUE(cm::isBfgts(cm::CmKind::BfgtsSw));
    EXPECT_TRUE(cm::isBfgts(cm::CmKind::BfgtsHw));
    EXPECT_TRUE(cm::isBfgts(cm::CmKind::BfgtsHwBackoff));
    EXPECT_TRUE(cm::isBfgts(cm::CmKind::BfgtsNoOverhead));
}

TEST(CmFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)cm::cmKindFromName("NotACm"), "unknown");
}

} // namespace
