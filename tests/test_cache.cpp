/**
 * @file
 * Unit tests for the set-associative cache model, the bus, and the
 * composed memory system.
 */

#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/mem_system.h"

namespace {

using mem::Addr;
using mem::Cache;
using mem::CacheConfig;
using mem::kLineBytes;

CacheConfig
tinyCache(int assoc = 2, mem::RefetchPolicy policy
                         = mem::RefetchPolicy::Drop)
{
    // 8 lines total.
    return CacheConfig{.sizeBytes = 8 * kLineBytes,
                       .associativity = assoc,
                       .hitLatency = 1,
                       .refetchPolicy = policy};
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_EQ(cache.misses().value(), 1u);
    EXPECT_EQ(cache.hits().value(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache cache(tinyCache());
    cache.access(0x1000);
    EXPECT_TRUE(cache.access(0x1000 + 63)); // same 64B line
    EXPECT_FALSE(cache.access(0x1000 + 64)); // next line
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 4 sets: lines 0, 4, 8 map to set 0.
    Cache cache(tinyCache());
    const Addr line0 = 0 * kLineBytes;
    const Addr line4 = 4 * kLineBytes;
    const Addr line8 = 8 * kLineBytes;
    cache.access(line0);
    cache.access(line4);
    cache.access(line0);  // line4 is now LRU
    cache.access(line8);  // evicts line4
    EXPECT_TRUE(cache.contains(line0));
    EXPECT_FALSE(cache.contains(line4));
    EXPECT_TRUE(cache.contains(line8));
}

TEST(Cache, DifferentSetsDoNotInterfere)
{
    Cache cache(tinyCache());
    for (Addr line = 0; line < 8; ++line)
        cache.access(line * kLineBytes);
    for (Addr line = 0; line < 8; ++line)
        EXPECT_TRUE(cache.contains(line * kLineBytes));
}

TEST(Cache, ContainsDoesNotTouchLru)
{
    Cache cache(tinyCache());
    const Addr line0 = 0 * kLineBytes;
    const Addr line4 = 4 * kLineBytes;
    const Addr line8 = 8 * kLineBytes;
    cache.access(line0);
    cache.access(line4);
    // contains() on line0 must not refresh it...
    EXPECT_TRUE(cache.contains(line0));
    // ...so line0 is still evicted first? No: line0 is older than
    // line4, so accessing line8 evicts line0.
    cache.access(line8);
    EXPECT_FALSE(cache.contains(line0));
    EXPECT_TRUE(cache.contains(line4));
}

TEST(Cache, InvalidateDropsLine)
{
    Cache cache(tinyCache());
    cache.access(0x40);
    cache.invalidate(0x40);
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_EQ(cache.invalidations().value(), 1u);
}

TEST(Cache, InvalidateMissIsCountedAsNothing)
{
    Cache cache(tinyCache());
    cache.invalidate(0x40);
    EXPECT_EQ(cache.invalidations().value(), 0u);
}

TEST(Cache, RefetchOnInvalidateKeepsLineResident)
{
    Cache cache(tinyCache(2, mem::RefetchPolicy::OnInvalidate));
    cache.access(0x80);
    cache.invalidate(0x80);
    EXPECT_TRUE(cache.contains(0x80));
    EXPECT_EQ(cache.refetches().value(), 1u);
    EXPECT_TRUE(cache.access(0x80));
}

TEST(Cache, FlushDropsEverything)
{
    Cache cache(tinyCache());
    cache.access(0x40);
    cache.access(0x80);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_FALSE(cache.contains(0x80));
}

TEST(Cache, DirectMappedConflicts)
{
    Cache cache(tinyCache(1));
    const Addr a = 0;
    const Addr b = 8 * kLineBytes; // same set in 8-set direct-mapped
    cache.access(a);
    cache.access(b);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
}

TEST(Cache, FullyAssociativeNeverConflictsBelowCapacity)
{
    Cache cache(CacheConfig{.sizeBytes = 8 * kLineBytes,
                            .associativity = 8,
                            .hitLatency = 1,
                            .refetchPolicy
                            = mem::RefetchPolicy::Drop});
    for (Addr line = 0; line < 8; ++line)
        cache.access(line * 64 * 977); // arbitrary distinct lines
    std::uint64_t resident = 0;
    for (Addr line = 0; line < 8; ++line)
        resident += cache.contains(line * 64 * 977) ? 1 : 0;
    EXPECT_EQ(resident, 8u);
}

TEST(Bus, NoContentionNoWait)
{
    mem::Bus bus(4);
    EXPECT_EQ(bus.request(100), 0u);
    EXPECT_EQ(bus.freeAt(), 104u);
}

TEST(Bus, BackToBackRequestsQueue)
{
    mem::Bus bus(4);
    EXPECT_EQ(bus.request(100), 0u);
    EXPECT_EQ(bus.request(100), 4u);  // waits for first transfer
    EXPECT_EQ(bus.request(100), 8u);
    EXPECT_EQ(bus.queuedCycles().value(), 12u);
    EXPECT_EQ(bus.requests().value(), 3u);
}

TEST(Bus, IdleGapResetsQueue)
{
    mem::Bus bus(4);
    bus.request(100);
    EXPECT_EQ(bus.request(200), 0u);
}

TEST(MemSystem, L1HitIsOneCycle)
{
    mem::MemSystemConfig config;
    config.numCpus = 2;
    mem::MemSystem ms(config);
    ms.access(0, 0x1000, false, 0);        // cold miss
    EXPECT_EQ(ms.access(0, 0x1000, false, 0), 1u);
}

TEST(MemSystem, ColdMissGoesToMemory)
{
    mem::MemSystemConfig config;
    config.numCpus = 1;
    mem::MemSystem ms(config);
    // L1 hit lat 1 + bus 4 + L2 lat 32 + memory 100 = 137.
    const sim::Cycles latency = ms.access(0, 0x2000, false, 0);
    EXPECT_GT(latency, config.memLatency);
    EXPECT_GE(latency, 1u + 4u + 32u + 100u);
}

TEST(MemSystem, L2HitAfterRemoteFetch)
{
    mem::MemSystemConfig config;
    config.numCpus = 2;
    mem::MemSystem ms(config);
    ms.access(0, 0x3000, false, 0);
    // CPU 1 misses L1 but hits L2 now.
    const sim::Cycles latency = ms.access(1, 0x3000, false, 1000);
    EXPECT_LT(latency, config.memLatency);
    EXPECT_GE(latency, config.l2.hitLatency);
}

TEST(MemSystem, WriteInvalidatesRemoteCopies)
{
    mem::MemSystemConfig config;
    config.numCpus = 2;
    mem::MemSystem ms(config);
    ms.access(0, 0x4000, false, 0);
    ms.access(1, 0x4000, false, 0);
    EXPECT_TRUE(ms.l1(0).contains(0x4000));
    ms.access(1, 0x4000, true, 100); // write kills CPU 0's copy
    EXPECT_FALSE(ms.l1(0).contains(0x4000));
    // CPU 0 re-reads: L1 miss again.
    EXPECT_GT(ms.access(0, 0x4000, false, 200), 1u);
}

TEST(MemSystem, ReadsDoNotInvalidateSharers)
{
    mem::MemSystemConfig config;
    config.numCpus = 3;
    mem::MemSystem ms(config);
    ms.access(0, 0x5000, false, 0);
    ms.access(1, 0x5000, false, 10);
    ms.access(2, 0x5000, false, 20);
    EXPECT_TRUE(ms.l1(0).contains(0x5000));
    EXPECT_TRUE(ms.l1(1).contains(0x5000));
    EXPECT_TRUE(ms.l1(2).contains(0x5000));
}

TEST(MemSystem, BusContentionRaisesLatency)
{
    mem::MemSystemConfig config;
    config.numCpus = 4;
    mem::MemSystem ms(config);
    // Four cold misses at the same tick from different CPUs.
    sim::Cycles first =
        ms.access(0, 0x10000, false, 0);
    sim::Cycles last = first;
    for (int cpu = 1; cpu < 4; ++cpu) {
        last = ms.access(cpu, 0x20000 + static_cast<Addr>(cpu) * 4096,
                         false, 0);
    }
    EXPECT_GT(last, first);
}

} // namespace
