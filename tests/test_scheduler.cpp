/**
 * @file
 * Unit tests for the OS scheduler model: dispatch, yield, block/wake,
 * preemption, kernel-cost accounting and idle tracking.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/scheduler.h"

namespace {

using os::OsScheduler;
using os::SchedulerConfig;
using os::ThreadState;

/** A tiny harness: each dispatched thread runs a scripted action. */
class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest() : sched_(events_, config()) {}

    static SchedulerConfig
    config()
    {
        SchedulerConfig config;
        config.numCpus = 2;
        config.quantum = 1000;
        config.contextSwitchCost = 10;
        config.yieldCost = 5;
        config.blockCost = 20;
        config.wakeCost = 15;
        return config;
    }

    sim::EventQueue events_;
    OsScheduler sched_;
    std::vector<int> dispatches_;
};

TEST_F(SchedulerTest, ThreadsGetSequentialIds)
{
    EXPECT_EQ(sched_.addThread(0), 0);
    EXPECT_EQ(sched_.addThread(1), 1);
    EXPECT_EQ(sched_.addThread(0), 2);
    EXPECT_EQ(sched_.numThreads(), 3);
}

TEST_F(SchedulerTest, StartDispatchesFirstThreadPerCpu)
{
    sched_.addThread(0);
    sched_.addThread(1);
    sched_.addThread(0);
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        dispatches_.push_back(tid);
        sched_.finishCurrent(tid);
    });
    sched_.start();
    events_.run();
    // All threads eventually run; first dispatches are 0 and 1.
    ASSERT_EQ(dispatches_.size(), 3u);
    EXPECT_EQ(dispatches_[0], 0);
    EXPECT_EQ(dispatches_[1], 1);
    EXPECT_EQ(dispatches_[2], 2);
    EXPECT_TRUE(sched_.allFinished());
}

TEST_F(SchedulerTest, YieldRotatesRoundRobin)
{
    sched_.addThread(0);
    sched_.addThread(0);
    int remaining = 6;
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        dispatches_.push_back(tid);
        if (--remaining > 0)
            sched_.yieldCurrent(tid);
        else
            sched_.finishCurrent(tid);
    });
    sched_.start();
    events_.run(sim::kMaxTick, 1000);
    // Alternating 0,1,0,1,...
    ASSERT_GE(dispatches_.size(), 4u);
    for (std::size_t i = 0; i + 1 < dispatches_.size(); ++i)
        EXPECT_NE(dispatches_[i], dispatches_[i + 1]);
}

TEST_F(SchedulerTest, YieldAloneRedispatchesSelf)
{
    sched_.addThread(0);
    int count = 0;
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        if (++count < 3)
            sched_.yieldCurrent(tid);
        else
            sched_.finishCurrent(tid);
    });
    sched_.start();
    events_.run();
    EXPECT_EQ(count, 3);
}

TEST_F(SchedulerTest, YieldChargesKernelCycles)
{
    sched_.addThread(0);
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        if (sched_.thread(tid).yields == 0)
            sched_.yieldCurrent(tid);
        else
            sched_.finishCurrent(tid);
    });
    sched_.start();
    events_.run();
    EXPECT_EQ(sched_.thread(0).yields, 1u);
    EXPECT_EQ(sched_.thread(0).kernelCycles, 5u); // one yieldCost
}

TEST_F(SchedulerTest, ContextSwitchChargedToIncomingThread)
{
    sched_.addThread(0);
    sched_.addThread(0);
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        dispatches_.push_back(tid);
        if (dispatches_.size() <= 2)
            sched_.yieldCurrent(tid);
        else
            sched_.finishCurrent(tid);
    });
    sched_.start();
    events_.run(sim::kMaxTick, 1000);
    // Thread 1 was switched in once after thread 0 ran.
    EXPECT_GE(sched_.thread(1).kernelCycles, 10u);
}

TEST_F(SchedulerTest, BlockAndWake)
{
    sched_.addThread(0);
    sched_.addThread(1);
    bool blocked_once = false;
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        if (tid == 0 && !blocked_once) {
            blocked_once = true;
            sched_.blockCurrent(0);
            return;
        }
        if (tid == 1) {
            sched_.wake(0, 1);
            sched_.finishCurrent(1);
            return;
        }
        sched_.finishCurrent(tid);
    });
    sched_.start();
    events_.run();
    EXPECT_TRUE(sched_.allFinished());
    EXPECT_EQ(sched_.thread(0).blocks, 1u);
    // Waker paid the wake cost.
    EXPECT_GE(sched_.thread(1).kernelCycles, 15u);
}

TEST_F(SchedulerTest, WakeBeforeBlockIsNotLost)
{
    // Thread 1 wakes thread 0 while thread 0 is still Running
    // toward its block (signal-before-sleep).
    sched_.addThread(0);
    sched_.addThread(1);
    bool thread0_blocked = false;
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        if (tid == 1) {
            sched_.wake(0, 1); // thread 0 is Running right now
            sched_.finishCurrent(1);
            return;
        }
        if (!thread0_blocked) {
            thread0_blocked = true;
            // The wake arrived during the begin-to-block window on
            // the other CPU at the same tick ordering.
            sched_.blockCurrent(0);
            return;
        }
        sched_.finishCurrent(0);
    });
    sched_.start();
    events_.run(sim::kMaxTick, 1000);
    EXPECT_TRUE(sched_.allFinished());
}

TEST_F(SchedulerTest, ShouldPreemptNeedsQuantumAndWaiter)
{
    sched_.addThread(0);
    sched_.addThread(0);
    sim::ThreadId running = sim::kNoThread;
    sched_.setDispatchFn([&](sim::ThreadId tid) { running = tid; });
    sched_.start();
    events_.run();
    ASSERT_EQ(running, 0);
    // Quantum not expired yet.
    EXPECT_FALSE(sched_.shouldPreempt(0));
}

TEST_F(SchedulerTest, PreemptAfterQuantum)
{
    sched_.addThread(0);
    sched_.addThread(0);
    std::vector<int> order;
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        order.push_back(tid);
        if (order.size() >= 4) {
            sched_.finishCurrent(tid);
            return;
        }
        // Simulate compute until past the quantum, then check.
        events_.scheduleIn(1500, [this, tid, &order] {
            if (sched_.shouldPreempt(tid)) {
                sched_.preemptCurrent(tid);
            } else if (order.size() >= 4) {
                sched_.finishCurrent(tid);
            } else {
                sched_.yieldCurrent(tid);
            }
        });
    });
    sched_.start();
    events_.run(sim::kMaxTick, 100);
    // Thread 0 ran past its quantum with thread 1 ready: preempted.
    EXPECT_GE(sched_.thread(0).preemptions, 1u);
    ASSERT_GE(order.size(), 2u);
    EXPECT_EQ(order[1], 1);
}

TEST_F(SchedulerTest, NoPreemptWithoutWaiters)
{
    sched_.addThread(0);
    bool checked = false;
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        events_.scheduleIn(5000, [this, tid, &checked] {
            checked = true;
            EXPECT_FALSE(sched_.shouldPreempt(tid));
            sched_.finishCurrent(tid);
        });
    });
    sched_.start();
    events_.run();
    EXPECT_TRUE(checked);
}

TEST_F(SchedulerTest, IdleCyclesAccumulateWhileQueueEmpty)
{
    sched_.addThread(0);
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        sched_.blockCurrent(tid);
        // Wake it much later from a detached event.
        events_.scheduleIn(1000, [this] { sched_.wake(0); });
    });
    bool finished = false;
    sched_.start();
    // Replace dispatch behaviour after first block.
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        if (!finished) {
            finished = true;
            sched_.blockCurrent(tid);
            events_.scheduleIn(1000, [this] { sched_.wake(0); });
        } else {
            sched_.finishCurrent(tid);
        }
    });
    events_.run(sim::kMaxTick, 100);
    EXPECT_GT(sched_.idleCycles(0), 500u);
}

TEST_F(SchedulerTest, RunningOnReflectsDispatch)
{
    sched_.addThread(0);
    sched_.setDispatchFn([&](sim::ThreadId tid) {
        EXPECT_EQ(sched_.runningOn(0), tid);
        sched_.finishCurrent(tid);
    });
    EXPECT_EQ(sched_.runningOn(0), sim::kNoThread);
    sched_.start();
    events_.run();
    EXPECT_EQ(sched_.runningOn(0), sim::kNoThread);
}

TEST_F(SchedulerTest, FinishCountsTowardsAllFinished)
{
    sched_.addThread(0);
    sched_.addThread(1);
    sched_.setDispatchFn(
        [&](sim::ThreadId tid) { sched_.finishCurrent(tid); });
    EXPECT_FALSE(sched_.allFinished());
    sched_.start();
    events_.run();
    EXPECT_TRUE(sched_.allFinished());
    EXPECT_EQ(sched_.thread(0).state, ThreadState::Finished);
}

} // namespace
