/**
 * @file
 * Tests for the polymorphic signature layer (Bloom vs perfect), and
 * the property that the Bloom implementation approximates the
 * perfect one.
 */

#include <gtest/gtest.h>

#include "bloom/signature.h"
#include "sim/random.h"

namespace {

using bloom::BloomSignature;
using bloom::PerfectSignature;
using bloom::Signature;

TEST(PerfectSignature, ExactSizeAndIntersection)
{
    PerfectSignature a, b;
    for (std::uint64_t key = 0; key < 20; ++key)
        a.insert(key);
    for (std::uint64_t key = 10; key < 30; ++key)
        b.insert(key);
    EXPECT_DOUBLE_EQ(a.estimateSize(), 20.0);
    EXPECT_DOUBLE_EQ(a.estimateIntersectionSize(b), 10.0);
    EXPECT_TRUE(a.intersectsNonEmpty(b));
}

TEST(PerfectSignature, DisjointSetsDoNotIntersect)
{
    PerfectSignature a, b;
    a.insert(1);
    b.insert(2);
    EXPECT_FALSE(a.intersectsNonEmpty(b));
    EXPECT_DOUBLE_EQ(a.estimateIntersectionSize(b), 0.0);
}

TEST(PerfectSignature, ClearAndEmpty)
{
    PerfectSignature a;
    EXPECT_TRUE(a.empty());
    a.insert(5);
    EXPECT_FALSE(a.empty());
    a.clear();
    EXPECT_TRUE(a.empty());
    EXPECT_DOUBLE_EQ(a.estimateSize(), 0.0);
}

TEST(PerfectSignature, DuplicateInsertsAreIdempotent)
{
    PerfectSignature a;
    a.insert(5);
    a.insert(5);
    EXPECT_DOUBLE_EQ(a.estimateSize(), 1.0);
}

TEST(PerfectSignature, CloneIsDeepCopy)
{
    PerfectSignature a;
    a.insert(1);
    auto clone = a.clone();
    a.insert(2);
    EXPECT_DOUBLE_EQ(clone->estimateSize(), 1.0);
    EXPECT_DOUBLE_EQ(a.estimateSize(), 2.0);
}

TEST(BloomSignature, BasicRoundTrip)
{
    BloomSignature a;
    EXPECT_TRUE(a.empty());
    a.insert(123);
    EXPECT_FALSE(a.empty());
    EXPECT_NEAR(a.estimateSize(), 1.0, 0.1);
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(BloomSignature, CloneIsIndependent)
{
    BloomSignature a;
    a.insert(1);
    auto clone = a.clone();
    a.insert(2);
    EXPECT_LT(clone->estimateSize(), a.estimateSize());
}

TEST(BloomSignatureDeath, MixingImplementationsPanics)
{
    BloomSignature a;
    PerfectSignature b;
    a.insert(1);
    b.insert(1);
    EXPECT_DEATH(a.intersectsNonEmpty(b), "non-Bloom");
    EXPECT_DEATH(b.estimateIntersectionSize(a), "non-perfect");
}

TEST(SignatureSimilarity, AgreesAcrossImplementations)
{
    // Build the same half-overlapping sets in both implementations;
    // the Bloom similarity must approximate the exact one.
    BloomSignature bloom_new, bloom_old;
    PerfectSignature exact_new, exact_old;
    sim::Rng rng(21);
    constexpr int kSize = 60;
    for (int i = 0; i < kSize; ++i) {
        std::uint64_t key = rng.next();
        bloom_new.insert(key);
        exact_new.insert(key);
        if (i < kSize / 2) {
            bloom_old.insert(key);
            exact_old.insert(key);
        } else {
            std::uint64_t other = rng.next();
            bloom_old.insert(other);
            exact_old.insert(other);
        }
    }
    const double exact = bloom::signatureSimilarity(exact_new,
                                                    exact_old, kSize);
    const double approx = bloom::signatureSimilarity(bloom_new,
                                                     bloom_old, kSize);
    EXPECT_NEAR(exact, 0.5, 0.05);
    EXPECT_NEAR(approx, exact, 0.2);
}

TEST(SignatureSimilarity, PerfectIdenticalIsOne)
{
    PerfectSignature a, b;
    for (std::uint64_t key = 0; key < 25; ++key) {
        a.insert(key);
        b.insert(key);
    }
    EXPECT_DOUBLE_EQ(bloom::signatureSimilarity(a, b, 25.0), 1.0);
}

} // namespace
